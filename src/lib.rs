//! `plis` — Parallel Longest Increasing Subsequence and van Emde Boas trees.
//!
//! This is the umbrella crate of the workspace reproducing the SPAA 2023
//! paper *"Parallel Longest Increasing Subsequence and van Emde Boas
//! Trees"* (Gu, Men, Shen, Sun, Wan).  It re-exports the public API of the
//! member crates so applications can depend on a single crate:
//!
//! * [`lis`] — Algorithm 1/2: parallel LIS ranks, LIS reconstruction, and
//!   weighted LIS over a range tree or a Range-vEB tree.
//! * [`veb`] — sequential and parallel van Emde Boas trees (batch insert /
//!   delete, parallel range query, Mono-vEB staircases).
//! * [`tournament`] — the parallel tournament tree that drives Algorithm 1.
//! * [`rangetree`] / [`rangeveb`] — the two dominant-max structures used by
//!   the weighted-LIS algorithm.
//! * [`baselines`] — Seq-BS, Seq-AVL, the SWGS-style baseline, and the
//!   reference oracles from the evaluation section.
//! * [`workloads`] — the line-pattern / range-pattern input generators of
//!   the evaluation, plus batched streaming arrivals.
//! * [`primitives`] — the fork-join scan/pack/merge/sort substrate.
//! * [`engine`] — the streaming-LIS engine: incremental per-session LIS
//!   state over batched arrivals, multiplexed and sharded across sessions
//!   and driven through one typed command plane (`Op` ticks executed by
//!   `Engine::execute` / `Engine::execute_read`).
//!
//! # Quick start
//!
//! ```
//! use plis::prelude::*;
//!
//! let input = vec![52u64, 31, 45, 26, 61, 10, 39, 44];
//! let (ranks, k) = lis_ranks_u64(&input);
//! assert_eq!(k, 3);
//! assert_eq!(ranks, vec![1, 1, 2, 1, 3, 1, 2, 3]);
//!
//! let weights = vec![1u64; input.len()];
//! let dp = wlis_rangetree(&input, &weights);
//! assert_eq!(dp.iter().max(), Some(&3));
//! ```

pub use plis_baselines as baselines;
pub use plis_engine as engine;
pub use plis_lis as lis;
pub use plis_primitives as primitives;
pub use plis_rangetree as rangetree;
pub use plis_rangeveb as rangeveb;
pub use plis_tournament as tournament;
pub use plis_veb as veb;
pub use plis_workloads as workloads;

/// Compile the README's code blocks as doctests (`cargo test --doc`), so
/// the quickstart examples — including the query-plane one — can't rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// The most commonly used items, importable with `use plis::prelude::*`.
pub mod prelude {
    pub use plis_baselines::{seq_avl, seq_bs, seq_bs_length, swgs_lis, swgs_wlis};
    pub use plis_engine::{
        replay_journal, replay_journal_from, EngineSnapshot, ReplayReport, SessionSnapshot,
        SnapshotError, TickJournal,
    };
    pub use plis_engine::{
        Backend, BatchReport, Certificate, Engine, EngineConfig, IngestReport, Op, OpError,
        OpOutput, OpResult, Query, QueryAnswer, QueryBatch, QueryReport, ReadOutcome, ReadTick,
        SessionId, SessionKind, StreamingLis, Tick, TickBatch, TickOutcome, WeightedIngestReport,
        WeightedStreamingLis,
    };
    pub use plis_engine::{HistogramSnapshot, MemorySink, Metrics, MetricsSnapshot, TraceSink};
    // The legacy tick surface, kept importable for external callers of
    // the deprecated wrappers (in-repo code uses the command plane).
    #[allow(deprecated)]
    pub use plis_engine::{MixedTickReport, OpReport, QueryTickReport, TickOp, TickReport};
    pub use plis_lis::{
        lis_indices, lis_length, lis_ranks, lis_ranks_u64, wlis_indices_from_scores, wlis_kind,
        wlis_rangetree, wlis_rangeveb, wlis_with, DominantMaxKind, DominantMaxStore, TailSet,
    };
    pub use plis_rangetree::RangeMaxTree;
    pub use plis_rangeveb::RangeVeb;
    pub use plis_tournament::TournamentTree;
    pub use plis_veb::{MonoVeb, ScoredPoint, VebTree};
    pub use plis_workloads::{line_pattern, range_pattern, uniform_weights, with_target_rank};
}
