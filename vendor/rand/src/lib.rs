//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.8 API subset).
//!
//! Provides exactly the surface this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! `Range` / `RangeInclusive` bounds.  The generator is SplitMix64 — not
//! cryptographic, but high-quality, fast, and fully deterministic in the
//! seed, which is all the workload generators require.

pub mod rngs {
    pub use crate::StdRng;
}

/// Core source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding (only `seed_from_u64` is used by this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random mantissa bits, uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the inclusive interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// The predecessor of `hi`, used to turn an exclusive bound inclusive.
    fn down_one(hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn down_one(hi: Self) -> Self {
                hi - 1
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128) - (lo as i128) + 1;
                lo + (rng.next_u64() as i128 % span) as $t
            }
            fn down_one(hi: Self) -> Self {
                hi - 1
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(self.start, T::down_one(self.end), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The standard deterministic RNG of this stand-in: SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&w));
            let s = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
