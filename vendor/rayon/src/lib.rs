//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of rayon sufficient for this codebase:
//!
//! * [`join`] provides **real** fork-join parallelism on top of
//!   `std::thread::scope`, with a global budget of live helper threads so
//!   deeply recursive divide-and-conquer does not oversubscribe the machine.
//!   The algorithms in `plis-primitives` funnel all of their parallelism
//!   through `join` (via `maybe_join` / `parallel_for`), so the hot paths
//!   still run on multiple cores.
//! * The parallel-iterator surface ([`prelude`], [`mod@slice`], [`iter`])
//!   executes **in parallel** as well: pipelines over slices, vectors,
//!   integer ranges, and chunk views are split recursively with [`join`]
//!   down to an adaptive grain size and drained sequentially per piece,
//!   with order-preserving combination — see the [`iter`] module docs.
//!   `par_sort*` is the one remaining sequential delegate (its callers in
//!   this workspace route through `plis_primitives::sort` instead).
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] model thread-count
//!   scoping with a thread-local, which [`current_num_threads`] reads and
//!   both [`join`] and the iterator drivers respect (`num_threads(1)`
//!   forces fully sequential execution, which is what the benchmark
//!   harness's `on_threads(1, ..)` and the determinism tests rely on).
//!
//! Swapping the real rayon back in is a one-line change in the workspace
//! manifest; no source file needs to change.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;
pub mod slice;

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Live helper threads spawned by [`join`] across the whole process.
static LIVE_HELPERS: AtomicUsize = AtomicUsize::new(0);

fn hardware_threads() -> usize {
    // `available_parallelism` re-reads cgroup/affinity state on every call
    // (several µs on Linux); the iterator drivers consult the thread count
    // once per pipeline, so cache it for the process lifetime.
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Number of threads of the "current pool": the installed override if one is
/// active on this thread, otherwise the hardware parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|c| c.get()).unwrap_or_else(hardware_threads)
}

fn try_reserve_helper() -> bool {
    // Allow a healthy oversubscription factor: scoped helper threads block
    // in `join` while their children run, so more live threads than cores
    // are needed to keep every core busy in deep recursions.
    let limit = hardware_threads().saturating_mul(4).max(4);
    LIVE_HELPERS
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            if n < limit {
                Some(n + 1)
            } else {
                None
            }
        })
        .is_ok()
}

/// Run `oper_a` and `oper_b`, potentially in parallel, and return both
/// results.  Matches `rayon::join`'s signature and panic propagation.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = current_num_threads();
    if threads <= 1 || !try_reserve_helper() {
        return (oper_a(), oper_b());
    }
    // Release the helper slot even when a panic unwinds through the scope —
    // otherwise caught panics (catch_unwind, #[should_panic] tests) would
    // leak slots until every join degrades to sequential.
    struct ReleaseHelper;
    impl Drop for ReleaseHelper {
        fn drop(&mut self) {
            LIVE_HELPERS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _release = ReleaseHelper;
    std::thread::scope(|s| {
        let handle = s.spawn(move || {
            // Propagate the pool-size override into the helper thread so
            // nested joins see the same budget.
            POOL_THREADS.with(|c| c.set(Some(threads)));
            oper_a()
        });
        let rb = oper_b();
        let ra = match handle.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never actually
/// produced by this stand-in.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` (rayon's convention) selects the hardware default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads.unwrap_or_else(hardware_threads) })
    }
}

/// A "pool" is just a thread-count scope: [`ThreadPool::install`] sets the
/// count that [`current_num_threads`] and [`join`] observe while `f` runs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_joins_work() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 1_000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (l, r) = join(|| sum(lo, mid), || sum(mid, hi));
                l + r
            }
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_eq!(current_num_threads(), hardware_threads());
    }

    #[test]
    fn join_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            join(|| panic!("left side"), || 7);
        });
        assert!(caught.is_err());
    }

    #[test]
    fn caught_panics_do_not_leak_helper_slots() {
        // Burn far more caught panics than the helper budget; joins must
        // still be able to go parallel afterwards.
        let budget = hardware_threads().saturating_mul(4).max(4);
        for _ in 0..budget * 2 {
            let _ = std::panic::catch_unwind(|| {
                join(|| panic!("boom"), || ());
            });
        }
        // Other tests in this binary may hold slots transiently; wait for
        // the counter to drain rather than asserting an instant zero.
        for _ in 0..200 {
            if LIVE_HELPERS.load(Ordering::Relaxed) == 0 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("helper slots leaked: {}", LIVE_HELPERS.load(Ordering::Relaxed));
    }
}
