//! Sequential stand-ins for `rayon::slice`: chunking and sorting on slices.

use crate::iter::Par;
use std::cmp::Ordering;

pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> Ordering;
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> Ordering;
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> Ordering,
    {
        self.sort_by(cmp);
    }
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> Ordering,
    {
        self.sort_unstable_by(cmp);
    }
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_by_key(key);
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_unstable_by_key(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_and_sort() {
        let mut v = vec![3u64, 1, 2];
        v.par_sort();
        assert_eq!(v, vec![1, 2, 3]);
        let chunks: Vec<&[u64]> = v.par_chunks(2).collect();
        assert_eq!(chunks, vec![&[1u64, 2][..], &[3u64][..]]);
    }
}
