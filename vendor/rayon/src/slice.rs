//! Slice entry points: chunking (parallel via the [`crate::iter`] drivers)
//! and sorting.
//!
//! `par_chunks` / `par_chunks_mut` yield whole sub-slices, so their grain
//! floor is a single item — each item already represents a caller-chosen
//! block of work.
//!
//! The `par_sort*` family intentionally delegates to std's sequential sorts:
//! a buffered parallel merge sort needs either `T: Clone` or unsafe moves,
//! and rayon's API promises neither.  Workspace code routes sorting through
//! `plis_primitives::sort`, which implements a join-based parallel merge
//! sort for the `Clone` types the algorithms use; these methods exist for
//! API compatibility with the real rayon.

use crate::iter::ParallelIterator;
use std::cmp::Ordering;

/// `par_chunks()` source: fixed-size sub-slices of a shared slice.
pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (Chunks { slice: a, size: self.size }, Chunks { slice: b, size: self.size })
    }
    fn par_drain(self, sink: &mut dyn FnMut(&'a [T])) {
        for chunk in self.slice.chunks(self.size) {
            sink(chunk);
        }
    }
    fn default_grain_floor(&self) -> usize {
        1 // each item is already a coarse block
    }
}

/// `par_chunks_mut()` source: fixed-size disjoint mutable sub-slices.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (ChunksMut { slice: a, size: self.size }, ChunksMut { slice: b, size: self.size })
    }
    fn par_drain(self, sink: &mut dyn FnMut(&'a mut [T])) {
        for chunk in self.slice.chunks_mut(self.size) {
            sink(chunk);
        }
    }
    fn default_grain_floor(&self) -> usize {
        1 // each item is already a coarse block
    }
}

pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Chunks { slice: self, size: chunk_size }
    }
}

pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> Ordering;
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> Ordering;
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut { slice: self, size: chunk_size }
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> Ordering,
    {
        self.sort_by(cmp);
    }
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> Ordering,
    {
        self.sort_unstable_by(cmp);
    }
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_by_key(key);
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_unstable_by_key(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::IntoParallelRefMutIterator;

    #[test]
    fn chunk_and_sort() {
        let mut v = vec![3u64, 1, 2];
        v.par_sort();
        assert_eq!(v, vec![1, 2, 3]);
        let chunks: Vec<&[u64]> = v.par_chunks(2).collect();
        assert_eq!(chunks, vec![&[1u64, 2][..], &[3u64][..]]);
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let n = 100_000usize;
        let v: Vec<usize> = (0..n).collect();
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let sums: Vec<usize> = pool.install(|| {
            v.par_chunks(1024).map(|c| c.iter().sum::<usize>()).collect::<Vec<usize>>()
        });
        assert_eq!(sums.len(), n.div_ceil(1024));
        assert_eq!(sums.iter().sum::<usize>(), n * (n - 1) / 2);
    }

    #[test]
    fn chunks_mut_are_disjoint_and_ordered() {
        let mut v = vec![0usize; 50_000];
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            v.par_chunks_mut(777).enumerate().for_each(|(i, chunk)| {
                for x in chunk.iter_mut() {
                    *x = i;
                }
            })
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i / 777);
        }
        // par_iter_mut over the whole slice also works.
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v[0], 1);
    }
}
