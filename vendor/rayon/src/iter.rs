//! Sequential stand-ins for rayon's parallel-iterator entry points.
//!
//! `par_iter()` / `par_iter_mut()` / `into_par_iter()` / `par_chunks*()`
//! return a [`Par`] wrapper around the ordinary std iterator.  `Par`
//! implements [`Iterator`] by delegation, so the full std combinator
//! vocabulary works unchanged; the few rayon methods whose signatures
//! *differ* from std (`map` so the wrapper survives chaining, and the
//! identity-taking `reduce`) are provided as inherent methods, which take
//! precedence over the `Iterator` trait methods of the same name.
//! [`ParallelIteratorExt`] supplies rayon-only tuning adapters
//! (`with_min_len`, `with_max_len`) as no-ops on every iterator.

/// Sequential iterator posing as a rayon parallel iterator.
#[derive(Debug, Clone)]
pub struct Par<I>(pub I);

impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: DoubleEndedIterator> DoubleEndedIterator for Par<I> {
    fn next_back(&mut self) -> Option<I::Item> {
        self.0.next_back()
    }
}

impl<I: ExactSizeIterator> ExactSizeIterator for Par<I> {}

impl<I: Iterator> Par<I> {
    /// Same shape as both `Iterator::map` and rayon's `map`; returns a `Par`
    /// so rayon-specific consumers (like [`Par::reduce`]) stay reachable.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Rayon's `reduce`: fold from an identity element.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
}

/// `into_par_iter()` for any owned iterable (ranges, `Vec`, ...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par(self.into_iter())
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

/// `par_iter()` for `&collection`.
pub trait IntoParallelRefIterator<'a> {
    type Iter;
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// `par_iter_mut()` for `&mut collection`.
pub trait IntoParallelRefMutIterator<'a> {
    type Iter;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// Rayon-only tuning adapters that are meaningless for sequential iterators.
pub trait ParallelIteratorExt: Sized {
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
    fn with_max_len(self, _max: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIteratorExt for I {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_and_owned_iteration() {
        let v = vec![1u64, 2, 3];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: u64 = (0u64..10).into_par_iter().with_min_len(2).sum();
        assert_eq!(sum, 45);
        let mut w = vec![1u64, 2, 3];
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4]);
    }

    #[test]
    fn rayon_style_reduce() {
        let v = vec![1u64, 2, 3, 4];
        let total = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10);
        // Empty input returns the identity.
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.par_iter().map(|&x| x).reduce(|| 7, |a, b| a + b), 7);
    }
}
