//! Join-backed parallel iterators: the core of the rayon stand-in.
//!
//! Unlike the first-generation stand-in (which wrapped std iterators and ran
//! everything sequentially), this module implements a real, if small,
//! parallel-iterator framework: every pipeline is a tree of *splittable*
//! stages over an indexable source (slice, `Vec`, integer range, or slice
//! chunks), and every driver (`for_each`, `collect`, `reduce`, `sum`,
//! `count`) executes by recursively halving the source with [`crate::join`]
//! until pieces reach a grain size, then draining each piece sequentially.
//! Combining is order-preserving (`collect` concatenates left-to-right), so
//! results are identical to the sequential run for any thread count — the
//! invariant the engine's determinism tests rely on.
//!
//! Grain selection: a driver aims for ~4 pieces per worker thread
//! (`TASKS_PER_THREAD`) but never below a per-source floor
//! (`DEFAULT_GRAIN_FLOOR` items for element-wise sources, a single item
//! for `par_chunks*`, whose items are already coarse blocks).  `join` in
//! this stand-in spawns real scoped threads, so pieces must amortize a
//! thread spawn — that is why the floor is hundreds of items, not one.
//! rayon's `with_min_len` / `with_max_len` adapters override the floor and
//! cap the grain respectively; `with_max_len(1)` forces one piece per item,
//! which callers with few-but-heavy items (e.g. engine shards) use.
//! When the current pool has a single thread the drivers never split and
//! the pipeline runs exactly like its sequential counterpart.

use std::sync::Arc;

/// Target number of pieces per worker thread when splitting.
const TASKS_PER_THREAD: usize = 4;

/// Default smallest piece (in source items) worth forking a thread for.
pub(crate) const DEFAULT_GRAIN_FLOOR: usize = 512;

/// Compute the sequential-piece size for a pipeline of `len` source items.
fn effective_grain(
    len: usize,
    floor: Option<usize>,
    cap: Option<usize>,
    default_floor: usize,
) -> usize {
    let threads = crate::current_num_threads();
    if threads <= 1 {
        return usize::MAX; // num_threads(1) ⇒ fully sequential
    }
    let floor = floor.unwrap_or(default_floor).max(1);
    let grain = len.div_ceil(threads * TASKS_PER_THREAD).max(floor);
    grain.min(cap.unwrap_or(usize::MAX)).max(1)
}

fn grain_of<P: ParallelIterator>(p: &P) -> usize {
    effective_grain(p.par_len(), p.grain_floor_hint(), p.grain_cap_hint(), p.default_grain_floor())
}

/// A splittable, exactly-sized pipeline of items.
///
/// `par_len` counts *source positions*; adapters that drop items (`filter`)
/// keep the source count, so splitting stays balanced over the input.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Number of remaining source positions.
    fn par_len(&self) -> usize;

    /// Split into the first `index` source positions and the rest.
    fn par_split_at(self, index: usize) -> (Self, Self);

    /// Sequentially evaluate this piece of the pipeline into `sink`.
    fn par_drain(self, sink: &mut dyn FnMut(Self::Item));

    /// Grain floor installed by [`ParallelIterator::with_min_len`], if any.
    #[doc(hidden)]
    fn grain_floor_hint(&self) -> Option<usize> {
        None
    }

    /// Grain cap installed by [`ParallelIterator::with_max_len`], if any.
    #[doc(hidden)]
    fn grain_cap_hint(&self) -> Option<usize> {
        None
    }

    /// Source-specific grain floor (chunk sources are already coarse).
    #[doc(hidden)]
    fn default_grain_floor(&self) -> usize {
        DEFAULT_GRAIN_FLOOR
    }

    // ----- adapters ---------------------------------------------------

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f: Arc::new(f) }
    }

    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { base: self, pred: Arc::new(pred) }
    }

    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: Copy + Send + Sync + 'a,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        T: Clone + Send + Sync + 'a,
        Self: ParallelIterator<Item = &'a T>,
    {
        Cloned { base: self }
    }

    /// Pair every item with its source index (valid before any `filter`).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// Iterate two equally-split pipelines in lockstep (shorter one wins).
    fn zip<Q: ParallelIterator>(self, other: Q) -> Zip<Self, Q> {
        Zip { a: self, b: other }
    }

    /// Never split below `min` source items per piece.
    fn with_min_len(self, min: usize) -> WithGrainHint<Self> {
        WithGrainHint { base: self, floor: Some(min.max(1)), cap: None }
    }

    /// Never run more than `max` source items in one sequential piece.
    fn with_max_len(self, max: usize) -> WithGrainHint<Self> {
        WithGrainHint { base: self, floor: None, cap: Some(max.max(1)) }
    }

    // ----- drivers ----------------------------------------------------

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let grain = grain_of(&self);
        for_each_rec(self, grain, &f);
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Fold from `identity` with an associative `op` (rayon's `reduce`).
    /// The combining tree's shape depends on the grain, so `op` must be
    /// associative for the result to be thread-count independent.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let grain = grain_of(&self);
        reduce_rec(self, grain, &identity, &op)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let grain = grain_of(&self);
        sum_rec(self, grain)
    }

    fn count(self) -> usize {
        let grain = grain_of(&self);
        count_rec(self, grain)
    }
}

fn for_each_rec<P, F>(p: P, grain: usize, f: &F)
where
    P: ParallelIterator,
    F: Fn(P::Item) + Send + Sync,
{
    let n = p.par_len();
    if n <= grain {
        p.par_drain(&mut |x| f(x));
        return;
    }
    let (a, b) = p.par_split_at(n / 2);
    crate::join(|| for_each_rec(a, grain, f), || for_each_rec(b, grain, f));
}

fn collect_rec<P: ParallelIterator>(p: P, grain: usize) -> Vec<P::Item> {
    let n = p.par_len();
    if n <= grain {
        let mut out = Vec::with_capacity(n);
        p.par_drain(&mut |x| out.push(x));
        return out;
    }
    let (a, b) = p.par_split_at(n / 2);
    let (mut va, vb) = crate::join(|| collect_rec(a, grain), || collect_rec(b, grain));
    va.extend(vb);
    va
}

fn reduce_rec<P, ID, OP>(p: P, grain: usize, identity: &ID, op: &OP) -> P::Item
where
    P: ParallelIterator,
    ID: Fn() -> P::Item + Send + Sync,
    OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
{
    let n = p.par_len();
    if n <= grain {
        let mut acc = Some(identity());
        p.par_drain(&mut |x| {
            let prev = acc.take().expect("accumulator is always present");
            acc = Some(op(prev, x));
        });
        return acc.expect("accumulator is always present");
    }
    let (a, b) = p.par_split_at(n / 2);
    let (ra, rb) =
        crate::join(|| reduce_rec(a, grain, identity, op), || reduce_rec(b, grain, identity, op));
    op(ra, rb)
}

fn sum_rec<P, S>(p: P, grain: usize) -> S
where
    P: ParallelIterator,
    S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
{
    let n = p.par_len();
    if n <= grain {
        let mut items = Vec::with_capacity(n);
        p.par_drain(&mut |x| items.push(x));
        return items.into_iter().sum();
    }
    let (a, b) = p.par_split_at(n / 2);
    let (sa, sb) = crate::join(|| sum_rec::<P, S>(a, grain), || sum_rec::<P, S>(b, grain));
    [sa, sb].into_iter().sum()
}

fn count_rec<P: ParallelIterator>(p: P, grain: usize) -> usize {
    let n = p.par_len();
    if n <= grain {
        let mut count = 0usize;
        p.par_drain(&mut |_| count += 1);
        return count;
    }
    let (a, b) = p.par_split_at(n / 2);
    let (ca, cb) = crate::join(|| count_rec(a, grain), || count_rec(b, grain));
    ca + cb
}

/// Order-preserving parallel collection (only `Vec` is needed here).
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let grain = grain_of(&p);
        collect_rec(p, grain)
    }
}

// --------------------------- adapters --------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.par_split_at(index);
        (Map { base: a, f: Arc::clone(&self.f) }, Map { base: b, f: self.f })
    }
    fn par_drain(self, sink: &mut dyn FnMut(R)) {
        let f = self.f;
        self.base.par_drain(&mut |x| sink(f(x)));
    }
    fn grain_floor_hint(&self) -> Option<usize> {
        self.base.grain_floor_hint()
    }
    fn grain_cap_hint(&self) -> Option<usize> {
        self.base.grain_cap_hint()
    }
    fn default_grain_floor(&self) -> usize {
        self.base.default_grain_floor()
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<P, F> {
    base: P,
    pred: Arc<F>,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.par_split_at(index);
        (Filter { base: a, pred: Arc::clone(&self.pred) }, Filter { base: b, pred: self.pred })
    }
    fn par_drain(self, sink: &mut dyn FnMut(P::Item)) {
        let pred = self.pred;
        self.base.par_drain(&mut |x| {
            if pred(&x) {
                sink(x);
            }
        });
    }
    fn grain_floor_hint(&self) -> Option<usize> {
        self.base.grain_floor_hint()
    }
    fn grain_cap_hint(&self) -> Option<usize> {
        self.base.grain_cap_hint()
    }
    fn default_grain_floor(&self) -> usize {
        self.base.default_grain_floor()
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    T: Copy + Send + Sync + 'a,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.par_split_at(index);
        (Copied { base: a }, Copied { base: b })
    }
    fn par_drain(self, sink: &mut dyn FnMut(T)) {
        self.base.par_drain(&mut |x| sink(*x));
    }
    fn grain_floor_hint(&self) -> Option<usize> {
        self.base.grain_floor_hint()
    }
    fn grain_cap_hint(&self) -> Option<usize> {
        self.base.grain_cap_hint()
    }
    fn default_grain_floor(&self) -> usize {
        self.base.default_grain_floor()
    }
}

/// See [`ParallelIterator::cloned`].
pub struct Cloned<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Cloned<P>
where
    T: Clone + Send + Sync + 'a,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.par_split_at(index);
        (Cloned { base: a }, Cloned { base: b })
    }
    fn par_drain(self, sink: &mut dyn FnMut(T)) {
        self.base.par_drain(&mut |x| sink(x.clone()));
    }
    fn grain_floor_hint(&self) -> Option<usize> {
        self.base.grain_floor_hint()
    }
    fn grain_cap_hint(&self) -> Option<usize> {
        self.base.grain_cap_hint()
    }
    fn default_grain_floor(&self) -> usize {
        self.base.default_grain_floor()
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.par_split_at(index);
        (
            Enumerate { base: a, offset: self.offset },
            Enumerate { base: b, offset: self.offset + index },
        )
    }
    fn par_drain(self, sink: &mut dyn FnMut((usize, P::Item))) {
        let len = self.base.par_len();
        let mut index = self.offset;
        self.base.par_drain(&mut |x| {
            sink((index, x));
            index += 1;
        });
        // Enumerating a pipeline that drops items (e.g. after `filter`)
        // would number survivors per split piece and give thread-count
        // dependent indices; real rayon rejects that statically via
        // IndexedParallelIterator.  Catch it here instead: every source
        // position must have produced exactly one item.
        debug_assert_eq!(
            index - self.offset,
            len,
            "enumerate() must come before adapters that drop items (e.g. filter)"
        );
    }
    fn grain_floor_hint(&self) -> Option<usize> {
        self.base.grain_floor_hint()
    }
    fn grain_cap_hint(&self) -> Option<usize> {
        self.base.grain_cap_hint()
    }
    fn default_grain_floor(&self) -> usize {
        self.base.default_grain_floor()
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<P, Q> {
    a: P,
    b: Q,
}

fn merged_floor(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

impl<P: ParallelIterator, Q: ParallelIterator> ParallelIterator for Zip<P, Q> {
    type Item = (P::Item, Q::Item);
    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.par_split_at(index);
        let (bl, br) = self.b.par_split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn par_drain(self, sink: &mut dyn FnMut((P::Item, Q::Item))) {
        let mut va = Vec::with_capacity(self.a.par_len());
        self.a.par_drain(&mut |x| va.push(x));
        let mut vb = Vec::with_capacity(self.b.par_len());
        self.b.par_drain(&mut |y| vb.push(y));
        for pair in va.into_iter().zip(vb) {
            sink(pair);
        }
    }
    fn grain_floor_hint(&self) -> Option<usize> {
        merged_floor(self.a.grain_floor_hint(), self.b.grain_floor_hint())
    }
    fn grain_cap_hint(&self) -> Option<usize> {
        merged_floor(self.a.grain_cap_hint(), self.b.grain_cap_hint())
    }
    fn default_grain_floor(&self) -> usize {
        self.a.default_grain_floor().min(self.b.default_grain_floor())
    }
}

/// See [`ParallelIterator::with_min_len`] / [`ParallelIterator::with_max_len`].
pub struct WithGrainHint<P> {
    base: P,
    floor: Option<usize>,
    cap: Option<usize>,
}

impl<P: ParallelIterator> ParallelIterator for WithGrainHint<P> {
    type Item = P::Item;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.par_split_at(index);
        (
            WithGrainHint { base: a, floor: self.floor, cap: self.cap },
            WithGrainHint { base: b, floor: self.floor, cap: self.cap },
        )
    }
    fn par_drain(self, sink: &mut dyn FnMut(P::Item)) {
        self.base.par_drain(sink);
    }
    fn grain_floor_hint(&self) -> Option<usize> {
        self.floor.or(self.base.grain_floor_hint())
    }
    fn grain_cap_hint(&self) -> Option<usize> {
        self.cap.or(self.base.grain_cap_hint())
    }
    fn default_grain_floor(&self) -> usize {
        self.base.default_grain_floor()
    }
}

// --------------------------- sources ---------------------------------

/// `par_iter()` over a slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceIter { slice: a }, SliceIter { slice: b })
    }
    fn par_drain(self, sink: &mut dyn FnMut(&'a T)) {
        for x in self.slice {
            sink(x);
        }
    }
}

/// `par_iter_mut()` over a slice.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn par_split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: a }, SliceIterMut { slice: b })
    }
    fn par_drain(self, sink: &mut dyn FnMut(&'a mut T)) {
        for x in self.slice {
            sink(x);
        }
    }
}

/// `into_par_iter()` over an owned vector.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.vec.len()
    }
    fn par_split_at(mut self, index: usize) -> (Self, Self) {
        let rest = self.vec.split_off(index);
        (self, VecIter { vec: rest })
    }
    fn par_drain(self, sink: &mut dyn FnMut(T)) {
        for x in self.vec {
            sink(x);
        }
    }
}

/// `into_par_iter()` over an integer range.
pub struct RangeIter<T> {
    range: std::ops::Range<T>,
}

macro_rules! impl_range_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn par_len(&self) -> usize {
                (self.range.end.saturating_sub(self.range.start)) as usize
            }
            fn par_split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }
            fn par_drain(self, sink: &mut dyn FnMut($t)) {
                for x in self.range {
                    sink(x);
                }
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }
    )*};
}

impl_range_iter!(u32, u64, usize);

// --------------------------- entry traits ----------------------------

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `par_iter()` for `&collection` (slices and everything that derefs to one).
pub trait IntoParallelRefIterator<'a> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `par_iter_mut()` for `&mut collection`.
pub trait IntoParallelRefMutIterator<'a> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn ref_and_owned_iteration() {
        let v = [1u64, 2, 3];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: u64 = (0u64..10).into_par_iter().with_min_len(2).sum();
        assert_eq!(sum, 45);
        let mut w = vec![1u64, 2, 3];
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4]);
        let owned: Vec<u64> = vec![5u64, 6, 7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(owned, vec![6, 7, 8]);
    }

    #[test]
    fn rayon_style_reduce() {
        let v = [1u64, 2, 3, 4];
        let total = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10);
        // Empty input returns the identity.
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.par_iter().map(|&x| x).reduce(|| 7, |a, b| a + b), 7);
    }

    #[test]
    fn filter_enumerate_zip_copied_match_sequential() {
        let n = 10_000usize;
        let a: Vec<u64> = (0..n as u64).map(|i| i * 7 % 1000).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| i * 13 % 1000).collect();

        let got: Vec<(usize, u64)> = a
            .par_iter()
            .zip(b.par_iter())
            .enumerate()
            .filter(|(i, (&x, &y))| (x + y + *i as u64).is_multiple_of(3))
            .map(|(i, (&x, &y))| (i, x + y))
            .collect();
        let want: Vec<(usize, u64)> = a
            .iter()
            .zip(b.iter())
            .enumerate()
            .filter(|(i, (&x, &y))| (x + y + *i as u64).is_multiple_of(3))
            .map(|(i, (&x, &y))| (i, x + y))
            .collect();
        assert_eq!(got, want);

        let copied: Vec<u64> = a.par_iter().copied().filter(|&x| x % 2 == 0).collect();
        let copied_want: Vec<u64> = a.iter().copied().filter(|&x| x % 2 == 0).collect();
        assert_eq!(copied, copied_want);
        assert_eq!(a.par_iter().count(), n);
    }

    /// Satellite test: `par_iter().map().collect()` must preserve input
    /// order *and* actually split across worker threads when the pool and
    /// the helper-thread budget allow it.
    #[test]
    fn map_collect_preserves_order_and_splits_across_threads() {
        let n = 50_000usize;
        let input: Vec<u64> = (0..n as u64).collect();
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut best_observed = 1usize;
        // The helper budget is shared process-wide, so a single attempt can
        // be starved by concurrent tests; retry a few times before failing.
        for _attempt in 0..20 {
            let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
            let out: Vec<u64> = pool.install(|| {
                input
                    .par_iter()
                    .map(|&x| {
                        seen.lock().unwrap().insert(std::thread::current().id());
                        x * 2
                    })
                    .collect()
            });
            let want: Vec<u64> = (0..n as u64).map(|x| x * 2).collect();
            assert_eq!(out, want, "parallel collect must preserve order");
            best_observed = best_observed.max(seen.lock().unwrap().len());
            if best_observed > 1 {
                break;
            }
        }
        assert!(
            best_observed > 1,
            "expected >1 worker thread through par_iter when num_threads = 4 \
             (observed {best_observed})"
        );
    }

    #[test]
    fn single_thread_pool_stays_sequential() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let out: Vec<u64> = pool.install(|| {
            (0u64..100_000)
                .into_par_iter()
                .map(|x| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    x
                })
                .collect()
        });
        assert_eq!(out.len(), 100_000);
        assert_eq!(seen.lock().unwrap().len(), 1, "num_threads(1) must not split");
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let v: Vec<u64> = (0..40_000u64).map(|i| i * 2654435761 % 100_003).collect();
        let run = |threads: usize| -> (Vec<u64>, u64) {
            let pool = crate::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                let mapped: Vec<u64> = v.par_iter().map(|&x| x ^ 0xABCD).collect();
                let total: u64 = v.par_iter().copied().sum();
                (mapped, total)
            })
        };
        assert_eq!(run(1), run(4));
    }
}
