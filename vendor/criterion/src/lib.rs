//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark framework.
//!
//! Implements the API subset used by this workspace's `benches/` targets:
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.  Instead of criterion's statistical machinery it
//! runs a short warm-up followed by a fixed number of timed samples and
//! reports the minimum and mean wall-clock time per iteration — enough to
//! compare configurations offline.  Honors `--bench`-style invocation by
//! ignoring unknown CLI arguments.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` setup output is sized; irrelevant for the stand-in.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark(label: &str, config: &Criterion, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: run until the warm-up budget is consumed.
    let warm_up_end = Instant::now() + config.warm_up_time;
    let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
    while Instant::now() < warm_up_end {
        bencher.elapsed = Duration::ZERO;
        bencher.iterations = 0;
        f(&mut bencher);
        if bencher.iterations == 0 {
            break; // the closure never called iter(); nothing to measure
        }
    }
    // Timed samples.
    let mut per_iter: Vec<f64> = Vec::with_capacity(config.sample_size);
    let deadline = Instant::now() + config.measurement_time.saturating_mul(4);
    for _ in 0..config.sample_size {
        bencher.elapsed = Duration::ZERO;
        bencher.iterations = 0;
        f(&mut bencher);
        if bencher.iterations > 0 {
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
        }
        if Instant::now() > deadline {
            break;
        }
    }
    if per_iter.is_empty() {
        println!("{label:<50} (no measurements)");
        return;
    }
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!("{label:<50} min {:>12} mean {:>12}", format_secs(min), format_secs(mean));
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Passed to the benchmark closure; accumulates timed iterations.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )*
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        let mut group = config.benchmark_group("smoke");
        group.bench_function("add", |b| {
            b.iter(|| {
                calls += 1;
                1u64 + 1
            })
        });
        group.finish();
        assert!(calls >= 2);
    }
}
