//! Offline stand-in for the `num_cpus` crate, backed by
//! `std::thread::available_parallelism`.

/// Number of logical CPUs available to this process (at least 1).
pub fn get() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn at_least_one() {
        assert!(super::get() >= 1);
    }
}
