//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! framework.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), integer-range / tuple / [`collection::vec`] / [`any`]
//! strategies, and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Instead of proptest's shrinking machinery, every test runs a configured
//! number of cases drawn from a deterministic RNG seeded by the test name,
//! and assertion failures panic with the standard `assert!` diagnostics.
//! Runs are therefore fully reproducible, at the cost of not minimizing
//! counterexamples.

use std::ops::Range;

pub mod prelude {
    pub use crate::{any, Any, ProptestConfig, Strategy};
    // Re-export the macros under the names the real prelude provides.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Test-run configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 RNG driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name so each test draws an independent but fully
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                self.start + (rng.next_u64() as i128).rem_euclid(span) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize);

/// The `any::<T>()` strategy: arbitrary values of the whole type.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The test-defining macro.  Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` sampled inputs.
///
/// When a case fails (any panic, including `prop_assert!`), the runner
/// prints the 0-based case index and the `Debug` rendering of every sampled
/// argument to stderr before re-raising the panic, so regressions in the
/// oracle suites are reproducible without shrinking support.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )*
                // Render the inputs before the body runs (the body may
                // consume them), so a failing case can be reported.
                let __case_inputs: ::std::string::String = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str("\n    ");
                        __s.push_str(stringify!($arg));
                        __s.push_str(" = ");
                        __s.push_str(&format!("{:?}", &$arg));
                    )*
                    __s
                };
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body }),
                );
                if let ::std::result::Result::Err(__payload) = __result {
                    eprintln!(
                        "proptest `{}`: case {} of {} failed with inputs:{}",
                        stringify!($name),
                        _case,
                        config.cases,
                        __case_inputs,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::collection::vec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y), "y = {}", y);
        }

        /// Vec strategies respect the length range, tuples compose.
        #[test]
        fn vec_and_tuple_compose(
            v in vec((any::<bool>(), 0u64..100), 1..30),
            probe in (0u64..10, 0u64..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            prop_assert!(v.iter().all(|&(_, x)| x < 100));
            prop_assert!(probe.0 < 10 && probe.1 < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::deterministic("t");
        let mut b = super::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    // A proptest body that always fails, used below to check that the
    // runner reports the case index and inputs.  Not annotated #[test]:
    // it is invoked (and its panic caught) by `failures_report_inputs`.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        fn always_fails(x in 5u64..6) {
            prop_assert!(x != 5, "x is always 5");
        }
    }

    #[test]
    fn failures_report_inputs() {
        // The report goes to stderr (visible in test output); here we only
        // check that the panic itself still propagates with the original
        // assertion message after the diagnostics are printed.
        let err = std::panic::catch_unwind(always_fails).expect_err("must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("x is always 5"), "unexpected panic payload: {msg}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        /// Bodies that consume their inputs still compile: the diagnostics
        /// string is rendered before the body takes ownership.
        #[test]
        fn bodies_may_consume_inputs(v in vec(0u64..10, 1..5)) {
            let owned: Vec<u64> = v;
            prop_assert!(owned.len() < 5);
        }
    }
}
