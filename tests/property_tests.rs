//! Property-based tests (proptest) over the core invariants of the paper:
//! Lemma 3.1 (prefix-min characterisation of ranks), Lemma A.2 (frontier
//! monotonicity), the vEB set semantics under batch operations, the
//! Mono-vEB staircase invariant, and agreement of every LIS/WLIS algorithm
//! with the quadratic oracle.

use plis::prelude::*;
use plis::{baselines, lis};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every LIS implementation computes the oracle dp values.
    #[test]
    fn lis_dp_values_match_oracle(values in vec(0u64..500, 0..300)) {
        let oracle = baselines::lis_dp_quadratic(&values);
        let (par, _) = lis_ranks_u64(&values);
        prop_assert_eq!(&par, &oracle);
        let (bs, _) = seq_bs(&values);
        prop_assert_eq!(&bs, &oracle);
        let (sw, _) = swgs_lis(&values);
        prop_assert_eq!(&sw, &oracle);
    }

    /// Lemma 3.1: an object has rank 1 exactly when it is a prefix-min
    /// object of the original sequence.
    #[test]
    fn rank_one_objects_are_exactly_the_prefix_min_objects(values in vec(0u64..1000, 1..300)) {
        let (ranks, _) = lis_ranks_u64(&values);
        let mut prefix_min = u64::MAX;
        for i in 0..values.len() {
            let is_prefix_min = values[i] <= prefix_min;
            prop_assert_eq!(ranks[i] == 1, is_prefix_min, "index {}", i);
            prefix_min = prefix_min.min(values[i]);
        }
    }

    /// Lemma A.2: within one frontier (equal rank), values are
    /// non-increasing along increasing index.
    #[test]
    fn frontiers_are_non_increasing(values in vec(0u64..300, 1..300)) {
        let (ranks, k) = lis_ranks_u64(&values);
        for r in 1..=k {
            let frontier: Vec<usize> = (0..values.len()).filter(|&i| ranks[i] == r).collect();
            prop_assert!(!frontier.is_empty(), "rank {} unused", r);
            prop_assert!(
                frontier.windows(2).all(|w| values[w[0]] >= values[w[1]]),
                "rank {} frontier is not non-increasing", r
            );
        }
    }

    /// The reconstructed LIS is strictly increasing, has the optimal length,
    /// and uses valid indices.
    #[test]
    fn reconstruction_is_a_valid_optimal_subsequence(values in vec(0u64..200, 0..250)) {
        let (_, k) = lis_ranks_u64(&values);
        let idx = lis_indices(&values);
        prop_assert_eq!(idx.len() as u32, k);
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(idx.windows(2).all(|w| values[w[0]] < values[w[1]]));
        prop_assert!(idx.iter().all(|&i| i < values.len()));
    }

    /// Both WLIS backends and both sequential baselines agree with the
    /// quadratic oracle.
    #[test]
    fn wlis_matches_oracle(
        values in vec(0u64..200, 0..120),
        weight_seed in 0u64..1000,
    ) {
        let weights: Vec<u64> = (0..values.len())
            .map(|i| 1 + ((weight_seed + i as u64) * 2654435761) % 50)
            .collect();
        let oracle = baselines::wlis_dp_quadratic(&values, &weights);
        prop_assert_eq!(&wlis_rangetree(&values, &weights), &oracle);
        prop_assert_eq!(&wlis_rangeveb(&values, &weights), &oracle);
        prop_assert_eq!(&seq_avl(&values, &weights), &oracle);
        prop_assert_eq!(&swgs_wlis(&values, &weights), &oracle);
    }

    /// vEB batch insert/delete behave exactly like a BTreeSet, and the
    /// parallel range query matches the oracle's range.
    #[test]
    fn veb_batch_operations_match_btreeset(
        ops in vec((any::<bool>(), vec(0u64..2048, 1..60)), 1..12),
        query in (0u64..2048, 0u64..2048),
    ) {
        let mut tree = VebTree::new(2048);
        let mut oracle = std::collections::BTreeSet::new();
        for (is_insert, keys) in &ops {
            let mut batch = keys.clone();
            batch.sort_unstable();
            batch.dedup();
            if *is_insert {
                tree.batch_insert(&batch);
                oracle.extend(batch.iter().copied());
            } else {
                tree.batch_delete(&batch);
                for k in &batch {
                    oracle.remove(k);
                }
            }
        }
        prop_assert_eq!(tree.len(), oracle.len());
        prop_assert_eq!(tree.iter_keys(), oracle.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(tree.min(), oracle.first().copied());
        prop_assert_eq!(tree.max(), oracle.last().copied());
        let (lo, hi) = (query.0.min(query.1), query.0.max(query.1));
        prop_assert_eq!(
            tree.range(lo, hi),
            oracle.range(lo..=hi).copied().collect::<Vec<_>>()
        );
    }

    /// vEB predecessor / successor agree with the BTreeSet oracle after a
    /// mix of batch operations.
    #[test]
    fn veb_pred_succ_match_btreeset(
        inserts in vec(0u64..4096, 1..200),
        deletes in vec(0u64..4096, 0..100),
        probes in vec(0u64..4096, 1..50),
    ) {
        let mut tree = VebTree::new(4096);
        let mut oracle = std::collections::BTreeSet::new();
        let mut ins = inserts.clone();
        ins.sort_unstable();
        ins.dedup();
        tree.batch_insert(&ins);
        oracle.extend(ins.iter().copied());
        let mut del = deletes.clone();
        del.sort_unstable();
        del.dedup();
        tree.batch_delete(&del);
        for d in &del {
            oracle.remove(d);
        }
        for &p in &probes {
            prop_assert_eq!(tree.contains(p), oracle.contains(&p));
            prop_assert_eq!(tree.pred(p), oracle.range(..p).next_back().copied());
            prop_assert_eq!(tree.succ(p), oracle.range(p + 1..).next().copied());
        }
    }

    /// The Mono-vEB staircase always satisfies its invariant and reproduces
    /// the brute-force "max score among smaller keys" query.
    #[test]
    fn mono_veb_staircase_invariant_and_queries(
        batches in vec(vec((0u64..256, 1u64..1000), 1..30), 1..6),
        probes in vec(0u64..257, 1..20),
    ) {
        let mut stair = MonoVeb::new(256);
        let mut all_points: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for batch in &batches {
            let mut b: Vec<ScoredPoint> =
                batch.iter().map(|&(key, score)| ScoredPoint { key, score }).collect();
            b.sort_by_key(|p| p.key);
            b.dedup_by_key(|p| p.key);
            stair.insert_staircase(&b);
            for p in &b {
                let e = all_points.entry(p.key).or_insert(0);
                *e = (*e).max(p.score);
            }
            prop_assert!(stair.is_staircase());
        }
        for &q in &probes {
            let expected = all_points
                .iter()
                .filter(|(&k, _)| k < q)
                .map(|(_, &s)| s)
                .max();
            prop_assert_eq!(stair.prefix_best(q), expected, "query {}", q);
        }
    }

    /// Coordinate compression preserves the comparison structure.
    #[test]
    fn compression_preserves_order(values in vec(any::<i64>(), 0..200)) {
        let ranks = lis::compress_to_ranks(&values);
        for i in 0..values.len() {
            for j in 0..values.len() {
                prop_assert_eq!(values[i] < values[j], ranks[i] < ranks[j]);
            }
        }
    }
}
