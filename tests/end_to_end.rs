//! Cross-crate integration tests: the full LIS / WLIS pipelines, agreement
//! between every algorithm in the workspace, and determinism across thread
//! counts.

use plis::prelude::*;
use plis::{baselines, lis, workloads};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn all_lis_algorithms_agree_on_generated_workloads() {
    let n = 30_000usize;
    let cases = [
        workloads::range_pattern(n, 8, 1),
        workloads::range_pattern(n, 500, 2),
        workloads::with_target_rank(n, 2_000, 3),
        workloads::random_permutation(n, 4),
        workloads::adversarial::increasing(n),
        workloads::adversarial::decreasing(n),
        workloads::adversarial::constant(n, 5),
        workloads::adversarial::sawtooth(n, 37),
    ];
    for (ci, input) in cases.iter().enumerate() {
        let (par_ranks, par_k) = lis_ranks_u64(input);
        let (bs_ranks, bs_k) = seq_bs(input);
        let (swgs_ranks, swgs_k) = swgs_lis(input);
        assert_eq!(par_ranks, bs_ranks, "case {ci}: parallel vs Seq-BS dp values");
        assert_eq!(swgs_ranks, bs_ranks, "case {ci}: SWGS vs Seq-BS dp values");
        assert_eq!(par_k, bs_k, "case {ci}: LIS length");
        assert_eq!(swgs_k, bs_k, "case {ci}: LIS length (SWGS)");

        // Reconstruction produces a valid subsequence of the right length.
        let indices = lis_indices(input);
        assert_eq!(indices.len() as u32, par_k, "case {ci}: reconstruction length");
        assert!(indices.windows(2).all(|w| w[0] < w[1]), "case {ci}: indices increase");
        assert!(
            indices.windows(2).all(|w| input[w[0]] < input[w[1]]),
            "case {ci}: values strictly increase"
        );
    }
}

#[test]
fn all_wlis_algorithms_agree_on_generated_workloads() {
    let n = 8_000usize;
    let cases = [
        workloads::range_pattern(n, 20, 11),
        workloads::range_pattern(n, 300, 12),
        workloads::with_target_rank(n, 500, 13),
        workloads::adversarial::sawtooth(n, 25),
    ];
    for (ci, input) in cases.iter().enumerate() {
        let weights = workloads::uniform_weights(n, 100, 100 + ci as u64);
        let rt = wlis_rangetree(input, &weights);
        let rv = wlis_rangeveb(input, &weights);
        let avl = seq_avl(input, &weights);
        let fen = baselines::wlis_fenwick(input, &weights);
        let sw = swgs_wlis(input, &weights);
        assert_eq!(rt, avl, "case {ci}: range tree vs Seq-AVL");
        assert_eq!(rv, avl, "case {ci}: Range-vEB vs Seq-AVL");
        assert_eq!(fen, avl, "case {ci}: Fenwick vs Seq-AVL");
        assert_eq!(sw, avl, "case {ci}: SWGS-W vs Seq-AVL");
    }
}

#[test]
fn lis_results_are_identical_across_thread_counts() {
    // Internal determinism: the parallel algorithm computes exactly the same
    // dp values no matter how many workers execute it.
    let input = workloads::with_target_rank(200_000, 3_000, 77);
    let weights = workloads::uniform_weights(20_000, 50, 78);
    let reference_ranks = lis_ranks_u64(&input).0;
    let reference_dp = wlis_rangetree(&input[..20_000], &weights);
    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let (ranks, dp) =
            pool.install(|| (lis_ranks_u64(&input).0, wlis_rangetree(&input[..20_000], &weights)));
        assert_eq!(ranks, reference_ranks, "{threads} threads: LIS ranks changed");
        assert_eq!(dp, reference_dp, "{threads} threads: WLIS dp changed");
    }
}

#[test]
fn generic_comparison_based_api_handles_custom_types() {
    // A custom Ord type: versions compared lexicographically.
    #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Debug)]
    struct Version(u16, u16, u16);
    let mut state = 9u64;
    let versions: Vec<Version> = (0..4000)
        .map(|_| {
            Version(
                (xorshift(&mut state) % 5) as u16,
                (xorshift(&mut state) % 20) as u16,
                (xorshift(&mut state) % 50) as u16,
            )
        })
        .collect();
    let (ranks, k) = lis::lis_ranks(&versions);
    let (bs_ranks, bs_k) = seq_bs(&versions);
    assert_eq!(ranks, bs_ranks);
    assert_eq!(k, bs_k);
    // And the weighted variant over the same type.
    let weights = vec![2u64; versions.len()];
    let dp = wlis_rangetree(&versions, &weights);
    assert_eq!(*dp.iter().max().unwrap(), 2 * k as u64);
}

#[test]
fn veb_tree_supports_the_full_ordered_set_workflow() {
    // End-to-end ordered-set scenario across the public API: bulk build,
    // batched churn, range reporting, and iterator export.
    let universe = 1u64 << 18;
    let initial: Vec<u64> = (0..universe).step_by(7).collect();
    let mut set = VebTree::from_sorted(universe, &initial);
    assert_eq!(set.len(), initial.len());

    let additions: Vec<u64> = (0..universe).step_by(11).filter(|k| k % 7 != 0).collect();
    set.batch_insert(&additions);
    let removals: Vec<u64> = (0..universe).step_by(21).collect();
    set.batch_delete(&removals);

    let mut oracle: std::collections::BTreeSet<u64> = initial.iter().copied().collect();
    oracle.extend(additions.iter().copied());
    for r in &removals {
        oracle.remove(r);
    }
    assert_eq!(set.iter_keys(), oracle.iter().copied().collect::<Vec<_>>());
    assert_eq!(set.range(1000, 5000), oracle.range(1000..=5000).copied().collect::<Vec<_>>());
    assert_eq!(set.min(), oracle.first().copied());
    assert_eq!(set.max(), oracle.last().copied());
}

#[test]
fn mono_veb_staircase_integrates_with_wlis_scores() {
    // Feed the dp values produced by WLIS into a Mono-vEB staircase and
    // check that prefix_best reproduces the dominant-max semantics used by
    // the Range-vEB structure.
    let n = 3_000usize;
    let input = workloads::range_pattern(n, 40, 5);
    let weights = workloads::uniform_weights(n, 9, 6);
    let dp = wlis_rangetree(&input, &weights);

    let mut stair = MonoVeb::new(n as u64);
    // Insert points in index order with their dp values as scores.
    let points: Vec<ScoredPoint> =
        (0..n).map(|i| ScoredPoint { key: i as u64, score: dp[i] }).collect();
    stair.insert_staircase(&points);
    assert!(stair.is_staircase());
    // prefix_best(q) must equal the max dp among indices < q.
    let mut running_max = 0u64;
    for (q, &dp_q) in dp.iter().enumerate() {
        let expected = if q == 0 { None } else { Some(running_max) };
        assert_eq!(stair.prefix_best(q as u64), expected, "prefix {q}");
        running_max = running_max.max(dp_q);
    }
}

#[test]
fn workload_targets_are_respected_end_to_end() {
    // The generator promises approximate LIS lengths; verify through the
    // real algorithm so the benchmark sweeps are meaningful.
    let n = 100_000usize;
    for &target in &[10u64, 100, 1_000] {
        let input = workloads::with_target_rank(n, target, 2024);
        let k = lis_ranks_u64(&input).1 as f64;
        assert!(
            k >= target as f64 * 0.5 && k <= target as f64 * 2.0,
            "target {target}, measured {k}"
        );
    }
}

#[test]
fn streaming_engine_agrees_with_every_offline_algorithm() {
    // The full pipeline check for the streaming subsystem: one engine
    // session per workload, fed in batches; the final state must agree with
    // the offline parallel algorithm AND the sequential baseline on the
    // concatenated stream.
    let n = 20_000usize;
    let cases = [
        ("range", workloads::range_pattern(n, 300, 11)),
        ("line", workloads::line_pattern(n, 1, 2_000, 12)),
        ("perm", workloads::random_permutation(n, 13)),
    ];
    let universe = cases.iter().flat_map(|(_, v)| v.iter().copied()).max().unwrap() + 1;
    let mut engine =
        Engine::new(EngineConfig { universe, backend: Backend::Auto, ..EngineConfig::default() });
    let mut state = 0xA5A5_5A5A_1234_4321u64;
    let mut cursors = [0usize; 3];
    while cursors.iter().zip(&cases).any(|(&c, (_, v))| c < v.len()) {
        let mut tick = Tick::new().auto_create();
        for (i, (name, values)) in cases.iter().enumerate() {
            if cursors[i] < values.len() {
                let take =
                    ((xorshift(&mut state) % 900) as usize + 1).min(values.len() - cursors[i]);
                tick.push(*name, values[cursors[i]..cursors[i] + take].to_vec());
                cursors[i] += take;
            }
        }
        assert!(engine.execute(&tick).fully_applied());
    }
    for (name, values) in &cases {
        let session = engine.session(name).expect("session exists");
        let (par_ranks, par_k) = lis_ranks_u64(values);
        let (bs_ranks, bs_k) = seq_bs(values);
        assert_eq!(session.lis_length(), par_k, "{name} vs parallel");
        assert_eq!(session.lis_length(), bs_k, "{name} vs Seq-BS");
        assert_eq!(session.ranks(), par_ranks.as_slice(), "{name} ranks vs parallel");
        assert_eq!(session.ranks(), bs_ranks.as_slice(), "{name} ranks vs Seq-BS");
        // Reconstruction through the umbrella prelude still works on the
        // streamed ranks.
        let lis = session.reconstruct_lis();
        assert_eq!(lis.len() as u32, par_k, "{name} reconstruction length");
        assert!(lis.windows(2).all(|w| values[w[0]] < values[w[1]]));
    }
    engine.check_invariants();
}
