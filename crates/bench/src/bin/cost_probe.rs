//! Micro-probe for the ingest cost model: prints measured per-element
//! costs of the sequential and parallel-merge ingest paths, and of the
//! two dominant-max stores, at a grid of (batch, tails) points.
//!
//! This is the measurement tool behind `plis_engine::cost` — run it on a
//! new machine to sanity-check the calibrated constants (`PLIS_COST_*`
//! env overrides) against reality.  Human-readable output on stderr, one
//! JSON line per cell on stdout (`bench: "cost-probe"`).

use plis_bench::{json_line, time_min, with_bench_threads};
use plis_engine::{Backend, StreamingLis, WeightedStreamingLis};
use plis_lis::DominantMaxKind;
use std::time::Instant;

/// Deterministic value stream in a universe, mildly increasing bias so
/// sessions build a non-trivial tails array (k grows with n).
fn stream(n: usize, universe: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let jitter = (state >> 33) % (universe / 4).max(1);
            let ramp = (i as u64 * universe / (2 * n as u64)).min(universe - 1);
            (ramp + jitter).min(universe - 1)
        })
        .collect()
}

/// ns per element of one full-session replay at a fixed batch size.
fn ns_per_elem(values: &[u64], universe: u64, batch: usize, threshold: usize) -> f64 {
    let (secs, _) = time_min(|| {
        let mut s = StreamingLis::new(universe, Backend::Veb).with_par_threshold(threshold);
        for chunk in values.chunks(batch) {
            s.ingest(chunk);
        }
        s.lis_length()
    });
    secs * 1e9 / values.len() as f64
}

fn weighted_ns_per_elem(
    values: &[u64],
    universe: u64,
    batch: usize,
    threshold: usize,
    kind: DominantMaxKind,
) -> f64 {
    let weights: Vec<u64> = values.iter().map(|v| 1 + v % 100).collect();
    let pairs: Vec<(u64, u64)> = values.iter().copied().zip(weights).collect();
    let (secs, _) = time_min(|| {
        let mut s = WeightedStreamingLis::new(universe, kind).with_par_threshold(threshold);
        for chunk in pairs.chunks(batch) {
            s.ingest(chunk);
        }
        s.best_score()
    });
    secs * 1e9 / values.len() as f64
}

fn main() {
    let n: usize =
        std::env::var("PLIS_BENCH_N").ok().and_then(|s| s.parse().ok()).unwrap_or(65_536);
    let universe = 1u64 << 20;
    let values = stream(n, universe, 0xC0FFEE);
    let threads = with_bench_threads(rayon::current_num_threads);

    // Raw fork cost: time a no-op rayon::join, the unit the cost model
    // charges per spawned helper thread.
    let t0 = Instant::now();
    let reps = 200;
    for _ in 0..reps {
        rayon::join(|| std::hint::black_box(1u64), || std::hint::black_box(2u64));
    }
    let join_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
    eprintln!("threads = {threads}, no-op join = {join_ns:.0} ns");

    for &batch in &[64usize, 256, 1024, 2048, 8192] {
        let seq = with_bench_threads(|| ns_per_elem(&values, universe, batch, usize::MAX));
        let par = with_bench_threads(|| ns_per_elem(&values, universe, batch, 1));
        eprintln!("unweighted batch {batch:>5}: seq {seq:>8.1} ns/elem   par {par:>8.1} ns/elem");
        println!(
            "{}",
            json_line(&[
                ("bench", "cost-probe".into()),
                ("kind", "unweighted".into()),
                ("batch", batch.into()),
                ("threads", threads.into()),
                ("seq_ns_per_elem", seq.into()),
                ("par_ns_per_elem", par.into()),
            ])
        );
    }

    let wn = n / 4;
    let wvalues = &values[..wn];
    for &batch in &[64usize, 256, 1024, 2048] {
        let seq = with_bench_threads(|| {
            weighted_ns_per_elem(wvalues, universe, batch, usize::MAX, DominantMaxKind::RangeTree)
        });
        let tree = with_bench_threads(|| {
            weighted_ns_per_elem(wvalues, universe, batch, 1, DominantMaxKind::RangeTree)
        });
        let veb = with_bench_threads(|| {
            weighted_ns_per_elem(wvalues, universe, batch, 1, DominantMaxKind::RangeVeb)
        });
        eprintln!(
            "weighted   batch {batch:>5}: seq {seq:>8.1} ns/elem   par/tree {tree:>8.1}   \
             par/veb {veb:>8.1}"
        );
        println!(
            "{}",
            json_line(&[
                ("bench", "cost-probe".into()),
                ("kind", "weighted".into()),
                ("batch", batch.into()),
                ("threads", threads.into()),
                ("seq_ns_per_elem", seq.into()),
                ("par_tree_ns_per_elem", tree.into()),
                ("par_veb_ns_per_elem", veb.into()),
            ])
        );
    }
}
