//! Figure 7(d): weighted LIS running time vs. LIS length, line pattern.
//!
//! Paper setting: n = 10⁸, k from 1 to 3000, comparing Seq-AVL, SWGS and
//! Ours-W (the range-tree WLIS of Algorithm 2) on 96 cores, with uniformly
//! random weights.  Here n defaults to `PLIS_BENCH_N / 10` (the WLIS
//! structures are a log-factor heavier than the LIS ones, mirroring the
//! paper's smaller WLIS scale).
//!
//! Run with: `cargo run --release -p plis-bench --bin fig7d`

use plis_baselines::{seq_avl, swgs_wlis};
use plis_bench::{bench_n, print_header, print_row, rank_sweep, time_min};
use plis_lis::{lis_ranks_u64, wlis_rangetree};
use plis_workloads::{uniform_weights, with_target_rank};

fn main() {
    let n = (bench_n() / 10).max(10_000);
    let cores = num_cpus::get();
    println!(
        "# Figure 7(d): weighted LIS, line pattern, n = {n}, parallel runs on {cores} threads"
    );
    print_header("k (measured)", &["Seq-AVL", "SWGS-W", "Ours-W"]);

    let weights = uniform_weights(n, 1_000, 0xD00D);
    for &target in &rank_sweep(3_000, 1) {
        let input = with_target_rank(n, target, 0xF1607D + target);
        let k = lis_ranks_u64(&input).1;
        let (t_avl, dp_avl) = time_min(|| seq_avl(&input, &weights));
        let (t_swgs, dp_swgs) = time_min(|| swgs_wlis(&input, &weights));
        let (t_ours, dp_ours) = time_min(|| wlis_rangetree(&input, &weights));
        assert_eq!(dp_avl, dp_ours, "WLIS dp values must agree (ours vs Seq-AVL)");
        assert_eq!(dp_swgs, dp_ours, "WLIS dp values must agree (ours vs SWGS)");
        print_row(k as u64, &[Some(t_avl), Some(t_swgs), Some(t_ours)]);
    }
}
