//! Figure 7(a): LIS running time vs. LIS length, line pattern.
//!
//! Paper setting: n = 10⁸, k from 1 to 10⁷, comparing Seq-BS, SWGS,
//! Ours (1 core) and Ours (96 cores).  Here n defaults to `PLIS_BENCH_N`
//! (1,000,000) and the machine's full core count is used for the parallel
//! runs; SWGS is only run for k ≤ 10⁴, exactly as in the paper ("we only
//! test SWGS on ranks up to 10⁴ because it costs too much time").
//!
//! Run with: `cargo run --release -p plis-bench --bin fig7a`

use plis_baselines::{seq_bs_length, swgs_lis};
use plis_bench::{bench_n, on_threads, print_header, print_row, rank_sweep, time_min};
use plis_lis::lis_ranks_u64;
use plis_workloads::with_target_rank;

fn main() {
    let n = bench_n();
    let cores = num_cpus::get();
    println!("# Figure 7(a): LIS, line pattern, n = {n}, parallel runs on {cores} threads");
    println!("# columns: measured LIS length, then running time in seconds per algorithm");
    print_header("k (measured)", &["Seq-BS", "SWGS", "Ours (seq)", "Ours (par)"]);

    // Sweep target ranks up to n/10 (the line generator saturates near n).
    let targets = rank_sweep((n as u64 / 10).max(1), 1);
    for &target in &targets {
        let input = with_target_rank(n, target, 0xF1607A + target);
        let (t_seq_bs, k) = time_min(|| seq_bs_length(&input));
        let t_swgs = if k <= 10_000 { Some(time_min(|| swgs_lis(&input).1).0) } else { None };
        let (t_ours_seq, _) = time_min(|| on_threads(1, || lis_ranks_u64(&input).1));
        let (t_ours_par, k_par) = time_min(|| lis_ranks_u64(&input).1);
        assert_eq!(k, k_par, "parallel and sequential LIS lengths must agree");
        print_row(k as u64, &[Some(t_seq_bs), t_swgs, Some(t_ours_seq), Some(t_ours_par)]);
    }
}
