//! Serving-latency sweep: a closed-loop load generator driving a
//! `plis-server` over real loopback sockets with thousands of concurrent
//! sessions, measuring end-to-end op latency (client `send` to decoded
//! outcome) and served throughput.
//!
//! Each cell starts an in-process [`ServerHandle`] on an ephemeral
//! loopback port, builds a mixed fleet (unweighted sessions with
//! interleaved reads per `PLIS_BENCH_SERVE_MIX`, plus one weighted
//! session in four), and partitions the sessions across
//! `PLIS_BENCH_SERVE_CONNS` connection threads.  Every session is its
//! own closed loop — exactly one op in flight at a time — so a cell with
//! 4096 sessions keeps 4096 concurrent ops pipelined across the
//! connections, which is what actually exercises the server's time/size
//! batch trigger.  Every write outcome is asserted `fully_applied` and
//! every read outcome error-free: the sweep cannot silently drop traffic.
//!
//! Emits one schema-4 `"bench": "serving"` JSON line per cell (sessions ×
//! batch-size-trigger sweep) with `elems_per_sec`, `queries_per_sec`,
//! `op_p50_us` and `op_p99_us` from a merged latency histogram
//! (`plis-telemetry`'s [`AtomicHistogram`]).
//!
//! Knobs: `PLIS_BENCH_SERVE_SESSIONS` (comma list, default `64,1024`),
//! `PLIS_BENCH_SERVE_OPS` (comma list of batch-size triggers, default
//! `16,256`), `PLIS_BENCH_SERVE_WAIT_US` (time trigger, default 200),
//! `PLIS_BENCH_SERVE_CONNS` (connections, default 8),
//! `PLIS_BENCH_SERVE_N` (elements per session, default 2000),
//! `PLIS_BENCH_SERVE_BATCH` (mean write-batch size, default 64),
//! `PLIS_BENCH_SERVE_MIX` (read fraction, default 0.25), and
//! `PLIS_BENCH_THREADS` (pins the server's execution pool; recorded as
//! `threads`).  Setting `PLIS_BENCH_SERVE_ADDR` skips the in-process
//! server and drives an already-running one at that address instead (one
//! cell, first entry of each sweep list) — the CI smoke uses this to
//! drive the standalone `plis-server` binary across processes.

use plis_bench::{bench_threads, effective_threads, env_usize_list, json_line};
use plis_engine::{EngineConfig, Query, ReadTick, SessionKind, Tick};
use plis_server::{Client, Response, ServerConfig, ServerHandle};
use plis_telemetry::AtomicHistogram;
use plis_workloads::streaming::{mixed_session_fleet, weighted_session_fleet, ReadWriteOp};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One per-session request frame of the generated schedule.
enum Request {
    Write(Tick),
    Read(ReadTick),
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Build the fleet schedule: one unweighted mixed-read/write session
/// list with a weighted session folded in per four, all under one
/// universe.  Returns per-session request lists plus the universe bound
/// and the (elems, queries) totals.
fn build_schedule(
    sessions: usize,
    n_per_session: usize,
    mean_batch: usize,
    mix: f64,
    seed: u64,
) -> (Vec<Vec<Request>>, u64, usize, usize) {
    let weighted_sessions = sessions / 4;
    let unweighted_sessions = sessions - weighted_sessions;
    let (mixed, u1) =
        mixed_session_fleet(unweighted_sessions, n_per_session, mean_batch, mix, 4, seed);
    let (weighted, u2) =
        weighted_session_fleet(weighted_sessions, n_per_session, mean_batch, 1_000, seed ^ 0x5EED);
    let universe = u1.max(u2).max(1);

    let mut total_elems = 0usize;
    let mut total_queries = 0usize;
    let mut schedule = Vec::with_capacity(sessions);
    for (name, ops) in &mixed {
        let mut requests =
            vec![Request::Write(Tick::new().create(name.as_str(), SessionKind::Unweighted))];
        for op in ops {
            requests.push(match op {
                ReadWriteOp::Write(batch) => {
                    total_elems += batch.len();
                    Request::Write(Tick::new().append(name.as_str(), batch.clone()))
                }
                ReadWriteOp::Read(specs) => {
                    total_queries += specs.len();
                    Request::Read(ReadTick::new().query(
                        name.as_str(),
                        specs.iter().cloned().map(Query::from).collect::<Vec<_>>(),
                    ))
                }
            });
        }
        schedule.push(requests);
    }
    for (name, batches) in &weighted {
        let mut requests =
            vec![Request::Write(Tick::new().create(name.as_str(), SessionKind::Weighted))];
        for batch in batches {
            total_elems += batch.len();
            requests
                .push(Request::Write(Tick::new().append_weighted(name.as_str(), batch.clone())));
        }
        schedule.push(requests);
    }
    (schedule, universe, total_elems, total_queries)
}

/// Drive `schedule` against the server at `addr`: `conns` connection
/// threads, sessions partitioned round-robin, one op in flight per
/// session.  Returns wall seconds and the merged latency histogram.
fn drive(
    addr: SocketAddr,
    schedule: &[Vec<Request>],
    conns: usize,
) -> (f64, plis_telemetry::HistogramSnapshot) {
    let hist = AtomicHistogram::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for conn_idx in 0..conns {
            let mine: Vec<&Vec<Request>> = schedule.iter().skip(conn_idx).step_by(conns).collect();
            let hist = &hist;
            scope.spawn(move || {
                if mine.is_empty() {
                    return;
                }
                let mut client = Client::connect(addr).expect("connect to server");
                let mut cursors = vec![0usize; mine.len()];
                // request id -> (session slot, send instant): one entry
                // per session, since each session is its own closed loop.
                let mut in_flight: HashMap<u64, (usize, Instant)> =
                    HashMap::with_capacity(mine.len());
                let send = |client: &mut Client,
                            in_flight: &mut HashMap<u64, (usize, Instant)>,
                            slot: usize,
                            request: &Request| {
                    let sent = Instant::now();
                    let id = match request {
                        Request::Write(tick) => client.send_tick(tick).expect("send tick"),
                        Request::Read(tick) => client.send_read(tick).expect("send read"),
                    };
                    in_flight.insert(id, (slot, sent));
                };
                for (slot, requests) in mine.iter().enumerate() {
                    if let Some(first) = requests.first() {
                        cursors[slot] = 1;
                        send(&mut client, &mut in_flight, slot, first);
                    }
                }
                while !in_flight.is_empty() {
                    let response = client.recv().expect("serving response");
                    let (slot, sent) = in_flight
                        .remove(&response.request_id())
                        .expect("response to an in-flight request");
                    hist.record(sent.elapsed().as_micros() as u64);
                    match response {
                        Response::Tick { outcome, .. } => {
                            assert!(outcome.fully_applied(), "server dropped a write op");
                        }
                        Response::Read { outcome, .. } => {
                            assert!(
                                outcome.outcomes.iter().all(|(_, r)| r.is_ok()),
                                "server dropped a read op"
                            );
                        }
                    }
                    let next = cursors[slot];
                    if let Some(request) = mine[slot].get(next) {
                        cursors[slot] = next + 1;
                        send(&mut client, &mut in_flight, slot, request);
                    }
                }
            });
        }
    });
    (start.elapsed().as_secs_f64(), hist.snapshot())
}

fn main() {
    let session_counts = env_usize_list("PLIS_BENCH_SERVE_SESSIONS", &[64, 1024]);
    let op_triggers = env_usize_list("PLIS_BENCH_SERVE_OPS", &[16, 256]);
    let wait_us = env_usize("PLIS_BENCH_SERVE_WAIT_US", 200);
    let conns = env_usize("PLIS_BENCH_SERVE_CONNS", 8).max(1);
    let n_per_session = env_usize("PLIS_BENCH_SERVE_N", 2_000);
    let mean_batch = env_usize("PLIS_BENCH_SERVE_BATCH", 64);
    let mix = env_f64("PLIS_BENCH_SERVE_MIX", 0.25);
    let threads = effective_threads();
    let external: Option<SocketAddr> = std::env::var("PLIS_BENCH_SERVE_ADDR")
        .ok()
        .map(|s| s.parse().expect("PLIS_BENCH_SERVE_ADDR must be host:port"));

    // Against an external server the sweep axes belong to that server's
    // own environment; run exactly one cell against it.
    let cells: Vec<(usize, usize)> = match external {
        Some(_) => vec![(session_counts[0], op_triggers[0])],
        None => {
            session_counts.iter().flat_map(|&s| op_triggers.iter().map(move |&t| (s, t))).collect()
        }
    };

    for (sessions, batch_ops) in cells {
        let (schedule, universe, total_elems, total_queries) =
            build_schedule(sessions, n_per_session, mean_batch, mix, 0x5E81);
        let total_ops: usize = schedule.iter().map(Vec::len).sum();
        eprintln!(
            "serving: sessions={sessions} batch_ops={batch_ops} conns={conns} \
             ops={total_ops} elems={total_elems} queries={total_queries}"
        );

        let server = match external {
            Some(_) => None,
            None => Some(
                ServerHandle::start(ServerConfig {
                    engine: EngineConfig { universe, ..EngineConfig::default() },
                    batch_max_ops: batch_ops,
                    batch_max_wait: Duration::from_micros(wait_us as u64),
                    worker_threads: bench_threads(),
                    ..ServerConfig::default()
                })
                .expect("bind loopback server"),
            ),
        };
        let addr = external.unwrap_or_else(|| server.as_ref().expect("in-process server").addr());

        let (secs, latency) = drive(addr, &schedule, conns);

        if let Some(server) = server {
            // Graceful shutdown each cell; the drained snapshot must hold
            // exactly the fleet (nothing lost, nothing invented).
            let report = server.shutdown();
            assert_eq!(
                report.snapshot.session_count(),
                sessions,
                "drained snapshot must hold the whole fleet"
            );
        }

        let fields = vec![
            ("bench", "serving".into()),
            ("schema", 4u64.into()),
            ("sessions", sessions.into()),
            ("connections", conns.into()),
            ("batch_ops", batch_ops.into()),
            ("batch_wait_us", wait_us.into()),
            ("read_mix", mix.into()),
            ("n_per_session", n_per_session.into()),
            ("mean_batch", mean_batch.into()),
            ("ops", total_ops.into()),
            ("total_elems", total_elems.into()),
            ("total_queries", total_queries.into()),
            ("secs", secs.into()),
            ("elems_per_sec", (total_elems as f64 / secs.max(1e-12)).into()),
            ("queries_per_sec", (total_queries as f64 / secs.max(1e-12)).into()),
            ("ops_per_sec", (total_ops as f64 / secs.max(1e-12)).into()),
            ("op_p50_us", latency.p50().into()),
            ("op_p99_us", latency.p99().into()),
            ("op_max_us", latency.max.into()),
            ("threads", threads.into()),
        ];
        println!("{}", json_line(&fields));
    }
}
