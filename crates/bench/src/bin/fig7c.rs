//! Figure 7(c): LIS running time vs. LIS length, range pattern.
//!
//! Paper setting: n = 10⁹, k′ from 1 to 6·10⁴, comparing Seq-BS,
//! Ours (1 core) and Ours (96 cores).  Here n defaults to
//! `10 × PLIS_BENCH_N` and k′ sweeps up to 6·10⁴ (capped at n).
//!
//! Run with: `cargo run --release -p plis-bench --bin fig7c`

use plis_baselines::seq_bs_length;
use plis_bench::{bench_n, on_threads, print_header, print_row, rank_sweep, time_min};
use plis_lis::lis_ranks_u64;
use plis_workloads::range_pattern;

fn main() {
    let n = bench_n() * 10;
    let cores = num_cpus::get();
    println!("# Figure 7(c): LIS, range pattern, n = {n}, parallel runs on {cores} threads");
    print_header("k (measured)", &["Seq-BS", "Ours (seq)", "Ours (par)"]);

    let max_kprime = 60_000u64.min(n as u64);
    for &kprime in &rank_sweep(max_kprime, 1) {
        let input = range_pattern(n, kprime, 0xF1607C + kprime);
        let (t_seq_bs, k) = time_min(|| seq_bs_length(&input));
        let (t_ours_seq, _) = time_min(|| on_threads(1, || lis_ranks_u64(&input).1));
        let (t_ours_par, k_par) = time_min(|| lis_ranks_u64(&input).1);
        assert_eq!(k, k_par);
        print_row(k as u64, &[Some(t_seq_bs), Some(t_ours_seq), Some(t_ours_par)]);
    }
}
