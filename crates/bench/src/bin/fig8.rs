//! Figure 8(a)/(b): self-relative speedup of the parallel LIS algorithm.
//!
//! Paper setting: n = 10⁹, k ∈ {10², 10⁴}, thread counts
//! 1, 2, 4, 8, 24, 48, 96, 96h, line and range patterns, with the Seq-BS
//! time shown as a reference line.  Here n defaults to `10 × PLIS_BENCH_N`
//! and the thread counts are powers of two up to the machine's core count.
//!
//! Run with: `cargo run --release -p plis-bench --bin fig8`

use plis_baselines::seq_bs_length;
use plis_bench::{bench_n, on_threads, time_min};
use plis_lis::lis_ranks_u64;
use plis_workloads::{range_pattern, with_target_rank};

fn thread_counts() -> Vec<usize> {
    let max = num_cpus::get();
    let mut out = vec![1usize];
    while *out.last().unwrap() * 2 <= max {
        out.push(out.last().unwrap() * 2);
    }
    if *out.last().unwrap() != max {
        out.push(max);
    }
    out
}

fn panel(label: &str, target_k: u64, n: usize) {
    println!("# Figure 8 panel: {label}, target k = {target_k}, n = {n}");
    let line = with_target_rank(n, target_k, 0xF160_8000 + target_k);
    let range = range_pattern(n, target_k, 0xF160_8001 + target_k);
    let (t_bs_line, k_line) = time_min(|| seq_bs_length(&line));
    let (t_bs_range, k_range) = time_min(|| seq_bs_length(&range));
    println!("# measured k: line = {k_line}, range = {k_range}");
    println!("# Seq-BS reference: line = {t_bs_line:.4}s, range = {t_bs_range:.4}s");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "threads", "Ours-Line (s)", "Ours-Range (s)", "su-Line", "su-Range"
    );
    let mut base_line = 0.0;
    let mut base_range = 0.0;
    for &threads in &thread_counts() {
        let (t_line, _) = time_min(|| on_threads(threads, || lis_ranks_u64(&line).1));
        let (t_range, _) = time_min(|| on_threads(threads, || lis_ranks_u64(&range).1));
        if threads == 1 {
            base_line = t_line;
            base_range = t_range;
        }
        println!(
            "{:>8} {:>14.4} {:>14.4} {:>12.2} {:>12.2}",
            threads,
            t_line,
            t_range,
            base_line / t_line,
            base_range / t_range
        );
    }
    println!();
}

fn main() {
    let n = bench_n() * 10;
    panel("(a) k = 10^2", 100, n);
    panel("(b) k = 10^4", 10_000, n);
}
