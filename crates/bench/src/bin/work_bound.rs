//! Experiment E7: empirical validation of the Theorem 3.2 work bound.
//!
//! The total number of tournament-tree nodes visited by Algorithm 1 is
//! bounded by `O(n log k)` (and by `2n − 1` per round).  This binary sweeps
//! the target LIS length at a fixed `n`, reports the measured visit counts,
//! and shows the ratio `visited / (n · log2(k + 1))`, which Theorem 3.2
//! predicts stays bounded by a constant.
//!
//! Run with: `cargo run --release -p plis-bench --bin work_bound`

use plis_bench::{bench_n, print_header, rank_sweep};
use plis_lis::lis_ranks_u64_with_stats;
use plis_workloads::with_target_rank;

fn main() {
    let n = bench_n();
    println!("# Work-bound validation (Theorem 3.2): nodes visited vs n·log2(k+1), n = {n}");
    print_header("k (measured)", &["visited", "n*log2(k+1)", "ratio"]);
    for &target in &rank_sweep((n as u64 / 10).max(1), 1) {
        let input = with_target_rank(n, target, 0xEB0B + target);
        let (_, k, stats) = lis_ranks_u64_with_stats(&input);
        let bound = n as f64 * ((k as f64) + 1.0).log2();
        let ratio = stats.nodes_visited as f64 / bound;
        println!("{:>12} {:>14} {:>14.0} {:>14.3}", k, stats.nodes_visited, bound, ratio);
    }
}
