//! Experiment E8: parallel vEB batch operations versus repeated sequential
//! operations (Theorems 5.1 / 5.2 / C.1).
//!
//! Sweeps the batch size `m` on a fixed universe and compares
//! `BatchInsert` / `BatchDelete` / `Range` against performing the same work
//! with `m` single-point operations (or an iterated `Succ` walk for the
//! range query).
//!
//! Run with: `cargo run --release -p plis-bench --bin veb_scaling`

use plis_bench::{print_header, time_min};
use plis_veb::VebTree;
use plis_workloads::random_permutation;

fn main() {
    let universe: u64 = 1 << 24;
    let resident: Vec<u64> = {
        let mut v = random_permutation(1 << 20, 7);
        v.iter_mut().for_each(|x| *x *= 13);
        v.sort_unstable();
        v.dedup();
        v
    };
    println!(
        "# Parallel vEB batch operations, universe = 2^24, resident keys = {}",
        resident.len()
    );
    print_header(
        "batch m",
        &["batch-ins", "point-ins", "batch-del", "point-del", "range", "succ-walk"],
    );

    for &m in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let batch: Vec<u64> = {
            let mut v = random_permutation(m, 99 + m as u64);
            v.iter_mut().for_each(|x| *x = *x * 16 + 1);
            v.sort_unstable();
            v.dedup();
            v
        };
        // Batch insertion vs point insertions.
        let (t_bi, _) = time_min(|| {
            let mut t = VebTree::from_sorted(universe, &resident);
            t.batch_insert(&batch);
            t.len()
        });
        let (t_pi, _) = time_min(|| {
            let mut t = VebTree::from_sorted(universe, &resident);
            for &k in &batch {
                t.insert(k);
            }
            t.len()
        });
        // Batch deletion vs point deletions (delete the batch just added).
        let mut full = VebTree::from_sorted(universe, &resident);
        full.batch_insert(&batch);
        let (t_bd, _) = time_min(|| {
            let mut t = full.clone();
            t.batch_delete(&batch);
            t.len()
        });
        let (t_pd, _) = time_min(|| {
            let mut t = full.clone();
            for &k in &batch {
                t.delete(k);
            }
            t.len()
        });
        // Parallel range query vs an iterated successor walk.
        let lo = universe / 4;
        let hi = universe / 2;
        let (t_range, reported) = time_min(|| full.range(lo, hi).len());
        let (t_walk, walked) = time_min(|| {
            let mut count = 0usize;
            let mut cur = if full.contains(lo) { Some(lo) } else { full.succ(lo) };
            while let Some(c) = cur {
                if c > hi {
                    break;
                }
                count += 1;
                cur = full.succ(c);
            }
            count
        });
        assert_eq!(reported, walked);
        println!(
            "{:>12} {:>14.4} {:>14.4} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            batch.len(),
            t_bi,
            t_pi,
            t_bd,
            t_pd,
            t_range,
            t_walk
        );
    }
}
