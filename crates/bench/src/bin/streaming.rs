//! Streaming-engine throughput sweep: ingest rate (elements/second) of
//! [`plis_engine::Engine`] as a function of mean batch size and session
//! count, over a heterogeneous fleet of workload streams — plus a
//! *weighted* sweep driving the engine's weighted session kind (Algorithm
//! 2 served as live traffic) over both dominant-max stores, and a *query*
//! sweep driving mixed read/write ticks over a read/write-mixed fleet at
//! every requested read fraction.
//!
//! All three sweeps drive the engine through its command plane: schedules
//! are pre-built once as [`Tick`]s (explicit `CreateSession` ops up
//! front, then one `Tick` per round) and the timed loop replays them
//! borrowed through [`Engine::execute`] — no per-repeat deep copies, and
//! every op's typed outcome is checked (`fully_applied`) so a sweep can
//! never silently drop traffic.
//!
//! Emits one JSON object per sweep cell on stdout (one line per cell, see
//! `plis_bench::json_line`), so results can be appended to `BENCH_*.json`
//! perf-trajectory files.  Human-readable context goes to stderr.
//!
//! Knobs (see `DESIGN.md`): `PLIS_BENCH_N` (elements per session, default
//! 100,000), `PLIS_BENCH_REPEATS`, `PLIS_BENCH_SESSIONS` (comma-separated
//! session counts, default `1,4,16`), `PLIS_BENCH_BATCH` (comma-separated
//! mean batch sizes, default `64,512,4096`), `PLIS_BENCH_THREADS` (pin the
//! rayon pool; recorded as the `threads` JSON field),
//! `PLIS_BENCH_SHARDS` (comma-separated engine shard counts; `0` = the
//! config default, i.e. the pool width; recorded as the `shards` field),
//! `PLIS_BENCH_WEIGHTED_N` (elements per weighted session, default
//! `PLIS_BENCH_N / 5`; `0` skips the weighted sweep),
//! `PLIS_BENCH_MAX_WEIGHT` (uniform weight bound, default 1,000),
//! `PLIS_BENCH_QUERY_MIX` (comma-separated read fractions for the query
//! sweep, default `0.25`; `0` alone skips it), and
//! `PLIS_BENCH_PATH_POLICY` (comma-separated ingest path policies for the
//! unweighted and weighted sweeps — `cost` or `fixed:N`, default `cost`;
//! recorded as the `path_policy` field).  The calibration knobs the cost
//! policy itself reads (`PLIS_COST_*`) pass straight through to the
//! engine.

use plis_bench::{
    bench_repeats, effective_threads, env_f64_list, env_usize_list, json_line, time_min,
    with_bench_threads, JsonValue,
};
use plis_engine::{
    Backend, DominantMaxKind, Engine, EngineConfig, EngineSnapshot, MetricsSnapshot, Op,
    PathPolicy, SessionKind, Tick,
};
use plis_workloads::streaming::{
    mixed_session_fleet, round_robin_ticks, session_fleet, weighted_session_fleet, ReadWriteOp,
};

/// The whole bench binary runs under the counting allocator so the
/// allocation-discipline columns (`alloc_count`, `allocs_per_elem`) are
/// live figures, not zeros.  The counter is two relaxed atomic adds per
/// allocation — noise next to the allocator call it wraps.
#[global_allocator]
static ALLOC: plis_testalloc::CountingAlloc = plis_testalloc::CountingAlloc;

/// Version of the JSON line layout emitted by this bin (the `schema`
/// field on every line).  Bump when fields change meaning; adding fields
/// keeps the version.  Schema 2 = schema 1 plus the telemetry columns
/// (`tick_p50_us`, `tick_p99_us`, `seq_ticks`, `par_merge_ticks`,
/// `veb_delta_elems`, `session_bytes`) and a `threads` field on every
/// sweep kind.  Schema 3 = schema 2 plus the allocation-discipline and
/// tail-routing columns (`tailset_veb_picks`, `tailset_sorted_picks`,
/// `alloc_count`, `allocs_per_elem`, `arena_bytes`) and the `auto`
/// backend in the unweighted sweep.  Schema 4 = schema 3 plus the
/// persistence columns on the ingest sweeps (`snapshot_bytes`,
/// `snapshot_us`, `restore_us` — engine snapshot size and encode/restore
/// wall time for the warm end-of-sweep fleet).
const SCHEMA: u64 = 4;

fn n_per_session() -> usize {
    std::env::var("PLIS_BENCH_N").ok().and_then(|s| s.parse().ok()).unwrap_or(100_000)
}

/// Elements per weighted session (`PLIS_BENCH_WEIGHTED_N`, default
/// `PLIS_BENCH_N / 5`): the weighted path rebuilds a dominant-max store
/// over `frontier ++ batch` per ingest, so cells are denser per element.
/// `0` disables the weighted sweep.
fn weighted_n_per_session() -> usize {
    std::env::var("PLIS_BENCH_WEIGHTED_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| (n_per_session() / 5).max(1_000))
}

/// Uniform weight bound for the weighted sweep (`PLIS_BENCH_MAX_WEIGHT`).
fn max_weight() -> u64 {
    std::env::var("PLIS_BENCH_MAX_WEIGHT").ok().and_then(|s| s.parse().ok()).unwrap_or(1_000)
}

/// Ingest path policies to sweep (`PLIS_BENCH_PATH_POLICY`, comma list of
/// `cost` / `fixed:N`, default just `cost`).  Unparsable entries abort:
/// a silently dropped policy would make a sweep look complete when it
/// is not.
fn path_policies() -> Vec<PathPolicy> {
    match std::env::var("PLIS_BENCH_PATH_POLICY") {
        Err(_) => vec![PathPolicy::Cost],
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                PathPolicy::parse(s)
                    .unwrap_or_else(|| panic!("bad PLIS_BENCH_PATH_POLICY entry {s:?}"))
            })
            .collect(),
    }
}

/// One explicit-lifecycle tick creating every fleet session up front —
/// the timed loops replay it first, so the traffic ticks stay strict.
fn creation_tick<B>(fleet: &[(String, B)], kind: SessionKind) -> Tick {
    fleet.iter().fold(Tick::new(), |tick, (name, _)| tick.create(name.as_str(), kind))
}

/// Replay a prepared schedule through the executor, asserting every op
/// landed; returns the final outcome-checked engine.
fn replay(config: &EngineConfig, setup: &Tick, ticks: &[Tick]) -> Engine {
    let mut engine = Engine::new(config.clone());
    assert!(engine.execute(setup).fully_applied(), "session creation must land");
    for tick in ticks {
        let outcome = engine.execute(tick);
        assert!(outcome.fully_applied(), "a sweep tick may not drop ops");
    }
    engine
}

/// The telemetry columns shared by every sweep's JSON line (schema 3).
/// All-zero when the engine was built with `--no-default-features`.
fn telemetry_fields(snap: &MetricsSnapshot) -> Vec<(&'static str, JsonValue)> {
    vec![
        ("tick_p50_us", (snap.tick_latency.p50() as f64 / 1_000.0).into()),
        ("tick_p99_us", (snap.tick_latency.p99() as f64 / 1_000.0).into()),
        ("seq_ticks", snap.seq_ingests.into()),
        ("par_merge_ticks", snap.par_merge_ingests.into()),
        ("veb_delta_elems", snap.veb_delta_elems.into()),
        ("inline_ticks", snap.inline_ticks.into()),
        ("session_bytes", snap.session_bytes.into()),
        ("tailset_veb_picks", snap.tailset_veb_picks.into()),
        ("tailset_sorted_picks", snap.tailset_sorted_picks.into()),
        ("alloc_count", snap.alloc_count.into()),
        ("allocs_per_elem", snap.allocs_per_elem.into()),
        ("arena_bytes", snap.arena_bytes.into()),
    ]
}

/// The persistence columns (schema 4): snapshot the warm engine, round
/// the bytes through the codec, restore a fresh engine, and record size
/// and wall time of each leg.  Runs once per cell on an untimed replay —
/// checkpointing is cold-path, so it must not perturb the throughput
/// figure.  Also the bench-level sanity gate: the restored engine must
/// list the same sessions, and the snapshot must stay within 2x of the
/// live sessions' approximate heap footprint (when telemetry reports
/// one — the snapshot stores the raw streams, not the derived indices).
fn persistence_fields(
    config: &EngineConfig,
    setup: &Tick,
    ticks: &[Tick],
) -> Vec<(&'static str, JsonValue)> {
    // Snapshot just before the last traffic tick, so the suffix doubles
    // as a restore-then-replay smoke on the real sweep workload.
    let (head, tail) = ticks.split_at(ticks.len().saturating_sub(1));
    let mut warm = replay(config, setup, head);
    let session_bytes = warm.metrics_snapshot().session_bytes;
    let snapshot_timer = std::time::Instant::now();
    let bytes = warm.snapshot().encode();
    let snapshot_us = snapshot_timer.elapsed().as_secs_f64() * 1e6;
    let restore_timer = std::time::Instant::now();
    let decoded = EngineSnapshot::decode(&bytes).expect("a fresh snapshot must decode");
    let mut restored =
        Engine::restore(config.clone(), &decoded).expect("a fresh snapshot must restore");
    let restore_us = restore_timer.elapsed().as_secs_f64() * 1e6;
    assert_eq!(restored.session_ids(), warm.session_ids(), "restore must rebuild the whole fleet");
    for tick in tail {
        let a = warm.execute(tick);
        let b = restored.execute(tick);
        assert_eq!(a, b, "restore-then-replay diverged from the never-stopped engine");
    }
    if session_bytes > 0 {
        assert!(
            bytes.len() as u64 <= 2 * session_bytes,
            "snapshot ({} bytes) exceeds 2x the live session footprint ({session_bytes} bytes)",
            bytes.len()
        );
    }
    vec![
        ("snapshot_bytes", bytes.len().into()),
        ("snapshot_us", snapshot_us.into()),
        ("restore_us", restore_us.into()),
    ]
}

/// Cross-check the telemetry counters against the ground truth the sweep
/// already knows.  Gated on `snap.ticks != 0` so a telemetry-off engine
/// build (all-zero snapshot) still benches cleanly.
fn reconcile(snap: &MetricsSnapshot, executed_ticks: usize, total_elems: usize) {
    if snap.ticks == 0 {
        return;
    }
    assert_eq!(
        snap.ticks as usize,
        executed_ticks + 1, // the creation tick plus the traffic ticks
        "telemetry must record one tick per execute call"
    );
    assert_eq!(
        snap.elems_ingested as usize, total_elems,
        "telemetry ingest counter must reconcile with the schedule"
    );
}

fn unweighted_sweep(
    n: usize,
    session_counts: &[usize],
    batch_sizes: &[usize],
    shard_counts: &[usize],
    policies: &[PathPolicy],
    threads: usize,
) {
    for &sessions in session_counts {
        for &mean_batch in batch_sizes {
            let (fleet, universe) = session_fleet(sessions, n, mean_batch, 0xBEEF);
            let setup = creation_tick(&fleet, SessionKind::Unweighted);
            let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
                .into_iter()
                .map(|tick| tick.into_iter().collect())
                .collect();
            let total_elems: usize =
                fleet.iter().map(|(_, bs)| bs.iter().map(Vec::len).sum::<usize>()).sum();

            for &shard_spec in shard_counts {
                for &policy in policies {
                    for backend in [Backend::Veb, Backend::SortedVec, Backend::Auto] {
                        let backend_name = match backend {
                            Backend::Veb => "veb",
                            Backend::SortedVec => "sorted-vec",
                            Backend::Auto => "auto",
                        };
                        let mut config = EngineConfig {
                            universe,
                            backend,
                            path_policy: policy,
                            ..EngineConfig::default()
                        };
                        if shard_spec > 0 {
                            config.shards = shard_spec;
                        }
                        let shards = config.shards;
                        let (secs, (final_lis_sum, snap)) = with_bench_threads(|| {
                            time_min(|| {
                                let engine = replay(&config, &setup, &ticks);
                                let lis_sum = engine
                                    .session_ids()
                                    .iter()
                                    .filter_map(|id| engine.lis_length(id.as_str()))
                                    .map(|k| k as u64)
                                    .sum::<u64>();
                                (lis_sum, engine.metrics_snapshot())
                            })
                        });
                        reconcile(&snap, ticks.len(), total_elems);
                        let mut fields = vec![
                            ("bench", "streaming".into()),
                            ("schema", SCHEMA.into()),
                            ("sessions", sessions.into()),
                            ("mean_batch", mean_batch.into()),
                            ("n_per_session", n.into()),
                            ("backend", backend_name.into()),
                            ("path_policy", policy.name().into()),
                            ("shards", shards.into()),
                            ("threads", threads.into()),
                            ("ticks", ticks.len().into()),
                            ("total_elems", total_elems.into()),
                            ("secs", secs.into()),
                            ("elems_per_sec", (total_elems as f64 / secs.max(1e-12)).into()),
                            (
                                "mean_final_lis",
                                (final_lis_sum as f64 / sessions.max(1) as f64).into(),
                            ),
                        ];
                        fields.extend(telemetry_fields(&snap));
                        fields.extend(persistence_fields(&config, &setup, &ticks));
                        println!("{}", json_line(&fields));
                    }
                }
            }
        }
    }
}

/// The weighted sweep: same fleet shape, weighted session kind, both
/// dominant-max stores plus the `Auto` selector that picks one per
/// parallel ingest from the merged run size.
fn weighted_sweep(
    n: usize,
    session_counts: &[usize],
    batch_sizes: &[usize],
    shard_counts: &[usize],
    policies: &[PathPolicy],
    threads: usize,
) {
    let max_w = max_weight();
    for &sessions in session_counts {
        for &mean_batch in batch_sizes {
            let (fleet, universe) = weighted_session_fleet(sessions, n, mean_batch, max_w, 0xFEED);
            let setup = creation_tick(&fleet, SessionKind::Weighted);
            let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
                .into_iter()
                .map(|tick| tick.into_iter().collect())
                .collect();
            let total_elems: usize =
                fleet.iter().map(|(_, bs)| bs.iter().map(Vec::len).sum::<usize>()).sum();

            for &shard_spec in shard_counts {
                for &policy in policies {
                    for dommax in [
                        DominantMaxKind::RangeTree,
                        DominantMaxKind::RangeVeb,
                        DominantMaxKind::Auto,
                    ] {
                        let mut config = EngineConfig {
                            universe,
                            dommax,
                            default_kind: SessionKind::Weighted,
                            path_policy: policy,
                            ..EngineConfig::default()
                        };
                        if shard_spec > 0 {
                            config.shards = shard_spec;
                        }
                        let shards = config.shards;
                        let (secs, (final_score_sum, snap)) = with_bench_threads(|| {
                            time_min(|| {
                                let engine = replay(&config, &setup, &ticks);
                                let score_sum = engine
                                    .session_ids()
                                    .iter()
                                    .filter_map(|id| engine.best_score(id.as_str()))
                                    .sum::<u64>();
                                (score_sum, engine.metrics_snapshot())
                            })
                        });
                        reconcile(&snap, ticks.len(), total_elems);
                        let mut fields = vec![
                            ("bench", "streaming-weighted".into()),
                            ("schema", SCHEMA.into()),
                            ("sessions", sessions.into()),
                            ("mean_batch", mean_batch.into()),
                            ("n_per_session", n.into()),
                            ("backend", dommax.name().into()),
                            ("path_policy", policy.name().into()),
                            ("max_weight", max_w.into()),
                            ("shards", shards.into()),
                            ("threads", threads.into()),
                            ("ticks", ticks.len().into()),
                            ("total_elems", total_elems.into()),
                            ("secs", secs.into()),
                            ("elems_per_sec", (total_elems as f64 / secs.max(1e-12)).into()),
                            (
                                "mean_final_score",
                                (final_score_sum as f64 / sessions.max(1) as f64).into(),
                            ),
                        ];
                        fields.extend(telemetry_fields(&snap));
                        fields.extend(persistence_fields(&config, &setup, &ticks));
                        println!("{}", json_line(&fields));
                    }
                }
            }
        }
    }
}

/// The query sweep: a read/write-mixed fleet through the command plane's
/// mixed ticks, one cell per (sessions × mean batch × mix).
fn query_sweep(
    n: usize,
    session_counts: &[usize],
    batch_sizes: &[usize],
    query_mixes: &[f64],
    shard_counts: &[usize],
    threads: usize,
) {
    const QUERIES_PER_READ: usize = 8;
    for &sessions in session_counts {
        for &mean_batch in batch_sizes {
            for &mix in query_mixes {
                let (fleet, universe) =
                    mixed_session_fleet(sessions, n, mean_batch, mix, QUERIES_PER_READ, 0xD00D);
                let setup = creation_tick(&fleet, SessionKind::Unweighted);
                // Pre-build command ticks so the timed loop replays
                // borrowed schedules — the workload's read/write ops map
                // 1:1 onto command-plane ops.
                let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
                    .into_iter()
                    .map(|tick| {
                        tick.into_iter().map(|(id, op)| (id, Op::from(op))).collect::<Tick>()
                    })
                    .collect();
                let total_elems: usize = fleet
                    .iter()
                    .map(|(_, ops)| ops.iter().map(ReadWriteOp::written).sum::<usize>())
                    .sum();
                let total_queries: usize = fleet
                    .iter()
                    .map(|(_, ops)| ops.iter().map(ReadWriteOp::queries).sum::<usize>())
                    .sum();

                for &shard_spec in shard_counts {
                    let mut config = EngineConfig { universe, ..EngineConfig::default() };
                    if shard_spec > 0 {
                        config.shards = shard_spec;
                    }
                    let shards = config.shards;
                    let (secs, (answered, snap)) = with_bench_threads(|| {
                        time_min(|| {
                            let mut engine = Engine::new(config.clone());
                            assert!(engine.execute(&setup).fully_applied());
                            let mut answered = 0usize;
                            for tick in &ticks {
                                let outcome = engine.execute(tick);
                                assert!(outcome.fully_applied(), "a sweep tick may not drop ops");
                                answered += outcome.total_queries;
                            }
                            (answered, engine.metrics_snapshot())
                        })
                    });
                    assert_eq!(answered, total_queries, "every generated query must be answered");
                    reconcile(&snap, ticks.len(), total_elems);
                    if snap.ticks != 0 {
                        assert_eq!(
                            snap.queries_answered as usize, total_queries,
                            "telemetry query counter must reconcile with the schedule"
                        );
                    }
                    let mut fields = vec![
                        ("bench", "streaming-queries".into()),
                        ("schema", SCHEMA.into()),
                        ("sessions", sessions.into()),
                        ("mean_batch", mean_batch.into()),
                        ("n_per_session", n.into()),
                        ("path_policy", PathPolicy::default().name().into()),
                        ("query_mix", mix.into()),
                        ("queries_per_read", QUERIES_PER_READ.into()),
                        ("shards", shards.into()),
                        ("threads", threads.into()),
                        ("ticks", ticks.len().into()),
                        ("total_elems", total_elems.into()),
                        ("total_queries", total_queries.into()),
                        ("secs", secs.into()),
                        ("elems_per_sec", (total_elems as f64 / secs.max(1e-12)).into()),
                        ("queries_per_sec", (total_queries as f64 / secs.max(1e-12)).into()),
                    ];
                    fields.extend(telemetry_fields(&snap));
                    println!("{}", json_line(&fields));
                }
            }
        }
    }
}

fn main() {
    let n = n_per_session();
    let wn = weighted_n_per_session();
    let session_counts = env_usize_list("PLIS_BENCH_SESSIONS", &[1, 4, 16]);
    let batch_sizes = env_usize_list("PLIS_BENCH_BATCH", &[64, 512, 4096]);
    // Clamp to the generator's ceiling up front so the recorded
    // `query_mix` field always states the mix that actually ran.
    let query_mixes: Vec<f64> = env_f64_list("PLIS_BENCH_QUERY_MIX", &[0.25])
        .into_iter()
        .filter(|&m| m > 0.0)
        .map(|m| m.min(0.9))
        .collect();
    // `0` = keep the engine's default shard count (the pool width).
    let shard_counts = env_usize_list("PLIS_BENCH_SHARDS", &[0]);
    let policies = path_policies();
    let threads = effective_threads();
    let policy_names: Vec<String> = policies.iter().map(|p| p.name()).collect();
    eprintln!(
        "streaming sweep: n_per_session = {n}, weighted n = {wn}, sessions = {session_counts:?}, \
         mean batch = {batch_sizes:?}, query mix = {query_mixes:?}, shards = {shard_counts:?}, \
         policies = {policy_names:?}, repeats = {}, threads = {threads}",
        bench_repeats()
    );

    unweighted_sweep(n, &session_counts, &batch_sizes, &shard_counts, &policies, threads);
    if wn > 0 {
        weighted_sweep(wn, &session_counts, &batch_sizes, &shard_counts, &policies, threads);
    }
    if !query_mixes.is_empty() {
        query_sweep(n, &session_counts, &batch_sizes, &query_mixes, &shard_counts, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plis_engine::Query;
    use plis_workloads::streaming::QuerySpec;

    #[test]
    fn ticks_cover_every_batch_exactly_once() {
        let (fleet, _) = session_fleet(3, 500, 64, 7);
        let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
            .into_iter()
            .map(|tick| tick.into_iter().collect())
            .collect();
        let from_ticks: usize =
            ticks.iter().flat_map(|t| t.slots().iter().map(|(_, op)| op.appends())).sum();
        let from_fleet: usize =
            fleet.iter().map(|(_, bs)| bs.iter().map(Vec::len).sum::<usize>()).sum();
        assert_eq!(from_ticks, from_fleet);
    }

    #[test]
    fn weighted_ticks_cover_every_batch_exactly_once() {
        let (fleet, _) = weighted_session_fleet(3, 400, 64, 20, 9);
        let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
            .into_iter()
            .map(|tick| tick.into_iter().collect())
            .collect();
        let from_ticks: usize =
            ticks.iter().flat_map(|t| t.slots().iter().map(|(_, op)| op.appends())).sum();
        let from_fleet: usize =
            fleet.iter().map(|(_, bs)| bs.iter().map(Vec::len).sum::<usize>()).sum();
        assert_eq!(from_ticks, from_fleet);
    }

    #[test]
    fn json_value_conversions_compile() {
        let _: plis_bench::JsonValue = 1u64.into();
        let _: plis_bench::JsonValue = 1.5f64.into();
    }

    #[test]
    fn mixed_ticks_preserve_writes_and_reads() {
        let (fleet, _) = mixed_session_fleet(3, 600, 64, 0.3, 4, 11);
        let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
            .into_iter()
            .map(|tick| tick.into_iter().map(|(id, op)| (id, Op::from(op))).collect::<Tick>())
            .collect();
        let written: usize =
            ticks.iter().flat_map(|t| t.slots().iter().map(|(_, op)| op.appends())).sum();
        let queried: usize =
            ticks.iter().flat_map(|t| t.slots().iter().map(|(_, op)| op.queries())).sum();
        assert_eq!(written, 3 * 600);
        assert!(queried > 0);
        // The spec → engine-query mapping is total.
        for spec in [QuerySpec::RankOf(0), QuerySpec::CountAt(1), QuerySpec::TopK(2)] {
            let _ = Query::from(spec);
        }
        assert_eq!(Query::from(QuerySpec::Certificate), Query::Certificate);
    }

    #[test]
    fn creation_ticks_cover_the_fleet() {
        let (fleet, universe) = session_fleet(3, 200, 64, 5);
        let setup = creation_tick(&fleet, SessionKind::Unweighted);
        assert_eq!(setup.len(), 3);
        let mut engine = Engine::new(EngineConfig { universe, ..EngineConfig::default() });
        assert!(engine.execute(&setup).fully_applied());
        assert_eq!(engine.session_count(), 3);
        // Replaying the creation tick is rejected per-op, typed.
        assert_eq!(engine.execute(&setup).failed_ops, 3);
    }
}
