//! Streaming-engine throughput sweep: ingest rate (elements/second) of
//! [`plis_engine::Engine`] as a function of mean batch size and session
//! count, over a heterogeneous fleet of workload streams — plus a
//! *weighted* sweep driving the engine's weighted session kind (Algorithm
//! 2 served as live traffic) over both dominant-max stores, and a *query*
//! sweep driving mixed read/write ticks over a read/write-mixed fleet at
//! every requested read fraction.
//!
//! All three sweeps drive the engine through its command plane: schedules
//! are pre-built once as [`Tick`]s (explicit `CreateSession` ops up
//! front, then one `Tick` per round) and the timed loop replays them
//! borrowed through [`Engine::execute`] — no per-repeat deep copies, and
//! every op's typed outcome is checked (`fully_applied`) so a sweep can
//! never silently drop traffic.
//!
//! Emits one JSON object per sweep cell on stdout (one line per cell, see
//! `plis_bench::json_line`), so results can be appended to `BENCH_*.json`
//! perf-trajectory files.  Human-readable context goes to stderr.
//!
//! Knobs (see `DESIGN.md`): `PLIS_BENCH_N` (elements per session, default
//! 100,000), `PLIS_BENCH_REPEATS`, `PLIS_BENCH_SESSIONS` (comma-separated
//! session counts, default `1,4,16`), `PLIS_BENCH_BATCH` (comma-separated
//! mean batch sizes, default `64,512,4096`), `PLIS_BENCH_THREADS` (pin the
//! rayon pool; recorded as the `threads` JSON field),
//! `PLIS_BENCH_WEIGHTED_N` (elements per weighted session, default
//! `PLIS_BENCH_N / 5`; `0` skips the weighted sweep),
//! `PLIS_BENCH_MAX_WEIGHT` (uniform weight bound, default 1,000), and
//! `PLIS_BENCH_QUERY_MIX` (comma-separated read fractions for the query
//! sweep, default `0.25`; `0` alone skips it).

use plis_bench::{
    bench_repeats, effective_threads, env_f64_list, env_usize_list, json_line, time_min,
    with_bench_threads,
};
use plis_engine::{Backend, DominantMaxKind, Engine, EngineConfig, Op, SessionKind, Tick};
use plis_workloads::streaming::{
    mixed_session_fleet, round_robin_ticks, session_fleet, weighted_session_fleet, ReadWriteOp,
};

fn n_per_session() -> usize {
    std::env::var("PLIS_BENCH_N").ok().and_then(|s| s.parse().ok()).unwrap_or(100_000)
}

/// Elements per weighted session (`PLIS_BENCH_WEIGHTED_N`, default
/// `PLIS_BENCH_N / 5`): the weighted path rebuilds a dominant-max store
/// over `frontier ++ batch` per ingest, so cells are denser per element.
/// `0` disables the weighted sweep.
fn weighted_n_per_session() -> usize {
    std::env::var("PLIS_BENCH_WEIGHTED_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| (n_per_session() / 5).max(1_000))
}

/// Uniform weight bound for the weighted sweep (`PLIS_BENCH_MAX_WEIGHT`).
fn max_weight() -> u64 {
    std::env::var("PLIS_BENCH_MAX_WEIGHT").ok().and_then(|s| s.parse().ok()).unwrap_or(1_000)
}

/// One explicit-lifecycle tick creating every fleet session up front —
/// the timed loops replay it first, so the traffic ticks stay strict.
fn creation_tick<B>(fleet: &[(String, B)], kind: SessionKind) -> Tick {
    fleet.iter().fold(Tick::new(), |tick, (name, _)| tick.create(name.as_str(), kind))
}

/// Replay a prepared schedule through the executor, asserting every op
/// landed; returns the final outcome-checked engine.
fn replay(config: &EngineConfig, setup: &Tick, ticks: &[Tick]) -> Engine {
    let mut engine = Engine::new(config.clone());
    assert!(engine.execute(setup).fully_applied(), "session creation must land");
    for tick in ticks {
        let outcome = engine.execute(tick);
        assert!(outcome.fully_applied(), "a sweep tick may not drop ops");
    }
    engine
}

fn unweighted_sweep(n: usize, session_counts: &[usize], batch_sizes: &[usize], threads: usize) {
    for &sessions in session_counts {
        for &mean_batch in batch_sizes {
            let (fleet, universe) = session_fleet(sessions, n, mean_batch, 0xBEEF);
            let setup = creation_tick(&fleet, SessionKind::Unweighted);
            let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
                .into_iter()
                .map(|tick| tick.into_iter().collect())
                .collect();
            let total_elems: usize =
                fleet.iter().map(|(_, bs)| bs.iter().map(Vec::len).sum::<usize>()).sum();

            for backend in [Backend::Veb, Backend::SortedVec] {
                let backend_name = match backend {
                    Backend::Veb => "veb",
                    Backend::SortedVec => "sorted-vec",
                    Backend::Auto => "auto",
                };
                let config = EngineConfig { universe, backend, ..EngineConfig::default() };
                let shards = config.shards;
                let (secs, final_lis_sum) = with_bench_threads(|| {
                    time_min(|| {
                        let engine = replay(&config, &setup, &ticks);
                        engine
                            .session_ids()
                            .iter()
                            .filter_map(|id| engine.lis_length(id.as_str()))
                            .map(|k| k as u64)
                            .sum::<u64>()
                    })
                });
                println!(
                    "{}",
                    json_line(&[
                        ("bench", "streaming".into()),
                        ("sessions", sessions.into()),
                        ("mean_batch", mean_batch.into()),
                        ("n_per_session", n.into()),
                        ("backend", backend_name.into()),
                        ("shards", shards.into()),
                        ("threads", threads.into()),
                        ("ticks", ticks.len().into()),
                        ("total_elems", total_elems.into()),
                        ("secs", secs.into()),
                        ("elems_per_sec", (total_elems as f64 / secs.max(1e-12)).into()),
                        ("mean_final_lis", (final_lis_sum as f64 / sessions.max(1) as f64).into(),),
                    ])
                );
            }
        }
    }
}

/// The weighted sweep: same fleet shape, weighted session kind, both
/// dominant-max stores.
fn weighted_sweep(n: usize, session_counts: &[usize], batch_sizes: &[usize], threads: usize) {
    let max_w = max_weight();
    for &sessions in session_counts {
        for &mean_batch in batch_sizes {
            let (fleet, universe) = weighted_session_fleet(sessions, n, mean_batch, max_w, 0xFEED);
            let setup = creation_tick(&fleet, SessionKind::Weighted);
            let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
                .into_iter()
                .map(|tick| tick.into_iter().collect())
                .collect();
            let total_elems: usize =
                fleet.iter().map(|(_, bs)| bs.iter().map(Vec::len).sum::<usize>()).sum();

            for dommax in [DominantMaxKind::RangeTree, DominantMaxKind::RangeVeb] {
                let config = EngineConfig {
                    universe,
                    dommax,
                    default_kind: SessionKind::Weighted,
                    ..EngineConfig::default()
                };
                let shards = config.shards;
                let (secs, final_score_sum) = with_bench_threads(|| {
                    time_min(|| {
                        let engine = replay(&config, &setup, &ticks);
                        engine
                            .session_ids()
                            .iter()
                            .filter_map(|id| engine.best_score(id.as_str()))
                            .sum::<u64>()
                    })
                });
                println!(
                    "{}",
                    json_line(&[
                        ("bench", "streaming-weighted".into()),
                        ("sessions", sessions.into()),
                        ("mean_batch", mean_batch.into()),
                        ("n_per_session", n.into()),
                        ("backend", dommax.name().into()),
                        ("max_weight", max_w.into()),
                        ("shards", shards.into()),
                        ("threads", threads.into()),
                        ("ticks", ticks.len().into()),
                        ("total_elems", total_elems.into()),
                        ("secs", secs.into()),
                        ("elems_per_sec", (total_elems as f64 / secs.max(1e-12)).into()),
                        (
                            "mean_final_score",
                            (final_score_sum as f64 / sessions.max(1) as f64).into(),
                        ),
                    ])
                );
            }
        }
    }
}

/// The query sweep: a read/write-mixed fleet through the command plane's
/// mixed ticks, one cell per (sessions × mean batch × mix).
fn query_sweep(
    n: usize,
    session_counts: &[usize],
    batch_sizes: &[usize],
    query_mixes: &[f64],
    threads: usize,
) {
    const QUERIES_PER_READ: usize = 8;
    for &sessions in session_counts {
        for &mean_batch in batch_sizes {
            for &mix in query_mixes {
                let (fleet, universe) =
                    mixed_session_fleet(sessions, n, mean_batch, mix, QUERIES_PER_READ, 0xD00D);
                let setup = creation_tick(&fleet, SessionKind::Unweighted);
                // Pre-build command ticks so the timed loop replays
                // borrowed schedules — the workload's read/write ops map
                // 1:1 onto command-plane ops.
                let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
                    .into_iter()
                    .map(|tick| {
                        tick.into_iter().map(|(id, op)| (id, Op::from(op))).collect::<Tick>()
                    })
                    .collect();
                let total_elems: usize = fleet
                    .iter()
                    .map(|(_, ops)| ops.iter().map(ReadWriteOp::written).sum::<usize>())
                    .sum();
                let total_queries: usize = fleet
                    .iter()
                    .map(|(_, ops)| ops.iter().map(ReadWriteOp::queries).sum::<usize>())
                    .sum();

                let config = EngineConfig { universe, ..EngineConfig::default() };
                let shards = config.shards;
                let (secs, answered) = with_bench_threads(|| {
                    time_min(|| {
                        let mut engine = Engine::new(config.clone());
                        assert!(engine.execute(&setup).fully_applied());
                        let mut answered = 0usize;
                        for tick in &ticks {
                            let outcome = engine.execute(tick);
                            assert!(outcome.fully_applied(), "a sweep tick may not drop ops");
                            answered += outcome.total_queries;
                        }
                        answered
                    })
                });
                assert_eq!(answered, total_queries, "every generated query must be answered");
                println!(
                    "{}",
                    json_line(&[
                        ("bench", "streaming-queries".into()),
                        ("sessions", sessions.into()),
                        ("mean_batch", mean_batch.into()),
                        ("n_per_session", n.into()),
                        ("query_mix", mix.into()),
                        ("queries_per_read", QUERIES_PER_READ.into()),
                        ("shards", shards.into()),
                        ("threads", threads.into()),
                        ("ticks", ticks.len().into()),
                        ("total_elems", total_elems.into()),
                        ("total_queries", total_queries.into()),
                        ("secs", secs.into()),
                        ("elems_per_sec", (total_elems as f64 / secs.max(1e-12)).into()),
                        ("queries_per_sec", (total_queries as f64 / secs.max(1e-12)).into()),
                    ])
                );
            }
        }
    }
}

fn main() {
    let n = n_per_session();
    let wn = weighted_n_per_session();
    let session_counts = env_usize_list("PLIS_BENCH_SESSIONS", &[1, 4, 16]);
    let batch_sizes = env_usize_list("PLIS_BENCH_BATCH", &[64, 512, 4096]);
    // Clamp to the generator's ceiling up front so the recorded
    // `query_mix` field always states the mix that actually ran.
    let query_mixes: Vec<f64> = env_f64_list("PLIS_BENCH_QUERY_MIX", &[0.25])
        .into_iter()
        .filter(|&m| m > 0.0)
        .map(|m| m.min(0.9))
        .collect();
    let threads = effective_threads();
    eprintln!(
        "streaming sweep: n_per_session = {n}, weighted n = {wn}, sessions = {session_counts:?}, \
         mean batch = {batch_sizes:?}, query mix = {query_mixes:?}, repeats = {}, \
         threads = {threads}",
        bench_repeats()
    );

    unweighted_sweep(n, &session_counts, &batch_sizes, threads);
    if wn > 0 {
        weighted_sweep(wn, &session_counts, &batch_sizes, threads);
    }
    if !query_mixes.is_empty() {
        query_sweep(n, &session_counts, &batch_sizes, &query_mixes, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plis_engine::Query;
    use plis_workloads::streaming::QuerySpec;

    #[test]
    fn ticks_cover_every_batch_exactly_once() {
        let (fleet, _) = session_fleet(3, 500, 64, 7);
        let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
            .into_iter()
            .map(|tick| tick.into_iter().collect())
            .collect();
        let from_ticks: usize =
            ticks.iter().flat_map(|t| t.slots().iter().map(|(_, op)| op.appends())).sum();
        let from_fleet: usize =
            fleet.iter().map(|(_, bs)| bs.iter().map(Vec::len).sum::<usize>()).sum();
        assert_eq!(from_ticks, from_fleet);
    }

    #[test]
    fn weighted_ticks_cover_every_batch_exactly_once() {
        let (fleet, _) = weighted_session_fleet(3, 400, 64, 20, 9);
        let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
            .into_iter()
            .map(|tick| tick.into_iter().collect())
            .collect();
        let from_ticks: usize =
            ticks.iter().flat_map(|t| t.slots().iter().map(|(_, op)| op.appends())).sum();
        let from_fleet: usize =
            fleet.iter().map(|(_, bs)| bs.iter().map(Vec::len).sum::<usize>()).sum();
        assert_eq!(from_ticks, from_fleet);
    }

    #[test]
    fn json_value_conversions_compile() {
        let _: plis_bench::JsonValue = 1u64.into();
        let _: plis_bench::JsonValue = 1.5f64.into();
    }

    #[test]
    fn mixed_ticks_preserve_writes_and_reads() {
        let (fleet, _) = mixed_session_fleet(3, 600, 64, 0.3, 4, 11);
        let ticks: Vec<Tick> = round_robin_ticks(&fleet, |s| s.to_string())
            .into_iter()
            .map(|tick| tick.into_iter().map(|(id, op)| (id, Op::from(op))).collect::<Tick>())
            .collect();
        let written: usize =
            ticks.iter().flat_map(|t| t.slots().iter().map(|(_, op)| op.appends())).sum();
        let queried: usize =
            ticks.iter().flat_map(|t| t.slots().iter().map(|(_, op)| op.queries())).sum();
        assert_eq!(written, 3 * 600);
        assert!(queried > 0);
        // The spec → engine-query mapping is total.
        for spec in [QuerySpec::RankOf(0), QuerySpec::CountAt(1), QuerySpec::TopK(2)] {
            let _ = Query::from(spec);
        }
        assert_eq!(Query::from(QuerySpec::Certificate), Query::Certificate);
    }

    #[test]
    fn creation_ticks_cover_the_fleet() {
        let (fleet, universe) = session_fleet(3, 200, 64, 5);
        let setup = creation_tick(&fleet, SessionKind::Unweighted);
        assert_eq!(setup.len(), 3);
        let mut engine = Engine::new(EngineConfig { universe, ..EngineConfig::default() });
        assert!(engine.execute(&setup).fully_applied());
        assert_eq!(engine.session_count(), 3);
        // Replaying the creation tick is rejected per-op, typed.
        assert_eq!(engine.execute(&setup).failed_ops, 3);
    }
}
