//! Experiment E9: ablation of the WLIS dominant-max structure —
//! range tree (Section 4.1) versus Range-vEB tree (Section 4.2).
//!
//! The paper proposes the Range-vEB tree to improve the theoretical work
//! bound of WLIS; its own implementation uses the range tree because it is
//! simpler and faster in practice.  This binary measures both backends of
//! Algorithm 2 on the same inputs so that trade-off can be inspected
//! directly.
//!
//! Run with: `cargo run --release -p plis-bench --bin ablation_wlis`

use plis_bench::{bench_n, print_header, print_row, rank_sweep, time_min};
use plis_lis::{lis_ranks_u64, wlis_rangetree, wlis_rangeveb};
use plis_workloads::{uniform_weights, with_target_rank};

fn main() {
    let n = (bench_n() / 20).max(5_000);
    println!("# WLIS structure ablation: range tree vs Range-vEB, n = {n}");
    print_header("k (measured)", &["range-tree", "range-vEB"]);
    let weights = uniform_weights(n, 1_000, 0xAB1A);
    for &target in &rank_sweep(1_000, 1) {
        let input = with_target_rank(n, target, 0xAB1A + target);
        let k = lis_ranks_u64(&input).1;
        let (t_rt, dp_rt) = time_min(|| wlis_rangetree(&input, &weights));
        let (t_rv, dp_rv) = time_min(|| wlis_rangeveb(&input, &weights));
        assert_eq!(dp_rt, dp_rv, "both WLIS backends must agree");
        print_row(k as u64, &[Some(t_rt), Some(t_rv)]);
    }
}
