//! Figure 7(b): LIS running time vs. LIS length, line pattern, large input.
//!
//! Paper setting: n = 10⁹, k from 1 to 10⁸, comparing Seq-BS, Ours (1 core)
//! and Ours (96 cores); SWGS is excluded because it runs out of memory at
//! this scale.  Here the "large" input is 10× the Figure-7(a) size
//! (`10 × PLIS_BENCH_N`).
//!
//! Run with: `cargo run --release -p plis-bench --bin fig7b`

use plis_baselines::seq_bs_length;
use plis_bench::{bench_n, on_threads, print_header, print_row, rank_sweep, time_min};
use plis_lis::lis_ranks_u64;
use plis_workloads::with_target_rank;

fn main() {
    let n = bench_n() * 10;
    let cores = num_cpus::get();
    println!("# Figure 7(b): LIS, line pattern, n = {n}, parallel runs on {cores} threads");
    println!("# (SWGS is excluded at this scale, as in the paper)");
    print_header("k (measured)", &["Seq-BS", "Ours (seq)", "Ours (par)"]);

    let targets = rank_sweep((n as u64 / 10).max(1), 1);
    for &target in &targets {
        let input = with_target_rank(n, target, 0xF1607B + target);
        let (t_seq_bs, k) = time_min(|| seq_bs_length(&input));
        let (t_ours_seq, _) = time_min(|| on_threads(1, || lis_ranks_u64(&input).1));
        let (t_ours_par, k_par) = time_min(|| lis_ranks_u64(&input).1);
        assert_eq!(k, k_par);
        print_row(k as u64, &[Some(t_seq_bs), Some(t_ours_seq), Some(t_ours_par)]);
    }
}
