//! Shared harness code for the figure-reproducing benchmark binaries.
//!
//! Every panel of the paper's evaluation (Figures 7 and 8) has a binary in
//! `src/bin/` that prints the same series the paper plots; the knobs below
//! let the sweep be scaled to the reproduction machine
//! (the paper used `n = 10⁸…10⁹` on 96 cores — see the substitution notes
//! in the top-level `DESIGN.md`).
//!
//! Environment variables (documented in detail in `DESIGN.md`):
//! * `PLIS_BENCH_N` — input size for the Figure-7 sweeps and elements per
//!   session for the streaming sweep (default 1,000,000 / 100,000).
//! * `PLIS_BENCH_REPEATS` — timed repetitions per cell; the minimum is
//!   reported (default 3).
//! * `PLIS_BENCH_THREADS` — pin the rayon pool for the whole run (`0` or
//!   unset: the hardware default).  Sweeps record the effective count.
//! * `PLIS_BENCH_SESSIONS` / `PLIS_BENCH_BATCH` — comma-separated sweep
//!   overrides for the `streaming` binary.
//! * `PLIS_BENCH_QUERY_MIX` — comma-separated read fractions for the
//!   `streaming` binary's mixed read/write sweep (`0` skips it).
//!
//! The `streaming` binary emits one [`json_line`] per sweep cell so perf
//! trajectories can be recorded as `BENCH_*.json` files across PRs.

use std::time::Instant;

/// Input size for the figure sweeps (`PLIS_BENCH_N`, default 1,000,000).
pub fn bench_n() -> usize {
    std::env::var("PLIS_BENCH_N").ok().and_then(|s| s.parse().ok()).unwrap_or(1_000_000)
}

/// Number of timed repetitions per cell (`PLIS_BENCH_REPEATS`, default 3).
pub fn bench_repeats() -> usize {
    std::env::var("PLIS_BENCH_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1)
}

/// Time `f`, returning the minimum wall-clock seconds over
/// [`bench_repeats`] runs together with the result of the last run.
pub fn time_min<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let repeats = bench_repeats();
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one repetition"))
}

/// Run `f` on a dedicated rayon pool with `threads` workers.
pub fn on_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(f)
}

/// Thread-count pin requested via `PLIS_BENCH_THREADS` (`0` or unset means
/// "no pin": use the hardware default).
pub fn bench_threads() -> Option<usize> {
    std::env::var("PLIS_BENCH_THREADS").ok().and_then(|s| s.parse().ok()).filter(|&t| t > 0)
}

/// Effective worker count a sweep runs with: the `PLIS_BENCH_THREADS` pin
/// if set, otherwise the hardware parallelism.
pub fn effective_threads() -> usize {
    bench_threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Run `f` under the `PLIS_BENCH_THREADS` pin (a dedicated pool when set,
/// the ambient pool otherwise).
pub fn with_bench_threads<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    match bench_threads() {
        Some(threads) => on_threads(threads, f),
        None => f(),
    }
}

/// Geometrically spaced target ranks from 1 to `max` (inclusive-ish),
/// mirroring the paper's log-spaced x axes.
pub fn rank_sweep(max: u64, points_per_decade: u32) -> Vec<u64> {
    let mut out = vec![1u64];
    let factor = 10f64.powf(1.0 / points_per_decade as f64);
    let mut cur = 1f64;
    while (cur * factor) as u64 <= max {
        cur *= factor;
        let v = cur.round() as u64;
        if *out.last().unwrap() != v {
            out.push(v);
        }
    }
    if *out.last().unwrap() != max {
        out.push(max);
    }
    out
}

/// Print a table header: the first column plus one column per series.
pub fn print_header(first: &str, series: &[&str]) {
    print!("{first:>12}");
    for s in series {
        print!(" {s:>14}");
    }
    println!();
}

/// Print one row: the sweep value plus one number per series (seconds or a
/// dash for "not run", as the paper does for SWGS at large k).
pub fn print_row(first: u64, cells: &[Option<f64>]) {
    print!("{first:>12}");
    for c in cells {
        match c {
            Some(v) => print!(" {v:>14.4}"),
            None => print!(" {:>14}", "-"),
        }
    }
    println!();
}

/// The machine-readable cell format (`BENCH_*.json` lines) lives in
/// `plis-telemetry` now, so engine metric snapshots serialize through the
/// exact same renderer; re-exported here for the bench binaries.
pub use plis_telemetry::{json_line, JsonValue};

/// Comma-separated `usize` list from an environment variable, with a default.
pub fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad {name} entry: {s:?}")))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Comma-separated `f64` list from an environment variable, with a default
/// (used by the streaming binary's `PLIS_BENCH_QUERY_MIX` sweep axis).
pub fn env_f64_list(name: &str, default: &[f64]) -> Vec<f64> {
    match std::env::var(name) {
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad {name} entry: {s:?}")))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_reexport_is_live() {
        // The renderer itself is tested in plis-telemetry; this guards the
        // re-export the bench binaries build their cells through.
        let line = json_line(&[("bench", "streaming".into()), ("sessions", 4usize.into())]);
        assert_eq!(line, r#"{"bench": "streaming", "sessions": 4}"#);
    }

    #[test]
    fn env_usize_list_falls_back_to_default() {
        assert_eq!(env_usize_list("PLIS_TEST_UNSET_VAR", &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn env_f64_list_falls_back_to_default() {
        assert_eq!(env_f64_list("PLIS_TEST_UNSET_VAR", &[0.25]), vec![0.25]);
    }

    #[test]
    fn rank_sweep_is_increasing_and_bounded() {
        let sweep = rank_sweep(100_000, 1);
        assert_eq!(sweep.first(), Some(&1));
        assert_eq!(sweep.last(), Some(&100_000));
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rank_sweep_single_point() {
        assert_eq!(rank_sweep(1, 1), vec![1]);
    }

    #[test]
    fn timing_returns_result() {
        let (secs, value) = time_min(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn on_threads_runs_on_requested_pool() {
        let n = on_threads(2, rayon::current_num_threads);
        assert_eq!(n, 2);
    }

    #[test]
    fn effective_threads_is_positive() {
        // The env var is process-global, so only sanity-check the fallback
        // semantics here; the parse path is covered by bench_threads' type.
        assert!(effective_threads() >= 1);
    }
}
