//! Criterion benchmark groups mirroring every figure panel of the paper's
//! evaluation (scaled down so `cargo bench` completes in minutes; the
//! `src/bin/fig*` binaries run the full sweeps and print the paper-style
//! tables).
//!
//! Groups:
//! * `fig7a_lis_line`       — LIS, line pattern: Seq-BS vs SWGS vs ours.
//! * `fig7b_lis_line_large` — LIS, line pattern, larger n: Seq-BS vs ours.
//! * `fig7c_lis_range`      — LIS, range pattern: Seq-BS vs ours.
//! * `fig7d_wlis_line`      — WLIS: Seq-AVL vs SWGS-W vs ours (range tree).
//! * `fig8_speedup`         — ours on 1 thread vs all threads.
//! * `ablation_wlis_structures` — range tree vs Range-vEB backend.
//! * `ablation_work_bound`  — tournament-tree visit counting overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plis_baselines::{seq_avl, seq_bs_length, swgs_lis, swgs_wlis};
use plis_bench::on_threads;
use plis_lis::{lis_ranks_u64, lis_ranks_u64_with_stats, wlis_rangetree, wlis_rangeveb};
use plis_workloads::{range_pattern, uniform_weights, with_target_rank};
use std::time::Duration;

const LIS_N: usize = 200_000;
const WLIS_N: usize = 20_000;

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn fig7a_lis_line(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_lis_line");
    for &k in &[10u64, 1_000, 100_000] {
        let input = with_target_rank(LIS_N, k, 0x7A + k);
        group.bench_with_input(BenchmarkId::new("seq_bs", k), &input, |b, a| {
            b.iter(|| seq_bs_length(a))
        });
        if k <= 1_000 {
            group.bench_with_input(BenchmarkId::new("swgs", k), &input, |b, a| {
                b.iter(|| swgs_lis(a).1)
            });
        }
        group.bench_with_input(BenchmarkId::new("ours_seq", k), &input, |b, a| {
            b.iter(|| on_threads(1, || lis_ranks_u64(a).1))
        });
        group.bench_with_input(BenchmarkId::new("ours_par", k), &input, |b, a| {
            b.iter(|| lis_ranks_u64(a).1)
        });
    }
    group.finish();
}

fn fig7b_lis_line_large(c: &mut Criterion) {
    let n = LIS_N * 4;
    let mut group = c.benchmark_group("fig7b_lis_line_large");
    for &k in &[100u64, 10_000] {
        let input = with_target_rank(n, k, 0x7B + k);
        group.bench_with_input(BenchmarkId::new("seq_bs", k), &input, |b, a| {
            b.iter(|| seq_bs_length(a))
        });
        group.bench_with_input(BenchmarkId::new("ours_par", k), &input, |b, a| {
            b.iter(|| lis_ranks_u64(a).1)
        });
    }
    group.finish();
}

fn fig7c_lis_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7c_lis_range");
    for &k in &[10u64, 1_000, 30_000] {
        let input = range_pattern(LIS_N, k, 0x7C + k);
        group.bench_with_input(BenchmarkId::new("seq_bs", k), &input, |b, a| {
            b.iter(|| seq_bs_length(a))
        });
        group.bench_with_input(BenchmarkId::new("ours_par", k), &input, |b, a| {
            b.iter(|| lis_ranks_u64(a).1)
        });
    }
    group.finish();
}

fn fig7d_wlis_line(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7d_wlis_line");
    let weights = uniform_weights(WLIS_N, 1_000, 0x7D);
    for &k in &[10u64, 300, 3_000] {
        let input = with_target_rank(WLIS_N, k, 0x7D + k);
        group.bench_with_input(BenchmarkId::new("seq_avl", k), &input, |b, a| {
            b.iter(|| seq_avl(a, &weights))
        });
        group.bench_with_input(BenchmarkId::new("swgs_w", k), &input, |b, a| {
            b.iter(|| swgs_wlis(a, &weights))
        });
        group.bench_with_input(BenchmarkId::new("ours_w", k), &input, |b, a| {
            b.iter(|| wlis_rangetree(a, &weights))
        });
    }
    group.finish();
}

fn fig8_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_speedup");
    let n = LIS_N * 4;
    for &k in &[100u64, 10_000] {
        let line = with_target_rank(n, k, 0x80 + k);
        let range = range_pattern(n, k, 0x81 + k);
        for (label, input) in [("line", &line), ("range", &range)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_1thread"), k),
                input,
                |b, a| b.iter(|| on_threads(1, || lis_ranks_u64(a).1)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_all_threads"), k),
                input,
                |b, a| b.iter(|| lis_ranks_u64(a).1),
            );
        }
    }
    group.finish();
}

fn ablation_wlis_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_wlis_structures");
    let n = WLIS_N / 2;
    let weights = uniform_weights(n, 1_000, 0xA0);
    for &k in &[30u64, 300] {
        let input = with_target_rank(n, k, 0xA0 + k);
        group.bench_with_input(BenchmarkId::new("range_tree", k), &input, |b, a| {
            b.iter(|| wlis_rangetree(a, &weights))
        });
        group.bench_with_input(BenchmarkId::new("range_veb", k), &input, |b, a| {
            b.iter(|| wlis_rangeveb(a, &weights))
        });
    }
    group.finish();
}

fn ablation_work_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_work_bound");
    let input = with_target_rank(LIS_N, 1_000, 0xB0);
    group.bench_function("ranks_plain", |b| b.iter(|| lis_ranks_u64(&input).1));
    group.bench_function("ranks_with_stats", |b| b.iter(|| lis_ranks_u64_with_stats(&input).1));
    group.finish();
}

criterion_group! {
    name = figures;
    config = configure(&mut Criterion::default());
    targets =
        fig7a_lis_line,
        fig7b_lis_line_large,
        fig7c_lis_range,
        fig7d_wlis_line,
        fig8_speedup,
        ablation_wlis_structures,
        ablation_work_bound
}
criterion_main!(figures);
