//! Criterion benchmarks for the parallel vEB tree operations
//! (Theorems 5.1, 5.2 and C.1): batch insertion, batch deletion and the
//! parallel range query, each against the equivalent loop of sequential
//! single-point operations (experiment E8 in `DESIGN.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plis_veb::VebTree;
use plis_workloads::random_permutation;
use std::time::Duration;

const UNIVERSE: u64 = 1 << 22;

fn resident_keys() -> Vec<u64> {
    let mut v = random_permutation(1 << 17, 3);
    v.iter_mut().for_each(|x| *x = *x * 29 % UNIVERSE);
    v.sort_unstable();
    v.dedup();
    v
}

fn batch_keys(m: usize) -> Vec<u64> {
    let mut v = random_permutation(m, 11 + m as u64);
    v.iter_mut().for_each(|x| *x = (*x * 31 + 1) % UNIVERSE);
    v.sort_unstable();
    v.dedup();
    v
}

fn veb_batch_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("veb_batch_ops");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let resident = resident_keys();
    for &m in &[1_000usize, 30_000, 300_000] {
        let batch = batch_keys(m);
        group.bench_with_input(BenchmarkId::new("batch_insert", m), &batch, |b, batch| {
            b.iter_batched(
                || VebTree::from_sorted(UNIVERSE, &resident),
                |mut t| {
                    t.batch_insert(batch);
                    t.len()
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("point_insert", m), &batch, |b, batch| {
            b.iter_batched(
                || VebTree::from_sorted(UNIVERSE, &resident),
                |mut t| {
                    for &k in batch {
                        t.insert(k);
                    }
                    t.len()
                },
                criterion::BatchSize::LargeInput,
            )
        });
        let mut loaded = VebTree::from_sorted(UNIVERSE, &resident);
        loaded.batch_insert(&batch);
        group.bench_with_input(BenchmarkId::new("batch_delete", m), &batch, |b, batch| {
            b.iter_batched(
                || loaded.clone(),
                |mut t| {
                    t.batch_delete(batch);
                    t.len()
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("range_query", m), &loaded, |b, t| {
            b.iter(|| t.range(UNIVERSE / 4, UNIVERSE / 2).len())
        });
    }
    group.finish();
}

criterion_group!(veb, veb_batch_ops);
criterion_main!(veb);
