//! JSON-lines trace-event sink: a cloneable writer handle the engine emits
//! one event per tick into.  The sink is strictly observational — emission
//! failures are swallowed so a broken pipe can never perturb engine
//! behaviour (determinism-neutrality is a hard requirement of the
//! telemetry plane).

use crate::json::{json_line, JsonValue};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A shared handle to a JSON-lines event writer.
///
/// Cloning is cheap (one `Arc` bump); clones append to the same underlying
/// writer under a mutex, so events from concurrent emitters interleave at
/// line granularity and never tear.
#[derive(Clone)]
pub struct TraceSink {
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").finish_non_exhaustive()
    }
}

impl TraceSink {
    /// Wrap any writer (a file, `stderr`, a [`MemorySink`], ...).
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        TraceSink { writer: Arc::new(Mutex::new(Box::new(writer))) }
    }

    /// A sink that writes trace events to standard error.
    pub fn stderr() -> Self {
        TraceSink::new(std::io::stderr())
    }

    /// Emit one event as a [`json_line`] plus newline.  I/O errors (and a
    /// poisoned lock) are ignored: tracing must never fail the traced code.
    pub fn emit(&self, fields: &[(&str, JsonValue)]) {
        let line = json_line(fields);
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        }
    }
}

/// An in-memory byte buffer usable as a [`TraceSink`] target; tests and the
/// bench harness read the captured lines back with
/// [`contents`](MemorySink::contents) / [`lines`](MemorySink::lines).
#[derive(Debug, Clone, Default)]
pub struct MemorySink(Arc<Mutex<Vec<u8>>>);

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Everything written so far, as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("memory sink lock")).into_owned()
    }

    /// The captured trace, split into lines.
    pub fn lines(&self) -> Vec<String> {
        self.contents().lines().map(str::to_owned).collect()
    }
}

impl Write for MemorySink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("memory sink lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_one_json_line_per_event() {
        let buffer = MemorySink::new();
        let sink = TraceSink::new(buffer.clone());
        sink.emit(&[("event", "tick".into()), ("ops", 3u64.into())]);
        sink.emit(&[("event", "tick".into()), ("ops", 1u64.into())]);
        let lines = buffer.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"event": "tick", "ops": 3}"#);
        assert_eq!(lines[1], r#"{"event": "tick", "ops": 1}"#);
    }

    #[test]
    fn clones_share_the_buffer() {
        let buffer = MemorySink::new();
        let sink = TraceSink::new(buffer.clone());
        let clone = sink.clone();
        clone.emit(&[("n", 1u64.into())]);
        sink.emit(&[("n", 2u64.into())]);
        assert_eq!(buffer.lines().len(), 2);
    }
}
