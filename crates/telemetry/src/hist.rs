//! Fixed-bucket log-scale histogram (HdrHistogram-style log-linear layout).
//!
//! Bucket scheme: values below 16 get one exact bucket each; every larger
//! value lands in one of 16 *log-linear* sub-buckets of its power-of-two
//! octave, i.e. the bucket width is `2^(octave-4)` and the worst-case
//! relative error of a reported bound is `1/16 = 6.25 %`.  Octaves 4..=63
//! cover the rest of `u64`, so the total is `16 + 60 * 16 = 976` buckets —
//! small enough to keep resident per histogram (7.6 KiB of `AtomicU64`)
//! and to merge by plain elementwise addition.

use std::sync::atomic::{AtomicU64, Ordering};

/// Log-linear sub-bucket bits per octave (16 sub-buckets).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: 16 exact low buckets + 16 per octave for octaves
/// 4..=63.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index of a recorded value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (octave - SUB_BITS)) & (SUB as u64 - 1);
        SUB + (octave - SUB_BITS) as usize * SUB + sub as usize
    }
}

/// Inclusive upper bound of a bucket — the value percentiles report.
fn bucket_bound(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let octave = (idx - SUB) as u32 / SUB as u32 + SUB_BITS;
        let sub = ((idx - SUB) % SUB) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        (1u64 << octave) + sub * width + (width - 1)
    }
}

/// Concurrent fixed-bucket log-scale histogram.
///
/// [`record`](AtomicHistogram::record) is three relaxed atomic RMW
/// operations (bucket increment, sum add, max fetch-max) — cheap enough for
/// per-op latency tracking.  Reads go through
/// [`snapshot`](AtomicHistogram::snapshot), which yields a plain
/// [`HistogramSnapshot`] for merging and percentile queries.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (e.g. a latency in nanoseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.  Taken while writers are
    /// quiescent (the engine snapshots between ticks), the copy is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain (non-atomic) histogram state: bucket counts plus exact sum and max.
///
/// Merging is elementwise bucket addition (plus sum addition and max of
/// maxes), which is associative and commutative — snapshots from different
/// shards or runs combine in any order to the same result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (empty means "all zero" — the [`Default`] state).
    buckets: Vec<u64>,
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one (associative, commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Value at or below which `q` percent of recordings fall, reported as
    /// the inclusive upper bound of the covering bucket (≤ 6.25 % above the
    /// true value), clamped to the exact max.  `q` is in `[0, 100]`; an
    /// empty histogram reports 0.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q / 100.0 * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`percentile`](HistogramSnapshot::percentile)).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_exact_below_16() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover_u64() {
        let mut prev = bucket_bound(0);
        for idx in 1..BUCKETS {
            let b = bucket_bound(idx);
            assert!(b > prev, "bound not increasing at {idx}");
            prev = b;
        }
        assert_eq!(prev, u64::MAX);
        for v in [0, 15, 16, 17, 1000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_bound(idx) >= v, "bound below value for {v}");
            assert!(idx == 0 || bucket_bound(idx - 1) < v, "value {v} fits earlier bucket");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let v = state >> (state % 40);
            let bound = bucket_bound(bucket_index(v));
            assert!(bound >= v);
            assert!((bound - v) as f64 <= v as f64 / 16.0 + 1.0, "error too large for {v}");
        }
    }

    #[test]
    fn percentiles_on_known_input() {
        let h = AtomicHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // True p50 = 50, true p99 = 99; bounds are within one sub-bucket.
        let p50 = s.p50();
        assert!((50..=53).contains(&p50), "p50 bound {p50}");
        let p99 = s.p99();
        assert!((99..=100).contains(&p99), "p99 bound {p99}");
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.percentile(0.0), 1); // smallest recorded value's bucket
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = AtomicHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: Vec<HistogramSnapshot> = [(1u64..=40), (41..=77), (78..=500)]
            .into_iter()
            .map(|range| {
                let h = AtomicHistogram::new();
                for v in range {
                    h.record(v * 13);
                }
                h.snapshot()
            })
            .collect();
        // ((a + b) + c)
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // (a + (b + c))
        let mut right = parts[1].clone();
        right.merge(&parts[2]);
        let mut right_total = parts[0].clone();
        right_total.merge(&right);
        assert_eq!(left, right_total);
        // (c + a + b) — commutes too.
        let mut shuffled = parts[2].clone();
        shuffled.merge(&parts[0]);
        shuffled.merge(&parts[1]);
        assert_eq!(left, shuffled);
        assert_eq!(left.count(), 500);
    }

    #[test]
    fn default_snapshot_merges_as_identity() {
        let h = AtomicHistogram::new();
        h.record(7);
        h.record(1 << 30);
        let s = h.snapshot();
        let mut d = HistogramSnapshot::default();
        d.merge(&s);
        assert_eq!(d, s);
        let mut s2 = s.clone();
        s2.merge(&HistogramSnapshot::default());
        assert_eq!(s2, s);
    }
}
