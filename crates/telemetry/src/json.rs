//! Hand-rolled single-line JSON rendering — the one serialization format
//! the workspace uses for machine-readable output (`BENCH_*.json` lines,
//! engine metric snapshots, trace events).  No registry access means no
//! `serde_json`; the subset here (flat objects of ints, floats, strings) is
//! all the trajectory tooling needs.

/// One value of a machine-readable cell.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// Unsigned integer, rendered verbatim.
    Int(u64),
    /// Float, rendered with six decimal places (`null` when non-finite).
    Float(f64),
    /// String, rendered with JSON escaping.
    Str(String),
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as u64)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Int(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// Render one record as a single JSON object line — the format the
/// perf-trajectory files (`BENCH_*.json`) accumulate and the trace sink
/// emits.  Keys must be plain identifiers; string values are escaped.
pub fn json_line(fields: &[(&str, JsonValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(key);
        out.push_str("\": ");
        match value {
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:.6}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_renders_all_value_kinds() {
        let line = json_line(&[
            ("bench", "streaming".into()),
            ("sessions", 4usize.into()),
            ("rate", 123.456789_f64.into()),
            ("note", "has \"quotes\"".into()),
        ]);
        assert_eq!(
            line,
            r#"{"bench": "streaming", "sessions": 4, "rate": 123.456789, "note": "has \"quotes\""}"#
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(json_line(&[("v", f64::NAN.into())]), r#"{"v": null}"#);
        assert_eq!(json_line(&[("v", f64::INFINITY.into())]), r#"{"v": null}"#);
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_line(&[("s", "a\tb\nc".into())]), "{\"s\": \"a\\u0009b\\nc\"}");
    }
}
