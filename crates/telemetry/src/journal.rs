//! Append-only length-prefixed record journal.
//!
//! The trace plane ([`TraceSink`](crate::TraceSink)) emits human-oriented
//! JSON lines; the *journal* is its durable sibling: a binary, append-only
//! record log meant to survive a process kill and be re-read verbatim.  The
//! engine layers its tick codec on top — this module knows nothing about
//! ticks, only about framing bytes.
//!
//! Frame layout, little-endian, no padding:
//!
//! ```text
//! [payload_len: u32][crc64(payload): u64][payload bytes...]
//! ```
//!
//! The CRC is CRC-64/XZ over the payload only, so every record is
//! independently verifiable.  A reader distinguishes three end states:
//!
//! * **clean** — the byte stream ends exactly on a frame boundary;
//! * **truncated** — the stream ends mid-frame (the classic torn tail after
//!   a crash during an append); the complete prefix is still usable and the
//!   torn bytes are reported, not silently dropped;
//! * **corrupt** — a complete frame fails its checksum; that is damage, not
//!   a torn write, and the reader refuses the whole journal.

use std::io::{self, Write};

/// Bytes of framing overhead per record: `u32` length + `u64` checksum.
/// This is also the frame-header size of the TCP service plane, which
/// reuses the journal's exact frame layout (see [`encode_frame_header`]).
pub const FRAME_HEADER_BYTES: usize = 4 + 8;

const HEADER_BYTES: usize = FRAME_HEADER_BYTES;

/// Build the `[payload_len: u32][crc64(payload): u64]` header that frames
/// `payload`, both in the journal and on the service plane's sockets —
/// one frame layout, one implementation.
pub fn encode_frame_header(payload: &[u8]) -> [u8; FRAME_HEADER_BYTES] {
    let len = u32::try_from(payload.len()).expect("frame payload over 4 GiB");
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[..4].copy_from_slice(&len.to_le_bytes());
    header[4..].copy_from_slice(&crc64(payload).to_le_bytes());
    header
}

/// Split a frame header into `(payload_len, expected_crc)`.  The caller
/// reads that many payload bytes and verifies them with [`crc64`].
pub fn decode_frame_header(header: &[u8; FRAME_HEADER_BYTES]) -> (u32, u64) {
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    let crc = u64::from_le_bytes(header[4..].try_into().unwrap());
    (len, crc)
}

/// Nibble-at-a-time table for CRC-64/XZ (reflected polynomial
/// `0xC96C_5795_D787_0F42`).  Sixteen entries keep the table in a cache
/// line; the per-byte cost is two lookups.
const CRC64_TABLE: [u64; 16] = {
    let poly: u64 = 0xC96C_5795_D787_0F42;
    let mut table = [0u64; 16];
    let mut i = 0;
    while i < 16 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 4 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ poly } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ of `bytes`.  Detects any single-bit or single-byte change and
/// any error burst up to 64 bits, which is the property the snapshot and
/// journal planes lean on: one flipped byte can never decode cleanly.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc ^= b as u64;
        crc = (crc >> 4) ^ CRC64_TABLE[(crc & 0xF) as usize];
        crc = (crc >> 4) ^ CRC64_TABLE[(crc & 0xF) as usize];
    }
    !crc
}

/// Append-only writer half of the journal.
///
/// Wraps any [`Write`] target (a file, a [`MemorySink`](crate::MemorySink),
/// a `Vec<u8>`) and frames each payload as described in the module docs.
/// Every append flushes, so after `append` returns the record is out of
/// this process's buffers — the journal's whole point is surviving a kill.
#[derive(Debug)]
pub struct JournalWriter<W: Write> {
    inner: W,
    records: u64,
}

impl<W: Write> JournalWriter<W> {
    /// Start journalling onto `inner`.  The target is treated as
    /// append-only; the writer never seeks.
    pub fn new(inner: W) -> Self {
        JournalWriter { inner, records: 0 }
    }

    /// Frame `payload` and append it.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if u32::try_from(payload.len()).is_err() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "journal record over 4 GiB"));
        }
        self.inner.write_all(&encode_frame_header(payload))?;
        self.inner.write_all(payload)?;
        self.inner.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Borrow the underlying writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// How a journal byte stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalTail {
    /// The stream ended exactly on a frame boundary.
    Clean,
    /// The stream ended mid-frame: a torn write.  The complete records
    /// before it are intact; `dropped_bytes` partial bytes were ignored.
    Truncated {
        /// Bytes of the torn trailing frame that were discarded.
        dropped_bytes: usize,
    },
}

/// A complete frame failed its checksum; record numbering is zero-based.
/// Unlike a torn tail this is damage inside the supposedly-durable prefix,
/// so the reader rejects the journal instead of guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalCorrupt {
    /// Index of the offending record.
    pub record: usize,
}

impl std::fmt::Display for JournalCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal record {} failed its checksum", self.record)
    }
}

impl std::error::Error for JournalCorrupt {}

/// The intact payloads of a journal plus how its byte stream ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalContents<'a> {
    /// Checksummed payloads, in append order, borrowed from the input.
    pub records: Vec<&'a [u8]>,
    /// Whether the stream ended cleanly or with a torn trailing frame.
    pub tail: JournalTail,
}

/// Parse a journal byte stream back into its records.
///
/// A torn trailing frame (crash mid-append) is tolerated and reported via
/// [`JournalTail::Truncated`]; a checksum failure on a *complete* frame is
/// an error.
pub fn read_journal(bytes: &[u8]) -> Result<JournalContents<'_>, JournalCorrupt> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= HEADER_BYTES {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u64::from_le_bytes(bytes[pos + 4..pos + HEADER_BYTES].try_into().unwrap());
        let start = pos + HEADER_BYTES;
        if bytes.len() - start < len {
            return Ok(JournalContents {
                records,
                tail: JournalTail::Truncated { dropped_bytes: bytes.len() - pos },
            });
        }
        let payload = &bytes[start..start + len];
        if crc64(payload) != crc {
            return Err(JournalCorrupt { record: records.len() });
        }
        records.push(payload);
        pos = start + len;
    }
    let tail = if pos == bytes.len() {
        JournalTail::Clean
    } else {
        JournalTail::Truncated { dropped_bytes: bytes.len() - pos }
    };
    Ok(JournalContents { records, tail })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_the_xz_check_value() {
        // The standard check string for CRC-64/XZ.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn round_trip_preserves_records_and_order() {
        let mut w = JournalWriter::new(Vec::new());
        let payloads: Vec<Vec<u8>> = vec![b"".to_vec(), b"a".to_vec(), vec![0xFF; 300]];
        for p in &payloads {
            w.append(p).unwrap();
        }
        assert_eq!(w.records(), 3);
        let bytes = w.into_inner();
        let contents = read_journal(&bytes).unwrap();
        assert_eq!(contents.tail, JournalTail::Clean);
        let got: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        assert_eq!(contents.records, got);
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let mut w = JournalWriter::new(Vec::new());
        w.append(b"first").unwrap();
        w.append(b"second-record").unwrap();
        let bytes = w.into_inner();
        // Cut the stream at every byte length: the intact prefix must
        // always parse, and the tail must be classified correctly.
        let first_frame = HEADER_BYTES + 5;
        for cut in 0..bytes.len() {
            let contents = read_journal(&bytes[..cut]).unwrap();
            if cut < first_frame {
                assert!(contents.records.is_empty(), "cut {cut}");
            } else {
                assert_eq!(contents.records[0], b"first", "cut {cut}");
            }
            let on_boundary = cut == 0 || cut == first_frame;
            assert_eq!(contents.tail == JournalTail::Clean, on_boundary, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_complete_record_is_an_error() {
        let mut w = JournalWriter::new(Vec::new());
        w.append(b"first").unwrap();
        w.append(b"second").unwrap();
        let mut bytes = w.into_inner();
        // Flip a payload byte of the first record.
        bytes[HEADER_BYTES] ^= 0x01;
        assert_eq!(read_journal(&bytes), Err(JournalCorrupt { record: 0 }));
    }
}
