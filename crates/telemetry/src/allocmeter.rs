//! Process-wide heap-allocation metering.
//!
//! A pair of relaxed global counters that a counting [`GlobalAlloc`]
//! wrapper (the workspace's `plis-testalloc` crate, or any `#[global_allocator]`
//! that calls [`record_alloc`]) feeds on every allocation.  The engine's
//! telemetry snapshot reads the tally to report *allocations per ingested
//! element* — the steady-state figure the allocation-discipline tests and
//! the streaming bench assert is zero.
//!
//! Without a counting allocator installed the counters simply stay at
//! zero; reading them is always safe.  Everything here must itself be
//! allocation-free (it runs inside the allocator): two `fetch_add`s and
//! two loads, nothing else.
//!
//! [`GlobalAlloc`]: std::alloc::GlobalAlloc

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Point-in-time reading of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTally {
    /// Heap allocations observed (calls to `alloc`/`realloc` that
    /// returned memory; frees are not counted).
    pub allocs: u64,
    /// Total bytes those allocations requested.
    pub bytes: u64,
}

impl AllocTally {
    /// Counter deltas since an earlier tally (saturating, so a tally from
    /// another process or a fresh baseline never underflows).
    pub fn since(self, baseline: AllocTally) -> AllocTally {
        AllocTally {
            allocs: self.allocs.saturating_sub(baseline.allocs),
            bytes: self.bytes.saturating_sub(baseline.bytes),
        }
    }
}

/// Record one heap allocation of `bytes` bytes.  Called from inside
/// `GlobalAlloc` implementations — must stay allocation-free (it is:
/// two relaxed `fetch_add`s).
#[inline]
pub fn record_alloc(bytes: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// The current process-wide tally.  All-zero unless a counting allocator
/// is installed as the global allocator.
pub fn alloc_tally() -> AllocTally {
    AllocTally {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_moves_with_records_and_since_saturates() {
        let before = alloc_tally();
        record_alloc(128);
        record_alloc(64);
        let after = alloc_tally();
        let delta = after.since(before);
        assert_eq!(delta.allocs, 2);
        assert_eq!(delta.bytes, 192);
        assert_eq!(before.since(after), AllocTally::default(), "saturates at zero");
    }
}
