//! Dependency-free telemetry primitives for the workspace.
//!
//! The build environment has no network access to a crates registry, so the
//! usual observability stack (`hdrhistogram`, `metrics`, `serde_json`) is
//! unavailable; this crate provides the minimal pieces the engine needs,
//! hand-rolled:
//!
//! * [`AtomicHistogram`] / [`HistogramSnapshot`] — a fixed-bucket log-scale
//!   latency histogram in the HdrHistogram family: exact below 16, then 16
//!   log-linear sub-buckets per power of two (≤ 6.25 % relative error),
//!   covering all of `u64` in 976 buckets.  Recording is three relaxed
//!   atomic operations; snapshots merge associatively and answer
//!   p50/p90/p99/max.
//! * [`Counter`] — a relaxed [`AtomicU64`] event counter.
//! * [`allocmeter`] — process-wide heap-allocation counters fed by a
//!   counting global allocator (`plis-testalloc`), read by the engine's
//!   allocations-per-element telemetry.
//! * [`TraceSink`] / [`MemorySink`] — a cloneable JSON-lines event writer
//!   behind a shared handle, for per-tick trace events.
//! * [`JournalWriter`] / [`read_journal`] — an append-only length-prefixed
//!   binary record log (each record CRC-64 checksummed) that tolerates a
//!   torn trailing write; the engine's tick journal and snapshot files are
//!   framed with it.  [`crc64`] is the shared checksum.
//! * [`json_line`] / [`JsonValue`] — the hand-rolled single-line JSON
//!   object renderer the `BENCH_*.json` perf-trajectory files use (moved
//!   here from `plis-bench` so engine snapshots and bench cells serialize
//!   identically; `plis-bench` re-exports them).
//!
//! Everything here is *observational*: nothing in this crate influences
//! algorithm results, so instrumented code paths stay bit-identical to
//! uninstrumented ones (the engine's telemetry test layer asserts this).

#![warn(missing_docs)]

pub mod allocmeter;
mod hist;
mod journal;
mod json;
mod trace;

pub use allocmeter::{alloc_tally, record_alloc, AllocTally};
pub use hist::{AtomicHistogram, HistogramSnapshot, BUCKETS};
pub use journal::{
    crc64, decode_frame_header, encode_frame_header, read_journal, JournalContents, JournalCorrupt,
    JournalTail, JournalWriter, FRAME_HEADER_BYTES,
};
pub use json::{json_line, JsonValue};
pub use trace::{MemorySink, TraceSink};

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter: relaxed atomic increments, suitable for hot
/// paths (one uncontended `fetch_add` per event).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `delta` events.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }
}
