//! Baseline algorithms used by the paper's evaluation (Section 6) plus the
//! reference oracles the test suite compares everything against.
//!
//! * [`seq_bs()`] — the highly-optimised sequential LIS algorithm **Seq-BS**
//!   (`O(n log k)`): maintain the array `B[r]` = smallest tail value of an
//!   increasing subsequence of length `r` and binary-search each element.
//! * [`seq_avl()`] — the sequential WLIS algorithm **Seq-AVL** (`O(n log n)`):
//!   an augmented AVL tree keyed by value, storing the maximum dp value in
//!   every subtree, queried for "max dp among keys < A_i" before each
//!   insertion.
//! * [`swgs_lis`] / [`swgs_wlis`] — a reimplementation of the prior parallel
//!   algorithm **SWGS** (Shen et al., SPAA 2022) in the form this paper
//!   describes it: the phase-parallel framework with a *wake-up scheme* on
//!   top of auxiliary search structures, which costs extra logarithmic
//!   factors in work compared to Algorithms 1/2.  See the module docs for
//!   the exact construction and the substitution notes in `DESIGN.md`.
//! * [`oracle`] — quadratic dynamic programming for LIS and WLIS, a Fenwick
//!   WLIS, and a sequential vEB-based integer LIS; these are the ground
//!   truth the property tests use.

pub mod oracle;
pub mod seq_avl;
pub mod seq_bs;
pub mod swgs;

pub use oracle::{lis_dp_quadratic, lis_veb_integer, wlis_dp_quadratic, wlis_fenwick};
pub use seq_avl::seq_avl;
pub use seq_bs::{seq_bs, seq_bs_length};
pub use swgs::{swgs_lis, swgs_wlis};
