//! A reimplementation of the **SWGS** baseline (Shen, Wan, Gu, Sun,
//! SPAA 2022) in the form this paper characterises it (Section 2):
//! a phase-parallel algorithm that identifies each round's frontier with an
//! auxiliary search structure and a *wake-up scheme*, paying extra
//! logarithmic factors of work compared to Algorithm 1/2.
//!
//! # What is reproduced, and what is substituted
//!
//! The original SWGS uses a range tree for frontier identification plus a
//! randomized wake-up scheme in which every object is re-examined `O(log n)`
//! times w.h.p., for `O(n log³ n)` work w.h.p. and `Õ(k)` span.  This
//! reimplementation keeps the architecture — a segment tree over positions
//! for the readiness test, per-object *blocker registration* for the
//! wake-up scheme, and (for WLIS) a dominant-max range tree for the dp
//! computation — but uses a deterministic blocker choice (the rightmost
//! remaining smaller object before the candidate) instead of the randomized
//! sampling of the original.  Every readiness test and blocker lookup costs
//! `O(log n)`, every object is examined at least once per registration, and
//! the WLIS path pays the same `O(log² n)` per dominant-max query as SWGS,
//! so the implementation retains the qualitative property the paper's
//! comparison rests on: strictly more work per object than Algorithm 1,
//! with the same `Õ(k)`-style round structure.  The substitution is
//! recorded in `DESIGN.md`.

use plis_primitives::par::{maybe_join, GRAIN};
use plis_rangetree::{Point2, RangeMaxTree, ScoreUpdate};
use rayon::prelude::*;

/// A segment tree over positions storing the current value of every
/// *remaining* object (removed objects hold `u64::MAX`), supporting the
/// prefix-min readiness test, the rightmost-smaller-blocker query, and
/// parallel batch removal.
struct SegMinTree {
    /// Contiguous-subtree layout, `2n − 1` slots.
    tree: Vec<u64>,
    n: usize,
}

impl SegMinTree {
    fn new(values: &[u64]) -> Self {
        let n = values.len();
        assert!(n > 0);
        let mut tree = vec![u64::MAX; 2 * n - 1];
        fn build(tree: &mut [u64], values: &[u64]) {
            let m = values.len();
            if m == 1 {
                tree[0] = values[0];
                return;
            }
            let half = m.div_ceil(2);
            let (root, rest) = tree.split_first_mut().expect("non-empty");
            let (l, r) = rest.split_at_mut(2 * half - 1);
            maybe_join(m, GRAIN, || build(l, &values[..half]), || build(r, &values[half..]));
            *root = l[0].min(r[0]);
        }
        build(&mut tree, values);
        SegMinTree { tree, n }
    }

    /// Minimum remaining value among positions `< i` (`u64::MAX` if none).
    fn prefix_min(&self, i: usize) -> u64 {
        fn go(tree: &[u64], m: usize, i: usize) -> u64 {
            if i == 0 {
                return u64::MAX;
            }
            if i >= m {
                return tree[0];
            }
            let half = m.div_ceil(2);
            let (left, right) = (&tree[1..2 * half], &tree[2 * half..]);
            if i <= half {
                go(left, half, i)
            } else {
                left[0].min(go(right, m - half, i - half))
            }
        }
        go(&self.tree, self.n, i)
    }

    /// Largest position `j < i` whose remaining value is `< x`, if any.
    fn rightmost_smaller_before(&self, i: usize, x: u64) -> Option<usize> {
        fn go(tree: &[u64], m: usize, base: usize, i: usize, x: u64) -> Option<usize> {
            if i == 0 || tree[0] >= x {
                return None;
            }
            if m == 1 {
                return Some(base);
            }
            let half = m.div_ceil(2);
            let (left, right) = (&tree[1..2 * half], &tree[2 * half..]);
            if i > half {
                // Prefer the right subtree (larger positions).
                if let Some(j) = go(right, m - half, base + half, i - half, x) {
                    return Some(j);
                }
            }
            go(left, half, base, i.min(half), x)
        }
        go(&self.tree, self.n, 0, i, x)
    }

    /// Remove the (sorted, distinct) positions: set them to `u64::MAX` and
    /// refresh the affected internal nodes, in parallel.
    fn batch_remove(&mut self, positions: &[usize]) {
        fn go(tree: &mut [u64], m: usize, base: usize, positions: &[usize]) {
            if positions.is_empty() {
                return;
            }
            if m == 1 {
                tree[0] = u64::MAX;
                return;
            }
            let half = m.div_ceil(2);
            let cut = positions.partition_point(|&p| p < base + half);
            let (pl, pr) = positions.split_at(cut);
            let (root, rest) = tree.split_first_mut().expect("non-empty");
            let (l, r) = rest.split_at_mut(2 * half - 1);
            maybe_join(
                positions.len(),
                GRAIN / 8,
                || go(l, half, base, pl),
                || go(r, m - half, base + half, pr),
            );
            *root = l[0].min(r[0]);
        }
        let tree = &mut self.tree[..];
        go(tree, self.n, 0, positions);
    }
}

/// Outcome of one candidate examination.
enum Verdict {
    Ready,
    Blocked(usize),
}

/// The SWGS-style phase-parallel LIS: returns the dp values and the LIS
/// length.  Values must be `< u64::MAX`.
pub fn swgs_lis(values: &[u64]) -> (Vec<u32>, u32) {
    run(values, None).0
}

/// The SWGS-style phase-parallel weighted LIS: returns the dp values.
pub fn swgs_wlis(values: &[u64], weights: &[u64]) -> Vec<u64> {
    assert_eq!(values.len(), weights.len(), "one weight per value is required");
    run(values, Some(weights)).1
}

/// Shared driver: computes LIS ranks, and weighted dp values when weights
/// are supplied.
fn run(values: &[u64], weights: Option<&[u64]>) -> ((Vec<u32>, u32), Vec<u64>) {
    let n = values.len();
    if n == 0 {
        return ((Vec::new(), 0), Vec::new());
    }
    assert!(values.iter().all(|&v| v < u64::MAX), "u64::MAX is reserved");
    let mut seg = SegMinTree::new(values);

    // Dominant-max structure for the weighted variant.
    let xranks = weights.map(|_| compress(values));
    let dominant = xranks.as_ref().map(|xr| {
        let pts: Vec<Point2> = (0..n).map(|i| Point2 { x: xr[i], y: i as u64 }).collect();
        RangeMaxTree::new(&pts)
    });

    let mut rank = vec![0u32; n];
    let mut dp = vec![0u64; n];
    // wake[j] = candidates to re-examine once object j is finalised.
    let mut wake: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut candidates: Vec<usize> = (0..n).collect();
    let mut remaining = n;
    let mut round = 0u32;

    while remaining > 0 {
        round += 1;
        assert!(
            !candidates.is_empty(),
            "the wake-up scheme must always supply candidates while objects remain"
        );
        // Examine all candidates in parallel: ready iff no remaining smaller
        // object precedes them (the prefix-min readiness test).
        let verdicts: Vec<Verdict> = candidates
            .par_iter()
            .map(|&i| {
                if seg.prefix_min(i) >= values[i] {
                    Verdict::Ready
                } else {
                    let blocker = seg
                        .rightmost_smaller_before(i, values[i])
                        .expect("a smaller remaining predecessor must exist when not ready");
                    Verdict::Blocked(blocker)
                }
            })
            .collect();

        let mut ready: Vec<usize> = Vec::new();
        for (slot, &i) in verdicts.iter().zip(candidates.iter()) {
            match slot {
                Verdict::Ready => ready.push(i),
                Verdict::Blocked(b) => wake[*b].push(i),
            }
        }
        ready.sort_unstable();

        // Weighted dp values via dominant-max queries (all independent).
        if let (Some(structure), Some(xr), Some(w)) = (&dominant, &xranks, weights) {
            let updates: Vec<(usize, u64)> = ready
                .par_iter()
                .map(|&i| (i, structure.dominant_max(xr[i], i as u64) + w[i]))
                .collect();
            let score_updates: Vec<ScoreUpdate> = updates
                .iter()
                .map(|&(i, value)| ScoreUpdate {
                    point: Point2 { x: xr[i], y: i as u64 },
                    score: value,
                })
                .collect();
            structure.update_batch(&score_updates);
            for (i, value) in updates {
                dp[i] = value;
            }
        }

        for &i in &ready {
            rank[i] = round;
        }
        seg.batch_remove(&ready);
        remaining -= ready.len();

        // Wake the objects registered on this round's frontier.
        let mut next: Vec<usize> = Vec::new();
        for &i in &ready {
            next.append(&mut wake[i]);
        }
        candidates = next;
    }
    ((rank, round), dp)
}

/// Sequential coordinate compression (ties share ranks).
fn compress(values: &[u64]) -> Vec<u64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| values[i]);
    let mut ranks = vec![0u64; n];
    let mut current = 0u64;
    for w in 0..n {
        if w > 0 && values[order[w]] > values[order[w - 1]] {
            current += 1;
        }
        ranks[order[w]] = current;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{lis_dp_quadratic, wlis_dp_quadratic};

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn seg_min_tree_queries() {
        let v = [5u64, 3, 8, 1, 9];
        let mut t = SegMinTree::new(&v);
        assert_eq!(t.prefix_min(0), u64::MAX);
        assert_eq!(t.prefix_min(1), 5);
        assert_eq!(t.prefix_min(3), 3);
        assert_eq!(t.prefix_min(5), 1);
        assert_eq!(t.rightmost_smaller_before(4, 2), Some(3));
        assert_eq!(t.rightmost_smaller_before(3, 4), Some(1));
        assert_eq!(t.rightmost_smaller_before(1, 5), None);
        t.batch_remove(&[1, 3]);
        assert_eq!(t.prefix_min(5), 5);
        assert_eq!(t.rightmost_smaller_before(4, 6), Some(0));
    }

    #[test]
    fn paper_example() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let (dp, k) = swgs_lis(&a);
        assert_eq!(dp, vec![1, 1, 2, 1, 3, 1, 2, 3]);
        assert_eq!(k, 3);
    }

    #[test]
    fn empty_and_monotone_inputs() {
        assert_eq!(swgs_lis(&[]), (vec![], 0));
        assert_eq!(swgs_lis(&[(1u64)]), (vec![1], 1));
        let inc: Vec<u64> = (0..300).collect();
        assert_eq!(swgs_lis(&inc).1, 300);
        let dec: Vec<u64> = (0..300).rev().collect();
        assert_eq!(swgs_lis(&dec).1, 1);
    }

    #[test]
    fn lis_matches_oracle_on_random_inputs() {
        let mut state = 0x7F4A7C159E3779B9u64;
        for trial in 0..10 {
            let n = 200 + trial * 80;
            let a: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 500).collect();
            let (dp, k) = swgs_lis(&a);
            let want = lis_dp_quadratic(&a);
            assert_eq!(dp, want, "trial {trial}");
            assert_eq!(k, *want.iter().max().unwrap());
        }
    }

    #[test]
    fn wlis_matches_oracle_on_random_inputs() {
        let mut state = 0x2545F4914F6CDD1Du64;
        for trial in 0..8 {
            let n = 150 + trial * 60;
            let a: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 300).collect();
            let w: Vec<u64> = (0..n).map(|_| 1 + xorshift(&mut state) % 40).collect();
            assert_eq!(swgs_wlis(&a, &w), wlis_dp_quadratic(&a, &w), "trial {trial}");
        }
    }

    #[test]
    fn wlis_unit_weights_match_lis() {
        let a: Vec<u64> = vec![9, 2, 7, 4, 1, 8, 3, 6, 5];
        let w = vec![1u64; a.len()];
        let dp = swgs_wlis(&a, &w);
        let (ranks, _) = swgs_lis(&a);
        assert_eq!(dp, ranks.iter().map(|&r| r as u64).collect::<Vec<_>>());
    }
}
