//! **Seq-BS**: the sequential `O(n log k)` LIS algorithm the paper uses as
//! its strongest sequential baseline (attributed to Knuth \[50\] in the
//! paper).
//!
//! `B[r]` holds the smallest possible tail value of an increasing
//! subsequence of length `r + 1` seen so far; `B` is always increasing, so
//! each element's dp value is found with one binary search and `B` is
//! patched in `O(1)`.

/// Compute the dp value (LIS length ending at each element) of every element
/// and the overall LIS length.  `O(n log k)` time, `O(k)` auxiliary space.
pub fn seq_bs<T: Ord + Clone>(values: &[T]) -> (Vec<u32>, u32) {
    let mut tails: Vec<T> = Vec::new();
    let mut dp = Vec::with_capacity(values.len());
    for v in values {
        // First position whose tail is >= v: v extends a subsequence of that
        // length; strictly-increasing LIS means equal tails are replaced.
        let pos = tails.partition_point(|t| t < v);
        if pos == tails.len() {
            tails.push(v.clone());
        } else if *v < tails[pos] {
            tails[pos] = v.clone();
        }
        dp.push((pos + 1) as u32);
    }
    (dp, tails.len() as u32)
}

/// Only the LIS length (same algorithm, no dp array).
pub fn seq_bs_length<T: Ord + Clone>(values: &[T]) -> u32 {
    let mut tails: Vec<T> = Vec::new();
    for v in values {
        let pos = tails.partition_point(|t| t < v);
        if pos == tails.len() {
            tails.push(v.clone());
        } else if *v < tails[pos] {
            tails[pos] = v.clone();
        }
    }
    tails.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::lis_dp_quadratic;

    #[test]
    fn paper_example() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let (dp, k) = seq_bs(&a);
        assert_eq!(dp, vec![1, 1, 2, 1, 3, 1, 2, 3]);
        assert_eq!(k, 3);
        assert_eq!(seq_bs_length(&a), 3);
    }

    #[test]
    fn empty_monotone_and_constant() {
        assert_eq!(seq_bs::<u64>(&[]), (vec![], 0));
        assert_eq!(seq_bs(&[1u64, 2, 3, 4]).1, 4);
        assert_eq!(seq_bs(&[4u64, 3, 2, 1]).1, 1);
        assert_eq!(seq_bs(&[7u64; 10]).1, 1);
    }

    #[test]
    fn matches_quadratic_oracle() {
        let mut state = 0xA3EC59DC36821AEBu64;
        for trial in 0..15 {
            let n = 100 + trial * 77;
            let a: Vec<u64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % 400
                })
                .collect();
            let (dp, k) = seq_bs(&a);
            let want = lis_dp_quadratic(&a);
            assert_eq!(dp, want, "trial {trial}");
            assert_eq!(k, *want.iter().max().unwrap());
        }
    }

    #[test]
    fn works_on_non_copy_types() {
        let words: Vec<String> = ["b", "a", "c", "aa", "d"].iter().map(|s| s.to_string()).collect();
        let (_, k) = seq_bs(&words);
        assert_eq!(k, 3); // "a" < "aa" < "d" (among others)
    }
}
