//! Reference implementations used as test oracles and as additional
//! sequential baselines mentioned in the paper's preliminaries.

use plis_veb::VebTree;

/// `O(n²)` LIS dynamic programming (Equation 1): the ground truth for dp
/// values on small inputs.
pub fn lis_dp_quadratic<T: Ord>(values: &[T]) -> Vec<u32> {
    let n = values.len();
    let mut dp = vec![0u32; n];
    for i in 0..n {
        dp[i] = 1;
        for j in 0..i {
            if values[j] < values[i] {
                dp[i] = dp[i].max(dp[j] + 1);
            }
        }
    }
    dp
}

/// `O(n²)` weighted LIS dynamic programming (Equation 2).
pub fn wlis_dp_quadratic<T: Ord>(values: &[T], weights: &[u64]) -> Vec<u64> {
    assert_eq!(values.len(), weights.len());
    let n = values.len();
    let mut dp = vec![0u64; n];
    for i in 0..n {
        let mut best = 0;
        for j in 0..i {
            if values[j] < values[i] {
                best = best.max(dp[j]);
            }
        }
        dp[i] = best + weights[i];
    }
    dp
}

/// `O(n log n)` sequential weighted LIS using a Fenwick tree over the
/// coordinate-compressed values (prefix maxima of dp).  Used as a fast
/// sequential WLIS cross-check.
pub fn wlis_fenwick<T: Ord + Sync>(values: &[T], weights: &[u64]) -> Vec<u64> {
    assert_eq!(values.len(), weights.len());
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let xr = compress_ranks_for_seq(values);
    let m = xr.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut fen = vec![0u64; m + 1];
    let prefix_max = |fen: &[u64], mut i: usize| -> u64 {
        let mut best = 0;
        while i > 0 {
            best = best.max(fen[i]);
            i -= i & i.wrapping_neg();
        }
        best
    };
    let raise = |fen: &mut [u64], mut i: usize, v: u64| {
        while i < fen.len() {
            fen[i] = fen[i].max(v);
            i += i & i.wrapping_neg();
        }
    };
    let mut dp = vec![0u64; n];
    for i in 0..n {
        // Keys strictly smaller than values[i] have compressed rank < xr[i],
        // i.e. Fenwick positions 1..=xr[i].
        let best = prefix_max(&fen, xr[i] as usize);
        dp[i] = best + weights[i];
        raise(&mut fen, xr[i] as usize + 1, dp[i]);
    }
    dp
}

/// Minimal sequential coordinate compression (the `plis-lis` crate offers a
/// parallel one; this copy keeps the baselines self-contained).
pub(crate) fn compress_ranks_for_seq<T: Ord>(values: &[T]) -> Vec<u64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].cmp(&values[b]));
    let mut ranks = vec![0u64; n];
    let mut current = 0u64;
    for w in 0..n {
        if w > 0 && values[order[w]] > values[order[w - 1]] {
            current += 1;
        }
        ranks[order[w]] = current;
    }
    ranks
}

/// Sequential `O(n log log n)` LIS for *integer* inputs using a vEB tree, as
/// sketched in the paper's preliminaries: `B[r]` of Seq-BS is replaced by a
/// vEB tree keyed by value whose stored dp values are monotone, so the
/// binary search becomes a predecessor query.
///
/// Returns the dp values and the LIS length.  The values must be smaller
/// than `universe`.
pub fn lis_veb_integer(values: &[u64], universe: u64) -> (Vec<u32>, u32) {
    let mut veb = VebTree::new(universe.max(1));
    // dp_at[v] = dp value currently associated with tail value v.
    let mut dp_at = vec![0u32; universe.max(1) as usize];
    let mut dp = Vec::with_capacity(values.len());
    let mut k = 0u32;
    for &v in values {
        // Largest tail value strictly smaller than v.
        let best = veb.pred(v).map(|p| dp_at[p as usize]).unwrap_or(0);
        let mine = best + 1;
        dp.push(mine);
        k = k.max(mine);
        // Insert v as a tail of length `mine`, evicting dominated tails:
        // any stored value >= v with dp <= mine is no longer useful.
        if veb.contains(v) {
            if dp_at[v as usize] < mine {
                dp_at[v as usize] = mine;
            }
        } else {
            veb.insert(v);
            dp_at[v as usize] = mine;
        }
        // Maintain monotonicity: successors with dp <= mine are dominated.
        let mut cur = v;
        while let Some(nxt) = veb.succ(cur) {
            if dp_at[nxt as usize] <= mine {
                veb.delete(nxt);
                cur = v;
            } else {
                break;
            }
        }
    }
    (dp, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn quadratic_oracles_on_paper_example() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        assert_eq!(lis_dp_quadratic(&a), vec![1, 1, 2, 1, 3, 1, 2, 3]);
        let w = vec![1u64; a.len()];
        assert_eq!(wlis_dp_quadratic(&a, &w), vec![1, 1, 2, 1, 3, 1, 2, 3]);
    }

    #[test]
    fn fenwick_wlis_matches_quadratic() {
        let mut state = 0x1234ABCD5678u64;
        for trial in 0..10 {
            let n = 120 + trial * 40;
            let a: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 250).collect();
            let w: Vec<u64> = (0..n).map(|_| 1 + xorshift(&mut state) % 30).collect();
            assert_eq!(wlis_fenwick(&a, &w), wlis_dp_quadratic(&a, &w), "trial {trial}");
        }
    }

    #[test]
    fn veb_integer_lis_matches_quadratic() {
        let mut state = 0xBADC0FFEE0DDF00Du64;
        for trial in 0..10 {
            let universe = 512u64;
            let n = 150 + trial * 50;
            let a: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % universe).collect();
            let (dp, k) = lis_veb_integer(&a, universe);
            let want = lis_dp_quadratic(&a);
            assert_eq!(dp, want, "trial {trial}");
            assert_eq!(k, *want.iter().max().unwrap());
        }
    }

    #[test]
    fn veb_integer_lis_edge_cases() {
        assert_eq!(lis_veb_integer(&[], 10), (vec![], 0));
        assert_eq!(lis_veb_integer(&[0], 1), (vec![1], 1));
        assert_eq!(lis_veb_integer(&[3, 3, 3], 4), (vec![1, 1, 1], 1));
        assert_eq!(lis_veb_integer(&[0, 1, 2, 3], 4).1, 4);
        assert_eq!(lis_veb_integer(&[3, 2, 1, 0], 4).1, 1);
    }
}
