//! **Seq-AVL**: the sequential weighted-LIS baseline of Section 6.
//!
//! An AVL tree keyed by the input values, where every node is augmented with
//! the maximum dp value stored in its subtree.  Iterating over the input,
//! each object queries the maximum dp among all strictly smaller keys
//! (`O(log n)`), computes its own dp, and inserts itself (`O(log n)`), for
//! `O(n log n)` total work — exactly the algorithm the paper describes.
//!
//! Keys may repeat (equal input values): every inserted object becomes its
//! own tree node, with ties ordered by insertion, and the "strictly smaller"
//! query only descends into subtrees of strictly smaller keys, so duplicates
//! never chain off each other.

/// One AVL node: key (value rank of the object), its own dp, subtree
/// aggregates, child links (indices into the arena).
struct AvlNode {
    key: u64,
    dp: u64,
    subtree_max_dp: u64,
    height: i32,
    left: Option<usize>,
    right: Option<usize>,
}

/// An arena-allocated augmented AVL tree.
#[derive(Default)]
struct AvlTree {
    nodes: Vec<AvlNode>,
    root: Option<usize>,
}

impl AvlTree {
    fn height(&self, node: Option<usize>) -> i32 {
        node.map_or(0, |i| self.nodes[i].height)
    }

    fn subtree_max(&self, node: Option<usize>) -> u64 {
        node.map_or(0, |i| self.nodes[i].subtree_max_dp)
    }

    fn refresh(&mut self, i: usize) {
        let (l, r) = (self.nodes[i].left, self.nodes[i].right);
        self.nodes[i].height = 1 + self.height(l).max(self.height(r));
        self.nodes[i].subtree_max_dp =
            self.nodes[i].dp.max(self.subtree_max(l)).max(self.subtree_max(r));
    }

    fn rotate_right(&mut self, i: usize) -> usize {
        let l = self.nodes[i].left.expect("rotate_right needs a left child");
        self.nodes[i].left = self.nodes[l].right;
        self.nodes[l].right = Some(i);
        self.refresh(i);
        self.refresh(l);
        l
    }

    fn rotate_left(&mut self, i: usize) -> usize {
        let r = self.nodes[i].right.expect("rotate_left needs a right child");
        self.nodes[i].right = self.nodes[r].left;
        self.nodes[r].left = Some(i);
        self.refresh(i);
        self.refresh(r);
        r
    }

    fn rebalance(&mut self, i: usize) -> usize {
        self.refresh(i);
        let balance = self.height(self.nodes[i].left) - self.height(self.nodes[i].right);
        if balance > 1 {
            let l = self.nodes[i].left.expect("positive balance implies a left child");
            if self.height(self.nodes[l].left) < self.height(self.nodes[l].right) {
                let new_l = self.rotate_left(l);
                self.nodes[i].left = Some(new_l);
            }
            return self.rotate_right(i);
        }
        if balance < -1 {
            let r = self.nodes[i].right.expect("negative balance implies a right child");
            if self.height(self.nodes[r].right) < self.height(self.nodes[r].left) {
                let new_r = self.rotate_right(r);
                self.nodes[i].right = Some(new_r);
            }
            return self.rotate_left(i);
        }
        i
    }

    /// Maximum dp among nodes with key strictly smaller than `key`.
    fn max_below(&self, key: u64) -> u64 {
        let mut best = 0u64;
        let mut cur = self.root;
        while let Some(i) = cur {
            if self.nodes[i].key < key {
                // This node and its whole left subtree qualify.
                best = best.max(self.nodes[i].dp).max(self.subtree_max(self.nodes[i].left));
                cur = self.nodes[i].right;
            } else {
                cur = self.nodes[i].left;
            }
        }
        best
    }

    fn insert(&mut self, key: u64, dp: u64) {
        let new_idx = self.nodes.len();
        self.nodes.push(AvlNode {
            key,
            dp,
            subtree_max_dp: dp,
            height: 1,
            left: None,
            right: None,
        });
        self.root = Some(self.insert_at(self.root, new_idx));
    }

    fn insert_at(&mut self, node: Option<usize>, new_idx: usize) -> usize {
        let Some(i) = node else { return new_idx };
        if self.nodes[new_idx].key < self.nodes[i].key {
            let child = self.insert_at(self.nodes[i].left, new_idx);
            self.nodes[i].left = Some(child);
        } else {
            let child = self.insert_at(self.nodes[i].right, new_idx);
            self.nodes[i].right = Some(child);
        }
        self.rebalance(i)
    }
}

/// Sequential weighted LIS with an augmented AVL tree (`O(n log n)`).
/// Returns the dp values (`dp[i] = w_i + max(0, max_{j<i, A_j<A_i} dp[j])`).
pub fn seq_avl<T: Ord>(values: &[T], weights: &[u64]) -> Vec<u64> {
    assert_eq!(values.len(), weights.len(), "one weight per value is required");
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    // The AVL stores u64 keys; compress the values to dense ranks first so
    // the algorithm stays comparison-based over arbitrary `T`.
    let ranks = super::oracle::compress_ranks_for_seq(values);
    let mut tree = AvlTree::default();
    let mut dp = Vec::with_capacity(n);
    for i in 0..n {
        let best = tree.max_below(ranks[i]);
        let mine = best + weights[i];
        dp.push(mine);
        tree.insert(ranks[i], mine);
    }
    dp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::wlis_dp_quadratic;

    #[test]
    fn unit_weights_match_lis_dp() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let w = vec![1u64; a.len()];
        assert_eq!(seq_avl(&a, &w), vec![1, 1, 2, 1, 3, 1, 2, 3]);
    }

    #[test]
    fn empty_and_single() {
        assert!(seq_avl::<u64>(&[], &[]).is_empty());
        assert_eq!(seq_avl(&[5u64], &[9]), vec![9]);
    }

    #[test]
    fn duplicates_never_chain() {
        let a = [4u64, 4, 4, 4];
        let w = [3u64, 1, 7, 2];
        assert_eq!(seq_avl(&a, &w), vec![3, 1, 7, 2]);
    }

    #[test]
    fn matches_quadratic_oracle_on_random_inputs() {
        let mut state = 0x5851F42D4C957F2Du64;
        for trial in 0..12 {
            let n = 150 + trial * 60;
            let a: Vec<u64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % 300
                })
                .collect();
            let w: Vec<u64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    1 + state % 40
                })
                .collect();
            assert_eq!(seq_avl(&a, &w), wlis_dp_quadratic(&a, &w), "trial {trial}");
        }
    }

    #[test]
    fn tree_stays_balanced_on_sorted_inserts() {
        // Inserting a sorted sequence is the classic AVL worst case; with
        // n = 4096 the tree height must stay within 1.44·log2(n) + 2.
        let n = 4096u64;
        let a: Vec<u64> = (0..n).collect();
        let w = vec![1u64; n as usize];
        let dp = seq_avl(&a, &w);
        assert_eq!(dp[n as usize - 1], n);
    }
}
