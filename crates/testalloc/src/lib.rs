//! A counting global allocator for the workspace's allocation-discipline
//! tests and benches.
//!
//! [`CountingAlloc`] wraps the system allocator and reports every
//! allocation into [`plis_telemetry::allocmeter`], where the engine's
//! telemetry snapshot (and the test asserting zero steady-state
//! allocations per ingested element) reads it back.  Install it in a test
//! or bench binary with:
//!
//! ```
//! use plis_testalloc::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//!
//! let before = plis_telemetry::alloc_tally();
//! let v: Vec<u64> = Vec::with_capacity(8);
//! let delta = plis_telemetry::alloc_tally().since(before);
//! assert!(delta.allocs >= 1);
//! drop(v);
//! ```
//!
//! This is deliberately a separate leaf crate: the counting hook belongs
//! to the *binary* that opts in, never to the library crates — production
//! builds keep the plain system allocator and the zero-cost inert
//! counters.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};

/// The system allocator plus one [`plis_telemetry::record_alloc`] call per
/// successful allocation.  Frees are forwarded untouched: the meter counts
/// allocator *traffic* (what a zero-allocation steady state must not
/// generate), not live bytes.
pub struct CountingAlloc;

// SAFETY: every method forwards to the system allocator with the caller's
// layout unchanged; the only addition is a relaxed-atomic side effect,
// which itself never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            plis_telemetry::record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            plis_telemetry::record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            plis_telemetry::record_alloc(new_size);
        }
        new_ptr
    }
}
