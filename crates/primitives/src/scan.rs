//! Parallel scans (prefix operations).
//!
//! The WLIS algorithm (Alg. 5 of the paper) needs prefix max/min over the
//! sorted deletion batch to build the survivor mappings, and the LIS
//! reconstruction (Appendix A) needs prefix sums of "effective sizes" to
//! place frontier elements into an output array.  Both are classic two-pass
//! (up-sweep / down-sweep) scans with `O(n)` work and `O(log n)` span.

use crate::par::{par_chunks_mut_for, par_map_collect_with_grain, GRAIN};

/// Exclusive scan with identity `id` and associative operation `op`.
/// Returns `(prefix, total)` where `prefix[i] = op(id, a[0], …, a[i-1])`.
///
/// Work `O(n)`, span `O(log n)`.
pub fn exclusive_scan<T, F>(a: &[T], id: T, op: F) -> (Vec<T>, T)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    let n = a.len();
    let mut out = vec![id.clone(); n];
    if n == 0 {
        return (out, id);
    }
    // Up-sweep: compute the sum of each block; down-sweep: scan each block
    // with the block prefix as the carry-in.
    let nblocks = n.div_ceil(GRAIN);
    if nblocks == 1 {
        let mut acc = id.clone();
        for i in 0..n {
            out[i] = acc.clone();
            acc = op(&acc, &a[i]);
        }
        return (out, acc);
    }
    // Each index stands for a GRAIN-sized block of work ⇒ grain 1.
    let block_sums: Vec<T> = par_map_collect_with_grain(nblocks, 1, |b| {
        let chunk = &a[b * GRAIN..((b + 1) * GRAIN).min(n)];
        let mut acc = id.clone();
        for item in chunk {
            acc = op(&acc, item);
        }
        acc
    });
    // Sequential scan over the (small) block sums.
    let mut carries = vec![id.clone(); nblocks];
    let mut acc = id.clone();
    for b in 0..nblocks {
        carries[b] = acc.clone();
        acc = op(&acc, &block_sums[b]);
    }
    let total = acc;
    // Down-sweep each block in parallel.
    par_chunks_mut_for(&mut out, GRAIN, |b, ochunk| {
        let achunk = &a[b * GRAIN..b * GRAIN + ochunk.len()];
        let mut acc = carries[b].clone();
        for (o, item) in ochunk.iter_mut().zip(achunk.iter()) {
            *o = acc.clone();
            acc = op(&acc, item);
        }
    });
    (out, total)
}

/// Inclusive scan: `out[i] = op(a[0], …, a[i])`.
pub fn inclusive_scan<T, F>(a: &[T], id: T, op: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    let (mut ex, _total) = exclusive_scan(a, id, &op);
    par_chunks_mut_for(&mut ex, GRAIN, |b, chunk| {
        let achunk = &a[b * GRAIN..b * GRAIN + chunk.len()];
        for (o, x) in chunk.iter_mut().zip(achunk.iter()) {
            *o = op(o, x);
        }
    });
    ex
}

/// In-place exclusive scan specialised for `usize` sums.  Returns the total.
/// This is the common case for computing output offsets of a pack.
pub fn scan_inplace(a: &mut [usize]) -> usize {
    let copy: Vec<usize> = a.to_vec();
    let (ex, total) = exclusive_scan(&copy, 0usize, |x, y| x + y);
    a.copy_from_slice(&ex);
    total
}

/// Prefix minimum: `out[i] = min(a[0..=i])`.  Used to characterise prefix-min
/// objects (Definition 3.1 of the paper) in tests and oracles.
pub fn prefix_min<T: Ord + Clone + Send + Sync>(a: &[T]) -> Vec<T> {
    if a.is_empty() {
        return Vec::new();
    }
    inclusive_scan(a, a[0].clone(), |x, y| if x <= y { x.clone() } else { y.clone() })
}

/// Prefix maximum: `out[i] = max(a[0..=i])`.
pub fn prefix_max<T: Ord + Clone + Send + Sync>(a: &[T]) -> Vec<T> {
    if a.is_empty() {
        return Vec::new();
    }
    inclusive_scan(a, a[0].clone(), |x, y| if x >= y { x.clone() } else { y.clone() })
}

/// Suffix minimum: `out[i] = min(a[i..])`.  The survivor-successor
/// construction of Alg. 5 is a suffix scan over the batch.
pub fn suffix_min<T: Ord + Clone + Send + Sync>(a: &[T]) -> Vec<T> {
    if a.is_empty() {
        return Vec::new();
    }
    let rev: Vec<T> = a.iter().rev().cloned().collect();
    let mut out = prefix_min(&rev);
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_exclusive(a: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(a.len());
        let mut acc = 0u64;
        for &x in a {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn exclusive_scan_empty() {
        let (v, t) = exclusive_scan::<u64, _>(&[], 0, |a, b| a + b);
        assert!(v.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn exclusive_scan_small_matches_sequential() {
        let a: Vec<u64> = (0..100).map(|i| (i * 7 + 3) % 13).collect();
        let (got, total) = exclusive_scan(&a, 0, |x, y| x + y);
        let (want, wtotal) = seq_exclusive(&a);
        assert_eq!(got, want);
        assert_eq!(total, wtotal);
    }

    #[test]
    fn exclusive_scan_large_matches_sequential() {
        let a: Vec<u64> = (0..100_000u64).map(|i| (i * 2654435761) % 1000).collect();
        let (got, total) = exclusive_scan(&a, 0, |x, y| x + y);
        let (want, wtotal) = seq_exclusive(&a);
        assert_eq!(got, want);
        assert_eq!(total, wtotal);
    }

    #[test]
    fn inclusive_scan_is_shifted_exclusive() {
        let a: Vec<u64> = (0..10_000u64).map(|i| i % 17).collect();
        let inc = inclusive_scan(&a, 0, |x, y| x + y);
        let (exc, total) = exclusive_scan(&a, 0, |x, y| x + y);
        for i in 0..a.len() {
            assert_eq!(inc[i], exc[i] + a[i]);
        }
        assert_eq!(*inc.last().unwrap(), total);
    }

    #[test]
    fn scan_inplace_returns_total() {
        let mut a = vec![1usize; 5000];
        let total = scan_inplace(&mut a);
        assert_eq!(total, 5000);
        assert_eq!(a[0], 0);
        assert_eq!(a[4999], 4999);
    }

    #[test]
    fn prefix_min_matches_naive() {
        let a: Vec<i64> = vec![5, 3, 4, 2, 6, 1, 7, 1, 0];
        assert_eq!(prefix_min(&a), vec![5, 3, 3, 2, 2, 1, 1, 1, 0]);
    }

    #[test]
    fn prefix_max_matches_naive() {
        let a: Vec<i64> = vec![1, 3, 2, 5, 4];
        assert_eq!(prefix_max(&a), vec![1, 3, 3, 5, 5]);
    }

    #[test]
    fn suffix_min_matches_naive() {
        let a: Vec<i64> = vec![4, 2, 7, 1, 9];
        assert_eq!(suffix_min(&a), vec![1, 1, 1, 1, 9]);
    }

    #[test]
    fn prefix_min_large_random() {
        let a: Vec<u64> = (0..50_000u64).map(|i| (i * 48271) % 65536).collect();
        let got = prefix_min(&a);
        let mut cur = u64::MAX;
        for i in 0..a.len() {
            cur = cur.min(a[i]);
            assert_eq!(got[i], cur);
        }
    }

    #[test]
    fn prefix_min_empty() {
        assert!(prefix_min::<u64>(&[]).is_empty());
        assert!(suffix_min::<u64>(&[]).is_empty());
    }
}
