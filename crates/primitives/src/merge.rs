//! Parallel merge of sorted sequences.
//!
//! Appendix A of the paper merges consecutive frontiers `F_r` and `F_{r-1}`
//! by index to find, for every rank-`r` object, the last rank-`(r-1)` object
//! before it (its best decision).  A parallel merge with `O(n)` work and
//! `O(log n)` span (dual binary search splitting) is exactly what is needed.

use crate::par::{maybe_join, GRAIN};

/// Merge two sorted slices into one sorted vector using `cmp` as the order.
/// Stable: on ties elements of `a` come first.
///
/// Work `O(|a| + |b|)`, span `O(log² (|a|+|b|))`.
pub fn merge_by<T, F>(a: &[T], b: &[T], cmp: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync + Copy,
{
    let mut out = vec![None; a.len() + b.len()];
    merge_into(a, b, &mut out, cmp);
    out.into_iter().map(|x| x.expect("merge filled every slot")).collect()
}

/// Merge two sorted slices comparing by a key extraction function.
pub fn merge_by_key<T, K, F>(a: &[T], b: &[T], key: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync + Copy,
{
    merge_by(a, b, move |x, y| key(x).cmp(&key(y)))
}

/// Merge two sorted slices of `Ord` elements.
pub fn parallel_merge<T: Ord + Clone + Send + Sync>(a: &[T], b: &[T]) -> Vec<T> {
    merge_by(a, b, |x, y| x.cmp(y))
}

fn merge_into<T, F>(a: &[T], b: &[T], out: &mut [Option<T>], cmp: F)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync + Copy,
{
    let n = a.len() + b.len();
    debug_assert_eq!(out.len(), n);
    if n <= GRAIN {
        // Sequential two-finger merge.
        let (mut i, mut j) = (0, 0);
        for slot in out.iter_mut() {
            if i < a.len() && (j >= b.len() || cmp(&a[i], &b[j]) != std::cmp::Ordering::Greater) {
                *slot = Some(a[i].clone());
                i += 1;
            } else {
                *slot = Some(b[j].clone());
                j += 1;
            }
        }
        return;
    }
    // Split the larger side in half and binary-search the split point in the
    // other side; recurse on both halves in parallel.
    if a.len() >= b.len() {
        let amid = a.len() / 2;
        let pivot = &a[amid];
        // Send b-elements equal to the pivot right, where a's equal run
        // (starting at a[amid]) precedes them — ties from `a` first.
        let bmid = partition_point(b, |x| cmp(x, pivot) == std::cmp::Ordering::Less);
        let (out_l, out_r) = out.split_at_mut(amid + bmid);
        maybe_join(
            n,
            GRAIN,
            || merge_into(&a[..amid], &b[..bmid], out_l, cmp),
            || merge_into(&a[amid..], &b[bmid..], out_r, cmp),
        );
    } else {
        let bmid = b.len() / 2;
        let pivot = &b[bmid];
        // Elements of `a` equal to the pivot must go left of it for stability.
        let amid = partition_point(a, |x| cmp(x, pivot) != std::cmp::Ordering::Greater);
        let (out_l, out_r) = out.split_at_mut(amid + bmid);
        maybe_join(
            n,
            GRAIN,
            || merge_into(&a[..amid], &b[..bmid], out_l, cmp),
            || merge_into(&a[amid..], &b[bmid..], out_r, cmp),
        );
    }
}

/// Two-finger difference of two sorted, duplicate-free slices: after the
/// call `only_a` holds the elements of `a` not in `b` and `only_b` the
/// elements of `b` not in `a`, both sorted.  The output buffers are cleared
/// first but keep their capacity, so a caller that reuses them across calls
/// (the streaming sessions' tail-delta computation every ingest) stays off
/// the allocator once the buffers have grown to steady-state size.
/// `O(|a| + |b|)`.
pub fn sorted_diff_into(a: &[u64], b: &[u64], only_a: &mut Vec<u64>, only_b: &mut Vec<u64>) {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    only_a.clear();
    only_b.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                only_a.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                only_b.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    only_a.extend_from_slice(&a[i..]);
    only_b.extend_from_slice(&b[j..]);
}

/// `slice.partition_point` for a generic predicate (first index where the
/// predicate turns false).
fn partition_point<T, P: Fn(&T) -> bool>(s: &[T], pred: P) -> usize {
    let (mut lo, mut hi) = (0usize, s.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(&s[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_empty_sides() {
        let a: Vec<u32> = vec![];
        let b = vec![1, 2, 3];
        assert_eq!(parallel_merge(&a, &b), b);
        assert_eq!(parallel_merge(&b, &a), b);
        assert!(parallel_merge::<u32>(&[], &[]).is_empty());
    }

    #[test]
    fn merge_small() {
        let a = vec![1, 4, 7];
        let b = vec![2, 3, 8, 9];
        assert_eq!(parallel_merge(&a, &b), vec![1, 2, 3, 4, 7, 8, 9]);
    }

    #[test]
    fn merge_large_matches_std() {
        let a: Vec<u64> = (0..80_000u64).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..50_000u64).map(|i| i * 5 + 1).collect();
        let got = parallel_merge(&a, &b);
        let mut want = [a.clone(), b.clone()].concat();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn merge_is_stable_on_ties() {
        // Tag elements with their origin; ties must keep a-before-b order.
        let a: Vec<(u32, char)> = vec![(1, 'a'), (2, 'a'), (2, 'a'), (5, 'a')];
        let b: Vec<(u32, char)> = vec![(2, 'b'), (3, 'b'), (5, 'b')];
        let got = merge_by_key(&a, &b, |x| x.0);
        assert_eq!(got, vec![(1, 'a'), (2, 'a'), (2, 'a'), (2, 'b'), (3, 'b'), (5, 'a'), (5, 'b')]);
    }

    #[test]
    fn merge_is_stable_on_ties_through_the_parallel_path() {
        // Heavy-duplicate input large enough to take the splitting path:
        // stability must hold even when the split pivot lands inside a run
        // of ties (this was a latent bug while nothing parallel-sorted).
        let a: Vec<(u32, usize)> = (0..40_000).map(|i| ((i % 5) as u32, i)).collect();
        let b: Vec<(u32, usize)> = (0..40_000).map(|i| ((i % 5) as u32, 100_000 + i)).collect();
        let mut asorted = a.clone();
        asorted.sort_by_key(|p| p.0);
        let mut bsorted = b.clone();
        bsorted.sort_by_key(|p| p.0);
        let got = merge_by_key(&asorted, &bsorted, |p| p.0);
        for w in got.windows(2) {
            if w[0].0 == w[1].0 {
                // Within a tie run: all of a's elements (ids < 100_000) come
                // before b's, and each side keeps its own order.
                assert!(
                    !(w[0].1 >= 100_000 && w[1].1 < 100_000),
                    "b-element {:?} precedes a-element {:?}",
                    w[0],
                    w[1]
                );
                let same_side = (w[0].1 < 100_000) == (w[1].1 < 100_000);
                if same_side {
                    assert!(w[0].1 < w[1].1, "within-side order broken: {:?} {:?}", w[0], w[1]);
                }
            }
        }
    }

    #[test]
    fn merge_large_with_duplicates() {
        let a: Vec<u32> = (0..60_000).map(|i| i % 100).collect::<Vec<_>>();
        let b: Vec<u32> = (0..40_000).map(|i| i % 77).collect::<Vec<_>>();
        let mut asorted = a.clone();
        asorted.sort();
        let mut bsorted = b.clone();
        bsorted.sort();
        let got = parallel_merge(&asorted, &bsorted);
        let mut want = [asorted, bsorted].concat();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn sorted_diff_into_basics() {
        let (mut only_a, mut only_b) = (Vec::new(), Vec::new());
        sorted_diff_into(&[1, 3, 5, 9], &[3, 4, 9, 12], &mut only_a, &mut only_b);
        assert_eq!(only_a, vec![1, 5]);
        assert_eq!(only_b, vec![4, 12]);
        // Reuse the buffers: contents are replaced, not appended.
        sorted_diff_into(&[], &[7], &mut only_a, &mut only_b);
        assert_eq!(only_a, Vec::<u64>::new());
        assert_eq!(only_b, vec![7]);
        sorted_diff_into(&[2, 4], &[2, 4], &mut only_a, &mut only_b);
        assert!(only_a.is_empty() && only_b.is_empty());
    }

    #[test]
    fn partition_point_basic() {
        let v = [1, 2, 3, 4, 10, 20];
        assert_eq!(partition_point(&v, |&x| x < 4), 3);
        assert_eq!(partition_point(&v, |&x| x < 100), 6);
        assert_eq!(partition_point(&v, |&x| x < 0), 0);
    }
}
