//! Parallel primitives in the binary fork-join model.
//!
//! The SPAA 2023 paper "Parallel Longest Increasing Subsequence and van Emde
//! Boas Trees" assumes the classic multithreaded binary-forking model and is
//! implemented in the paper on top of ParlayLib.  This crate provides the
//! small set of primitives the algorithms need, built on top of
//! [`rayon::join`] (which implements exactly the binary fork-join model with
//! a randomized work-stealing scheduler):
//!
//! * [`scan`] — inclusive/exclusive scans (prefix sums) with an arbitrary
//!   associative operation, including prefix min and prefix max
//!   ([`prefix_min`], [`prefix_max`]).
//! * [`pack()`] — parallel filter / pack of the elements selected by a flag
//!   vector or predicate.
//! * [`merge`] — parallel merge of two sorted sequences.
//! * [`sort`] — parallel (merge) sort and a stable sort-by-key.
//! * [`group`] — grouping elements by small integer keys (used to split the
//!   rank array into frontiers), i.e. a counting sort.
//! * [`par`] — granularity-controlled parallel-for helpers and `maybe_join`.
//! * [`dommax`] — the [`DominantMaxStore`] trait: the `RangeStruct`
//!   interface of Algorithm 2, implemented by `plis-rangetree` and
//!   `plis-rangeveb` and consumed generically by the WLIS drivers.
//!
//! Every primitive has a sequential fallback below a granularity threshold so
//! small inputs do not pay the fork-join overhead; the defaults follow the
//! usual ParlayLib block size of a few thousand elements.

pub mod dommax;
pub mod group;
pub mod merge;
pub mod pack;
pub mod par;
pub mod scan;
pub mod sort;

pub use dommax::{DomMaxCounters, DomMaxStats, DominantMaxStore};
pub use group::{group_by_rank, histogram};
pub use merge::{merge_by, merge_by_key, parallel_merge, sorted_diff_into};
pub use pack::{pack, pack_index, pack_indices_where, partition_flags};
pub use par::{
    adaptive_grain, maybe_join, par_chunks_mut_for, par_for_each_chunk, par_map_collect,
    par_map_collect_with_grain, parallel_for, GRAIN, MIN_ADAPTIVE_GRAIN,
};
pub use scan::{exclusive_scan, inclusive_scan, prefix_max, prefix_min, scan_inplace, suffix_min};
pub use sort::{par_sort, par_sort_by, par_sort_by_key, par_sort_unstable};
