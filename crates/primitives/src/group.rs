//! Grouping by small integer keys (parallel counting sort).
//!
//! Algorithm 2 needs the frontiers `F_1..k`: all indices grouped by their
//! rank.  Ranks lie in `1..=k`, so a counting sort achieves the `O(n)` work /
//! `O(log n + k)`-ish span grouping the paper calls for, instead of a full
//! comparison sort.

use rayon::prelude::*;

/// Histogram of key occurrences: `out[key]` = number of `i` with
/// `keys[i] == key`.  `num_keys` must be strictly greater than every key.
pub fn histogram(keys: &[usize], num_keys: usize) -> Vec<usize> {
    // Per-chunk local histograms, then a reduction.  Work O(n + num_keys·P′)
    // where P′ is the number of chunks; with GRAIN-sized chunks the second
    // term is O(n) as well whenever num_keys ≤ GRAIN, which holds for the
    // rank distributions we care about (k ≤ n).
    let chunk = crate::par::GRAIN.max(num_keys / 4 + 1);
    keys.par_chunks(chunk)
        .map(|part| {
            let mut h = vec![0usize; num_keys];
            for &k in part {
                assert!(k < num_keys, "key {k} out of range (num_keys = {num_keys})");
                h[k] += 1;
            }
            h
        })
        .reduce(
            || vec![0usize; num_keys],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Group the indices `0..keys.len()` by key: returns `groups` where
/// `groups[key]` lists, in increasing order, every index `i` with
/// `keys[i] == key`.
///
/// This is how the WLIS driver turns the rank array produced by the LIS pass
/// into frontiers (`groups[r]` = indices of all objects with rank `r`).
///
/// The fill itself runs in parallel (a two-pass counting sort: per-chunk
/// histograms → per-(chunk, key) write cursors → disjoint scatter), so the
/// whole grouping keeps `O(n)` work and polylogarithmic span.  With one
/// chunk or a 1-thread pool it degrades to the plain sequential pass; the
/// output is identical either way because every chunk writes its indices in
/// increasing order at precomputed cursor positions.
pub fn group_by_rank(keys: &[usize], num_keys: usize) -> Vec<Vec<usize>> {
    use crate::par::par_map_collect_with_grain;
    use std::sync::atomic::{AtomicUsize, Ordering};

    if num_keys == 0 {
        assert!(keys.is_empty(), "non-empty keys with num_keys == 0");
        return Vec::new();
    }
    let n = keys.len();
    // Same chunking rule as `histogram`: per-chunk histograms stay O(n)
    // total because chunks are at least num_keys/4 wide.
    let chunk = crate::par::GRAIN.max(num_keys / 4 + 1);
    let nchunks = n.div_ceil(chunk);
    if rayon::current_num_threads() <= 1 || nchunks <= 1 {
        let counts = histogram(keys, num_keys);
        let mut groups: Vec<Vec<usize>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (i, &k) in keys.iter().enumerate() {
            groups[k].push(i);
        }
        return groups;
    }

    // Pass 1: per-chunk histograms (each index is a coarse block ⇒ grain 1).
    let chunk_hists: Vec<Vec<usize>> = par_map_collect_with_grain(nchunks, 1, |c| {
        let part = &keys[c * chunk..((c + 1) * chunk).min(n)];
        let mut h = vec![0usize; num_keys];
        for &k in part {
            assert!(k < num_keys, "key {k} out of range (num_keys = {num_keys})");
            h[k] += 1;
        }
        h
    });
    // Per-key totals, block offsets, and per-(key, chunk) write cursors.
    // Each key index costs O(nchunks) (and the final gather O(counts[k])),
    // i.e. far more than one element of an ordinary map — so use a small
    // explicit grain instead of the element-calibrated default floor, which
    // would serialize these stages whenever num_keys < 512.
    let threads = rayon::current_num_threads();
    let key_grain = num_keys.div_ceil(threads * 4).max(64);
    let counts: Vec<usize> =
        par_map_collect_with_grain(num_keys, key_grain, |k| chunk_hists.iter().map(|h| h[k]).sum());
    let mut offsets = counts.clone();
    let total = crate::scan::scan_inplace(&mut offsets);
    debug_assert_eq!(total, n);
    let starts_by_key: Vec<Vec<usize>> = par_map_collect_with_grain(num_keys, key_grain, |k| {
        let mut run = offsets[k];
        chunk_hists
            .iter()
            .map(|h| {
                let s = run;
                run += h[k];
                s
            })
            .collect()
    });

    // Pass 2: scatter every index into its key's block.  Slots are disjoint
    // by construction; the atomics only provide shared writable storage.
    let flat: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    par_map_collect_with_grain(nchunks, 1, |c| {
        let base = c * chunk;
        let part = &keys[base..(base + chunk).min(n)];
        let mut cursors: Vec<usize> = (0..num_keys).map(|k| starts_by_key[k][c]).collect();
        for (i, &k) in part.iter().enumerate() {
            flat[cursors[k]].store(base + i, Ordering::Relaxed);
            cursors[k] += 1;
        }
    });

    // Slice the flat array back into one Vec per key.
    par_map_collect_with_grain(num_keys, key_grain, |k| {
        flat[offsets[k]..offsets[k] + counts[k]].iter().map(|s| s.load(Ordering::Relaxed)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small() {
        let keys = vec![0, 1, 1, 2, 2, 2];
        assert_eq!(histogram(&keys, 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn histogram_empty() {
        assert_eq!(histogram(&[], 3), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_rejects_out_of_range() {
        histogram(&[5], 3);
    }

    #[test]
    fn histogram_large_matches_naive() {
        let n = 200_000usize;
        let num_keys = 97;
        let keys: Vec<usize> = (0..n).map(|i| (i * i + 3 * i) % num_keys).collect();
        let got = histogram(&keys, num_keys);
        let mut want = vec![0usize; num_keys];
        for &k in &keys {
            want[k] += 1;
        }
        assert_eq!(got, want);
    }

    #[test]
    fn group_by_rank_collects_sorted_indices() {
        let keys = vec![2, 0, 1, 0, 2, 2];
        let groups = group_by_rank(&keys, 3);
        assert_eq!(groups[0], vec![1, 3]);
        assert_eq!(groups[1], vec![2]);
        assert_eq!(groups[2], vec![0, 4, 5]);
    }

    #[test]
    fn group_by_rank_total_size_preserved() {
        let n = 50_000usize;
        let k = 513usize;
        let keys: Vec<usize> = (0..n).map(|i| (i * 7919) % k).collect();
        let groups = group_by_rank(&keys, k);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), n);
        for (key, g) in groups.iter().enumerate() {
            assert!(g.windows(2).all(|w| w[0] < w[1]), "indices must be increasing");
            assert!(g.iter().all(|&i| keys[i] == key));
        }
    }

    #[test]
    fn group_by_rank_parallel_matches_sequential() {
        let n = 300_000usize;
        let k = 733usize;
        let keys: Vec<usize> = (0..n).map(|i| (i * 48271 + i / 7) % k).collect();
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| group_by_rank(&keys, k))
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq, par, "grouping must be identical for any thread count");
        assert_eq!(par.iter().map(Vec::len).sum::<usize>(), n);
    }

    #[test]
    fn group_by_rank_empty() {
        assert!(group_by_rank(&[], 0).is_empty());
        let g = group_by_rank(&[], 5);
        assert_eq!(g.len(), 5);
        assert!(g.iter().all(Vec::is_empty));
    }
}
