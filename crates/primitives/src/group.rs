//! Grouping by small integer keys (parallel counting sort).
//!
//! Algorithm 2 needs the frontiers `F_1..k`: all indices grouped by their
//! rank.  Ranks lie in `1..=k`, so a counting sort achieves the `O(n)` work /
//! `O(log n + k)`-ish span grouping the paper calls for, instead of a full
//! comparison sort.

use rayon::prelude::*;

/// Histogram of key occurrences: `out[key]` = number of `i` with
/// `keys[i] == key`.  `num_keys` must be strictly greater than every key.
pub fn histogram(keys: &[usize], num_keys: usize) -> Vec<usize> {
    // Per-chunk local histograms, then a reduction.  Work O(n + num_keys·P′)
    // where P′ is the number of chunks; with GRAIN-sized chunks the second
    // term is O(n) as well whenever num_keys ≤ GRAIN, which holds for the
    // rank distributions we care about (k ≤ n).
    let chunk = crate::par::GRAIN.max(num_keys / 4 + 1);
    keys.par_chunks(chunk)
        .map(|part| {
            let mut h = vec![0usize; num_keys];
            for &k in part {
                assert!(k < num_keys, "key {k} out of range (num_keys = {num_keys})");
                h[k] += 1;
            }
            h
        })
        .reduce(
            || vec![0usize; num_keys],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Group the indices `0..keys.len()` by key: returns `groups` where
/// `groups[key]` lists, in increasing order, every index `i` with
/// `keys[i] == key`.
///
/// This is how the WLIS driver turns the rank array produced by the LIS pass
/// into frontiers (`groups[r]` = indices of all objects with rank `r`).
pub fn group_by_rank(keys: &[usize], num_keys: usize) -> Vec<Vec<usize>> {
    if num_keys == 0 {
        assert!(keys.is_empty(), "non-empty keys with num_keys == 0");
        return Vec::new();
    }
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(num_keys);
    let counts = histogram(keys, num_keys);
    for c in &counts {
        groups.push(Vec::with_capacity(*c));
    }
    // Filling the groups in parallel per-key: each key's bucket is
    // independent, so parallelise over the buckets and scan the key array
    // once per non-empty bucket is too much work (O(n·k)).  Instead do one
    // sequential pass, which is O(n) and in practice dominated by the LIS
    // pass itself; the parallel histogram above already gives exact
    // capacities so no reallocation happens.
    for (i, &k) in keys.iter().enumerate() {
        groups[k].push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small() {
        let keys = vec![0, 1, 1, 2, 2, 2];
        assert_eq!(histogram(&keys, 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn histogram_empty() {
        assert_eq!(histogram(&[], 3), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_rejects_out_of_range() {
        histogram(&[5], 3);
    }

    #[test]
    fn histogram_large_matches_naive() {
        let n = 200_000usize;
        let num_keys = 97;
        let keys: Vec<usize> = (0..n).map(|i| (i * i + 3 * i) % num_keys).collect();
        let got = histogram(&keys, num_keys);
        let mut want = vec![0usize; num_keys];
        for &k in &keys {
            want[k] += 1;
        }
        assert_eq!(got, want);
    }

    #[test]
    fn group_by_rank_collects_sorted_indices() {
        let keys = vec![2, 0, 1, 0, 2, 2];
        let groups = group_by_rank(&keys, 3);
        assert_eq!(groups[0], vec![1, 3]);
        assert_eq!(groups[1], vec![2]);
        assert_eq!(groups[2], vec![0, 4, 5]);
    }

    #[test]
    fn group_by_rank_total_size_preserved() {
        let n = 50_000usize;
        let k = 513usize;
        let keys: Vec<usize> = (0..n).map(|i| (i * 7919) % k).collect();
        let groups = group_by_rank(&keys, k);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), n);
        for (key, g) in groups.iter().enumerate() {
            assert!(g.windows(2).all(|w| w[0] < w[1]), "indices must be increasing");
            assert!(g.iter().all(|&i| keys[i] == key));
        }
    }

    #[test]
    fn group_by_rank_empty() {
        assert!(group_by_rank(&[], 0).is_empty());
        let g = group_by_rank(&[], 5);
        assert_eq!(g.len(), 5);
        assert!(g.iter().all(Vec::is_empty));
    }
}
