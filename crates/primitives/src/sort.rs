//! Parallel sorting.
//!
//! Algorithm 2 of the paper sorts all objects by rank to obtain the frontiers
//! `F_1..k` ("this can be done by any parallel sorting with `O(n)` work and
//! `O(log² n)` span" — in our comparison setting we use a parallel merge sort
//! with `O(n log n)` work, and a counting sort by rank in
//! [`crate::group::group_by_rank`] when the `O(n)`-work grouping matters).
//! Batches handed to the vEB tree must also be sorted.
//!
//! These wrappers exist so the rest of the workspace never calls rayon's
//! slice sorts directly; if the scheduling substrate changes, only this
//! module does.

use rayon::slice::ParallelSliceMut;

/// Stable parallel sort of a slice of `Ord` elements (parallel merge sort).
pub fn par_sort<T: Ord + Send>(a: &mut [T]) {
    a.par_sort();
}

/// Unstable parallel sort (parallel pattern-defeating quicksort).
pub fn par_sort_unstable<T: Ord + Send>(a: &mut [T]) {
    a.par_sort_unstable();
}

/// Stable parallel sort with a custom comparator.
pub fn par_sort_by<T, F>(a: &mut [T], cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    a.par_sort_by(cmp);
}

/// Stable parallel sort by key.
pub fn par_sort_by_key<T, K, F>(a: &mut [T], key: F)
where
    T: Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    a.par_sort_by_key(key);
}

/// Returns true if the slice is sorted in non-decreasing order.  Handy for
/// debug assertions on batches passed to the vEB tree.
pub fn is_sorted<T: Ord>(a: &[T]) -> bool {
    a.windows(2).all(|w| w[0] <= w[1])
}

/// Returns true if the slice is strictly increasing (no duplicates).  vEB
/// batches must be duplicate-free.
pub fn is_strictly_increasing<T: Ord>(a: &[T]) -> bool {
    a.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_matches_std() {
        let mut a: Vec<u64> = (0..100_000u64).map(|i| (i * 2654435761) % 1_000_003).collect();
        let mut want = a.clone();
        want.sort();
        par_sort(&mut a);
        assert_eq!(a, want);
    }

    #[test]
    fn sort_unstable_matches_std() {
        let mut a: Vec<i64> = (0..50_000i64).map(|i| ((i * 37) % 1000) - 500).collect();
        let mut want = a.clone();
        want.sort_unstable();
        par_sort_unstable(&mut a);
        assert_eq!(a, want);
    }

    #[test]
    fn sort_by_key_is_stable() {
        // Pairs with equal keys must preserve insertion order.
        let mut a: Vec<(u32, usize)> = (0..10_000).map(|i| ((i % 10) as u32, i)).collect();
        par_sort_by_key(&mut a, |p| p.0);
        for w in a.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn sortedness_predicates() {
        assert!(is_sorted::<u32>(&[]));
        assert!(is_sorted(&[1, 1, 2, 3]));
        assert!(!is_sorted(&[2, 1]));
        assert!(is_strictly_increasing(&[1, 2, 3]));
        assert!(!is_strictly_increasing(&[1, 1, 2]));
    }

    #[test]
    fn sort_by_comparator_descending() {
        let mut a = vec![3u8, 1, 4, 1, 5, 9, 2, 6];
        par_sort_by(&mut a, |x, y| y.cmp(x));
        assert_eq!(a, vec![9, 6, 5, 4, 3, 2, 1, 1]);
    }
}
