//! Parallel sorting.
//!
//! Algorithm 2 of the paper sorts all objects by rank to obtain the frontiers
//! `F_1..k` ("this can be done by any parallel sorting with `O(n)` work and
//! `O(log² n)` span" — in our comparison setting we use a parallel merge sort
//! with `O(n log n)` work, and a counting sort by rank in
//! [`crate::group::group_by_rank`] when the `O(n)`-work grouping matters).
//! Batches handed to the vEB tree must also be sorted.
//!
//! These wrappers exist so the rest of the workspace never calls rayon's
//! slice sorts directly; if the scheduling substrate changes, only this
//! module does.  They are real join-based parallel merge sorts: the slice is
//! split recursively, leaves are sorted with std's (stable) sorts, and
//! siblings are combined with the parallel [`crate::merge`] machinery — the
//! `T: Clone` bound pays for the merge buffer.  Under a 1-thread pool the
//! recursion never forks and the result is exactly std's.

use crate::merge::merge_by;
use crate::par::GRAIN;
use std::cmp::Ordering;

/// Leaf size for the parallel merge sort: a few [`GRAIN`]s so std's sort
/// amortizes the merge passes, shrunk adaptively so every worker thread of
/// the current pool gets work on large inputs.
fn sort_grain(n: usize) -> usize {
    let threads = rayon::current_num_threads();
    if threads <= 1 {
        return usize::MAX;
    }
    n.div_ceil(threads * 2).max(GRAIN * 4)
}

fn merge_sort_by<T, F>(a: &mut [T], cmp: &F, grain: usize, stable: bool)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if a.len() <= grain {
        if stable {
            a.sort_by(|x, y| cmp(x, y));
        } else {
            a.sort_unstable_by(|x, y| cmp(x, y));
        }
        return;
    }
    let mid = a.len() / 2;
    let (lo, hi) = a.split_at_mut(mid);
    rayon::join(|| merge_sort_by(lo, cmp, grain, stable), || merge_sort_by(hi, cmp, grain, stable));
    // Parallel stable merge into a buffer, then copy back in parallel too —
    // a sequential copy-back would put an O(n) pass on the critical path of
    // every recursion level.
    let merged = merge_by(lo, hi, |x, y| cmp(x, y));
    let chunk = crate::par::adaptive_grain(a.len()).max(GRAIN);
    crate::par::par_chunks_mut_for(a, chunk, |ci, piece| {
        piece.clone_from_slice(&merged[ci * chunk..ci * chunk + piece.len()]);
    });
}

/// Stable parallel sort of a slice of `Ord` elements (parallel merge sort).
pub fn par_sort<T: Ord + Clone + Send + Sync>(a: &mut [T]) {
    par_sort_by(a, T::cmp);
}

/// Unstable parallel sort (same merge sort with unstable leaves).
pub fn par_sort_unstable<T: Ord + Clone + Send + Sync>(a: &mut [T]) {
    merge_sort_by(a, &T::cmp, sort_grain(a.len()), false);
}

/// Stable parallel sort with a custom comparator.
pub fn par_sort_by<T, F>(a: &mut [T], cmp: F)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    merge_sort_by(a, &cmp, sort_grain(a.len()), true);
}

/// Stable parallel sort by key.
pub fn par_sort_by_key<T, K, F>(a: &mut [T], key: F)
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    par_sort_by(a, |x, y| key(x).cmp(&key(y)));
}

/// Returns true if the slice is sorted in non-decreasing order.  Handy for
/// debug assertions on batches passed to the vEB tree.
pub fn is_sorted<T: Ord>(a: &[T]) -> bool {
    a.windows(2).all(|w| w[0] <= w[1])
}

/// Returns true if the slice is strictly increasing (no duplicates).  vEB
/// batches must be duplicate-free.
pub fn is_strictly_increasing<T: Ord>(a: &[T]) -> bool {
    a.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_matches_std() {
        let mut a: Vec<u64> = (0..100_000u64).map(|i| (i * 2654435761) % 1_000_003).collect();
        let mut want = a.clone();
        want.sort();
        par_sort(&mut a);
        assert_eq!(a, want);
    }

    #[test]
    fn sort_unstable_matches_std() {
        let mut a: Vec<i64> = (0..50_000i64).map(|i| ((i * 37) % 1000) - 500).collect();
        let mut want = a.clone();
        want.sort_unstable();
        par_sort_unstable(&mut a);
        assert_eq!(a, want);
    }

    #[test]
    fn sort_by_key_is_stable() {
        // Pairs with equal keys must preserve insertion order.
        let mut a: Vec<(u32, usize)> = (0..10_000).map(|i| ((i % 10) as u32, i)).collect();
        par_sort_by_key(&mut a, |p| p.0);
        for w in a.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn sortedness_predicates() {
        assert!(is_sorted::<u32>(&[]));
        assert!(is_sorted(&[1, 1, 2, 3]));
        assert!(!is_sorted(&[2, 1]));
        assert!(is_strictly_increasing(&[1, 2, 3]));
        assert!(!is_strictly_increasing(&[1, 1, 2]));
    }

    #[test]
    fn sort_by_comparator_descending() {
        let mut a = vec![3u8, 1, 4, 1, 5, 9, 2, 6];
        par_sort_by(&mut a, |x, y| y.cmp(x));
        assert_eq!(a, vec![9, 6, 5, 4, 3, 2, 1, 1]);
    }

    #[test]
    fn parallel_pool_sort_matches_one_thread_sort() {
        let base: Vec<(u32, usize)> =
            (0..200_000).map(|i| (((i * 48271) % 4096) as u32, i)).collect();
        let run = |threads: usize| {
            let mut v = base.clone();
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| par_sort_by_key(&mut v, |p| p.0));
            v
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq, par, "sorting must be deterministic across thread counts");
        let mut want = base.clone();
        want.sort_by_key(|p| p.0);
        assert_eq!(par, want);
    }
}
