//! Granularity-controlled fork-join helpers.
//!
//! All parallel algorithms in this workspace switch to a sequential
//! implementation below [`GRAIN`] elements.  This mirrors the block size used
//! by ParlayLib in the paper's C++ implementation and keeps the constant
//! factors of the work-efficient algorithms low — work-efficiency is the
//! paper's central practical argument, so we never fork for tiny subproblems.

use rayon::join;

/// Default granularity (sequential cutoff) for the divide-and-conquer
/// primitives in this crate.  Chosen to amortize the cost of a rayon task
/// spawn over a few microseconds of useful work.
pub const GRAIN: usize = 2048;

/// Run `left` and `right` in parallel if `size` is at least `grain`,
/// otherwise run them sequentially (left first).
///
/// This is the single point where the crate decides between forking and
/// staying sequential, so the fork threshold is consistent everywhere.
#[inline]
pub fn maybe_join<A, B, RA, RB>(size: usize, grain: usize, left: A, right: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if size >= grain {
        join(left, right)
    } else {
        (left(), right())
    }
}

/// Parallel for over `0..n` applying `f(i)`; the closure only receives the
/// index, so it must capture any slices it needs.  Uses recursive halving with
/// the default [`GRAIN`] so the span is `O(log n)` plus the span of `f`.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    fn go<F: Fn(usize) + Sync>(lo: usize, hi: usize, f: &F) {
        let len = hi - lo;
        if len <= GRAIN {
            for i in lo..hi {
                f(i);
            }
        } else {
            let mid = lo + len / 2;
            join(|| go(lo, mid, f), || go(mid, hi, f));
        }
    }
    if n > 0 {
        go(0, n, &f);
    }
}

/// Apply `f(chunk_index, chunk)` to disjoint mutable chunks of `data` of size
/// `chunk_size`, in parallel.  The last chunk may be shorter.
pub fn par_chunks_mut_for<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    use rayon::prelude::*;
    data.par_chunks_mut(chunk_size).enumerate().for_each(|(i, chunk)| f(i, chunk));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maybe_join_runs_both_sides_sequentially() {
        let (a, b) = maybe_join(1, GRAIN, || 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn maybe_join_runs_both_sides_in_parallel() {
        let (a, b) = maybe_join(GRAIN * 4, GRAIN, || 21 * 2, || "x".repeat(3));
        assert_eq!(a, 42);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 100_000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_is_noop() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn par_chunks_mut_labels_chunks() {
        let mut v = vec![0usize; 10_000];
        par_chunks_mut_for(&mut v, 128, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i / 128);
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn par_chunks_mut_rejects_zero_chunk() {
        let mut v = vec![0u8; 4];
        par_chunks_mut_for(&mut v, 0, |_, _| {});
    }
}
