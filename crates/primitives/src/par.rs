//! Granularity-controlled fork-join helpers.
//!
//! All parallel algorithms in this workspace switch to a sequential
//! implementation below [`GRAIN`] elements.  This mirrors the block size used
//! by ParlayLib in the paper's C++ implementation and keeps the constant
//! factors of the work-efficient algorithms low — work-efficiency is the
//! paper's central practical argument, so we never fork for tiny subproblems.

use rayon::join;
use std::mem::MaybeUninit;

/// Default granularity (sequential cutoff) for the divide-and-conquer
/// primitives in this crate.  Chosen to amortize the cost of a rayon task
/// spawn over a few microseconds of useful work.
pub const GRAIN: usize = 2048;

/// Smallest piece the adaptive helpers will fork for.  The vendored rayon's
/// `join` spawns a real scoped thread per fork, so pieces must amortize a
/// thread spawn, not just a task push.
pub const MIN_ADAPTIVE_GRAIN: usize = 512;

/// Piece size for a parallel loop over `n` items: aim for a few pieces per
/// worker thread (to absorb imbalance) but never below
/// [`MIN_ADAPTIVE_GRAIN`].  Returns `usize::MAX` (never fork) when the
/// current rayon pool has a single thread, so `num_threads(1)` keeps every
/// helper in this module exactly sequential.
pub fn adaptive_grain(n: usize) -> usize {
    let threads = rayon::current_num_threads();
    if threads <= 1 {
        return usize::MAX;
    }
    n.div_ceil(threads * 4).max(MIN_ADAPTIVE_GRAIN)
}

/// Run `left` and `right` in parallel if `size` is at least `grain`,
/// otherwise run them sequentially (left first).
///
/// This is the single point where the crate decides between forking and
/// staying sequential, so the fork threshold is consistent everywhere.
#[inline]
pub fn maybe_join<A, B, RA, RB>(size: usize, grain: usize, left: A, right: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if size >= grain {
        join(left, right)
    } else {
        (left(), right())
    }
}

/// Parallel for over `0..n` applying `f(i)`; the closure only receives the
/// index, so it must capture any slices it needs.  Uses recursive halving with
/// the default [`GRAIN`] so the span is `O(log n)` plus the span of `f`.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    fn go<F: Fn(usize) + Sync>(lo: usize, hi: usize, f: &F) {
        let len = hi - lo;
        if len <= GRAIN {
            for i in lo..hi {
                f(i);
            }
        } else {
            let mid = lo + len / 2;
            join(|| go(lo, mid, f), || go(mid, hi, f));
        }
    }
    if n > 0 {
        go(0, n, &f);
    }
}

/// Apply `f(chunk_index, chunk)` to disjoint mutable chunks of `data` of size
/// `chunk_size`, in parallel.  The last chunk may be shorter.
pub fn par_chunks_mut_for<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    use rayon::prelude::*;
    data.par_chunks_mut(chunk_size).enumerate().for_each(|(i, chunk)| f(i, chunk));
}

/// Apply `f(offset, chunk)` to disjoint chunks of `data` of an
/// [`adaptive_grain`]-chosen size, in parallel.  `offset` is the index of
/// the chunk's first element within `data`, so callers can address sibling
/// arrays.  Never calls `f` on an empty chunk.
pub fn par_for_each_chunk<T, F>(data: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &[T]) + Sync,
{
    fn go<T: Sync, F: Fn(usize, &[T]) + Sync>(offset: usize, s: &[T], grain: usize, f: &F) {
        if s.is_empty() {
            return;
        }
        if s.len() <= grain {
            f(offset, s);
            return;
        }
        let mid = s.len() / 2;
        let (lo, hi) = s.split_at(mid);
        join(|| go(offset, lo, grain, f), || go(offset + mid, hi, grain, f));
    }
    go(0, data, adaptive_grain(data.len()), &f);
}

/// `Vec` of `f(0), f(1), …, f(n-1)`, computed in parallel with an adaptive
/// grain.  This is the order-preserving "parallel map" that the WLIS
/// frontier queries and the workload generators go through: equivalent to
/// `(0..n).map(f).collect()` for any thread count.
///
/// If `f` panics, the panic propagates; already-computed elements are leaked
/// (not dropped) in that case, which is safe but not tidy — acceptable for
/// the algorithmic payloads used here.
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_collect_with_grain(n, adaptive_grain(n), f)
}

/// [`par_map_collect`] with an explicit grain (indices per sequential
/// piece).  Use `grain = 1` when every index already stands for a coarse
/// block of work (e.g. one chunk of a larger array).
pub fn par_map_collect_with_grain<R, F>(n: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    fn fill<R: Send, F: Fn(usize) -> R + Sync>(
        lo: usize,
        slots: &mut [MaybeUninit<R>],
        grain: usize,
        f: &F,
    ) {
        if slots.len() <= grain {
            for (k, slot) in slots.iter_mut().enumerate() {
                slot.write(f(lo + k));
            }
            return;
        }
        let mid = slots.len() / 2;
        let (a, b) = slots.split_at_mut(mid);
        join(|| fill(lo, a, grain, f), || fill(lo + mid, b, grain, f));
    }
    let mut out: Vec<R> = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    let grain = grain.max(1);
    fill(0, &mut out.spare_capacity_mut()[..n], grain, &f);
    // SAFETY: `fill` wrote every one of the first `n` slots exactly once
    // (the recursion partitions `0..n` into disjoint, covering pieces).
    unsafe { out.set_len(n) };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maybe_join_runs_both_sides_sequentially() {
        let (a, b) = maybe_join(1, GRAIN, || 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn maybe_join_runs_both_sides_in_parallel() {
        let (a, b) = maybe_join(GRAIN * 4, GRAIN, || 21 * 2, || "x".repeat(3));
        assert_eq!(a, 42);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 100_000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_is_noop() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn par_chunks_mut_labels_chunks() {
        let mut v = vec![0usize; 10_000];
        par_chunks_mut_for(&mut v, 128, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i / 128);
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn par_chunks_mut_rejects_zero_chunk() {
        let mut v = vec![0u8; 4];
        par_chunks_mut_for(&mut v, 0, |_, _| {});
    }

    #[test]
    fn par_map_collect_matches_sequential_map() {
        let n = 100_000usize;
        let got = par_map_collect(n, |i| (i as u64) * 3 + 1);
        let want: Vec<u64> = (0..n).map(|i| (i as u64) * 3 + 1).collect();
        assert_eq!(got, want);
        assert!(par_map_collect(0, |_| 0u8).is_empty());
        // Non-Copy payloads work too.
        let strings = par_map_collect(2_000, |i| format!("x{i}"));
        assert_eq!(strings[1999], "x1999");
    }

    #[test]
    fn par_map_collect_splits_across_threads_when_possible() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut best = 1usize;
        for _attempt in 0..20 {
            let seen = Mutex::new(HashSet::new());
            let out = pool.install(|| {
                par_map_collect(50_000, |i| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    i as u64
                })
            });
            assert_eq!(out.len(), 50_000);
            assert!(out.iter().enumerate().all(|(i, &x)| x == i as u64));
            best = best.max(seen.lock().unwrap().len());
            if best > 1 {
                break;
            }
        }
        assert!(best > 1, "par_map_collect must engage >1 thread under a 4-thread pool");
    }

    #[test]
    fn par_for_each_chunk_covers_disjointly_in_offset_order() {
        let n = 75_000usize;
        let data: Vec<u64> = (0..n as u64).collect();
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for_each_chunk(&data, |offset, chunk| {
            for (k, &v) in chunk.iter().enumerate() {
                assert_eq!(v, (offset + k) as u64, "offset must address the parent slice");
                hits[offset + k].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        par_for_each_chunk::<u64, _>(&[], |_, _| panic!("must not run on empty input"));
    }

    #[test]
    fn adaptive_grain_is_sequential_on_one_thread() {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.install(|| adaptive_grain(1 << 20)), usize::MAX);
        let pool4 = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let g = pool4.install(|| adaptive_grain(1 << 20));
        assert!((MIN_ADAPTIVE_GRAIN..1 << 20).contains(&g));
    }
}
