//! Parallel pack / filter.
//!
//! Packing the elements selected by a flag vector into a contiguous output is
//! the workhorse of the phase-parallel framework: frontiers, refined
//! insertion lists (`L_i` in Alg. 3), and the new-high-bit sets `H`/`B'` of
//! the vEB batch insertion (Alg. 4) are all produced by a filter.
//! Work `O(n)`, span `O(log n)`.

use rayon::prelude::*;

/// Return the elements of `a` whose corresponding `flags` entry is true,
/// preserving order.
///
/// # Panics
/// Panics if `a.len() != flags.len()`.
pub fn pack<T: Clone + Send + Sync>(a: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(a.len(), flags.len(), "pack: length mismatch");
    a.par_iter().zip(flags.par_iter()).filter(|(_, &f)| f).map(|(x, _)| x.clone()).collect()
}

/// Return the *indices* `i` for which `flags[i]` is true, in increasing order.
pub fn pack_index(flags: &[bool]) -> Vec<usize> {
    flags.par_iter().enumerate().filter(|(_, &f)| f).map(|(i, _)| i).collect()
}

/// Return the indices `i` in `0..n` for which `pred(i)` holds, in increasing
/// order.  Equivalent to `pack_index` with a computed flag vector but without
/// materialising it.
pub fn pack_indices_where<F>(n: usize, pred: F) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    (0..n).into_par_iter().filter(|&i| pred(i)).collect()
}

/// Split `a` into `(selected, rejected)` by the flag vector, both preserving
/// order.  Used when the wake-up baseline must keep the postponed objects.
pub fn partition_flags<T: Clone + Send + Sync>(a: &[T], flags: &[bool]) -> (Vec<T>, Vec<T>) {
    assert_eq!(a.len(), flags.len(), "partition_flags: length mismatch");
    let yes = pack(a, flags);
    let inverted: Vec<bool> = flags.par_iter().map(|&f| !f).collect();
    let no = pack(a, &inverted);
    (yes, no)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_keeps_order() {
        let a: Vec<u32> = (0..10).collect();
        let flags: Vec<bool> = a.iter().map(|x| x % 3 == 0).collect();
        assert_eq!(pack(&a, &flags), vec![0, 3, 6, 9]);
    }

    #[test]
    fn pack_empty() {
        let a: Vec<u32> = vec![];
        assert!(pack(&a, &[]).is_empty());
    }

    #[test]
    fn pack_none_selected() {
        let a = vec![1, 2, 3];
        assert!(pack(&a, &[false, false, false]).is_empty());
    }

    #[test]
    fn pack_all_selected() {
        let a = vec![1, 2, 3];
        assert_eq!(pack(&a, &[true, true, true]), a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pack_length_mismatch_panics() {
        pack(&[1, 2, 3], &[true]);
    }

    #[test]
    fn pack_index_matches_pack() {
        let n = 50_000usize;
        let flags: Vec<bool> = (0..n).map(|i| (i * i) % 7 == 1).collect();
        let idx = pack_index(&flags);
        let expected: Vec<usize> = (0..n).filter(|&i| flags[i]).collect();
        assert_eq!(idx, expected);
    }

    #[test]
    fn pack_indices_where_matches_filter() {
        let got = pack_indices_where(1000, |i| i % 13 == 5);
        let want: Vec<usize> = (0..1000).filter(|i| i % 13 == 5).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn partition_splits_everything_exactly_once() {
        let a: Vec<u32> = (0..10_000).collect();
        let flags: Vec<bool> = a.iter().map(|x| x % 2 == 0).collect();
        let (yes, no) = partition_flags(&a, &flags);
        assert_eq!(yes.len() + no.len(), a.len());
        assert!(yes.iter().all(|x| x % 2 == 0));
        assert!(no.iter().all(|x| x % 2 == 1));
    }
}
