//! The *dominant-max store* abstraction: the `RangeStruct` interface of
//! Algorithm 2, factored out of the weighted-LIS driver so that new
//! structures plug in without touching the algorithm.
//!
//! A dominant-max store is built once over a static set of 2D points, each
//! carrying a mutable score that starts at 0 and only ever grows.  It
//! answers strict 2D dominance maxima and accepts batched score write-backs
//! — exactly the three operations the phase-parallel WLIS driver issues per
//! frontier.
//!
//! Implementations live next to their data structures (one file per
//! backend): `plis-rangetree` implements it for `RangeMaxTree` (Theorem
//! 4.1, the practical configuration) and `plis-rangeveb` for `RangeVeb`
//! (Theorem 1.2, the theoretical configuration).  The oracle test suite
//! adds probe implementations the same way — implement the trait for a new
//! type in its own crate and every generic driver (offline `wlis_with`,
//! the engine's weighted streaming sessions) accepts it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative usage totals of one dominant-max store instance, read back by
/// the telemetry plane after a WLIS run.
///
/// The totals are *observational*: they describe work the store performed
/// and never feed back into algorithm results, so two runs that differ only
/// in whether anyone reads them still produce bit-identical dp vectors.
/// Counts may legitimately differ between backends (and between versions of
/// one backend), which is why outcome equality in the engine ignores them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomMaxStats {
    /// `dominant_max` queries answered.
    pub queries: u64,
    /// `update_batch` calls accepted.
    pub writeback_batches: u64,
    /// Total `(x, y, score)` entries written back across all batches.
    pub writeback_elems: u64,
}

impl DomMaxStats {
    /// Fold another store's totals into this one (associative).
    pub fn merge(&mut self, other: &DomMaxStats) {
        self.queries += other.queries;
        self.writeback_batches += other.writeback_batches;
        self.writeback_elems += other.writeback_elems;
    }
}

/// Relaxed atomic accumulator for [`DomMaxStats`], embeddable in a store.
///
/// `dominant_max` takes `&self` and runs under a parallel map, so the
/// counters must be atomics; relaxed ordering suffices because the totals
/// are only read after the run quiesces.
#[derive(Debug, Default)]
pub struct DomMaxCounters {
    queries: AtomicU64,
    writeback_batches: AtomicU64,
    writeback_elems: AtomicU64,
}

impl DomMaxCounters {
    /// Fresh counters at zero.
    pub fn new() -> Self {
        DomMaxCounters::default()
    }

    /// Count one `dominant_max` query.
    #[inline]
    pub fn count_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `update_batch` call of `elems` entries.
    #[inline]
    pub fn count_writeback(&self, elems: usize) {
        self.writeback_batches.fetch_add(1, Ordering::Relaxed);
        self.writeback_elems.fetch_add(elems as u64, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> DomMaxStats {
        DomMaxStats {
            queries: self.queries.load(Ordering::Relaxed),
            writeback_batches: self.writeback_batches.load(Ordering::Relaxed),
            writeback_elems: self.writeback_elems.load(Ordering::Relaxed),
        }
    }
}

/// A dominant-max structure usable by the WLIS driver (the `RangeStruct` of
/// Algorithm 2): built once over the full point set, queried with strict 2D
/// dominance, updated frontier by frontier.
///
/// `Sync` is required because one frontier's queries run as a parallel map
/// over a shared reference to the store.
pub trait DominantMaxStore: Sized + Sync {
    /// Build the structure over `points = (x, y)` pairs (scores start at 0).
    fn build(points: &[(u64, u64)]) -> Self;
    /// Maximum score among points with `x < qx` and `y < qy`, or 0.
    fn dominant_max(&self, qx: u64, qy: u64) -> u64;
    /// Set the scores of a batch of `(x, y, score)` entries.  Scores are
    /// monotone in the WLIS algorithm: a write never lowers a score.
    fn update_batch(&mut self, updates: &[(u64, u64, u64)]);
    /// Short human-readable name used by benchmark and engine reports.
    fn name() -> &'static str;
    /// Cumulative usage totals for the telemetry plane.  Purely
    /// observational — see [`DomMaxStats`].  The default (all zero) keeps
    /// probe implementations in test suites trivially conformant.
    fn stats(&self) -> DomMaxStats {
        DomMaxStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let c = DomMaxCounters::new();
        c.count_query();
        c.count_query();
        c.count_writeback(5);
        let mut total = c.snapshot();
        assert_eq!(total, DomMaxStats { queries: 2, writeback_batches: 1, writeback_elems: 5 });
        c.count_writeback(3);
        total.merge(&c.snapshot());
        assert_eq!(total.queries, 4);
        assert_eq!(total.writeback_batches, 3);
        assert_eq!(total.writeback_elems, 13);
    }
}
