//! The *dominant-max store* abstraction: the `RangeStruct` interface of
//! Algorithm 2, factored out of the weighted-LIS driver so that new
//! structures plug in without touching the algorithm.
//!
//! A dominant-max store is built once over a static set of 2D points, each
//! carrying a mutable score that starts at 0 and only ever grows.  It
//! answers strict 2D dominance maxima and accepts batched score write-backs
//! — exactly the three operations the phase-parallel WLIS driver issues per
//! frontier.
//!
//! Implementations live next to their data structures (one file per
//! backend): `plis-rangetree` implements it for `RangeMaxTree` (Theorem
//! 4.1, the practical configuration) and `plis-rangeveb` for `RangeVeb`
//! (Theorem 1.2, the theoretical configuration).  The oracle test suite
//! adds probe implementations the same way — implement the trait for a new
//! type in its own crate and every generic driver (offline `wlis_with`,
//! the engine's weighted streaming sessions) accepts it.

/// A dominant-max structure usable by the WLIS driver (the `RangeStruct` of
/// Algorithm 2): built once over the full point set, queried with strict 2D
/// dominance, updated frontier by frontier.
///
/// `Sync` is required because one frontier's queries run as a parallel map
/// over a shared reference to the store.
pub trait DominantMaxStore: Sized + Sync {
    /// Build the structure over `points = (x, y)` pairs (scores start at 0).
    fn build(points: &[(u64, u64)]) -> Self;
    /// Maximum score among points with `x < qx` and `y < qy`, or 0.
    fn dominant_max(&self, qx: u64, qy: u64) -> u64;
    /// Set the scores of a batch of `(x, y, score)` entries.  Scores are
    /// monotone in the WLIS algorithm: a write never lowers a score.
    fn update_batch(&mut self, updates: &[(u64, u64, u64)]);
    /// Short human-readable name used by benchmark and engine reports.
    fn name() -> &'static str;
}
