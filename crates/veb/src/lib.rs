//! Sequential and parallel van Emde Boas (vEB) trees.
//!
//! This crate reproduces Section 5 of "Parallel Longest Increasing
//! Subsequence and van Emde Boas Trees" (SPAA 2023): the first parallel
//! version of the vEB tree.  It provides
//!
//! * the classic **sequential vEB tree** over an integer universe `[0, U)`
//!   with `O(log log U)` insertion, deletion, lookup, min/max, predecessor
//!   and successor ([`VebTree`]),
//! * **parallel batch insertion** of a sorted batch (Algorithm 4,
//!   Theorem 5.1: `O(m log log U)` work, `O(log U)` span),
//! * **parallel batch deletion** built on *survivor mappings*
//!   (Algorithm 5, Theorem 5.2: `O(m log log U)` work,
//!   `O(log U log log U)` span),
//! * a **parallel range query** that reports all keys in `[lo, hi]` by
//!   divide-and-conquer over the key space (Algorithm 6, Theorem C.1), and
//! * the **Mono-vEB tree** ([`MonoVeb`]) — a vEB tree that maintains a
//!   *staircase* of `(key, score)` points (scores strictly increase with the
//!   key) — together with the `CoveredBy` operation (Algorithm 7,
//!   Theorem D.1) used by the Range-vEB structure of Section 4.2.
//!
//! # Representation
//!
//! Keys are `u64` values in `[0, U)` where `U` is rounded up to a power of
//! two.  A node whose universe has at most [`LEAF_BITS`] bits is a bitset
//! leaf (a single `u64`), which shortens the recursion by two levels and
//! avoids allocating tiny nodes.  Larger nodes follow the textbook layout:
//! `min` and `max` are stored in the node and *not* in any cluster (the
//! convention the paper's batch algorithms rely on), the high halves of the
//! remaining keys live in a `summary` vEB tree, and the low halves live in
//! one recursive cluster per distinct high half.  Clusters are allocated
//! lazily.  Everything is safe Rust: the tree is an owned recursive
//! structure, and the parallel batch operations split the cluster vector
//! with `split_at_mut` so disjoint clusters can be processed by
//! [`rayon::join`] without locks or atomics.
//!
//! # Example
//!
//! ```
//! use plis_veb::VebTree;
//!
//! let mut v = VebTree::new(256);
//! for &k in &[2u64, 4, 8, 10, 13, 15, 23, 28, 61] {
//!     v.insert(k);
//! }
//! assert_eq!(v.min(), Some(2));
//! assert_eq!(v.max(), Some(61));
//! assert_eq!(v.pred(13), Some(10));
//! assert_eq!(v.succ(13), Some(15));
//!
//! // Parallel batch operations take sorted, duplicate-free batches.
//! v.batch_insert(&[1, 3, 5, 7]);
//! v.batch_delete(&[2, 8, 61]);
//! assert_eq!(v.iter_keys(), vec![1, 3, 4, 5, 7, 10, 13, 15, 23, 28]);
//! assert_eq!(v.range(4, 14), vec![4, 5, 7, 10, 13]);
//! ```

mod batch;
mod mono;
mod node;
mod pool;
mod range;
mod tree;

pub use crate::mono::{MonoVeb, ScoredPoint};
pub use crate::node::LEAF_BITS;
pub use crate::tree::VebTree;
