//! The public [`VebTree`] wrapper: a set of `u64` keys over a fixed universe
//! with the sequential operations of Theorem 1.3 (first bullet).  The batch
//! operations live in [`crate::batch`] and the range query in
//! [`crate::range`]; both are `impl VebTree` blocks so the public API is a
//! single type.

use crate::node::Node;

/// A van Emde Boas tree over the integer universe `[0, universe)`.
///
/// Single-point operations cost `O(log log U)`.  Batch operations
/// (`batch_insert`, `batch_delete`) and the parallel `range` query are
/// provided by the other modules of this crate and follow Algorithms 4–6 of
/// the paper.
#[derive(Debug, Clone)]
pub struct VebTree {
    /// Number of bits of the universe (universe size rounded up to a power
    /// of two).
    pub(crate) bits: u32,
    /// The requested universe size (keys must be `< universe`).
    pub(crate) universe: u64,
    /// Root node; `None` when the set is empty.
    pub(crate) root: Option<Node>,
    /// Number of keys currently stored.
    pub(crate) len: usize,
}

impl VebTree {
    /// Create an empty tree over the universe `[0, universe)`.
    ///
    /// # Panics
    /// Panics if `universe == 0`.
    pub fn new(universe: u64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        let bits = 64 - (universe - 1).leading_zeros().min(63);
        let bits = bits.max(1);
        VebTree { bits, universe, root: None, len: 0 }
    }

    /// The universe size this tree was created with.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Rough heap footprint of the tree in bytes (the recursive node
    /// structure; `O(nodes)`, intended for occasional memory-accounting
    /// snapshots by the engine's telemetry plane).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.root.as_ref().map_or(0, Node::approx_bytes)
    }

    /// Stock this thread's node pool for up to `additional` net-new keys,
    /// so subsequent point inserts never touch the allocator (per pool
    /// class cap).  Key churn (delete one, insert another) recycles
    /// through the pool on its own; what it cannot cover is *growth* —
    /// every key that spreads into an untouched cluster consumes a node
    /// the pool must already hold.  One prewarmed node per internal
    /// recursion width covers the deepest possible new path of one key.
    pub fn reserve_nodes(&self, additional: usize) {
        let mut widths: Vec<u32> = Vec::new();
        let mut stack = vec![self.bits];
        while let Some(bits) = stack.pop() {
            let (hi_bits, lo_bits) = crate::node::split_bits(bits);
            for w in [hi_bits, lo_bits] {
                if w > crate::node::LEAF_BITS && !widths.contains(&w) {
                    widths.push(w);
                    stack.push(w);
                }
            }
        }
        for &w in &widths {
            crate::pool::prewarm(w, additional);
            // Nodes already in the tree that only ever held their min/max
            // header carry no slot vector; their third key allocates one on
            // the hot path unless a spare is pooled.
            crate::pool::prewarm_clusters(crate::node::split_bits(w).0, additional);
        }
    }

    /// Insert `key`; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `key` is outside the universe.
    pub fn insert(&mut self, key: u64) -> bool {
        self.check(key);
        match &mut self.root {
            Some(r) => {
                let fresh = r.insert(key);
                if fresh {
                    self.len += 1;
                }
                fresh
            }
            None => {
                self.root = Some(Node::singleton(self.bits, key));
                self.len = 1;
                true
            }
        }
    }

    /// Delete `key`; returns `true` if it was present.
    pub fn delete(&mut self, key: u64) -> bool {
        self.check(key);
        match &mut self.root {
            None => false,
            Some(r) => {
                let (present, empty) = r.delete(key);
                if empty {
                    crate::pool::recycle(self.root.take());
                }
                if present {
                    self.len -= 1;
                }
                present
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, key: u64) -> bool {
        self.check(key);
        self.root.as_ref().is_some_and(|r| r.contains(key))
    }

    /// Smallest key, if any.
    pub fn min(&self) -> Option<u64> {
        self.root.as_ref().map(Node::min)
    }

    /// Largest key, if any.
    pub fn max(&self) -> Option<u64> {
        self.root.as_ref().map(Node::max)
    }

    /// Largest key strictly smaller than `key`, if any.  `key` itself does
    /// not need to be present; it may equal the universe size (querying the
    /// predecessor of "one past the end").
    pub fn pred(&self, key: u64) -> Option<u64> {
        assert!(key <= self.universe, "key {key} outside universe {}", self.universe);
        match &self.root {
            None => None,
            Some(r) => {
                if key > r.max() {
                    Some(r.max())
                } else {
                    r.pred(key)
                }
            }
        }
    }

    /// Smallest key strictly larger than `key`, if any.
    pub fn succ(&self, key: u64) -> Option<u64> {
        self.check(key);
        self.root.as_ref().and_then(|r| r.succ(key))
    }

    /// All keys in increasing order (linear walk; mainly for tests, exports
    /// and debugging).
    pub fn iter_keys(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.keys_into(&mut out);
        out
    }

    /// Append all keys in increasing order to `out`.  This is the bulk
    /// export the snapshot plane uses: one structural walk into a
    /// caller-owned buffer, no intermediate tree or per-key query — the
    /// read-side dual of [`from_sorted`](VebTree::from_sorted).
    pub fn keys_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len);
        if let Some(r) = &self.root {
            r.collect_into(0, out);
        }
    }

    /// Recount the stored keys by walking the structure (test helper that
    /// cross-checks the maintained `len`).
    pub fn recount(&self) -> usize {
        self.root.as_ref().map_or(0, Node::count)
    }

    #[inline]
    pub(crate) fn check(&self, key: u64) {
        assert!(key < self.universe, "key {key} outside universe {}", self.universe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_tree_queries() {
        let v = VebTree::new(1000);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.min(), None);
        assert_eq!(v.max(), None);
        assert_eq!(v.pred(500), None);
        assert_eq!(v.succ(0), None);
        assert!(!v.contains(3));
        assert!(v.iter_keys().is_empty());
    }

    #[test]
    fn keys_into_appends_in_order() {
        let mut v = VebTree::new(1 << 10);
        for k in [512u64, 3, 99, 700, 4] {
            v.insert(k);
        }
        let mut out = vec![42u64];
        v.keys_into(&mut out);
        assert_eq!(out, vec![42, 3, 4, 99, 512, 700]);
    }

    #[test]
    fn paper_figure_6_example() {
        let keys = [2u64, 4, 8, 10, 13, 15, 23, 28, 61];
        let mut v = VebTree::new(256);
        for &k in &keys {
            assert!(v.insert(k));
        }
        assert_eq!(v.len(), keys.len());
        assert_eq!(v.min(), Some(2));
        assert_eq!(v.max(), Some(61));
        assert!(v.contains(13));
        assert!(!v.contains(14));
        assert_eq!(v.pred(13), Some(10));
        assert_eq!(v.succ(13), Some(15));
        assert_eq!(v.succ(61), None);
        assert_eq!(v.pred(2), None);
        assert_eq!(v.iter_keys(), keys);
    }

    #[test]
    fn insert_duplicate_returns_false() {
        let mut v = VebTree::new(64);
        assert!(v.insert(10));
        assert!(!v.insert(10));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut v = VebTree::new(64);
        v.insert(10);
        assert!(!v.delete(11));
        assert!(v.delete(10));
        assert!(!v.delete(10));
        assert!(v.is_empty());
    }

    #[test]
    fn universe_of_one() {
        let mut v = VebTree::new(1);
        assert!(v.insert(0));
        assert!(v.contains(0));
        assert_eq!(v.min(), Some(0));
        assert!(v.delete(0));
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_key_panics() {
        let mut v = VebTree::new(100);
        v.insert(100);
    }

    #[test]
    fn pred_at_universe_boundary() {
        let mut v = VebTree::new(100);
        v.insert(7);
        v.insert(99);
        assert_eq!(v.pred(100), Some(99));
        assert_eq!(v.pred(99), Some(7));
    }

    #[test]
    fn matches_btreeset_under_random_single_point_ops() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let universe = 1u64 << 20;
        let mut v = VebTree::new(universe);
        let mut oracle = BTreeSet::new();
        for step in 0..20_000 {
            let key = rng() % universe;
            match rng() % 4 {
                0 | 1 => {
                    assert_eq!(v.insert(key), oracle.insert(key), "insert step {step}");
                }
                2 => {
                    assert_eq!(v.delete(key), oracle.remove(&key), "delete step {step}");
                }
                _ => {
                    assert_eq!(v.contains(key), oracle.contains(&key), "contains step {step}");
                    assert_eq!(
                        v.pred(key),
                        oracle.range(..key).next_back().copied(),
                        "pred step {step}"
                    );
                    assert_eq!(
                        v.succ(key),
                        oracle.range(key + 1..).next().copied(),
                        "succ step {step}"
                    );
                    assert_eq!(v.min(), oracle.first().copied());
                    assert_eq!(v.max(), oracle.last().copied());
                }
            }
            if step % 4096 == 0 {
                assert_eq!(v.len(), oracle.len());
                assert_eq!(v.recount(), oracle.len());
                assert_eq!(v.iter_keys(), oracle.iter().copied().collect::<Vec<_>>());
            }
        }
        assert_eq!(v.iter_keys(), oracle.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn dense_small_universe_full_then_empty() {
        let mut v = VebTree::new(512);
        for k in 0..512u64 {
            assert!(v.insert(k));
        }
        assert_eq!(v.len(), 512);
        assert_eq!(v.recount(), 512);
        for k in 0..512u64 {
            assert_eq!(v.pred(k), if k == 0 { None } else { Some(k - 1) });
            assert_eq!(v.succ(k), if k == 511 { None } else { Some(k + 1) });
        }
        for k in (0..512u64).rev() {
            assert!(v.delete(k));
        }
        assert!(v.is_empty());
        assert_eq!(v.recount(), 0);
    }
}
