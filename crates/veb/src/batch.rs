//! Parallel batch insertion and deletion (Algorithms 4 and 5 of the paper).
//!
//! * [`VebTree::batch_insert`] inserts a sorted batch in `O(m log log U)`
//!   work and `O(log U)` span (Theorem 5.1).
//! * [`VebTree::batch_delete`] deletes a sorted batch in `O(m log log U)`
//!   work and `O(log U log log U)` span (Theorem 5.2).  The difficult part —
//!   restoring the `min`/`max` of every affected subtree without touching
//!   keys that are themselves being deleted — uses the paper's *survivor
//!   mappings* (Definition 5.1): for every batch key `x`, `P(x)` / `S(x)`
//!   are the nearest keys of the tree *not in the batch* on either side.
//!   They are computed once at the root with predecessor/successor queries
//!   plus a parallel prefix pass, and then translated for every cluster and
//!   for the summary (`SurvivorLow` / `SurvivorHigh`) as the recursion
//!   descends, with `SurvivorRedirect` patching them whenever a survivor is
//!   promoted into a node header.
//!
//! Both operations recurse into distinct clusters in parallel by splitting
//! the cluster slot vector with `split_at_mut`, so no locks are needed.

use crate::node::{high, low, split_bits, Internal, Node, LEAF_BITS};
use crate::tree::VebTree;
use plis_primitives::par::maybe_join;
use rayon::prelude::*;

impl VebTree {
    /// Build a tree directly from a sorted, duplicate-free slice of keys.
    /// `O(m log log U)` work, `O(log U)` span — equivalent to batch-inserting
    /// into an empty tree.
    ///
    /// # Panics
    /// Panics if the keys are not strictly increasing or fall outside the
    /// universe.
    pub fn from_sorted(universe: u64, keys: &[u64]) -> Self {
        let mut tree = VebTree::new(universe);
        if keys.is_empty() {
            return tree;
        }
        assert_sorted_unique(keys);
        tree.check(*keys.last().unwrap());
        tree.root = Some(from_sorted_node(tree.bits, keys));
        tree.len = keys.len();
        tree
    }

    /// `BatchInsert` (Algorithm 4).  `batch` must be sorted and
    /// duplicate-free; keys already present are skipped.  Returns the number
    /// of keys actually inserted.
    pub fn batch_insert(&mut self, batch: &[u64]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        assert_sorted_unique(batch);
        self.check(*batch.last().unwrap());
        // The paper assumes B ∩ V = ∅; enforce it by filtering (parallel
        // lookups, O(m log log U)).
        let fresh: Vec<u64> = match &self.root {
            None => batch.to_vec(),
            Some(root) => batch.par_iter().copied().filter(|&k| !root.contains(k)).collect(),
        };
        if fresh.is_empty() {
            return 0;
        }
        match &mut self.root {
            None => self.root = Some(from_sorted_node(self.bits, &fresh)),
            Some(root) => node_batch_insert(root, self.bits, fresh.clone()),
        }
        self.len += fresh.len();
        fresh.len()
    }

    /// `BatchDelete` (Algorithm 5).  `batch` must be sorted and
    /// duplicate-free; keys not present are skipped.  Returns the number of
    /// keys actually removed.
    pub fn batch_delete(&mut self, batch: &[u64]) -> usize {
        if batch.is_empty() || self.root.is_none() {
            return 0;
        }
        assert_sorted_unique(batch);
        self.check(*batch.last().unwrap());
        let root = self.root.as_mut().expect("checked non-empty");
        let present: Vec<u64> = {
            let r = &*root;
            batch.par_iter().copied().filter(|&k| r.contains(k)).collect()
        };
        if present.is_empty() {
            return 0;
        }
        // Survivor mappings at the root (Definition 5.1): nearest keys on
        // either side of each batch element that are *not* being deleted.
        let (mut p, mut s) = survivor_maps(&*root, &present);
        let emptied = node_batch_delete(root, &present, &mut p, &mut s);
        if emptied {
            self.root = None;
        }
        self.len -= present.len();
        present.len()
    }
}

/// Panic unless `keys` is strictly increasing.
fn assert_sorted_unique(keys: &[u64]) {
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "batch must be sorted and duplicate-free");
}

/// Build a node directly from a sorted, duplicate-free, non-empty key slice.
fn from_sorted_node(bits: u32, keys: &[u64]) -> Node {
    debug_assert!(!keys.is_empty());
    if bits <= LEAF_BITS {
        let mut mask = 0u64;
        for &k in keys {
            mask |= 1u64 << k;
        }
        return Node::Leaf(mask);
    }
    let (hi_bits, lo_bits) = split_bits(bits);
    let min = keys[0];
    let max = *keys.last().unwrap();
    let mid: &[u64] = if keys.len() <= 2 { &[] } else { &keys[1..keys.len() - 1] };
    let mut node = match crate::pool::take(bits) {
        Some(mut n) => {
            n.min = min;
            n.max = max;
            n
        }
        None => {
            Box::new(Internal { lo_bits, hi_bits, min, max, summary: None, clusters: Vec::new() })
        }
    };
    if !mid.is_empty() {
        if node.clusters.is_empty() {
            node.clusters = (0..(1usize << hi_bits)).map(|_| None).collect();
        }
        let groups = group_by_high(mid, lo_bits);
        let hs: Vec<u64> = groups.iter().map(|g| g.0).collect();
        let clusters = &mut node.clusters;
        let (summary, ()) = maybe_join(
            mid.len(),
            plis_primitives::par::GRAIN,
            || Some(from_sorted_node(hi_bits, &hs)),
            || {
                par_for_groups(clusters, 0, &groups, &|slot, (_, lows)| {
                    *slot = Some(from_sorted_node(lo_bits, lows));
                });
            },
        );
        node.summary = summary;
    }
    Node::Internal(node)
}

/// Group a sorted slice of keys by their high halves.  Returns
/// `(h, lows)` pairs with `h` increasing and each `lows` sorted.
fn group_by_high(keys: &[u64], lo_bits: u32) -> Vec<(u64, Vec<u64>)> {
    let mut groups: Vec<(u64, Vec<u64>)> = Vec::new();
    for &k in keys {
        let h = high(k, lo_bits);
        let l = low(k, lo_bits);
        match groups.last_mut() {
            Some((gh, lows)) if *gh == h => lows.push(l),
            _ => groups.push((h, vec![l])),
        }
    }
    groups
}

/// Apply `f` to the cluster slot of every group, in parallel.  `groups` must
/// be sorted by their high half and `slots` is the cluster vector offset by
/// `base` (so `groups[i]` targets `slots[h_i - base]`).  Disjointness of the
/// slots lets us split with `split_at_mut` and hand the halves to rayon.
fn par_for_groups<G, F>(slots: &mut [Option<Node>], base: u64, groups: &[G], f: &F)
where
    G: GroupKey + Sync,
    F: Fn(&mut Option<Node>, &G) + Sync,
{
    match groups.len() {
        0 => {}
        1 => f(&mut slots[(groups[0].h() - base) as usize], &groups[0]),
        len => {
            let mid = len / 2;
            let split_h = groups[mid].h();
            let (gl, gr) = groups.split_at(mid);
            let (sl, sr) = slots.split_at_mut((split_h - base) as usize);
            maybe_join(
                len,
                8,
                || par_for_groups(sl, base, gl, f),
                || par_for_groups(sr, split_h, gr, f),
            );
        }
    }
}

/// Mutable variant of [`par_for_groups`], used by batch deletion where the
/// per-group state (the `emptied` flag) must be written back.
fn par_for_groups_mut<G, F>(slots: &mut [Option<Node>], base: u64, groups: &mut [G], f: &F)
where
    G: GroupKey + Send,
    F: Fn(&mut Option<Node>, &mut G) + Sync,
{
    match groups.len() {
        0 => {}
        1 => f(&mut slots[(groups[0].h() - base) as usize], &mut groups[0]),
        len => {
            let mid = len / 2;
            let split_h = groups[mid].h();
            let (gl, gr) = groups.split_at_mut(mid);
            let (sl, sr) = slots.split_at_mut((split_h - base) as usize);
            maybe_join(
                len,
                8,
                || par_for_groups_mut(sl, base, gl, f),
                || par_for_groups_mut(sr, split_h, gr, f),
            );
        }
    }
}

/// Anything that exposes the high half it targets (so the split helpers can
/// cut the cluster vector at the right place).
trait GroupKey {
    fn h(&self) -> u64;
}
impl GroupKey for (u64, Vec<u64>) {
    fn h(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Batch insertion (Algorithm 4)
// ---------------------------------------------------------------------------

/// Insert the sorted batch `b` (disjoint from the node's keys, non-empty)
/// into `node`, whose universe has `bits` bits.
fn node_batch_insert(node: &mut Node, bits: u32, b: Vec<u64>) {
    match node {
        Node::Leaf(mask) => {
            for k in b {
                *mask |= 1u64 << k;
            }
        }
        Node::Internal(n) => {
            debug_assert!(bits > LEAF_BITS);
            // Lines 2–5 of Alg. 4: fold the old header keys into the batch,
            // pick the new global min/max as the new header, and everything
            // in between must live in the clusters.
            let old_min = n.min;
            let old_max = n.max;
            let single = old_min == old_max;
            let mut merged: Vec<u64> = Vec::with_capacity(b.len() + 2);
            {
                // Merge `b` with the (at most two) displaced header keys.
                let headers: [u64; 2] = [old_min, old_max];
                let headers = if single { &headers[..1] } else { &headers[..] };
                let mut i = 0;
                let mut j = 0;
                while i < b.len() || j < headers.len() {
                    if j >= headers.len() || (i < b.len() && b[i] < headers[j]) {
                        merged.push(b[i]);
                        i += 1;
                    } else {
                        merged.push(headers[j]);
                        j += 1;
                    }
                }
            }
            n.min = merged[0];
            n.max = *merged.last().unwrap();
            if merged.len() <= 2 {
                return;
            }
            let mid = &merged[1..merged.len() - 1];
            // Lines 6–16: group the remaining keys by high half, initialise
            // brand-new clusters, insert the rest recursively, and insert the
            // new high halves into the summary — clusters and summary in
            // parallel.
            if n.clusters.is_empty() {
                n.clusters = (0..(1usize << n.hi_bits)).map(|_| None).collect();
            }
            let groups = group_by_high(mid, n.lo_bits);
            let new_hs: Vec<u64> = groups
                .iter()
                .filter(|(h, _)| n.clusters[*h as usize].is_none())
                .map(|(h, _)| *h)
                .collect();
            let lo_bits = n.lo_bits;
            let hi_bits = n.hi_bits;
            let clusters = &mut n.clusters;
            let summary = &mut n.summary;
            let total = mid.len();
            maybe_join(
                total,
                plis_primitives::par::GRAIN,
                || {
                    if new_hs.is_empty() {
                        return;
                    }
                    match summary {
                        Some(sumr) => node_batch_insert(sumr, hi_bits, new_hs.clone()),
                        None => *summary = Some(from_sorted_node(hi_bits, &new_hs)),
                    }
                },
                || {
                    par_for_groups(clusters, 0, &groups, &|slot, (_, lows)| match slot {
                        Some(c) => node_batch_insert(c, lo_bits, lows.clone()),
                        None => *slot = Some(from_sorted_node(lo_bits, lows)),
                    });
                },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Batch deletion (Algorithm 5)
// ---------------------------------------------------------------------------

/// Compute the survivor mappings `P`/`S` (Definition 5.1) of `batch`
/// with respect to the keys of `root`.  `None` plays the role of ±∞.
fn survivor_maps(root: &Node, batch: &[u64]) -> (Vec<Option<u64>>, Vec<Option<u64>>) {
    let m = batch.len();
    // Raw predecessor/successor queries, in parallel.  An entry is
    // *resolved* if the neighbour is not itself being deleted (or does not
    // exist at all, the genuine ±∞ case); it is *unresolved* if the
    // neighbour is a batch key, in which case it shares its survivor with
    // that neighbour — i.e. with the adjacent batch entry.
    #[derive(Clone, Copy)]
    struct Entry {
        value: Option<u64>,
        resolved: bool,
    }
    let raw = |neighbor: Option<u64>| -> Entry {
        match neighbor {
            Some(x) if batch.binary_search(&x).is_ok() => Entry { value: None, resolved: false },
            other => Entry { value: other, resolved: true },
        }
    };
    let p_raw: Vec<Entry> = (0..m).into_par_iter().map(|i| raw(root.pred(batch[i]))).collect();
    let s_raw: Vec<Entry> = (0..m).into_par_iter().map(|i| raw(root.succ(batch[i]))).collect();
    // Propagate resolved values across unresolved runs with a prefix scan
    // (the paper's "compute prefix-max of P"): left-to-right for P,
    // right-to-left for S.  The first element's predecessor can never be in
    // the batch, so after the pass `None` genuinely means −∞ (dually +∞).
    let carry = |a: &Entry, b: &Entry| if b.resolved { *b } else { *a };
    let p_scanned =
        plis_primitives::inclusive_scan(&p_raw, Entry { value: None, resolved: false }, carry);
    let s_rev: Vec<Entry> = s_raw.iter().rev().copied().collect();
    let mut s_scanned =
        plis_primitives::inclusive_scan(&s_rev, Entry { value: None, resolved: false }, carry);
    s_scanned.reverse();
    let p = p_scanned.into_iter().map(|e| e.value).collect();
    let s = s_scanned.into_iter().map(|e| e.value).collect();
    (p, s)
}

/// One per-cluster slice of a deletion batch, together with its translated
/// survivor mappings and (after the recursion) whether the cluster emptied.
struct DelGroup {
    h: u64,
    lows: Vec<u64>,
    p: Vec<Option<u64>>,
    s: Vec<Option<u64>>,
    /// Index (into the parent batch) of the first / last key of this group —
    /// used by `SurvivorHigh` to build the summary's survivor maps.
    first_idx: usize,
    last_idx: usize,
    emptied: bool,
}
impl GroupKey for DelGroup {
    fn h(&self) -> u64 {
        self.h
    }
}

/// Delete the sorted batch `b ⊆ node` from `node`.  `p`/`s` are the survivor
/// mappings of `b` with respect to the node's key set (values are keys of
/// this node's universe; `None` = no survivor on that side *within this
/// node*).  Returns `true` if the node became empty.
fn node_batch_delete(
    node: &mut Node,
    b: &[u64],
    p: &mut [Option<u64>],
    s: &mut [Option<u64>],
) -> bool {
    debug_assert_eq!(b.len(), p.len());
    debug_assert_eq!(b.len(), s.len());
    match node {
        Node::Leaf(mask) => {
            for &k in b {
                *mask &= !(1u64 << k);
            }
            *mask == 0
        }
        Node::Internal(n) => internal_batch_delete(n, b, p, s),
    }
}

fn internal_batch_delete(
    n: &mut Internal,
    b: &[u64],
    p: &mut [Option<u64>],
    s: &mut [Option<u64>],
) -> bool {
    let vmin = n.min;
    let vmax = n.max;
    if vmin == vmax {
        // Exactly one key; b ⊆ node forces b = {vmin}.
        debug_assert!(b.len() == 1 && b[0] == vmin);
        return true;
    }
    let min_deleted = b[0] == vmin;
    let max_deleted = *b.last().unwrap() == vmax;

    // New header values after the deletion (Lines 5–14 of Alg. 5).
    let new_min = if min_deleted { s[0] } else { Some(vmin) };
    let Some(new_min) = new_min else {
        // The minimum is deleted and it has no survivor successor: nothing
        // survives, the whole subtree disappears.
        return true;
    };
    let new_max = if max_deleted {
        p[b.len() - 1].expect("a survivor exists, so the max has a survivor predecessor")
    } else {
        vmax
    };

    // Range of batch entries that refer to cluster keys (header keys are
    // handled directly and never recurse).
    let lo_trim = usize::from(min_deleted);
    let hi_trim = b.len() - usize::from(max_deleted);

    // Promote the survivor that replaces a deleted min (and symmetrically a
    // deleted max) out of the clusters and into the header, redirecting any
    // survivor-map entries that pointed at it (SurvivorRedirect).
    if min_deleted {
        if new_min != vmax {
            let (rp, rs) = survivor_neighbors(n, new_min, b, p, s);
            delete_from_clusters(n, new_min);
            redirect(&mut p[lo_trim..hi_trim], &mut s[lo_trim..hi_trim], new_min, rp, rs);
        }
        n.min = new_min;
    }
    if max_deleted {
        if new_max != n.min {
            let (rp, rs) = survivor_neighbors(n, new_max, b, p, s);
            delete_from_clusters(n, new_max);
            redirect(&mut p[lo_trim..hi_trim], &mut s[lo_trim..hi_trim], new_max, rp, rs);
            n.max = new_max;
        } else {
            n.max = n.min;
        }
    }

    let b_mid = &b[lo_trim..hi_trim];
    if b_mid.is_empty() {
        return false;
    }
    let p_mid = &p[lo_trim..hi_trim];
    let s_mid = &s[lo_trim..hi_trim];

    // SurvivorLow: translate the survivor maps into each cluster's universe.
    let cur_min = n.min;
    let cur_max = n.max;
    let lo_bits = n.lo_bits;
    let mut groups: Vec<DelGroup> = Vec::new();
    for (i, &x) in b_mid.iter().enumerate() {
        let h = high(x, lo_bits);
        let l = low(x, lo_bits);
        let pl = match p_mid[i] {
            Some(pp) if high(pp, lo_bits) == h && pp != cur_min => Some(low(pp, lo_bits)),
            _ => None,
        };
        let sl = match s_mid[i] {
            Some(ss) if high(ss, lo_bits) == h && ss != cur_max => Some(low(ss, lo_bits)),
            _ => None,
        };
        match groups.last_mut() {
            Some(g) if g.h == h => {
                g.lows.push(l);
                g.p.push(pl);
                g.s.push(sl);
                g.last_idx = i;
            }
            _ => groups.push(DelGroup {
                h,
                lows: vec![l],
                p: vec![pl],
                s: vec![sl],
                first_idx: i,
                last_idx: i,
                emptied: false,
            }),
        }
    }

    // Recurse into all affected clusters in parallel (Lines 18–20).
    par_for_groups_mut(&mut n.clusters, 0, &mut groups, &|slot, g| {
        let cluster = slot.as_mut().expect("batch keys must live in an existing cluster");
        let emptied = node_batch_delete(cluster, &g.lows, &mut g.p, &mut g.s);
        if emptied {
            crate::pool::recycle(slot.take());
            g.emptied = true;
        }
    });

    // SurvivorHigh + summary recursion (Lines 21–23): remove the high halves
    // of the clusters that just became empty from the summary.
    let emptied_groups: Vec<&DelGroup> = groups.iter().filter(|g| g.emptied).collect();
    if !emptied_groups.is_empty() {
        let hs: Vec<u64> = emptied_groups.iter().map(|g| g.h).collect();
        let mut ph: Vec<Option<u64>> = emptied_groups
            .iter()
            .map(|g| match p_mid[g.first_idx] {
                Some(pp) if pp != cur_min && pp != cur_max => Some(high(pp, lo_bits)),
                _ => None,
            })
            .collect();
        let mut sh: Vec<Option<u64>> = emptied_groups
            .iter()
            .map(|g| match s_mid[g.last_idx] {
                Some(ss) if ss != cur_min && ss != cur_max => Some(high(ss, lo_bits)),
                _ => None,
            })
            .collect();
        let summary = n.summary.as_mut().expect("non-empty clusters imply a summary");
        let summary_empty = node_batch_delete(summary, &hs, &mut ph, &mut sh);
        if summary_empty {
            n.summary = None;
        }
    }
    false
}

/// Find the survivor predecessor and successor of the key `y` (a survivor
/// about to be promoted into the header), expressed with respect to the
/// *current* structure and the batch `b` (Lines 24–31 of Alg. 5).
fn survivor_neighbors(
    n: &Internal,
    y: u64,
    b: &[u64],
    p: &[Option<u64>],
    s: &[Option<u64>],
) -> (Option<u64>, Option<u64>) {
    let mut rp = n.pred(y);
    if let Some(x) = rp {
        if let Ok(j) = b.binary_search(&x) {
            rp = p[j];
        }
    }
    let mut rs = n.succ(y);
    if let Some(x) = rs {
        if let Ok(j) = b.binary_search(&x) {
            rs = s[j];
        }
    }
    (rp, rs)
}

/// Redirect survivor-map entries equal to `y` to `rp`/`rs` (SurvivorRedirect,
/// Lines 28–30).
fn redirect(
    p: &mut [Option<u64>],
    s: &mut [Option<u64>],
    y: u64,
    rp: Option<u64>,
    rs: Option<u64>,
) {
    let m = p.len();
    for i in 0..m {
        if p[i] == Some(y) {
            p[i] = rp;
        }
        if s[i] == Some(y) {
            s[i] = rs;
        }
    }
}

/// Delete a key that lives in the clusters (never a header key) the
/// sequential way: remove it from its cluster and fix the summary if the
/// cluster empties (Line 9 of Alg. 5).
fn delete_from_clusters(n: &mut Internal, key: u64) {
    let h = high(key, n.lo_bits);
    let l = low(key, n.lo_bits);
    let slot = n.clusters[h as usize].as_mut().expect("key must live in a cluster");
    let (_present, emptied) = slot.delete(l);
    if emptied {
        n.clusters[h as usize] = None;
        if let Some(sumr) = &mut n.summary {
            let (_, sempty) = sumr.delete(h);
            if sempty {
                n.summary = None;
            }
        }
    }
}
