//! The recursive vEB node and the sequential (single-point) operations of
//! Section 5.1 of the paper.
//!
//! All keys handled by a node are *relative* to that node's universe: the
//! caller strips the high bits before recursing (the paper's
//! `high`/`low`/`index` notation, Table 1).  A node that exists is never
//! empty; emptiness is represented by the parent holding `None` in the
//! cluster slot (or by [`crate::VebTree`] holding `None` at the root).

/// Universes with at most this many bits are stored as a single `u64`
/// bitset leaf instead of a recursive node.  This is the standard practical
/// optimisation for vEB trees: it shortens every root-to-leaf path by two
/// levels and removes the allocation churn of tiny nodes, without changing
/// the `O(log log U)` bound.
pub const LEAF_BITS: u32 = 6;

/// A vEB (sub-)tree.  `Leaf` holds a universe of at most `2^LEAF_BITS = 64`
/// keys as a bitset; `Internal` is the textbook recursive node.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf(u64),
    Internal(Box<Internal>),
}

/// An internal vEB node over a universe of `2^(hi_bits + lo_bits)` keys.
///
/// Invariants (the paper's convention, which the batch algorithms rely on):
/// * the node is non-empty: `min` and `max` are valid keys;
/// * `min == max` iff the node holds exactly one key;
/// * neither `min` nor `max` is stored in any cluster;
/// * `summary` holds exactly the set of `h` with `clusters[h].is_some()`,
///   and is `None` iff every cluster slot is `None`.
#[derive(Debug, Clone)]
pub(crate) struct Internal {
    /// Number of low bits; each cluster has universe `2^lo_bits`.
    pub lo_bits: u32,
    /// Number of high bits; there are `2^hi_bits` cluster slots.
    pub hi_bits: u32,
    /// Smallest key in this subtree (not stored in the clusters).
    pub min: u64,
    /// Largest key in this subtree (not stored in the clusters).
    pub max: u64,
    /// vEB tree over the non-empty cluster indices.
    pub summary: Option<Node>,
    /// Lazily populated clusters, `2^hi_bits` slots.
    pub clusters: Vec<Option<Node>>,
}

/// Split a `bits`-bit universe into `(hi_bits, lo_bits)` as the paper does:
/// the low half gets `⌊bits/2⌋` bits and the high half the rest.
#[inline]
pub(crate) fn split_bits(bits: u32) -> (u32, u32) {
    let lo = bits / 2;
    (bits - lo, lo)
}

/// High half of `key` under a `lo_bits` split (the paper's `high(x)`).
#[inline]
pub(crate) fn high(key: u64, lo_bits: u32) -> u64 {
    key >> lo_bits
}

/// Low half of `key` under a `lo_bits` split (the paper's `low(x)`).
#[inline]
pub(crate) fn low(key: u64, lo_bits: u32) -> u64 {
    key & ((1u64 << lo_bits) - 1)
}

/// Reassemble a key from its halves (the paper's `index(h, l)`).
#[inline]
pub(crate) fn index(h: u64, l: u64, lo_bits: u32) -> u64 {
    (h << lo_bits) | l
}

impl Node {
    /// A new subtree holding exactly `key`.  Reuses a recycled node of the
    /// same universe width from the thread-local [`crate::pool`] when one is
    /// available, so steady-state cluster churn stays off the allocator.
    pub(crate) fn singleton(bits: u32, key: u64) -> Node {
        debug_assert!(bits == 64 || key < (1u64 << bits));
        if bits <= LEAF_BITS {
            Node::Leaf(1u64 << key)
        } else if let Some(mut n) = crate::pool::take(bits) {
            n.min = key;
            n.max = key;
            Node::Internal(n)
        } else {
            let (hi_bits, lo_bits) = split_bits(bits);
            Node::Internal(Box::new(Internal {
                lo_bits,
                hi_bits,
                min: key,
                max: key,
                summary: None,
                clusters: Vec::new(),
            }))
        }
    }

    /// Rough heap footprint of this subtree in bytes: every boxed internal
    /// node plus its cluster-slot vector, recursively.  `O(nodes)` — meant
    /// for occasional memory-accounting snapshots, not hot paths.
    pub(crate) fn approx_bytes(&self) -> usize {
        match self {
            Node::Leaf(_) => 0, // inline in the parent's enum slot
            Node::Internal(n) => {
                std::mem::size_of::<Internal>()
                    + n.clusters.capacity() * std::mem::size_of::<Option<Node>>()
                    + n.summary.as_ref().map_or(0, Node::approx_bytes)
                    + n.clusters.iter().flatten().map(Node::approx_bytes).sum::<usize>()
            }
        }
    }

    /// Smallest key in this subtree.
    pub(crate) fn min(&self) -> u64 {
        match self {
            Node::Leaf(bits) => {
                debug_assert!(*bits != 0);
                bits.trailing_zeros() as u64
            }
            Node::Internal(n) => n.min,
        }
    }

    /// Largest key in this subtree.
    pub(crate) fn max(&self) -> u64 {
        match self {
            Node::Leaf(bits) => {
                debug_assert!(*bits != 0);
                63 - bits.leading_zeros() as u64
            }
            Node::Internal(n) => n.max,
        }
    }

    /// Membership test.  `O(log log U)`.
    pub(crate) fn contains(&self, key: u64) -> bool {
        match self {
            Node::Leaf(bits) => (bits >> key) & 1 == 1,
            Node::Internal(n) => {
                if key == n.min || key == n.max {
                    return true;
                }
                if n.min == n.max {
                    return false;
                }
                let h = high(key, n.lo_bits) as usize;
                match n.clusters.get(h).and_then(Option::as_ref) {
                    Some(c) => c.contains(low(key, n.lo_bits)),
                    None => false,
                }
            }
        }
    }

    /// Insert `key`; returns `true` if it was not already present.
    /// `O(log log U)` amortised (creating a fresh internal cluster allocates
    /// its slot vector, which is the plain-vEB space/time trade-off the
    /// paper also assumes).
    pub(crate) fn insert(&mut self, key: u64) -> bool {
        match self {
            Node::Leaf(bits) => {
                let mask = 1u64 << key;
                let fresh = *bits & mask == 0;
                *bits |= mask;
                fresh
            }
            Node::Internal(n) => n.insert(key),
        }
    }

    /// Delete `key`.  Returns `(was_present, now_empty)`; when `now_empty`
    /// is true the caller must drop this node (set its slot to `None`).
    /// `O(log log U)`.
    pub(crate) fn delete(&mut self, key: u64) -> (bool, bool) {
        match self {
            Node::Leaf(bits) => {
                let mask = 1u64 << key;
                let present = *bits & mask != 0;
                *bits &= !mask;
                (present, *bits == 0)
            }
            Node::Internal(n) => n.delete(key),
        }
    }

    /// Largest key strictly smaller than `key`, if any.  `O(log log U)`.
    pub(crate) fn pred(&self, key: u64) -> Option<u64> {
        match self {
            Node::Leaf(bits) => {
                let mask = if key == 0 { 0 } else { (1u64 << key) - 1 };
                let below = bits & mask;
                if below == 0 {
                    None
                } else {
                    Some(63 - below.leading_zeros() as u64)
                }
            }
            Node::Internal(n) => n.pred(key),
        }
    }

    /// Smallest key strictly larger than `key`, if any.  `O(log log U)`.
    pub(crate) fn succ(&self, key: u64) -> Option<u64> {
        match self {
            Node::Leaf(bits) => {
                if key >= 63 {
                    return None;
                }
                let above = bits & !((1u64 << (key + 1)) - 1);
                if above == 0 {
                    None
                } else {
                    Some(above.trailing_zeros() as u64)
                }
            }
            Node::Internal(n) => n.succ(key),
        }
    }

    /// Append every key in this subtree, offset by `base`, to `out`
    /// in increasing order.  `O(size + √U)` — a test / export helper, not
    /// part of the performance-critical path.
    pub(crate) fn collect_into(&self, base: u64, out: &mut Vec<u64>) {
        match self {
            Node::Leaf(bits) => {
                let mut b = *bits;
                while b != 0 {
                    let k = b.trailing_zeros() as u64;
                    out.push(base + k);
                    b &= b - 1;
                }
            }
            Node::Internal(n) => {
                out.push(base + n.min);
                for (h, slot) in n.clusters.iter().enumerate() {
                    if let Some(c) = slot {
                        c.collect_into(base + ((h as u64) << n.lo_bits), out);
                    }
                }
                if n.max != n.min {
                    out.push(base + n.max);
                }
            }
        }
    }

    /// Number of keys stored in this subtree (linear walk; test helper).
    pub(crate) fn count(&self) -> usize {
        match self {
            Node::Leaf(bits) => bits.count_ones() as usize,
            Node::Internal(n) => {
                let mut c = if n.min == n.max { 1 } else { 2 };
                for s in n.clusters.iter().flatten() {
                    c += s.count();
                }
                c
            }
        }
    }
}

impl Internal {
    /// Ensure the cluster slot vector is allocated (all `None`), preferring
    /// a pooled spare so a reserved session's steady state stays off the
    /// allocator even when a header-only node gains its third key.
    fn ensure_clusters(&mut self) {
        if self.clusters.is_empty() {
            self.clusters = crate::pool::take_clusters(self.hi_bits)
                .unwrap_or_else(|| (0..(1usize << self.hi_bits)).map(|_| None).collect());
        }
    }

    pub(crate) fn insert(&mut self, mut key: u64) -> bool {
        if key == self.min || key == self.max {
            return false;
        }
        if self.min == self.max {
            // Exactly one key; the second key only touches the header.
            if key < self.min {
                self.min = key;
            } else {
                self.max = key;
            }
            return true;
        }
        // At least two keys.  A key smaller than min (or larger than max)
        // takes its place and the displaced header key is pushed down.
        if key < self.min {
            std::mem::swap(&mut key, &mut self.min);
        } else if key > self.max {
            std::mem::swap(&mut key, &mut self.max);
        }
        let h = high(key, self.lo_bits) as usize;
        let l = low(key, self.lo_bits);
        self.ensure_clusters();
        match &mut self.clusters[h] {
            Some(c) => c.insert(l),
            slot @ None => {
                *slot = Some(Node::singleton(self.lo_bits, l));
                self.summary_insert(h as u64);
                true
            }
        }
    }

    fn summary_insert(&mut self, h: u64) {
        match &mut self.summary {
            Some(s) => {
                s.insert(h);
            }
            None => self.summary = Some(Node::singleton(self.hi_bits, h)),
        }
    }

    fn summary_delete(&mut self, h: u64) {
        if let Some(s) = &mut self.summary {
            let (_, empty) = s.delete(h);
            if empty {
                crate::pool::recycle(self.summary.take());
            }
        }
    }

    pub(crate) fn delete(&mut self, key: u64) -> (bool, bool) {
        if self.min == self.max {
            // Exactly one key.
            return if key == self.min { (true, true) } else { (false, false) };
        }
        if key == self.min {
            // Pull the smallest cluster key (or fall back to max) into min.
            match &self.summary {
                None => {
                    self.min = self.max;
                    return (true, false);
                }
                Some(s) => {
                    let h = s.min();
                    let c = self.clusters[h as usize]
                        .as_mut()
                        .expect("summary and clusters out of sync");
                    let l = c.min();
                    let (_, emptied) = c.delete(l);
                    if emptied {
                        crate::pool::recycle(self.clusters[h as usize].take());
                        self.summary_delete(h);
                    }
                    self.min = index(h, l, self.lo_bits);
                    return (true, false);
                }
            }
        }
        if key == self.max {
            match &self.summary {
                None => {
                    self.max = self.min;
                    return (true, false);
                }
                Some(s) => {
                    let h = s.max();
                    let c = self.clusters[h as usize]
                        .as_mut()
                        .expect("summary and clusters out of sync");
                    let l = c.max();
                    let (_, emptied) = c.delete(l);
                    if emptied {
                        crate::pool::recycle(self.clusters[h as usize].take());
                        self.summary_delete(h);
                    }
                    self.max = index(h, l, self.lo_bits);
                    return (true, false);
                }
            }
        }
        // The key, if present, lives in a cluster.
        let h = high(key, self.lo_bits) as usize;
        let l = low(key, self.lo_bits);
        match self.clusters.get_mut(h).and_then(Option::as_mut) {
            None => (false, false),
            Some(c) => {
                let (present, emptied) = c.delete(l);
                if emptied {
                    crate::pool::recycle(self.clusters[h].take());
                    self.summary_delete(h as u64);
                }
                (present, false)
            }
        }
    }

    pub(crate) fn succ(&self, key: u64) -> Option<u64> {
        if key < self.min {
            return Some(self.min);
        }
        if let Some(s) = &self.summary {
            let h = high(key, self.lo_bits);
            let l = low(key, self.lo_bits);
            if let Some(c) = self.clusters.get(h as usize).and_then(Option::as_ref) {
                if l < c.max() {
                    let l2 = c.succ(l).expect("l < max implies a successor");
                    return Some(index(h, l2, self.lo_bits));
                }
            }
            if let Some(h2) = s.succ(h) {
                let c =
                    self.clusters[h2 as usize].as_ref().expect("summary and clusters out of sync");
                return Some(index(h2, c.min(), self.lo_bits));
            }
        }
        if key < self.max {
            return Some(self.max);
        }
        None
    }

    pub(crate) fn pred(&self, key: u64) -> Option<u64> {
        if key > self.max {
            return Some(self.max);
        }
        if let Some(s) = &self.summary {
            let h = high(key, self.lo_bits);
            let l = low(key, self.lo_bits);
            if let Some(c) = self.clusters.get(h as usize).and_then(Option::as_ref) {
                if l > c.min() {
                    let l2 = c.pred(l).expect("l > min implies a predecessor");
                    return Some(index(h, l2, self.lo_bits));
                }
            }
            if let Some(h2) = s.pred(h) {
                let c =
                    self.clusters[h2 as usize].as_ref().expect("summary and clusters out of sync");
                return Some(index(h2, c.max(), self.lo_bits));
            }
        }
        if key > self.min {
            return Some(self.min);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_helpers_match_paper_example() {
        // Figure 6: key 13 in a 256-key universe (8 bits -> 4/4 split).
        let (hi, lo) = split_bits(8);
        assert_eq!((hi, lo), (4, 4));
        assert_eq!(high(13, lo), 0);
        assert_eq!(low(13, lo), 13);
        assert_eq!(index(0, 13, lo), 13);
        // And a key with a non-zero high half.
        assert_eq!(high(61, lo), 3);
        assert_eq!(low(61, lo), 13);
        assert_eq!(index(3, 13, lo), 61);
    }

    #[test]
    fn split_bits_odd_width() {
        let (hi, lo) = split_bits(7);
        assert_eq!((hi, lo), (4, 3));
        assert_eq!(hi + lo, 7);
    }

    #[test]
    fn leaf_operations() {
        let mut n = Node::singleton(6, 5);
        assert!(n.contains(5));
        assert!(!n.contains(4));
        assert!(n.insert(9));
        assert!(!n.insert(9));
        assert_eq!(n.min(), 5);
        assert_eq!(n.max(), 9);
        assert_eq!(n.pred(9), Some(5));
        assert_eq!(n.pred(5), None);
        assert_eq!(n.succ(5), Some(9));
        assert_eq!(n.succ(9), None);
        assert_eq!(n.succ(63), None);
        let (present, empty) = n.delete(5);
        assert!(present && !empty);
        let (present, empty) = n.delete(9);
        assert!(present && empty);
    }

    #[test]
    fn internal_header_only_cases() {
        // Two keys live entirely in the header (min/max), no clusters.
        let mut n = Node::singleton(10, 100);
        assert!(n.insert(800));
        match &n {
            Node::Internal(i) => {
                assert!(i.summary.is_none());
                assert_eq!((i.min, i.max), (100, 800));
            }
            _ => panic!("expected internal node"),
        }
        assert_eq!(n.pred(800), Some(100));
        assert_eq!(n.succ(100), Some(800));
        assert_eq!(n.succ(800), None);
        let (present, empty) = n.delete(100);
        assert!(present && !empty);
        assert_eq!(n.min(), 800);
        assert_eq!(n.max(), 800);
    }

    #[test]
    fn count_and_collect() {
        let mut n = Node::singleton(12, 7);
        let keys = [7u64, 1000, 550, 3, 2048, 4095, 12, 13];
        for &k in &keys[1..] {
            assert!(n.insert(k));
        }
        assert_eq!(n.count(), keys.len());
        let mut out = Vec::new();
        n.collect_into(0, &mut out);
        let mut want = keys.to_vec();
        want.sort();
        assert_eq!(out, want);
    }
}
