//! Thread-local recycling pool for emptied internal vEB nodes.
//!
//! The sequential point operations of [`crate::node`] create and drop boxed
//! [`Internal`] nodes every time a cluster gains its first key or loses its
//! last one.  Under the streaming engine's steady-state ingest pattern
//! (insert the new tail, delete the displaced one, every element) that is a
//! malloc/free pair per tick — the dominant cost of the vEB backend on
//! small batches, and allocator churn that gets dramatically worse when
//! many sessions interleave on one heap.
//!
//! Instead of handing emptied nodes back to the allocator, every drop site
//! pushes them here and every creation site pops first.  The pool is
//! thread-local so the parallel batch algorithms (which recurse into
//! disjoint clusters from different rayon workers) can recycle without
//! locks; a node freed on one worker simply becomes available to the next
//! operation that worker performs.  Reuse changes no observable behaviour —
//! a popped node is re-initialised exactly like a fresh one, except that it
//! keeps its (all-`None`) cluster-slot vector, which is precisely the
//! allocation worth saving.
//!
//! Pools are keyed by the node's universe width in bits (the split into
//! `hi_bits`/`lo_bits` is a pure function of the width, so every node of a
//! class is interchangeable) and capped per class so a transient deletion
//! wave cannot pin unbounded memory: wide nodes carry a large slot vector,
//! so their class keeps only a handful.

use crate::node::Internal;
use std::cell::RefCell;

/// Retained nodes per class for narrow universes (slot vectors ≤ 2^8).
const CAP_NARROW: usize = 256;
/// Retained nodes per class for wide universes (slot vectors up to 2^16
/// slots, 1 MiB each at the 32-bit root split).
const CAP_WIDE: usize = 4;
/// Widths above this use [`CAP_WIDE`].
const NARROW_BITS: u32 = 16;

struct Pool {
    /// `(width_bits, nodes)` — a handful of distinct widths per process
    /// (one per recursion level actually used), so linear scan beats a map.
    /// The `Box` IS the recycled allocation, so `Vec<Box<_>>` is the point.
    #[allow(clippy::vec_box)]
    classes: Vec<(u32, Vec<Box<Internal>>)>,
    /// `(hi_bits, vectors)` — spare all-`None` cluster-slot vectors for
    /// [`Internal::ensure_clusters`].  A node that has only ever held its
    /// `min`/`max` header keys carries no slot vector (the vEB lazy
    /// optimisation); when such a node gains a third key in a reserved
    /// steady state, the vector comes from here instead of the allocator.
    cluster_vecs: Vec<(u32, Vec<Vec<Option<crate::node::Node>>>)>,
}

thread_local! {
    static POOL: RefCell<Pool> =
        const { RefCell::new(Pool { classes: Vec::new(), cluster_vecs: Vec::new() }) };
}

/// Pop a recycled node of universe width `bits`, if one is pooled on this
/// thread.  The caller must re-initialise `min`/`max`; `summary` is `None`
/// and every cluster slot is `None` (capacity retained) by construction.
pub(crate) fn take(bits: u32) -> Option<Box<Internal>> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.classes.iter_mut().find(|(b, _)| *b == bits).and_then(|(_, nodes)| nodes.pop())
    })
}

/// Recycle an emptied internal node.  Point deletions always hand over a
/// *clean* node (summary `None`, every cluster slot `None` — the vEB
/// single-key invariant), but batch deletion's "nothing survives" path
/// drops whole subtrees without unwinding them, so dirty nodes are let
/// through to the ordinary recursive drop instead of being pooled.
/// Dropped instead of pooled once the class cap is reached.
pub(crate) fn put(node: Box<Internal>) {
    if node.summary.is_some() || node.clusters.iter().any(Option::is_some) {
        return;
    }
    let bits = node.hi_bits + node.lo_bits;
    let cap = if bits <= NARROW_BITS { CAP_NARROW } else { CAP_WIDE };
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.classes.iter_mut().find(|(b, _)| *b == bits) {
            Some((_, nodes)) => {
                if nodes.len() < cap {
                    nodes.push(node);
                }
            }
            None => p.classes.push((bits, vec![node])),
        }
    });
}

/// Recycle the internal node inside a just-emptied cluster slot, if any
/// (leaves live inline in the slot and carry no heap).
pub(crate) fn recycle(slot: Option<crate::node::Node>) {
    if let Some(crate::node::Node::Internal(node)) = slot {
        put(node);
    }
}

/// Stock this thread's pool of width-`bits` nodes up to `count` (clamped
/// by the class cap).  Fresh nodes are built with their cluster-slot
/// vector already allocated, so a later take-and-fill touches the
/// allocator zero times — this is what makes a *reserved* session's
/// steady state allocation-free even while its key set keeps spreading
/// into new clusters (cluster churn only recycles nodes that were freed
/// first; a net-new cluster needs a node from somewhere).
pub(crate) fn prewarm(bits: u32, count: usize) {
    let cap = if bits <= NARROW_BITS { CAP_NARROW } else { CAP_WIDE };
    let target = count.min(cap);
    let (hi_bits, lo_bits) = crate::node::split_bits(bits);
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let nodes = match p.classes.iter_mut().find(|(b, _)| *b == bits) {
            Some((_, nodes)) => nodes,
            None => {
                p.classes.push((bits, Vec::new()));
                &mut p.classes.last_mut().expect("just pushed").1
            }
        };
        while nodes.len() < target {
            nodes.push(Box::new(Internal {
                lo_bits,
                hi_bits,
                min: 0,
                max: 0,
                summary: None,
                clusters: (0..(1usize << hi_bits)).map(|_| None).collect(),
            }));
        }
    });
}

/// Retained spare cluster-slot vectors per `hi_bits` class.
const CLUSTER_VEC_CAP: usize = 256;
/// Spare cluster vectors are pooled only for `hi_bits` up to this.  Wider
/// vectors belong to near-root nodes, which acquire theirs once per tree
/// lifetime during warm-up — pooling them would pin megabytes to save an
/// allocation that never recurs in steady state.
const CLUSTER_VEC_MAX_HI_BITS: u32 = 8;

/// Pop a spare all-`None` cluster-slot vector of `1 << hi_bits` slots, if
/// one is pooled on this thread.
pub(crate) fn take_clusters(hi_bits: u32) -> Option<Vec<Option<crate::node::Node>>> {
    if hi_bits > CLUSTER_VEC_MAX_HI_BITS {
        return None;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.cluster_vecs.iter_mut().find(|(b, _)| *b == hi_bits).and_then(|(_, vecs)| vecs.pop())
    })
}

/// Stock this thread's pool of `hi_bits`-class cluster vectors up to
/// `count` (clamped by [`CLUSTER_VEC_CAP`]).  Complements [`prewarm`]:
/// prewarmed *nodes* carry their vector already, but a node that entered
/// the tree holding only header keys has none, and its third key arrives
/// on the hot path long after any reserve call created it.
pub(crate) fn prewarm_clusters(hi_bits: u32, count: usize) {
    if hi_bits > CLUSTER_VEC_MAX_HI_BITS {
        return;
    }
    let target = count.min(CLUSTER_VEC_CAP);
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let vecs = match p.cluster_vecs.iter_mut().find(|(b, _)| *b == hi_bits) {
            Some((_, vecs)) => vecs,
            None => {
                p.cluster_vecs.push((hi_bits, Vec::new()));
                &mut p.cluster_vecs.last_mut().expect("just pushed").1
            }
        };
        while vecs.len() < target {
            vecs.push((0..(1usize << hi_bits)).map(|_| None).collect());
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::VebTree;

    #[test]
    fn churned_nodes_are_reused_not_reallocated() {
        // Alternate creating and destroying the same cluster: after the
        // first cycle the pool serves every subsequent creation, which we
        // can only observe indirectly — behaviour must be identical.
        let mut v = VebTree::new(1 << 20);
        v.insert(3);
        v.insert(1 << 19);
        for _ in 0..1000 {
            // 4096 lands in a cluster of its own; inserting and deleting it
            // churns that cluster's internal node.
            assert!(v.insert(4096));
            assert!(v.insert(4097));
            assert!(v.delete(4096));
            assert!(v.delete(4097));
        }
        assert_eq!(v.len(), 2);
        assert_eq!(v.iter_keys(), vec![3, 1 << 19]);
    }

    #[test]
    fn pooled_reuse_survives_batch_ops() {
        let mut v = VebTree::new(1 << 16);
        let keys: Vec<u64> = (0..256u64).map(|i| i * 251 % (1 << 16)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        for _ in 0..50 {
            v.batch_insert(&sorted);
            assert_eq!(v.len(), sorted.len());
            v.batch_delete(&sorted);
            assert!(v.is_empty());
        }
    }
}
