//! The Mono-vEB tree (Section 4.2) and the `CoveredBy` operation
//! (Algorithm 7, Appendix D).
//!
//! A Mono-vEB tree stores the *staircase* of a set of scored points: keys
//! (the paper's `y` coordinates, i.e. input indices) with a score (the `dp`
//! value), such that no stored point *covers* another.  Point `p1` covers
//! `p2` when `p1.key < p2.key` and `p1.score >= p2.score`; consequently the
//! scores of the stored points are strictly increasing in the key.  This
//! monotonicity is what makes the dominant-max query of the Range-vEB tree a
//! single predecessor lookup: the best score among keys `< q` is exactly the
//! score of `q`'s predecessor.
//!
//! [`MonoVeb::insert_staircase`] performs one staircase update exactly as
//! the `Update` function of Algorithm 3 prescribes for a single inner tree:
//! refine the incoming list, find the existing points that the new points
//! cover (`CoveredBy`), batch-delete them, batch-insert the new points.

use crate::tree::VebTree;
use plis_primitives::par::GRAIN;
use rayon::prelude::*;

/// A `(key, score)` pair; the key is the paper's `y` coordinate (an input
/// index) and the score its `dp` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoredPoint {
    /// Key in the Mono-vEB universe.
    pub key: u64,
    /// Score (dp value) associated with the key.
    pub score: u64,
}

/// A vEB tree over `[0, universe)` whose keys carry scores and which
/// maintains the staircase invariant (scores strictly increase with keys).
#[derive(Debug, Clone)]
pub struct MonoVeb {
    veb: VebTree,
    /// `scores[key]` is meaningful only while `key` is stored in `veb`.
    scores: Vec<u64>,
}

impl MonoVeb {
    /// An empty Mono-vEB tree over the universe `[0, universe)`.
    pub fn new(universe: u64) -> Self {
        MonoVeb { veb: VebTree::new(universe), scores: vec![0; universe as usize] }
    }

    /// Number of points on the staircase.
    pub fn len(&self) -> usize {
        self.veb.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.veb.is_empty()
    }

    /// The universe size.
    pub fn universe(&self) -> u64 {
        self.veb.universe()
    }

    /// Score of `key` if it is currently on the staircase.
    pub fn score_of(&self, key: u64) -> Option<u64> {
        if self.veb.contains(key) {
            Some(self.scores[key as usize])
        } else {
            None
        }
    }

    /// The maximum score among stored keys strictly smaller than `query`
    /// (the `Pred` step of `DominantMax` in Algorithm 3).  Because scores
    /// increase with keys, this is simply the score of the predecessor.
    /// `O(log log U)`.
    pub fn prefix_best(&self, query: u64) -> Option<u64> {
        self.veb.pred(query).map(|k| self.scores[k as usize])
    }

    /// All stored points in increasing key order (test/debug helper).
    pub fn points(&self) -> Vec<ScoredPoint> {
        self.veb
            .iter_keys()
            .into_iter()
            .map(|key| ScoredPoint { key, score: self.scores[key as usize] })
            .collect()
    }

    /// Verify the staircase invariant (strictly increasing scores along
    /// increasing keys); test helper.
    pub fn is_staircase(&self) -> bool {
        let pts = self.points();
        pts.windows(2).all(|w| w[0].key < w[1].key && w[0].score < w[1].score)
    }

    /// Refine an incoming batch (sorted by key, unique keys): drop every
    /// point that is covered by an earlier point of the batch or by a point
    /// already on the staircase (Lines 14–16 of Algorithm 3).
    pub fn refine_batch(&self, batch: &[ScoredPoint]) -> Vec<ScoredPoint> {
        assert_sorted(batch);
        let mut best_so_far: u64 = 0;
        let mut have_prev = false;
        let mut out = Vec::with_capacity(batch.len());
        for p in batch {
            // Covered by an earlier batch point: an earlier key with a
            // score >= ours.
            if have_prev && best_so_far >= p.score {
                continue;
            }
            // Covered by the staircase: the predecessor already achieves at
            // least our score.
            if let Some(prev_score) = self.prefix_best(p.key) {
                if prev_score >= p.score {
                    continue;
                }
            }
            // A point replacing an existing key only survives if it improves
            // the score there.
            if let Some(existing) = self.score_of(p.key) {
                if existing >= p.score {
                    continue;
                }
            }
            best_so_far = p.score;
            have_prev = true;
            out.push(*p);
        }
        out
    }

    /// `CoveredBy` (Algorithm 7): return, in increasing key order, every
    /// stored key that is covered by some point of `batch` (sorted by key).
    /// Work `O((|batch| + |output|) log log U)`, polylogarithmic span.
    pub fn covered_by(&self, batch: &[ScoredPoint]) -> Vec<u64> {
        assert_sorted(batch);
        if batch.is_empty() || self.is_empty() {
            return Vec::new();
        }
        let universe = self.veb.universe();
        let b = batch.len();
        // Each batch point is responsible for the stored keys between itself
        // and the next batch point (Lines 4–8); the per-point ranges are
        // disjoint so they can be collected in parallel and concatenated.
        let pieces: Vec<Vec<u64>> = (0..b)
            .into_par_iter()
            .with_min_len(GRAIN / 64 + 1)
            .map(|i| {
                let upper = if i + 1 < b { batch[i + 1].key } else { universe };
                let start = match self.veb.succ(batch[i].key) {
                    Some(s) => s,
                    None => return Vec::new(),
                };
                if start >= upper {
                    return Vec::new();
                }
                let end = if i + 1 < b {
                    match self.veb.pred(upper) {
                        Some(e) if e >= start => e,
                        _ => return Vec::new(),
                    }
                } else {
                    self.veb.max().expect("non-empty tree")
                };
                if start > end {
                    return Vec::new();
                }
                // Tight upper bound: last key in [start, end] whose score is
                // <= the covering point's score (FindIndex).
                match self.find_last_at_most(batch[i].score, start, end) {
                    Some(e2) => self.veb.range(start, e2),
                    None => Vec::new(),
                }
            })
            .collect();
        let mut out = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
        for mut piece in pieces {
            out.append(&mut piece);
        }
        out
    }

    /// `FindIndex` (Alg. 7 lines 11–18): the last stored key in `[s, e]`
    /// whose score is at most `limit`, or `None` if even `s` exceeds it.
    /// Walks `Succ` for up to `log U` steps before switching to a key-space
    /// binary search, which is what makes `covered_by` output-sensitive.
    fn find_last_at_most(&self, limit: u64, s: u64, e: u64) -> Option<u64> {
        debug_assert!(self.veb.contains(s) && self.veb.contains(e) && s <= e);
        if self.scores[s as usize] > limit {
            return None;
        }
        if s == e {
            return Some(s);
        }
        let budget = 64 - (self.veb.universe().saturating_sub(1)).leading_zeros();
        let mut cur = s;
        for _ in 0..budget.max(1) {
            let nxt = match self.veb.succ(cur) {
                Some(x) if x <= e => x,
                _ => return Some(cur),
            };
            if self.scores[nxt as usize] > limit {
                return Some(cur);
            }
            if nxt == e {
                return Some(e);
            }
            cur = nxt;
        }
        // Binary search over the key space [cur, e] using predecessor
        // queries to land on stored keys; scores are monotone so the usual
        // invariant (low always <= limit, high's successor-side > limit)
        // applies.
        let mut lo = cur;
        let mut hi = e;
        while lo < hi {
            let mid_point = lo + (hi - lo).div_ceil(2);
            let mid = if self.veb.contains(mid_point) {
                mid_point
            } else {
                self.veb.pred(mid_point).expect("lo < mid_point implies a predecessor")
            };
            if mid <= lo {
                // No stored key in (lo, mid_point): move the search up.
                match self.veb.succ(mid_point) {
                    Some(nxt) if nxt <= hi && self.scores[nxt as usize] <= limit => lo = nxt,
                    _ => break,
                }
                continue;
            }
            if self.scores[mid as usize] <= limit {
                lo = mid;
            } else {
                hi = self.veb.pred(mid).expect("s <= pred since score[s] <= limit");
            }
        }
        Some(lo)
    }

    /// One staircase update (the per-inner-tree part of `Update` in
    /// Algorithm 3): refine `batch`, remove the stored points the refined
    /// batch covers, insert the refined batch and record its scores.
    /// Returns the number of points actually inserted.
    ///
    /// `batch` must be sorted by key with unique keys.
    pub fn insert_staircase(&mut self, batch: &[ScoredPoint]) -> usize {
        let refined = self.refine_batch(batch);
        if refined.is_empty() {
            return 0;
        }
        let covered = self.covered_by(&refined);
        // A refined point may share its key with a stored point it improves
        // on; that stored key is reported by covered_by (score <= ours ⇒
        // covered) or simply overwritten by the insertion below.
        self.veb.batch_delete(&covered);
        let keys: Vec<u64> = refined.iter().map(|p| p.key).collect();
        self.veb.batch_insert(&keys);
        for p in &refined {
            self.scores[p.key as usize] = p.score;
        }
        refined.len()
    }

    /// Direct access to the underlying key set (read-only).
    pub fn keys(&self) -> Vec<u64> {
        self.veb.iter_keys()
    }
}

fn assert_sorted(batch: &[ScoredPoint]) {
    debug_assert!(
        batch.windows(2).all(|w| w[0].key < w[1].key),
        "batch must be sorted by key with unique keys"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[(u64, u64)]) -> Vec<ScoredPoint> {
        raw.iter().map(|&(key, score)| ScoredPoint { key, score }).collect()
    }

    /// Reference staircase: insert points one by one, keep only maximal ones.
    #[derive(Default)]
    struct NaiveStaircase {
        points: std::collections::BTreeMap<u64, u64>,
    }
    impl NaiveStaircase {
        fn insert_batch(&mut self, batch: &[ScoredPoint]) {
            for p in batch {
                // Covered by an existing point with smaller-or-equal key?
                let covered = self
                    .points
                    .range(..=p.key)
                    .next_back()
                    .map(|(&k, &s)| k <= p.key && s >= p.score)
                    .unwrap_or(false);
                if covered {
                    continue;
                }
                // Remove the points this one covers.
                let doomed: Vec<u64> = self
                    .points
                    .range(p.key..)
                    .filter(|&(_, &s)| s <= p.score)
                    .map(|(&k, _)| k)
                    .collect();
                for k in doomed {
                    self.points.remove(&k);
                }
                self.points.insert(p.key, p.score);
            }
        }
        fn as_vec(&self) -> Vec<ScoredPoint> {
            self.points.iter().map(|(&key, &score)| ScoredPoint { key, score }).collect()
        }
    }

    #[test]
    fn empty_tree_basics() {
        let m = MonoVeb::new(100);
        assert!(m.is_empty());
        assert_eq!(m.prefix_best(50), None);
        assert_eq!(m.score_of(3), None);
        assert!(m.covered_by(&pts(&[(1, 10)])).is_empty());
        assert!(m.is_staircase());
    }

    #[test]
    fn paper_figure_10_staircase() {
        // The staircase points of Figure 10: (2,1) (4,2) (6,4) (10,6) (14,7) (16,10).
        let mut m = MonoVeb::new(32);
        let stair = pts(&[(2, 1), (4, 2), (6, 4), (10, 6), (14, 7), (16, 10)]);
        assert_eq!(m.insert_staircase(&stair), 6);
        assert!(m.is_staircase());
        assert_eq!(m.points(), stair);
        // Points covered by the staircase are rejected.
        let rejected = pts(&[(8, 1), (9, 3), (12, 2), (13, 5), (15, 4), (16, 1), (17, 2), (18, 6)]);
        assert_eq!(m.insert_staircase(&rejected), 0);
        assert_eq!(m.points(), stair);
    }

    #[test]
    fn paper_figure_11_insertions_remove_covered_points() {
        // Figure 11: inserting (3,5) and (12,8) into the Figure-10 staircase
        // removes (4,2), (6,4) (covered by (3,5)) and (14,7) (covered by (12,8)).
        let mut m = MonoVeb::new(32);
        m.insert_staircase(&pts(&[(2, 1), (4, 2), (6, 4), (10, 6), (14, 7), (16, 10)]));
        m.insert_staircase(&pts(&[(3, 5), (12, 8)]));
        assert!(m.is_staircase());
        assert_eq!(m.points(), pts(&[(2, 1), (3, 5), (10, 6), (12, 8), (16, 10)]));
    }

    #[test]
    fn covered_by_reports_expected_keys() {
        let mut m = MonoVeb::new(32);
        m.insert_staircase(&pts(&[(2, 1), (4, 2), (6, 4), (10, 6), (14, 7), (16, 10)]));
        // (3,5) covers keys 4 and 6; (12,8) covers 14.
        let covered = m.covered_by(&pts(&[(3, 5), (12, 8)]));
        assert_eq!(covered, vec![4, 6, 14]);
        // A point below everything covers nothing.
        assert!(m.covered_by(&pts(&[(20, 1)])).is_empty());
        // A point that dominates everything after key 0 covers all keys.
        assert_eq!(m.covered_by(&pts(&[(0, 100)])), vec![2, 4, 6, 10, 14, 16]);
    }

    #[test]
    fn prefix_best_is_monotone_queries() {
        let mut m = MonoVeb::new(64);
        m.insert_staircase(&pts(&[(5, 3), (10, 7), (20, 9)]));
        assert_eq!(m.prefix_best(5), None);
        assert_eq!(m.prefix_best(6), Some(3));
        assert_eq!(m.prefix_best(10), Some(3));
        assert_eq!(m.prefix_best(11), Some(7));
        assert_eq!(m.prefix_best(63), Some(9));
    }

    #[test]
    fn same_key_score_improvement_replaces() {
        let mut m = MonoVeb::new(16);
        m.insert_staircase(&pts(&[(4, 5)]));
        // Lower score at the same key is rejected.
        assert_eq!(m.insert_staircase(&pts(&[(4, 3)])), 0);
        assert_eq!(m.score_of(4), Some(5));
        // Higher score replaces.
        assert_eq!(m.insert_staircase(&pts(&[(4, 9)])), 1);
        assert_eq!(m.score_of(4), Some(9));
        assert_eq!(m.len(), 1);
        assert!(m.is_staircase());
    }

    #[test]
    fn randomized_staircase_matches_naive() {
        let mut state = 0x853C49E6748FEA9Bu64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..15 {
            let universe = 256u64;
            let mut m = MonoVeb::new(universe);
            let mut naive = NaiveStaircase::default();
            for _round in 0..12 {
                let mut batch: Vec<ScoredPoint> = (0..(1 + rng() % 20))
                    .map(|_| ScoredPoint { key: rng() % universe, score: 1 + rng() % 100 })
                    .collect();
                batch.sort_by_key(|p| p.key);
                batch.dedup_by_key(|p| p.key);
                m.insert_staircase(&batch);
                naive.insert_batch(&batch);
                assert!(m.is_staircase(), "trial {trial}: staircase invariant broken");
                assert_eq!(m.points(), naive.as_vec(), "trial {trial}: staircase mismatch");
            }
        }
    }
}
