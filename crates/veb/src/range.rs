//! Parallel range reporting on a vEB tree (Algorithm 6, Theorem C.1).
//!
//! Sequentially one would walk `Succ` from the start of the range, which is
//! inherently serial.  The paper instead divides the *key space* in half,
//! locates the predecessor of the midpoint, and recurses on the two
//! sub-ranges in parallel, collecting the results in a binary *result tree*
//! that is flattened into a contiguous array at the end.  Every recursive
//! call performs `O(1)` predecessor/successor queries and either emits a key
//! or terminates a branch, so the work is `O((1 + m) log log U)` for output
//! size `m`, and the key-space halving bounds the span by
//! `O(log U · log log U)`.

use crate::node::Node;
use crate::tree::VebTree;
use plis_primitives::par::{maybe_join, GRAIN};

/// Result tree built by `BuildTree` (Alg. 6) before flattening.
enum ResTree {
    Empty,
    Node { size: usize, value: u64, left: Box<ResTree>, right: Box<ResTree> },
}

impl ResTree {
    fn size(&self) -> usize {
        match self {
            ResTree::Empty => 0,
            ResTree::Node { size, .. } => *size,
        }
    }

    fn leaf(value: u64) -> ResTree {
        ResTree::Node {
            size: 1,
            value,
            left: Box::new(ResTree::Empty),
            right: Box::new(ResTree::Empty),
        }
    }

    /// Flatten the in-order traversal of the tree into `out` (parallel over
    /// the two children; `out` is pre-sized to `self.size()`).
    fn flatten_into(&self, out: &mut [u64]) {
        match self {
            ResTree::Empty => debug_assert!(out.is_empty()),
            ResTree::Node { value, left, right, .. } => {
                let ls = left.size();
                let (l_out, rest) = out.split_at_mut(ls);
                let (mid, r_out) = rest.split_first_mut().expect("node occupies one slot");
                *mid = *value;
                maybe_join(
                    out_len_hint(ls, r_out.len()),
                    GRAIN,
                    || left.flatten_into(l_out),
                    || right.flatten_into(r_out),
                );
            }
        }
    }
}

fn out_len_hint(l: usize, r: usize) -> usize {
    l + r + 1
}

impl VebTree {
    /// Report all keys in the closed range `[lo, hi]` in increasing order.
    ///
    /// Work `O((1 + m) log log U)` and span `O(log U log log U)`, where `m`
    /// is the number of reported keys (Theorem C.1).
    pub fn range(&self, lo: u64, hi: u64) -> Vec<u64> {
        let Some(root) = &self.root else { return Vec::new() };
        if lo > hi {
            return Vec::new();
        }
        let hi = hi.min(self.universe - 1);
        // Clamp the endpoints onto actual keys (Lines 2–3 of Alg. 6).
        let lo = if root.contains(lo) { Some(lo) } else { root.succ(lo) };
        let hi = if root.contains(hi) { Some(hi) } else { root.pred(hi) };
        let (Some(lo), Some(hi)) = (lo, hi) else { return Vec::new() };
        if lo > hi {
            return Vec::new();
        }
        let tree = build_tree(root, lo, hi);
        let mut out = vec![0u64; tree.size()];
        tree.flatten_into(&mut out);
        out
    }

    /// Number of keys in the closed range `[lo, hi]` (reported via the same
    /// divide-and-conquer, without materialising the keys).
    pub fn range_count(&self, lo: u64, hi: u64) -> usize {
        // For the sizes used in this workspace the simplest correct
        // implementation is to reuse `range`; a count-only traversal would
        // save the flatten step only.
        self.range(lo, hi).len()
    }
}

/// `BuildTree` (Alg. 6 lines 7–17).  `lo` and `hi` are keys known to be in
/// the tree with `lo <= hi`; returns a result tree over every key in
/// `[lo, hi]`.
fn build_tree(root: &Node, lo: u64, hi: u64) -> ResTree {
    if lo > hi {
        return ResTree::Empty;
    }
    if lo == hi {
        return ResTree::leaf(lo);
    }
    // The predecessor of the midpoint is in [lo, hi): hi > mid_point - 1 >= lo.
    let mid_point = lo + (hi - lo).div_ceil(2); // = ceil((lo + hi) / 2) without overflow
    let mid = if root.contains(mid_point) {
        mid_point
    } else {
        root.pred(mid_point).expect("lo < mid_point implies a predecessor in range")
    };
    debug_assert!(mid >= lo && mid <= hi);
    let left_hi = root.pred(mid);
    let right_lo = root.succ(mid);
    let (left, right) = maybe_join(
        (hi - lo) as usize,
        GRAIN,
        || match left_hi {
            Some(lh) if lh >= lo => build_tree(root, lo, lh),
            _ => ResTree::Empty,
        },
        || match right_lo {
            Some(rl) if rl <= hi => build_tree(root, rl, hi),
            _ => ResTree::Empty,
        },
    );
    let size = left.size() + right.size() + 1;
    ResTree::Node { size, value: mid, left: Box::new(left), right: Box::new(right) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(keys: &[u64], universe: u64) -> VebTree {
        let mut v = VebTree::new(universe);
        for &k in keys {
            v.insert(k);
        }
        v
    }

    #[test]
    fn range_on_empty_tree() {
        let v = VebTree::new(100);
        assert!(v.range(0, 99).is_empty());
    }

    #[test]
    fn range_paper_example() {
        let keys = [2u64, 4, 8, 10, 13, 15, 23, 28, 61];
        let v = tree_with(&keys, 256);
        assert_eq!(v.range(0, 255), keys);
        assert_eq!(v.range(4, 15), vec![4, 8, 10, 13, 15]);
        assert_eq!(v.range(5, 14), vec![8, 10, 13]);
        assert_eq!(v.range(16, 22), Vec::<u64>::new());
        assert_eq!(v.range(61, 61), vec![61]);
        assert_eq!(v.range(62, 255), Vec::<u64>::new());
        assert_eq!(v.range(200, 100), Vec::<u64>::new());
    }

    #[test]
    fn range_clamps_hi_to_universe() {
        let v = tree_with(&[1, 5, 9], 10);
        assert_eq!(v.range(0, u64::MAX), vec![1, 5, 9]);
    }

    #[test]
    fn range_single_key_boundaries() {
        let v = tree_with(&[42], 64);
        assert_eq!(v.range(0, 41), Vec::<u64>::new());
        assert_eq!(v.range(42, 42), vec![42]);
        assert_eq!(v.range(43, 63), Vec::<u64>::new());
        assert_eq!(v.range(0, 63), vec![42]);
    }

    #[test]
    fn range_matches_filter_on_random_sets() {
        let mut state = 0xB5297A4D3F84D5B5u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..10 {
            let universe = 1u64 << (10 + trial % 6);
            let n = 500 + (trial * 333) % 2000;
            let mut keys: Vec<u64> = (0..n).map(|_| rng() % universe).collect();
            keys.sort();
            keys.dedup();
            let v = VebTree::from_sorted(universe, &keys);
            for _ in 0..20 {
                let a = rng() % universe;
                let b = rng() % universe;
                let (lo, hi) = (a.min(b), a.max(b));
                let want: Vec<u64> = keys.iter().copied().filter(|&k| k >= lo && k <= hi).collect();
                assert_eq!(v.range(lo, hi), want, "trial {trial} range [{lo}, {hi}]");
                assert_eq!(v.range_count(lo, hi), want.len());
            }
        }
    }

    #[test]
    fn range_count_full_equals_len() {
        let keys: Vec<u64> = (0..1000)
            .map(|i| i * 7 % 4096)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let v = VebTree::from_sorted(4096, &keys);
        assert_eq!(v.range_count(0, 4095), v.len());
    }
}
