//! Integration tests for the parallel batch operations of the vEB tree
//! (Algorithms 4–6 of the paper), checked against `BTreeSet` oracles.

use plis_veb::VebTree;
use std::collections::BTreeSet;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn random_sorted_batch(state: &mut u64, universe: u64, max_len: usize) -> Vec<u64> {
    let len = (xorshift(state) as usize % max_len) + 1;
    let mut batch: Vec<u64> = (0..len).map(|_| xorshift(state) % universe).collect();
    batch.sort_unstable();
    batch.dedup();
    batch
}

fn assert_same(tree: &VebTree, oracle: &BTreeSet<u64>, context: &str) {
    assert_eq!(tree.len(), oracle.len(), "{context}: length mismatch");
    assert_eq!(
        tree.iter_keys(),
        oracle.iter().copied().collect::<Vec<_>>(),
        "{context}: key set mismatch"
    );
    assert_eq!(tree.min(), oracle.first().copied(), "{context}: min mismatch");
    assert_eq!(tree.max(), oracle.last().copied(), "{context}: max mismatch");
    assert_eq!(tree.recount(), oracle.len(), "{context}: structural count mismatch");
}

#[test]
fn from_sorted_matches_inserts() {
    let keys: Vec<u64> =
        (0..3000u64).map(|i| i * 7 % 8192).collect::<BTreeSet<_>>().into_iter().collect();
    let bulk = VebTree::from_sorted(8192, &keys);
    let mut incremental = VebTree::new(8192);
    for &k in &keys {
        incremental.insert(k);
    }
    assert_eq!(bulk.iter_keys(), incremental.iter_keys());
    assert_eq!(bulk.len(), keys.len());
}

#[test]
fn batch_insert_empty_and_duplicates() {
    let mut v = VebTree::new(1024);
    assert_eq!(v.batch_insert(&[]), 0);
    assert_eq!(v.batch_insert(&[5, 10, 15]), 3);
    // Re-inserting the same keys inserts nothing.
    assert_eq!(v.batch_insert(&[5, 10, 15]), 0);
    // Mixed batch only inserts the new keys.
    assert_eq!(v.batch_insert(&[4, 5, 11, 15, 20]), 3);
    assert_eq!(v.iter_keys(), vec![4, 5, 10, 11, 15, 20]);
}

#[test]
fn batch_delete_empty_missing_and_all() {
    let mut v = VebTree::new(1024);
    assert_eq!(v.batch_delete(&[1, 2, 3]), 0);
    v.batch_insert(&[1, 2, 3, 4, 5]);
    // Deleting keys that are absent is a no-op for those keys.
    assert_eq!(v.batch_delete(&[0, 2, 9]), 1);
    assert_eq!(v.iter_keys(), vec![1, 3, 4, 5]);
    // Deleting everything empties the tree.
    assert_eq!(v.batch_delete(&[1, 3, 4, 5]), 4);
    assert!(v.is_empty());
    assert_eq!(v.min(), None);
}

#[test]
fn batch_delete_min_max_replacement() {
    let mut v = VebTree::new(4096);
    v.batch_insert(&[10, 100, 200, 300, 4000]);
    // Delete both extremes; the survivors must be promoted correctly.
    v.batch_delete(&[10, 4000]);
    assert_eq!(v.min(), Some(100));
    assert_eq!(v.max(), Some(300));
    assert_eq!(v.iter_keys(), vec![100, 200, 300]);
    // Delete everything but one key.
    v.batch_delete(&[100, 300]);
    assert_eq!(v.iter_keys(), vec![200]);
    assert_eq!(v.min(), Some(200));
    assert_eq!(v.max(), Some(200));
}

#[test]
fn batch_delete_leaves_single_survivor_between_batch_keys() {
    let mut v = VebTree::new(1 << 16);
    let keys: Vec<u64> =
        (0..200u64).map(|i| i * 317 % 65536).collect::<BTreeSet<_>>().into_iter().collect();
    v.batch_insert(&keys);
    // Delete everything except one key in the middle.
    let survivor = keys[keys.len() / 2];
    let batch: Vec<u64> = keys.iter().copied().filter(|&k| k != survivor).collect();
    v.batch_delete(&batch);
    assert_eq!(v.iter_keys(), vec![survivor]);
}

#[test]
fn random_batch_operations_match_btreeset() {
    let mut state = 0x0123456789ABCDEFu64;
    for trial in 0..12 {
        let universe = 1u64 << (8 + (trial % 5) * 3); // 256 .. 1M
        let mut tree = VebTree::new(universe);
        let mut oracle: BTreeSet<u64> = BTreeSet::new();
        for round in 0..30 {
            let batch = random_sorted_batch(&mut state, universe, 400);
            if xorshift(&mut state).is_multiple_of(3) {
                tree.batch_delete(&batch);
                for k in &batch {
                    oracle.remove(k);
                }
            } else {
                tree.batch_insert(&batch);
                oracle.extend(batch.iter().copied());
            }
            assert_same(&tree, &oracle, &format!("trial {trial} round {round}"));
        }
    }
}

#[test]
fn random_mixed_single_and_batch_operations() {
    let mut state = 0xFEEDFACECAFEBEEFu64;
    let universe = 1u64 << 14;
    let mut tree = VebTree::new(universe);
    let mut oracle: BTreeSet<u64> = BTreeSet::new();
    for round in 0..200 {
        match xorshift(&mut state) % 4 {
            0 => {
                let batch = random_sorted_batch(&mut state, universe, 100);
                tree.batch_insert(&batch);
                oracle.extend(batch.iter().copied());
            }
            1 => {
                let batch = random_sorted_batch(&mut state, universe, 100);
                tree.batch_delete(&batch);
                for k in &batch {
                    oracle.remove(k);
                }
            }
            2 => {
                let k = xorshift(&mut state) % universe;
                assert_eq!(tree.insert(k), oracle.insert(k), "round {round}");
            }
            _ => {
                let k = xorshift(&mut state) % universe;
                assert_eq!(tree.delete(k), oracle.remove(&k), "round {round}");
            }
        }
        if round % 10 == 0 {
            assert_same(&tree, &oracle, &format!("round {round}"));
            // Spot-check pred/succ and range against the oracle.
            for _ in 0..20 {
                let q = xorshift(&mut state) % universe;
                assert_eq!(tree.pred(q), oracle.range(..q).next_back().copied());
                assert_eq!(tree.succ(q), oracle.range(q + 1..).next().copied());
            }
            let a = xorshift(&mut state) % universe;
            let b = xorshift(&mut state) % universe;
            let (lo, hi) = (a.min(b), a.max(b));
            let want: Vec<u64> = oracle.range(lo..=hi).copied().collect();
            assert_eq!(tree.range(lo, hi), want);
        }
    }
}

#[test]
fn batch_delete_dense_prefix_and_suffix() {
    // Deleting a dense prefix exercises repeated min-replacement; a dense
    // suffix exercises max-replacement.
    let universe = 1u64 << 12;
    let keys: Vec<u64> = (0..universe).collect();
    let mut v = VebTree::from_sorted(universe, &keys);
    let prefix: Vec<u64> = (0..universe / 2).collect();
    v.batch_delete(&prefix);
    assert_eq!(v.len() as u64, universe / 2);
    assert_eq!(v.min(), Some(universe / 2));
    let suffix: Vec<u64> = (universe * 3 / 4..universe).collect();
    v.batch_delete(&suffix);
    assert_eq!(v.min(), Some(universe / 2));
    assert_eq!(v.max(), Some(universe * 3 / 4 - 1));
    assert_eq!(v.len() as u64, universe / 4);
    assert_eq!(v.iter_keys(), (universe / 2..universe * 3 / 4).collect::<Vec<_>>());
}

#[test]
fn alternating_batches_interleave_correctly() {
    // Insert the evens in one batch, the odds in another, delete every
    // multiple of four, and check the survivors.
    let universe = 1u64 << 10;
    let mut v = VebTree::new(universe);
    let evens: Vec<u64> = (0..universe).step_by(2).collect();
    let odds: Vec<u64> = (1..universe).step_by(2).collect();
    v.batch_insert(&evens);
    v.batch_insert(&odds);
    assert_eq!(v.len() as u64, universe);
    let fours: Vec<u64> = (0..universe).step_by(4).collect();
    v.batch_delete(&fours);
    let want: Vec<u64> = (0..universe).filter(|k| k % 4 != 0).collect();
    assert_eq!(v.iter_keys(), want);
}

#[test]
fn delta_churn_large_universe_matches_btreeset() {
    // The usage shape of the streaming-LIS engine: a resident "tails" set
    // over a huge universe receives, every round, a batch_delete of
    // displaced keys followed by a batch_insert of their replacements.
    let mut state = 0x9E3779B97F4A7C15u64;
    let universe = 1u64 << 40;
    let mut tree = VebTree::new(universe);
    let mut oracle: BTreeSet<u64> = BTreeSet::new();
    let seedset = random_sorted_batch(&mut state, universe, 600);
    tree.batch_insert(&seedset);
    oracle.extend(seedset.iter().copied());
    for round in 0..40 {
        // Displace a random subset of the residents...
        let resident: Vec<u64> = oracle.iter().copied().collect();
        let removed: Vec<u64> =
            resident.iter().copied().filter(|_| xorshift(&mut state).is_multiple_of(3)).collect();
        tree.batch_delete(&removed);
        for k in &removed {
            oracle.remove(k);
        }
        // ...and replace them with fresh keys.
        let added = random_sorted_batch(&mut state, universe, removed.len().max(1));
        tree.batch_insert(&added);
        oracle.extend(added.iter().copied());
        assert_same(&tree, &oracle, &format!("churn round {round}"));
        // Predecessor/successor stay consistent at the far ends of the
        // universe, where high bits exercise the deep recursion levels.
        for probe in [0u64, 1, universe / 2, universe - 2, universe - 1] {
            assert_eq!(tree.pred(probe), oracle.range(..probe).next_back().copied());
            assert_eq!(tree.succ(probe), oracle.range(probe + 1..).next().copied());
        }
    }
}
