//! Partial, torn and hostile frames over real TCP.
//!
//! The service plane's failure contract: a damaged or truncated frame
//! earns a typed [`ProtocolError`] frame and a clean connection close —
//! never a panic, never an engine-state change, and never any effect on
//! other connections.  These tests drive raw sockets against a live
//! server: frames split at every byte boundary must reassemble; every
//! strict prefix followed by a close must be absorbed silently; each
//! damage class must come back as its own error code; and a healthy
//! connection submitting throughout must see the engine end up exactly
//! where direct library execution puts it.

use plis_engine::{
    decode_tick_outcome, encode_tick, Engine, EngineConfig, Query, SessionKind, Tick,
};
use plis_server::protocol::{
    message, parse_message, read_frame, write_frame, FrameRead, TAG_SUBMIT, TAG_TICK_OUTCOME,
};
use plis_server::{Client, ClientError, ProtocolError, ServerConfig, ServerHandle};
use plis_telemetry::FRAME_HEADER_BYTES;
use std::io::Write as _;
use std::net::TcpStream;

fn start() -> (ServerHandle, EngineConfig) {
    let config = EngineConfig { universe: 1 << 16, ..EngineConfig::default() };
    let server =
        ServerHandle::start(ServerConfig { engine: config.clone(), ..ServerConfig::default() })
            .expect("bind loopback");
    (server, config)
}

/// A small valid submit frame, as raw wire bytes.
fn submit_frame(request_id: u64, tick: &Tick) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, &message(TAG_SUBMIT, request_id, &encode_tick(tick))).unwrap();
    wire
}

#[test]
fn frames_split_at_every_byte_boundary_reassemble() {
    let (server, config) = start();
    let tick = Tick::new()
        .create("drip", SessionKind::Unweighted)
        .append("drip", vec![5, 1, 4, 2, 8])
        .query("drip", Query::Certificate);
    let wire = submit_frame(3, &tick);

    // Worst-case split schedule: one byte per write, flushed each time —
    // this crosses *every* byte boundary in a single pass.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    for byte in &wire {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }

    let FrameRead::Payload(payload) =
        read_frame(&mut stream, 1 << 20).expect("read response frame")
    else {
        panic!("expected a payload frame");
    };
    let msg = parse_message(&payload).unwrap();
    assert_eq!(msg.tag, TAG_TICK_OUTCOME);
    assert_eq!(msg.request_id, 3);
    let outcome = decode_tick_outcome(msg.body).unwrap();

    let mut engine = Engine::new(config);
    assert_eq!(outcome, engine.execute(&tick));
    server.shutdown();
}

#[test]
fn every_strict_prefix_then_close_is_absorbed_silently() {
    let (server, config) = start();
    let tick = Tick::new().create("torn", SessionKind::Unweighted).append("torn", vec![1, 2]);
    let wire = submit_frame(1, &tick);

    // Every strict prefix: the server must treat the close as a torn
    // frame (or clean close at 0), apply nothing, and keep serving.
    for cut in 0..wire.len() {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream.write_all(&wire[..cut]).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // A torn frame earns no response — just EOF.
        assert!(
            matches!(read_frame(&mut stream, 1 << 20).unwrap(), FrameRead::Closed),
            "prefix of {cut} bytes should be dropped without a response"
        );
    }

    // The engine saw none of those prefixes: a fresh full submission is
    // the session's first contact.
    let mut client = Client::connect(server.addr()).expect("connect");
    let outcome = client.submit(&tick).expect("submit");
    let mut engine = Engine::new(config);
    assert_eq!(outcome, engine.execute(&tick));

    let report = server.shutdown();
    assert_eq!(report.snapshot.encode(), engine.snapshot().encode());
}

#[test]
fn each_damage_class_gets_its_typed_error_and_other_connections_survive() {
    let (server, config) = start();
    let mut engine = Engine::new(config);

    // The bystander: a healthy connection that stays up through every
    // hostile connection below and must never notice them.
    let mut healthy = Client::connect(server.addr()).expect("connect");
    let seed = Tick::new()
        .create("keep", SessionKind::Weighted)
        .append_weighted("keep", vec![(3, 2), (1, 5), (7, 1)]);
    assert_eq!(healthy.submit(&seed).expect("submit"), engine.execute(&seed));

    let good_tick = Tick::new().auto_create().append("victim", vec![9, 9, 9]);

    // 1. Corrupted payload byte -> BadChecksum, echoed request id 0
    //    (the id is inside the payload the server refused to interpret).
    {
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut wire = submit_frame(11, &good_tick);
        wire[FRAME_HEADER_BYTES + 3] ^= 0x20;
        client.stream().write_all(&wire).unwrap();
        match client.recv() {
            Err(ClientError::Server {
                request_id: 0, error: ProtocolError::BadChecksum, ..
            }) => {}
            other => panic!("expected BadChecksum, got {other:?}"),
        }
        // ... and the connection is closed afterwards.
        assert!(matches!(client.recv(), Err(ClientError::Closed)));
    }

    // 2. Unknown message tag -> UnknownTag, request id echoed.
    {
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut wire = Vec::new();
        write_frame(&mut wire, &message(0x7C, 99, b"whatever")).unwrap();
        client.stream().write_all(&wire).unwrap();
        match client.recv() {
            Err(ClientError::Server {
                request_id: 99,
                error: ProtocolError::UnknownTag(_),
                ..
            }) => {}
            other => panic!("expected UnknownTag, got {other:?}"),
        }
        assert!(matches!(client.recv(), Err(ClientError::Closed)));
    }

    // 3. Valid frame, valid message, garbage sealed tick -> BadPayload.
    {
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut wire = Vec::new();
        write_frame(&mut wire, &message(TAG_SUBMIT, 42, b"not a sealed tick")).unwrap();
        client.stream().write_all(&wire).unwrap();
        match client.recv() {
            Err(ClientError::Server {
                request_id: 42,
                error: ProtocolError::BadPayload(_),
                ..
            }) => {}
            other => panic!("expected BadPayload, got {other:?}"),
        }
        assert!(matches!(client.recv(), Err(ClientError::Closed)));
    }

    // 4. Oversized announcement -> Oversized, rejected before allocation.
    {
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut header = Vec::new();
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        client.stream().write_all(&header).unwrap();
        match client.recv() {
            Err(ClientError::Server {
                request_id: 0,
                error: ProtocolError::Oversized { .. },
                ..
            }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(matches!(client.recv(), Err(ClientError::Closed)));
    }

    // 5. A message too short for tag + request id -> ShortMessage.
    {
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut wire = Vec::new();
        write_frame(&mut wire, &[TAG_SUBMIT, 0, 1]).unwrap();
        client.stream().write_all(&wire).unwrap();
        match client.recv() {
            Err(ClientError::Server {
                request_id: 0, error: ProtocolError::ShortMessage, ..
            }) => {}
            other => panic!("expected ShortMessage, got {other:?}"),
        }
        assert!(matches!(client.recv(), Err(ClientError::Closed)));
    }

    // None of the rejected traffic touched the engine, and the bystander
    // connection still works: submit more and compare final state.
    let more = Tick::new().append("keep", vec![2, 6]).query("keep", Query::TopK(3));
    assert_eq!(healthy.submit(&more).expect("submit"), engine.execute(&more));

    let report = server.shutdown();
    assert_eq!(report.snapshot.encode(), engine.snapshot().encode());
    assert_eq!(report.snapshot.session_count(), 1, "only the healthy session exists");
}
