//! The serving correctness bar: a mixed unweighted/weighted fleet served
//! over loopback TCP produces per-request outcomes and a final engine
//! state **bit-identical** to direct library execution of the same
//! schedule.
//!
//! The argument this test checks end to end: sessions are independent,
//! each session's requests flow through one connection in order, and the
//! batcher only coalesces queue-order runs into combined ticks — so
//! however requests interleave across connections and however the
//! batcher slices them, every per-request outcome must equal the outcome
//! of executing that request alone, and the final snapshot (sorted by
//! session id, so creation-order races don't leak into the encoding)
//! must match the direct engine's byte for byte.

use plis_engine::{
    Engine, EngineConfig, Op, Query, ReadOutcome, ReadTick, SessionKind, Tick, TickOutcome,
};
use plis_server::{Client, ServerConfig, ServerHandle};
use plis_workloads::streaming::{mixed_session_fleet, weighted_session_fleet, ReadWriteOp};
use std::time::Duration;

/// One per-session request: exactly what a client submits in one frame.
#[derive(Clone)]
enum Request {
    Write(Tick),
    Read(ReadTick),
}

/// What came back for it, from either execution path.
#[derive(Debug, PartialEq)]
enum Outcome {
    Tick(TickOutcome),
    Read(ReadOutcome),
}

/// Build the fleet schedule: per-session request lists, unweighted
/// sessions with interleaved reads plus weighted sessions with a closing
/// read, all under one universe.
fn build_schedule(seed: u64) -> (Vec<(String, Vec<Request>)>, u64) {
    let (mixed, u1) = mixed_session_fleet(6, 360, 24, 0.3, 4, seed);
    let (weighted, u2) = weighted_session_fleet(4, 280, 24, 9, seed ^ 0x5EED);
    let universe = u1.max(u2);

    let mut schedule = Vec::new();
    for (name, ops) in mixed {
        let mut requests =
            vec![Request::Write(Tick::new().create(name.as_str(), SessionKind::Unweighted))];
        for op in ops {
            requests.push(match op {
                ReadWriteOp::Write(batch) => {
                    Request::Write(Tick::new().append(name.as_str(), batch))
                }
                ReadWriteOp::Read(specs) => {
                    Request::Read(ReadTick::new().query(
                        name.as_str(),
                        specs.into_iter().map(Query::from).collect::<Vec<_>>(),
                    ))
                }
            });
        }
        schedule.push((name, requests));
    }
    for (name, batches) in weighted {
        let mut requests =
            vec![Request::Write(Tick::new().create(name.as_str(), SessionKind::Weighted))];
        for batch in batches {
            requests.push(Request::Write(Tick::new().append_weighted(name.as_str(), batch)));
        }
        // A closing read so the weighted read path is exercised too.
        requests.push(Request::Read(
            ReadTick::new()
                .query(name.as_str(), vec![Query::RankOf(0), Query::TopK(4), Query::Certificate]),
        ));
        schedule.push((name, requests));
    }
    (schedule, universe)
}

/// Execute the schedule directly against the library, session by
/// session (order across sessions is irrelevant: they are independent).
fn run_direct(
    schedule: &[(String, Vec<Request>)],
    config: EngineConfig,
) -> (Vec<Vec<Outcome>>, Vec<u8>) {
    let mut engine = Engine::new(config);
    let outcomes = schedule
        .iter()
        .map(|(_, requests)| {
            requests
                .iter()
                .map(|request| match request {
                    Request::Write(tick) => Outcome::Tick(engine.execute(tick)),
                    Request::Read(tick) => Outcome::Read(engine.execute_read(tick)),
                })
                .collect()
        })
        .collect();
    let snapshot = engine.snapshot().encode();
    (outcomes, snapshot)
}

/// Serve the schedule over loopback: `clients` connections, sessions
/// partitioned round-robin across them, each connection interleaving its
/// sessions' requests with a bounded pipeline depth so cross-session
/// batching in the server actually happens.
fn run_served(
    schedule: &[(String, Vec<Request>)],
    config: EngineConfig,
    worker_threads: Option<usize>,
    clients: usize,
) -> (Vec<Vec<Outcome>>, Vec<u8>) {
    let server = ServerHandle::start(ServerConfig {
        engine: config,
        batch_max_ops: 64,
        batch_max_wait: Duration::from_micros(300),
        worker_threads,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();

    let mut outcomes: Vec<Vec<Option<Outcome>>> =
        schedule.iter().map(|(_, requests)| (0..requests.len()).map(|_| None).collect()).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_idx in 0..clients {
            // This client's sessions, with their global schedule indices.
            let mine: Vec<(usize, &(String, Vec<Request>))> =
                schedule.iter().enumerate().filter(|(i, _)| i % clients == client_idx).collect();
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Interleave sessions round-robin; request_id -> (session, step).
                let mut cursors = vec![0usize; mine.len()];
                let mut pending: Vec<(u64, usize, usize)> = Vec::new();
                let mut results: Vec<(usize, usize, Outcome)> = Vec::new();
                const DEPTH: usize = 16;
                loop {
                    let mut sent_any = false;
                    for (slot, (session_idx, (_, requests))) in mine.iter().enumerate() {
                        let step = cursors[slot];
                        if step >= requests.len() {
                            continue;
                        }
                        cursors[slot] += 1;
                        let id = match &requests[step] {
                            Request::Write(tick) => client.send_tick(tick).expect("send"),
                            Request::Read(tick) => client.send_read(tick).expect("send"),
                        };
                        pending.push((id, *session_idx, step));
                        sent_any = true;
                    }
                    while pending.len() > if sent_any { DEPTH } else { 0 } {
                        let response = client.recv().expect("recv");
                        let pos = pending
                            .iter()
                            .position(|(id, _, _)| *id == response.request_id())
                            .expect("response matches a pending request");
                        let (_, session_idx, step) = pending.remove(pos);
                        let outcome = match response {
                            plis_server::Response::Tick { outcome, .. } => Outcome::Tick(outcome),
                            plis_server::Response::Read { outcome, .. } => Outcome::Read(outcome),
                        };
                        results.push((session_idx, step, outcome));
                    }
                    if !sent_any && pending.is_empty() {
                        break;
                    }
                }
                results
            }));
        }
        for handle in handles {
            for (session_idx, step, outcome) in handle.join().expect("client thread") {
                outcomes[session_idx][step] = Some(outcome);
            }
        }
    });

    let report = server.shutdown();
    let served: Vec<Vec<Outcome>> = outcomes
        .into_iter()
        .map(|row| row.into_iter().map(|o| o.expect("every request answered")).collect())
        .collect();
    (served, report.snapshot.encode())
}

fn assert_differential(worker_threads: Option<usize>) {
    let (schedule, universe) = build_schedule(0xD1FF);
    let config = EngineConfig { universe, ..EngineConfig::default() };
    let total_requests: usize = schedule.iter().map(|(_, r)| r.len()).sum();
    assert!(total_requests > 100, "schedule should be non-trivial");

    let (direct, direct_snapshot) = run_direct(&schedule, config.clone());
    let (served, served_snapshot) = run_served(&schedule, config, worker_threads, 4);

    for (session_idx, (name, _)) in schedule.iter().enumerate() {
        assert_eq!(
            served[session_idx], direct[session_idx],
            "per-request outcomes for session {name} must match direct execution"
        );
    }
    assert_eq!(
        served_snapshot, direct_snapshot,
        "final engine snapshot must be byte-identical to direct execution"
    );
}

#[test]
fn served_fleet_matches_direct_execution_single_thread() {
    assert_differential(Some(1));
}

#[test]
fn served_fleet_matches_direct_execution_full_pool() {
    assert_differential(None);
}

/// Strict-mode errors round-trip the socket too: an op aimed at a missing
/// session must come back as the same typed `OpError` the library returns.
#[test]
fn typed_errors_round_trip_the_socket() {
    let config = EngineConfig { universe: 1 << 16, ..EngineConfig::default() };
    let server =
        ServerHandle::start(ServerConfig { engine: config.clone(), ..ServerConfig::default() })
            .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    let tick = Tick::new()
        .append("ghost", vec![1, 2, 3])
        .create("real", SessionKind::Unweighted)
        .create("real", SessionKind::Weighted)
        .append("real", vec![4, 5]);
    let served = client.submit(&tick).expect("submit");

    let mut engine = Engine::new(config);
    let direct = engine.execute(&tick);
    assert_eq!(served, direct);
    assert!(!served.fully_applied());

    let read = ReadTick::new().query("missing", Query::Certificate);
    let served_read = client.submit_read(&read).expect("submit_read");
    assert_eq!(served_read, engine.execute_read(&read));

    let report = server.shutdown();
    assert_eq!(report.snapshot.encode(), engine.snapshot().encode());
}

/// `Op::Snapshot` / `Op::Restore` ride the wire inside ticks like any
/// other command: snapshot a served session, restore it under a new id
/// on the same server, and both paths must agree with the library.
#[test]
fn snapshot_and_restore_ops_work_over_the_wire() {
    let config = EngineConfig { universe: 1 << 16, ..EngineConfig::default() };
    let server =
        ServerHandle::start(ServerConfig { engine: config.clone(), ..ServerConfig::default() })
            .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut engine = Engine::new(config);

    let seed_tick = Tick::new()
        .create("origin", SessionKind::Unweighted)
        .append("origin", vec![9, 2, 7, 4, 11, 3])
        .snapshot("origin");
    let served = client.submit(&seed_tick).expect("submit");
    let direct = engine.execute(&seed_tick);
    assert_eq!(served, direct);

    let snapshot = match served.outputs().last().expect("snapshot slot") {
        (_, plis_engine::OpOutput::Snapshotted(snapshot)) => (**snapshot).clone(),
        other => panic!("expected a snapshot output, got {other:?}"),
    };
    let restore_tick =
        Tick::new().op("copy", Op::Restore(Box::new(snapshot))).query("copy", Query::RankOf(4));
    let served = client.submit(&restore_tick).expect("submit");
    assert_eq!(served, engine.execute(&restore_tick));
    assert!(served.fully_applied());

    let report = server.shutdown();
    assert_eq!(report.snapshot.encode(), engine.snapshot().encode());
}
