//! Graceful shutdown and drain: kill the server mid-schedule and prove
//! that no acknowledged op is lost and none is double-applied.
//!
//! The drain contract under test: `ServerHandle::shutdown` stops
//! accepting, severs connection *read* sides (so nothing new enters the
//! queue), runs the batcher dry, and only then captures the final
//! snapshot.  With closed-loop clients that means the set of
//! acknowledged ticks IS the set of applied ticks — every in-flight
//! request either gets executed and acked before the batcher exits, or
//! was never read off the socket and left no trace.  The memory journal
//! must tell exactly the same story: replaying it from scratch, or
//! restoring the snapshot and replaying the journal suffix, both land on
//! the drained engine byte for byte.

use plis_engine::{replay_journal, replay_journal_from, Engine, EngineConfig, Tick};
use plis_server::{Client, ClientError, JournalMode, ServerConfig, ServerHandle};
use plis_workloads::streaming::session_fleet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

#[test]
fn shutdown_mid_schedule_loses_no_acked_op_and_applies_none_twice() {
    let (fleet, universe) = session_fleet(8, 4_000, 64, 0xDEAD);
    let config = EngineConfig { universe, ..EngineConfig::default() };
    let server = ServerHandle::start(ServerConfig {
        engine: config.clone(),
        batch_max_ops: 32,
        batch_max_wait: Duration::from_micros(200),
        journal: JournalMode::Memory,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();
    let stop = AtomicBool::new(false);

    // One closed-loop client per session: submit a batch, wait for its
    // ack, remember it, repeat — until the server goes away underneath.
    let acked: Vec<Vec<Tick>> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .map(|(name, batches)| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = match Client::connect(addr) {
                        Ok(c) => c,
                        Err(_) => return Vec::new(),
                    };
                    let mut acked = Vec::new();
                    for (i, batch) in batches.iter().cycle().enumerate() {
                        // Cycle the schedule so no client finishes before
                        // the shutdown lands; cap it so the test always
                        // terminates even if shutdown were instant.
                        if stop.load(Ordering::Relaxed) || i > batches.len() * 50 {
                            break;
                        }
                        let tick = Tick::new().auto_create().append(name.as_str(), batch.clone());
                        match client.submit(&tick) {
                            Ok(outcome) => {
                                assert!(outcome.fully_applied());
                                acked.push(tick);
                            }
                            // The drain severed us: either the send hit a
                            // dead socket or the ack never came.  Both are
                            // legal; what matters is the invariant below.
                            Err(ClientError::Io(_)) | Err(ClientError::Closed) => break,
                            Err(other) => panic!("unexpected client error: {other}"),
                        }
                    }
                    acked
                })
            })
            .collect();

        // Let traffic build, then pull the plug mid-schedule.
        std::thread::sleep(Duration::from_millis(60));
        let report = server.shutdown();
        stop.store(true, Ordering::Relaxed);
        let acked: Vec<Vec<Tick>> =
            handles.into_iter().map(|h| h.join().expect("client thread")).collect();

        let total_acked: usize = acked.iter().map(Vec::len).sum();
        assert!(total_acked > 0, "shutdown landed before any op was acked");

        // Invariant 1 — acked exactly-once: per session the acked ticks
        // are a prefix of its schedule (closed-loop), and executing just
        // those against a fresh engine reproduces the drained state.
        let mut direct = Engine::new(config.clone());
        for session_acked in &acked {
            for tick in session_acked {
                assert!(direct.execute(tick).fully_applied());
            }
        }
        assert_eq!(
            report.snapshot.encode(),
            direct.snapshot().encode(),
            "drained engine must hold exactly the acked ops, once each"
        );

        // Invariant 2 — the journal is the same truth: replaying it from
        // scratch lands on the drained snapshot.
        let journal = report.journal.as_deref().expect("memory journal captured");
        let mut replayed = Engine::new(config.clone());
        let replay = replay_journal(&mut replayed, journal).expect("journal replays");
        assert_eq!(replay.truncated_bytes, 0, "drain flushes whole records");
        assert_eq!(replay.outcomes.len() as u64, report.ticks_executed);
        assert_eq!(replayed.snapshot().encode(), report.snapshot.encode());

        // Invariant 3 — snapshot + journal-suffix recovery: restore from
        // the final snapshot, replay the journal from its covered prefix
        // (everything), and nothing double-applies.
        let mut restored =
            Engine::restore(config.clone(), &report.snapshot).expect("snapshot restores");
        let suffix =
            replay_journal_from(&mut restored, journal, replay.outcomes.len() + replay.skipped)
                .expect("suffix replays");
        assert!(suffix.outcomes.is_empty(), "snapshot already covers the whole journal");
        assert_eq!(restored.snapshot().encode(), report.snapshot.encode());

        acked
    });

    // Outside the scope: the per-session prefix property itself.
    for (session_acked, (_, batches)) in acked.iter().zip(&fleet) {
        for (tick, batch) in session_acked.iter().zip(batches.iter().cycle()) {
            assert_eq!(tick.slots()[0].1.appends(), batch.len());
        }
    }
}

/// The binary's other drain trigger: a server with no traffic at all
/// shuts down cleanly and reports an empty world.
#[test]
fn idle_shutdown_drains_to_an_empty_snapshot() {
    let server = ServerHandle::start(ServerConfig {
        engine: EngineConfig { universe: 1 << 12, ..EngineConfig::default() },
        journal: JournalMode::Memory,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    // A connection that never sends anything must not wedge the drain.
    let _idle = Client::connect(server.addr()).expect("connect");
    let report = server.shutdown();
    assert_eq!(report.ticks_executed, 0);
    assert_eq!(report.snapshot.session_count(), 0);
    assert_eq!(report.journal.as_deref(), Some(&[][..]));
}
