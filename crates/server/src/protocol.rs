//! The wire protocol of the service plane.
//!
//! # Frame layout
//!
//! Every message travels in exactly the frame the tick journal uses
//! (`plis-telemetry`'s [`encode_frame_header`] — one layout, one
//! implementation):
//!
//! ```text
//! [payload_len: u32][crc64(payload): u64][payload bytes...]
//! ```
//!
//! The CRC covers the payload, so a corrupted frame is detected before a
//! single payload byte is interpreted.  Inside the payload:
//!
//! ```text
//! [message tag: u8][request_id: u64][body...]
//! ```
//!
//! | tag    | direction | body                                          |
//! |--------|-----------|-----------------------------------------------|
//! | `0x01` | request   | sealed tick ([`plis_engine::encode_tick`])    |
//! | `0x02` | request   | sealed read tick ([`plis_engine::encode_read_tick`])       |
//! | `0x81` | response  | sealed tick outcome ([`plis_engine::encode_tick_outcome`]) |
//! | `0x82` | response  | sealed read outcome ([`plis_engine::encode_read_outcome`]) |
//! | `0xEE` | response  | `[code: u8][detail: u64-length-prefixed str]` |
//!
//! `request_id` is chosen by the client and echoed verbatim; the server
//! never interprets it beyond routing the response.  Responses to one
//! connection come back in that connection's submission order, so a
//! strictly closed-loop client does not even need the id — it exists for
//! pipelined clients multiplexing many in-flight ops on one socket.
//!
//! # Errors close the connection
//!
//! A malformed frame (bad checksum, oversized length, unknown tag,
//! undecodable sealed payload) earns a typed [`ProtocolError`] frame with
//! the best-known `request_id` (0 when the damage precedes the id) and a
//! clean connection close — never a panic, and never an engine-state
//! change.  Other connections are unaffected.

use plis_engine::SnapshotError;
use plis_telemetry::{crc64, decode_frame_header, encode_frame_header, FRAME_HEADER_BYTES};
use std::io::{self, Read, Write};

/// Message tag: a write request carrying a sealed tick.
pub const TAG_SUBMIT: u8 = 0x01;
/// Message tag: a read request carrying a sealed read tick.
pub const TAG_READ: u8 = 0x02;
/// Message tag: a response carrying a sealed tick outcome.
pub const TAG_TICK_OUTCOME: u8 = 0x81;
/// Message tag: a response carrying a sealed read outcome.
pub const TAG_READ_OUTCOME: u8 = 0x82;
/// Message tag: a typed protocol-error response; the server closes the
/// connection after sending it.
pub const TAG_ERROR: u8 = 0xEE;

/// Default cap on a single frame's payload (64 MiB).  A frame announcing
/// more is rejected *before* allocation with
/// [`ProtocolError::Oversized`].
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 64 << 20;

/// Why a connection was refused further service.  The `code` byte of an
/// error frame is the discriminant; the detail string is informational.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A frame's payload failed its CRC.
    BadChecksum,
    /// A frame announced a payload larger than the server accepts.
    Oversized {
        /// The announced payload length.
        announced: u32,
        /// The server's cap.
        max: u32,
    },
    /// The payload carried a message tag this build does not know.
    UnknownTag(u8),
    /// The payload ended before the message tag and request id did.
    ShortMessage,
    /// The sealed tick / read tick inside a request failed to decode.
    BadPayload(SnapshotError),
}

impl ProtocolError {
    /// The stable discriminant byte carried in an error frame.
    pub fn code(&self) -> u8 {
        match self {
            ProtocolError::BadChecksum => 1,
            ProtocolError::Oversized { .. } => 2,
            ProtocolError::UnknownTag(_) => 3,
            ProtocolError::ShortMessage => 4,
            ProtocolError::BadPayload(_) => 5,
        }
    }

    /// Rebuild the typed error from a received `code` + detail string.
    /// Parameters that do not survive the wire (the exact snapshot error,
    /// the announced length) land in the detail string only.
    pub fn from_code(code: u8, detail: &str) -> ProtocolError {
        match code {
            1 => ProtocolError::BadChecksum,
            2 => ProtocolError::Oversized { announced: 0, max: 0 },
            3 => ProtocolError::UnknownTag(0),
            4 => ProtocolError::ShortMessage,
            _ => ProtocolError::BadPayload(SnapshotError::Malformed(if detail.is_empty() {
                "peer rejected the payload"
            } else {
                "see detail"
            })),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadChecksum => write!(f, "frame checksum mismatch"),
            ProtocolError::Oversized { announced, max } => {
                write!(f, "frame of {announced} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            ProtocolError::ShortMessage => write!(f, "message too short for tag and request id"),
            ProtocolError::BadPayload(e) => write!(f, "sealed payload rejected: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// How reading one frame from a socket ended.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// The peer closed the connection exactly on a frame boundary.
    Closed,
    /// The peer closed mid-frame: a torn write.  No payload bytes were
    /// interpreted.
    Torn,
    /// The frame was structurally rejected; the payload (if any) was
    /// drained but must not be interpreted.
    Rejected(ProtocolError),
}

/// Read one frame.  Blocks until a full frame arrives, the peer closes,
/// or an I/O error occurs; a checksum failure or oversized announcement
/// comes back as [`FrameRead::Rejected`], not `Err`.
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> io::Result<FrameRead> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match read_exact_or_eof(r, &mut header)? {
        Fill::Empty => return Ok(FrameRead::Closed),
        Fill::Partial => return Ok(FrameRead::Torn),
        Fill::Full => {}
    }
    let (len, crc) = decode_frame_header(&header);
    if len > max_payload {
        return Ok(FrameRead::Rejected(ProtocolError::Oversized {
            announced: len,
            max: max_payload,
        }));
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        Fill::Full => {}
        _ => return Ok(FrameRead::Torn),
    }
    if crc64(&payload) != crc {
        return Ok(FrameRead::Rejected(ProtocolError::BadChecksum));
    }
    Ok(FrameRead::Payload(payload))
}

enum Fill {
    Full,
    Partial,
    Empty,
}

/// `read_exact`, but distinguishing "closed before any byte" and "closed
/// mid-buffer" from hard I/O errors.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<Fill> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(if filled == 0 { Fill::Empty } else { Fill::Partial }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

/// Frame `payload` and write it, flushed.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame_header(payload))?;
    w.write_all(payload)?;
    w.flush()
}

/// Build a request/response message payload: tag, request id, body.
pub fn message(tag: u8, request_id: u64, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9 + body.len());
    payload.push(tag);
    payload.extend_from_slice(&request_id.to_le_bytes());
    payload.extend_from_slice(body);
    payload
}

/// Build an error-message payload for `error`, echoing `request_id`
/// (0 when the damage preceded the id).
pub fn error_message(request_id: u64, error: &ProtocolError) -> Vec<u8> {
    let detail = error.to_string();
    let mut body = Vec::with_capacity(9 + detail.len());
    body.push(error.code());
    body.extend_from_slice(&(detail.len() as u64).to_le_bytes());
    body.extend_from_slice(detail.as_bytes());
    message(TAG_ERROR, request_id, &body)
}

/// A parsed message payload: tag, request id, borrowed body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message<'a> {
    /// The message tag (one of the `TAG_*` constants, or unknown).
    pub tag: u8,
    /// The client-chosen request id this message belongs to.
    pub request_id: u64,
    /// The tag-specific body bytes.
    pub body: &'a [u8],
}

/// Split a verified frame payload into tag, request id and body.
pub fn parse_message(payload: &[u8]) -> Result<Message<'_>, ProtocolError> {
    if payload.len() < 9 {
        return Err(ProtocolError::ShortMessage);
    }
    Ok(Message {
        tag: payload[0],
        request_id: u64::from_le_bytes(payload[1..9].try_into().unwrap()),
        body: &payload[9..],
    })
}

/// Parse the body of a [`TAG_ERROR`] message into `(code, detail)`.
pub fn parse_error_body(body: &[u8]) -> (u8, String) {
    if body.is_empty() {
        return (0, String::new());
    }
    let code = body[0];
    let detail = if body.len() >= 9 {
        let len = u64::from_le_bytes(body[1..9].try_into().unwrap()) as usize;
        let end = 9usize.saturating_add(len).min(body.len());
        String::from_utf8_lossy(&body[9..end]).into_owned()
    } else {
        String::new()
    };
    (code, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &message(TAG_SUBMIT, 7, b"body")).unwrap();
        write_frame(&mut wire, &message(TAG_READ, 8, b"")).unwrap();
        let mut cursor = io::Cursor::new(wire);
        for (tag, id, body) in [(TAG_SUBMIT, 7u64, b"body" as &[u8]), (TAG_READ, 8, b"")] {
            let FrameRead::Payload(p) = read_frame(&mut cursor, 1 << 20).unwrap() else {
                panic!("payload expected");
            };
            let m = parse_message(&p).unwrap();
            assert_eq!((m.tag, m.request_id, m.body), (tag, id, body));
        }
        assert!(matches!(read_frame(&mut cursor, 1 << 20).unwrap(), FrameRead::Closed));
    }

    #[test]
    fn corrupted_and_oversized_frames_are_rejected_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &message(TAG_SUBMIT, 1, b"payload")).unwrap();
        let mut corrupt = wire.clone();
        *corrupt.last_mut().unwrap() ^= 0x40;
        let got = read_frame(&mut io::Cursor::new(corrupt), 1 << 20).unwrap();
        assert!(matches!(got, FrameRead::Rejected(ProtocolError::BadChecksum)));

        let got = read_frame(&mut io::Cursor::new(&wire), 4).unwrap();
        assert!(matches!(
            got,
            FrameRead::Rejected(ProtocolError::Oversized { announced: 16, max: 4 })
        ));

        // Every strict prefix is a clean close or a torn frame, never Err.
        for cut in 0..wire.len() {
            let got = read_frame(&mut io::Cursor::new(&wire[..cut]), 1 << 20).unwrap();
            match got {
                FrameRead::Closed => assert_eq!(cut, 0),
                FrameRead::Torn => assert!(cut > 0),
                other => panic!("prefix {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn error_messages_round_trip_their_code() {
        for err in [
            ProtocolError::BadChecksum,
            ProtocolError::Oversized { announced: 9, max: 4 },
            ProtocolError::UnknownTag(0x33),
            ProtocolError::ShortMessage,
            ProtocolError::BadPayload(SnapshotError::BadMagic),
        ] {
            let payload = error_message(42, &err);
            let m = parse_message(&payload).unwrap();
            assert_eq!(m.tag, TAG_ERROR);
            assert_eq!(m.request_id, 42);
            let (code, detail) = parse_error_body(m.body);
            assert_eq!(code, err.code());
            assert_eq!(detail, err.to_string());
            assert_eq!(ProtocolError::from_code(code, &detail).code(), err.code());
        }
    }
}
