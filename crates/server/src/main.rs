//! The `plis-server` binary: bind, serve, drain on SIGTERM/SIGINT or
//! stdin EOF.
//!
//! Configuration comes from environment variables (the workspace's bench
//! convention):
//!
//! | variable               | default       | meaning                              |
//! |------------------------|---------------|--------------------------------------|
//! | `PLIS_SERVE_ADDR`      | `127.0.0.1:0` | bind address (port 0 = ephemeral)    |
//! | `PLIS_SERVE_UNIVERSE`  | `1 << 32`     | engine value universe                |
//! | `PLIS_SERVE_BATCH_OPS` | `256`         | batch size trigger (ops)             |
//! | `PLIS_SERVE_BATCH_US`  | `200`         | batch time trigger (µs)              |
//! | `PLIS_SERVE_JOURNAL`   | off           | tick-journal file path               |
//! | `PLIS_SERVE_SNAPSHOT`  | off           | write an engine snapshot here on exit|
//!
//! The bound address is printed as `listening on <addr>` once the server
//! is accepting — scripts (the CI smoke) parse that line.  On SIGTERM,
//! SIGINT or stdin EOF the server stops accepting, drains in-flight
//! ticks, optionally writes the final snapshot, and exits 0.

use plis_engine::EngineConfig;
use plis_server::{JournalMode, ServerConfig, ServerHandle};
use std::io::Read;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Hand-rolled: no `signal-hook`/`libc` crates in this environment.
    // The handler only stores to an atomic — async-signal-safe.
    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    install_signal_handlers();

    let addr: SocketAddr = std::env::var("PLIS_SERVE_ADDR")
        .unwrap_or_else(|_| "127.0.0.1:0".into())
        .parse()
        .expect("PLIS_SERVE_ADDR must be host:port");
    let config = ServerConfig {
        addr,
        engine: EngineConfig {
            universe: env_u64("PLIS_SERVE_UNIVERSE", 1 << 32),
            ..EngineConfig::default()
        },
        batch_max_ops: env_u64("PLIS_SERVE_BATCH_OPS", 256) as usize,
        batch_max_wait: Duration::from_micros(env_u64("PLIS_SERVE_BATCH_US", 200)),
        journal: match std::env::var("PLIS_SERVE_JOURNAL") {
            Ok(path) if !path.is_empty() => JournalMode::File(path.into()),
            _ => JournalMode::Off,
        },
        ..ServerConfig::default()
    };

    let server = ServerHandle::start(config).expect("bind failed");
    println!("listening on {}", server.addr());

    // Wake on stdin EOF from a watcher thread; poll the signal flag here.
    let stdin_closed = std::sync::Arc::new(AtomicBool::new(false));
    {
        let stdin_closed = std::sync::Arc::clone(&stdin_closed);
        std::thread::spawn(move || {
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            while let Ok(n) = stdin.read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
            stdin_closed.store(true, Ordering::SeqCst);
        });
    }
    while !STOP.load(Ordering::SeqCst) && !stdin_closed.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }

    eprintln!("draining");
    let report = server.shutdown();
    if let Ok(path) = std::env::var("PLIS_SERVE_SNAPSHOT") {
        if !path.is_empty() {
            std::fs::write(&path, report.snapshot.encode()).expect("snapshot write failed");
            eprintln!("snapshot: {path} ({} sessions)", report.snapshot.session_count());
        }
    }
    eprintln!(
        "served {} combined ticks across {} sessions",
        report.ticks_executed,
        report.snapshot.session_count()
    );
}
