//! A blocking client for the service plane.
//!
//! [`Client::submit`] / [`Client::submit_read`] are the closed-loop
//! calls: one request, block for its response.  Pipelined callers (the
//! load generator) use the split [`Client::send_tick`] /
//! [`Client::send_read`] / [`Client::recv`] surface to keep many
//! requests in flight on one socket; responses arrive in submission
//! order and carry the echoed request id.

use crate::protocol::{
    message, parse_error_body, parse_message, read_frame, write_frame, FrameRead, ProtocolError,
    DEFAULT_MAX_FRAME_BYTES, TAG_ERROR, TAG_READ, TAG_READ_OUTCOME, TAG_SUBMIT, TAG_TICK_OUTCOME,
};
use plis_engine::{
    decode_read_outcome, decode_tick_outcome, encode_read_tick, encode_tick, ReadOutcome, ReadTick,
    SnapshotError, Tick, TickOutcome,
};
use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket-level failure.
    Io(io::Error),
    /// The server closed the connection (cleanly or mid-frame) before
    /// the expected response arrived.
    Closed,
    /// A response frame from the server failed its own framing checks.
    Frame(ProtocolError),
    /// The server rejected the connection's traffic with a typed error
    /// frame (and closed it).
    Server {
        /// The echoed request id (0 when the damage preceded the id).
        request_id: u64,
        /// The typed error, rebuilt from its wire code.
        error: ProtocolError,
        /// The server's human-readable detail line.
        detail: String,
    },
    /// A response payload failed to decode.
    Decode(SnapshotError),
    /// The server answered with a message tag this client doesn't know.
    UnknownTag(u8),
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Frame(e) => write!(f, "bad response frame: {e}"),
            ClientError::Server { request_id, error, detail } => {
                write!(f, "server rejected request {request_id}: {error} ({detail})")
            }
            ClientError::Decode(e) => write!(f, "undecodable response payload: {e}"),
            ClientError::UnknownTag(tag) => write!(f, "unknown response tag {tag:#04x}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One decoded response.
#[derive(Debug)]
pub enum Response {
    /// The outcome of a write request.
    Tick {
        /// The echoed request id.
        request_id: u64,
        /// The reassembled outcome slice for that request.
        outcome: TickOutcome,
    },
    /// The outcome of a read request.
    Read {
        /// The echoed request id.
        request_id: u64,
        /// The reassembled outcome slice for that request.
        outcome: ReadOutcome,
    },
}

impl Response {
    /// The echoed request id, whatever the kind.
    pub fn request_id(&self) -> u64 {
        match self {
            Response::Tick { request_id, .. } | Response::Read { request_id, .. } => *request_id,
        }
    }
}

/// A blocking connection to a `plis-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame: u32,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, next_id: 1, max_frame: DEFAULT_MAX_FRAME_BYTES })
    }

    /// Send a write request without waiting; returns its request id.
    pub fn send_tick(&mut self, tick: &Tick) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &message(TAG_SUBMIT, id, &encode_tick(tick)))?;
        Ok(id)
    }

    /// Send a read request without waiting; returns its request id.
    pub fn send_read(&mut self, tick: &ReadTick) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &message(TAG_READ, id, &encode_read_tick(tick)))?;
        Ok(id)
    }

    /// Block for the next response on this connection.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = match read_frame(&mut self.stream, self.max_frame)? {
            FrameRead::Payload(p) => p,
            FrameRead::Closed | FrameRead::Torn => return Err(ClientError::Closed),
            FrameRead::Rejected(e) => return Err(ClientError::Frame(e)),
        };
        let msg = parse_message(&payload).map_err(ClientError::Frame)?;
        match msg.tag {
            TAG_TICK_OUTCOME => Ok(Response::Tick {
                request_id: msg.request_id,
                outcome: decode_tick_outcome(msg.body).map_err(ClientError::Decode)?,
            }),
            TAG_READ_OUTCOME => Ok(Response::Read {
                request_id: msg.request_id,
                outcome: decode_read_outcome(msg.body).map_err(ClientError::Decode)?,
            }),
            TAG_ERROR => {
                let (code, detail) = parse_error_body(msg.body);
                Err(ClientError::Server {
                    request_id: msg.request_id,
                    error: ProtocolError::from_code(code, &detail),
                    detail,
                })
            }
            other => Err(ClientError::UnknownTag(other)),
        }
    }

    /// Closed-loop write: send one tick, block for its outcome.
    pub fn submit(&mut self, tick: &Tick) -> Result<TickOutcome, ClientError> {
        let id = self.send_tick(tick)?;
        match self.recv()? {
            Response::Tick { request_id, outcome } if request_id == id => Ok(outcome),
            other => Err(ClientError::UnknownTag(match other {
                Response::Tick { .. } => TAG_TICK_OUTCOME,
                Response::Read { .. } => TAG_READ_OUTCOME,
            })),
        }
    }

    /// Closed-loop read: send one read tick, block for its outcome.
    pub fn submit_read(&mut self, tick: &ReadTick) -> Result<ReadOutcome, ClientError> {
        let id = self.send_read(tick)?;
        match self.recv()? {
            Response::Read { request_id, outcome } if request_id == id => Ok(outcome),
            other => Err(ClientError::UnknownTag(match other {
                Response::Tick { .. } => TAG_TICK_OUTCOME,
                Response::Read { .. } => TAG_READ_OUTCOME,
            })),
        }
    }

    /// Half-close the send side: the server sees EOF (a clean close)
    /// while responses already in flight can still be received.
    pub fn finish_sending(&self) -> io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }

    /// Raw access to the underlying stream, for tests that need to write
    /// deliberately damaged or partial frames.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
