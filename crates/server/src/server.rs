//! The server proper: listener, per-connection reader threads, the
//! batcher, and graceful shutdown.
//!
//! # Threading model
//!
//! * One **accept thread** polls a non-blocking listener and spawns a
//!   reader thread per connection.
//! * Each **reader thread** blocks on its socket, reassembles frames
//!   (partial TCP reads are the normal case, not an error), decodes the
//!   sealed tick / read tick, and enqueues a work item.  Any protocol
//!   violation earns a typed error frame and a clean close of that one
//!   connection; the engine and every other connection are untouched.
//! * One **batcher thread** owns the [`Engine`].  It drains the queue in
//!   arrival order and coalesces items into engine ticks on a time/size
//!   trigger: a batch closes as soon as it holds
//!   [`ServerConfig::batch_max_ops`] ops, or
//!   [`ServerConfig::batch_max_wait`] after its first op arrived,
//!   whichever comes first.
//!
//! # Ordering and read-your-writes
//!
//! The queue is strictly FIFO and each reader enqueues its connection's
//! requests in socket order, so per-connection submission order is
//! preserved end to end.  Within one drained batch, consecutive write
//! requests with the same `create_missing` flag merge into one combined
//! [`Tick`] (and consecutive read requests into one combined
//! [`ReadTick`]) with each request occupying a contiguous slot range;
//! runs execute in queue order.  Sessions are independent and the engine
//! applies same-session slots of one tick in slot order, so the combined
//! execution is op-for-op identical to executing every request
//! individually in queue order — which is what makes serving
//! bit-identical to direct library execution, whatever the batching.  A
//! read that follows a write on the same connection sits later in the
//! queue, lands in the same or a later run, and therefore observes the
//! write: read-your-writes.
//!
//! # Shutdown and drain
//!
//! [`ServerHandle::shutdown`] stops the accept loop, half-closes every
//! connection's read side (queued responses still flush through the
//! write side), joins the readers, then lets the batcher drain the
//! remaining queue — every request that was fully received is executed
//! and answered, then the engine is snapshotted and returned.  Nothing
//! acked is lost; nothing is applied twice (the journal records each
//! combined tick exactly once, before execution).

use crate::protocol::{
    error_message, message, parse_message, read_frame, write_frame, FrameRead, ProtocolError,
    DEFAULT_MAX_FRAME_BYTES, TAG_READ, TAG_READ_OUTCOME, TAG_SUBMIT, TAG_TICK_OUTCOME,
};
use plis_engine::{
    decode_read_tick, decode_tick, encode_read_outcome, encode_tick, encode_tick_outcome, Engine,
    EngineConfig, EngineSnapshot, ReadOutcome, ReadTick, Tick, TickOutcome,
};
use plis_telemetry::JournalWriter;
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Where the server journals executed ticks.
#[derive(Debug, Clone, Default)]
pub enum JournalMode {
    /// No journal.
    #[default]
    Off,
    /// Journal into memory; the bytes come back in the
    /// [`ShutdownReport`].
    Memory,
    /// Journal into a file at this path (created/truncated on start).
    File(PathBuf),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; use port 0 for an ephemeral port.
    pub addr: SocketAddr,
    /// Engine configuration (universe, backend, shards, …).
    pub engine: EngineConfig,
    /// Size trigger: a batch closes once it holds this many ops.
    pub batch_max_ops: usize,
    /// Time trigger: a batch closes this long after its first op.
    pub batch_max_wait: Duration,
    /// Per-frame payload cap; larger announcements are rejected typed.
    pub max_frame_bytes: u32,
    /// Tick journalling (each combined tick, written before execution).
    pub journal: JournalMode,
    /// Pin tick execution to a dedicated pool of this many workers;
    /// `None` executes on the batcher thread's default pool.
    pub worker_threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            engine: EngineConfig::default(),
            batch_max_ops: 256,
            batch_max_wait: Duration::from_micros(200),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            journal: JournalMode::Off,
            worker_threads: None,
        }
    }
}

/// What [`ServerHandle::shutdown`] hands back after the drain.
#[derive(Debug)]
pub struct ShutdownReport {
    /// The engine, post-drain — callers can snapshot, inspect or keep
    /// serving it in-process.
    pub engine: Engine,
    /// A snapshot captured after the last tick drained.
    pub snapshot: EngineSnapshot,
    /// The journal bytes when [`JournalMode::Memory`] was configured
    /// (file journals are already on disk).
    pub journal: Option<Vec<u8>>,
    /// Combined ticks journalled/executed over the server's lifetime.
    pub ticks_executed: u64,
}

enum Request {
    Write(Tick),
    Read(ReadTick),
}

struct WorkItem {
    request_id: u64,
    request: Request,
    reply: Arc<ConnWriter>,
}

impl WorkItem {
    fn ops(&self) -> usize {
        match &self.request {
            Request::Write(t) => t.slots().len().max(1),
            Request::Read(t) => t.slots().len().max(1),
        }
    }
}

/// The write half of a connection, shared between its reader thread and
/// the batcher.  Send failures are remembered, not propagated: a peer
/// that vanished mid-response must not take the batcher down.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ConnWriter {
    fn send(&self, payload: &[u8]) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut stream = self.stream.lock().unwrap();
        if write_frame(&mut *stream, payload).is_err() {
            self.dead.store(true, Ordering::Relaxed);
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<WorkItem>>,
    cond: Condvar,
    /// Accept loop stops; set first on shutdown.
    shutting_down: AtomicBool,
    /// Readers are joined and the queue is complete; the batcher may
    /// exit once it runs dry.
    drained: AtomicBool,
    /// Reader-side stream clones, for half-closing on shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Reader thread handles, joined during shutdown.
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn enqueue(&self, item: WorkItem) {
        self.queue.lock().unwrap().push_back(item);
        self.cond.notify_all();
    }
}

enum JournalSink {
    Mem(Vec<u8>),
    File(BufWriter<File>),
}

impl Write for JournalSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            JournalSink::Mem(v) => v.write(buf),
            JournalSink::File(f) => f.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            JournalSink::Mem(v) => v.flush(),
            JournalSink::File(f) => f.flush(),
        }
    }
}

/// A running server.  Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (the process exit
/// reaps them); tests and the server binary always shut down explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<(Engine, Option<JournalSink>, u64)>>,
}

impl ServerHandle {
    /// Bind, spawn the accept and batcher threads, and start serving.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            readers: Mutex::new(Vec::new()),
        });

        let journal = match &config.journal {
            JournalMode::Off => None,
            JournalMode::Memory => Some(JournalWriter::new(JournalSink::Mem(Vec::new()))),
            JournalMode::File(path) => {
                Some(JournalWriter::new(JournalSink::File(BufWriter::new(File::create(path)?))))
            }
        };

        let accept = {
            let shared = Arc::clone(&shared);
            let max_frame = config.max_frame_bytes;
            thread::Builder::new()
                .name("plis-accept".into())
                .spawn(move || accept_loop(listener, shared, max_frame))?
        };

        let batcher = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            thread::Builder::new()
                .name("plis-batcher".into())
                .spawn(move || batcher_loop(config, shared, journal))?
        };

        Ok(ServerHandle { addr, shared, accept: Some(accept), batcher: Some(batcher) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, half-close every connection's
    /// read side, join the readers, drain the queue, and return the
    /// engine + snapshot + journal.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Stop the flow of new requests; responses still drain through
        // the write halves.
        for (_, stream) in self.shared.conns.lock().unwrap().iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let readers: Vec<_> = std::mem::take(&mut *self.shared.readers.lock().unwrap());
        for reader in readers {
            let _ = reader.join();
        }
        // The queue is now complete; let the batcher run dry and exit.
        self.shared.drained.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        let (engine, journal, ticks_executed) =
            self.batcher.take().expect("shutdown runs once").join().expect("batcher panicked");
        let snapshot = engine.snapshot();
        let journal = journal.and_then(|sink| match sink {
            JournalSink::Mem(bytes) => Some(bytes),
            JournalSink::File(mut file) => {
                let _ = file.flush();
                None
            }
        });
        ShutdownReport { engine, snapshot, journal, ticks_executed }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, max_frame: u32) {
    let mut next_conn = 0u64;
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_conn;
                next_conn += 1;
                if spawn_reader(&shared, stream, conn_id, max_frame).is_err() {
                    continue;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

fn spawn_reader(
    shared: &Arc<Shared>,
    stream: TcpStream,
    conn_id: u64,
    max_frame: u32,
) -> io::Result<()> {
    // The accepted socket may inherit the listener's non-blocking mode on
    // some platforms; readers want blocking reads.
    stream.set_nonblocking(false)?;
    let _ = stream.set_nodelay(true);
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(stream.try_clone()?),
        dead: AtomicBool::new(false),
    });
    shared.conns.lock().unwrap().insert(conn_id, stream.try_clone()?);
    let handle = {
        let shared = Arc::clone(shared);
        thread::Builder::new().name(format!("plis-conn-{conn_id}")).spawn(move || {
            reader_loop(&stream, &writer, &shared, max_frame);
            shared.conns.lock().unwrap().remove(&conn_id);
        })?
    };
    shared.readers.lock().unwrap().push(handle);
    Ok(())
}

/// Serve one connection's read side until it closes or violates the
/// protocol.  Returns (and thereby closes the connection) on the first
/// violation, after sending a typed error frame.
fn reader_loop(stream: &TcpStream, writer: &Arc<ConnWriter>, shared: &Shared, max_frame: u32) {
    let mut read_half = stream;
    loop {
        let payload = match read_frame(&mut read_half, max_frame) {
            // Peer closed (cleanly or mid-frame): no protocol violation,
            // nothing to answer, nothing reached the engine.
            Ok(FrameRead::Closed) | Ok(FrameRead::Torn) => return,
            Ok(FrameRead::Rejected(err)) => {
                // Frame-level damage precedes the request id.
                writer.send(&error_message(0, &err));
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Ok(FrameRead::Payload(payload)) => payload,
            Err(_) => return,
        };
        let msg = match parse_message(&payload) {
            Ok(msg) => msg,
            Err(err) => {
                writer.send(&error_message(0, &err));
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        let request = match msg.tag {
            TAG_SUBMIT => decode_tick(msg.body).map(Request::Write),
            TAG_READ => decode_read_tick(msg.body).map(Request::Read),
            other => {
                writer.send(&error_message(msg.request_id, &ProtocolError::UnknownTag(other)));
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        match request {
            Ok(request) => shared.enqueue(WorkItem {
                request_id: msg.request_id,
                request,
                reply: Arc::clone(writer),
            }),
            Err(e) => {
                writer.send(&error_message(msg.request_id, &ProtocolError::BadPayload(e)));
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

fn batcher_loop(
    config: ServerConfig,
    shared: Arc<Shared>,
    mut journal: Option<JournalWriter<JournalSink>>,
) -> (Engine, Option<JournalSink>, u64) {
    let mut engine = Engine::new(config.engine.clone());
    let pool = config.worker_threads.map(|n| {
        rayon::ThreadPoolBuilder::new().num_threads(n).build().expect("pool build cannot fail")
    });
    let mut ticks_executed = 0u64;
    loop {
        let batch = collect_batch(&shared, &config);
        if batch.is_empty() {
            // Only returned empty when drained and dry.
            return (engine, journal.map(JournalWriter::into_inner), ticks_executed);
        }
        ticks_executed += execute_batch(&mut engine, pool.as_ref(), journal.as_mut(), batch) as u64;
    }
}

/// Block until at least one work item is available (or the server is
/// drained dry), then keep collecting until the size or time trigger
/// fires.  Returns an empty batch only at drained-and-dry.
fn collect_batch(shared: &Shared, config: &ServerConfig) -> Vec<WorkItem> {
    let mut batch = Vec::new();
    let mut ops = 0usize;
    let mut deadline: Option<Instant> = None;
    let mut queue = shared.queue.lock().unwrap();
    loop {
        while ops < config.batch_max_ops {
            match queue.pop_front() {
                Some(item) => {
                    ops += item.ops();
                    batch.push(item);
                }
                None => break,
            }
        }
        if ops >= config.batch_max_ops {
            return batch;
        }
        let drained = shared.drained.load(Ordering::SeqCst);
        if batch.is_empty() {
            if drained {
                return batch;
            }
            // Nothing to do yet; park until work or shutdown arrives.
            // The timeout is a backstop against a lost wakeup.
            queue = shared.cond.wait_timeout(queue, Duration::from_millis(50)).unwrap().0;
            continue;
        }
        if drained {
            // No more producers: waiting out the time trigger is
            // pointless, ship what we have.
            return batch;
        }
        let until = *deadline.get_or_insert_with(|| Instant::now() + config.batch_max_wait);
        let now = Instant::now();
        if now >= until {
            return batch;
        }
        let (guard, timeout) = shared.cond.wait_timeout(queue, until - now).unwrap();
        queue = guard;
        if timeout.timed_out() && queue.is_empty() {
            return batch;
        }
    }
}

/// Execute one drained batch: coalesce compatible consecutive requests
/// into combined ticks, journal each combined tick before running it,
/// and route per-request outcome slices back to their connections.
/// Returns the number of combined ticks executed.
fn execute_batch(
    engine: &mut Engine,
    pool: Option<&rayon::ThreadPool>,
    mut journal: Option<&mut JournalWriter<JournalSink>>,
    batch: Vec<WorkItem>,
) -> usize {
    let mut executed = 0usize;
    let mut items = batch.into_iter().peekable();
    while let Some(first) = items.next() {
        match first.request {
            Request::Write(_) => {
                let creates = match &first.request {
                    Request::Write(t) => t.creates_missing(),
                    Request::Read(_) => unreachable!(),
                };
                let mut run = vec![first];
                while matches!(
                    items.peek(),
                    Some(WorkItem { request: Request::Write(t), .. })
                        if t.creates_missing() == creates
                ) {
                    run.push(items.next().unwrap());
                }
                execute_write_run(engine, pool, journal.as_deref_mut(), creates, run);
            }
            Request::Read(_) => {
                let mut run = vec![first];
                while matches!(items.peek(), Some(WorkItem { request: Request::Read(_), .. })) {
                    run.push(items.next().unwrap());
                }
                execute_read_run(engine, pool, run);
            }
        }
        executed += 1;
    }
    executed
}

fn execute_write_run(
    engine: &mut Engine,
    pool: Option<&rayon::ThreadPool>,
    journal: Option<&mut JournalWriter<JournalSink>>,
    creates_missing: bool,
    run: Vec<WorkItem>,
) {
    let mut combined = if creates_missing { Tick::new().auto_create() } else { Tick::new() };
    let mut ranges = Vec::with_capacity(run.len());
    for item in &run {
        let Request::Write(tick) = &item.request else { unreachable!("write run") };
        let start = combined.slots().len();
        for (id, op) in tick.slots() {
            combined.push(id, op.clone());
        }
        ranges.push(start..combined.slots().len());
    }
    if let Some(journal) = journal {
        // Before execution: the recovery contract replays journalled
        // ticks, so a tick that executed but never reached the journal
        // would be lost.
        journal.append(&encode_tick(&combined)).expect("journal append failed");
    }
    let outcome = match pool {
        Some(pool) => pool.install(|| engine.execute(&combined)),
        None => engine.execute(&combined),
    };
    for (item, range) in run.iter().zip(ranges) {
        let part = TickOutcome::from_parts(
            outcome.outcomes[range].to_vec(),
            outcome.worker_threads,
            outcome.elapsed_ns,
        );
        item.reply.send(&message(TAG_TICK_OUTCOME, item.request_id, &encode_tick_outcome(&part)));
    }
}

fn execute_read_run(engine: &mut Engine, pool: Option<&rayon::ThreadPool>, run: Vec<WorkItem>) {
    let mut combined = ReadTick::new();
    let mut ranges = Vec::with_capacity(run.len());
    for item in &run {
        let Request::Read(tick) = &item.request else { unreachable!("read run") };
        let start = combined.slots().len();
        for (id, batch) in tick.slots() {
            combined.push(id, batch.clone());
        }
        ranges.push(start..combined.slots().len());
    }
    let outcome = match pool {
        Some(pool) => pool.install(|| engine.execute_read(&combined)),
        None => engine.execute_read(&combined),
    };
    for (item, range) in run.iter().zip(ranges) {
        let part = ReadOutcome::from_parts(
            outcome.outcomes[range].to_vec(),
            outcome.worker_threads,
            outcome.elapsed_ns,
        );
        item.reply.send(&message(TAG_READ_OUTCOME, item.request_id, &encode_read_outcome(&part)));
    }
}
