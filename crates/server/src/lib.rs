//! `plis-server` — the **service plane**: the engine's command plane
//! served over TCP.
//!
//! The typed `Op`/`Outcome` command plane of `plis-engine` is already the
//! shape of a network protocol; this crate puts a socket in front of it.
//! Requests are whole [`Tick`](plis_engine::Tick)s /
//! [`ReadTick`](plis_engine::ReadTick)s in the engine's own sealed wire
//! encoding ([`plis_engine::wire`]), framed exactly like the tick journal
//! (`[len][crc64][payload]` — one frame layout, one implementation), and
//! every response is a fully typed
//! [`TickOutcome`](plis_engine::TickOutcome) /
//! [`ReadOutcome`](plis_engine::ReadOutcome): each
//! `Result<OpOutput, OpError>` a library caller would see round-trips the
//! socket intact.
//!
//! The server is hand-rolled on `std::net` (the build environment has no
//! registry access, so no tokio/hyper): an accept loop, one blocking
//! reader thread per connection, and a single batcher thread that owns
//! the engine and coalesces concurrently-arriving requests into combined
//! engine ticks on a time/size trigger.  See [`server`] for the
//! threading model, the ordering/read-your-writes argument, and shutdown
//! semantics; [`protocol`] for the frame and message layout; [`client`]
//! for the blocking/pipelined client the load generator and the tests
//! drive.
//!
//! # Quick start
//!
//! ```
//! use plis_engine::{EngineConfig, Query, SessionKind, Tick};
//! use plis_server::{Client, ServerConfig, ServerHandle};
//!
//! let server = ServerHandle::start(ServerConfig {
//!     engine: EngineConfig { universe: 1 << 16, ..EngineConfig::default() },
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! let outcome = client
//!     .submit(
//!         &Tick::new()
//!             .create("alice", SessionKind::Unweighted)
//!             .append("alice", vec![5u64, 3, 4, 8])
//!             .query("alice", Query::RankOf(3)),
//!     )
//!     .unwrap();
//! assert!(outcome.fully_applied());
//! assert_eq!(outcome.total_ingested, 4);
//!
//! let report = server.shutdown();
//! assert_eq!(report.snapshot.session_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Response};
pub use protocol::{FrameRead, ProtocolError, DEFAULT_MAX_FRAME_BYTES};
pub use server::{JournalMode, ServerConfig, ServerHandle, ShutdownReport};
