//! Parallel tournament trees.
//!
//! Section 3 of "Parallel Longest Increasing Subsequence and van Emde Boas
//! Trees" (SPAA 2023) drives its work-efficient LIS algorithm with a
//! *tournament tree*: a complete binary tree whose leaves hold the input
//! objects and whose internal nodes hold the minimum of their subtree.  In
//! every round the algorithm extracts the current *prefix-min objects*
//! (Definition 3.1) — the objects that are no larger than everything before
//! them — assigns them the current round number as their rank, removes them,
//! and repeats.  Theorem 3.1 bounds the number of tree nodes touched when a
//! frontier of `m` leaves is extracted by `O(m log(n/m))`, which is what
//! makes the whole LIS algorithm `O(n log k)` work.
//!
//! # Layout
//!
//! Instead of the paper's power-of-two heap layout (`T[2i]`, `T[2i+1]`), this
//! implementation stores every subtree *contiguously*: a subtree over `m`
//! leaves occupies exactly `2m − 1` consecutive slots, with the root first,
//! the left subtree (over `⌈m/2⌉` leaves) next, and the right subtree after
//! it.  The leaves of a subtree are exactly the original positions of the
//! objects it covers, in order.  Two things follow:
//!
//! * no padding to a power of two is needed (the tree has exactly `2n − 1`
//!   nodes for any `n`), and
//! * the recursion of `PrefixMin` can split the tree slice (and the rank
//!   slice) with `split_at_mut` and hand disjoint halves to [`rayon::join`],
//!   so the whole traversal is safe Rust with no atomics and no `unsafe`.
//!
//! The asymptotics are identical to the paper's layout.
//!
//! # Counters
//!
//! Every extraction reports how many tree nodes it visited, which the
//! benchmark harness uses to validate the `O(n log k)` work bound of
//! Theorem 3.2 empirically (experiment E7 in `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use plis_tournament::TournamentTree;
//!
//! // The running example of Figure 3 in the paper.
//! let input = [52u64, 31, 45, 26, 61, 10, 39, 44];
//! let mut tree = TournamentTree::new(&input, u64::MAX);
//! let mut rank = vec![0u32; input.len()];
//!
//! let mut round = 0;
//! while !tree.is_empty() {
//!     round += 1;
//!     tree.process_frontier(round, &mut rank);
//! }
//! assert_eq!(rank, vec![1, 1, 2, 1, 3, 1, 2, 3]);
//! assert_eq!(round, 3); // the LIS length
//! ```

mod tree;

pub use tree::{FrontierStats, TournamentTree};
