//! The tournament tree itself (Algorithm 1's `T` array, `PrefixMin`, and
//! `ProcessFrontier`).

use plis_primitives::par::{maybe_join, GRAIN};

/// Fork gate for the per-round frontier traversal, deliberately coarser
/// than the build-time [`GRAIN`].  `PrefixMin` runs once per rank round —
/// `k` times over the same tree — and on this pool every fork spawns a
/// scoped OS thread (tens of microseconds), so a tree just above `GRAIN`
/// leaves would otherwise pay one spawn per round for subtrees whose
/// sequential walk costs a few microseconds.  The one-shot `build` keeps
/// the finer grain: it forks `O(n / GRAIN)` times total, not per round.
const ROUND_GRAIN: usize = 4 * GRAIN;

/// Statistics reported by one frontier extraction, used by the work-bound
/// validation experiment (Theorem 3.2) and by the LIS driver to know when to
/// stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrontierStats {
    /// Number of leaves extracted in this round (`m_r = |F_r|`).
    pub frontier_size: usize,
    /// Number of tree nodes visited by the traversal (relevant nodes plus
    /// their skipped children); Theorem 3.1 bounds this by
    /// `O(m_r · log(n / m_r))`.
    pub nodes_visited: usize,
}

/// A min-tournament tree over a fixed sequence of `n` objects supporting
/// parallel extraction of all current prefix-min objects (one *frontier* of
/// the phase-parallel LIS algorithm) per call.
///
/// The type parameter `T` is the object type; `inf` is a caller-supplied
/// sentinel strictly greater than every real object (the paper's `+∞`),
/// which marks removed leaves and empty subtrees.
#[derive(Debug, Clone)]
pub struct TournamentTree<T> {
    /// Contiguous-subtree layout, `2n − 1` slots (see crate docs).
    tree: Vec<T>,
    /// Number of leaves (original input length).
    n: usize,
    /// The `+∞` sentinel.
    inf: T,
    /// Number of leaves not yet removed.
    remaining: usize,
}

impl<T: Ord + Copy + Send + Sync> TournamentTree<T> {
    /// Build the tree from `values` in `O(n)` work and `O(log n)` span.
    ///
    /// # Panics
    /// Panics if any value is `>= inf`.
    pub fn new(values: &[T], inf: T) -> Self {
        assert!(
            values.iter().all(|v| *v < inf),
            "every value must be strictly smaller than the +infinity sentinel"
        );
        let n = values.len();
        if n == 0 {
            return Self { tree: Vec::new(), n, inf, remaining: 0 };
        }
        let mut tree = vec![inf; 2 * n - 1];
        build(&mut tree, values);
        Self { tree, n, inf, remaining: n }
    }

    /// Number of objects the tree was built over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the tree was built over an empty sequence *or* every object
    /// has been removed (`T[1] = +∞` in the paper's notation).
    pub fn is_empty(&self) -> bool {
        self.n == 0 || self.tree[0] == self.inf
    }

    /// Number of objects not yet extracted.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The minimum value still present, or `None` if the tree is empty.
    pub fn min(&self) -> Option<T> {
        if self.is_empty() {
            None
        } else {
            Some(self.tree[0])
        }
    }

    /// The current value stored at leaf `i` (the original object, or the
    /// sentinel if it has been removed).
    pub fn leaf(&self, i: usize) -> T {
        assert!(i < self.n, "leaf index out of range");
        leaf_value(&self.tree, i)
    }

    /// `ProcessFrontier` (Alg. 1 lines 10–11): find every current prefix-min
    /// object, write `round` into `rank` at its original index, and remove it
    /// from the tree.  Returns the extraction statistics.
    ///
    /// Work `O(m log(n/m))` where `m` is the frontier size; span `O(log n)`.
    ///
    /// # Panics
    /// Panics if `rank.len()` differs from the input length.
    pub fn process_frontier(&mut self, round: u32, rank: &mut [u32]) -> FrontierStats {
        assert_eq!(rank.len(), self.n, "rank array length mismatch");
        if self.is_empty() {
            return FrontierStats::default();
        }
        let inf = self.inf;
        let mut out = NoCollect;
        let stats = prefix_min(&mut self.tree, rank, self.n, inf, round, inf, &mut out);
        self.remaining -= stats.frontier_size;
        stats
    }

    /// Like [`process_frontier`](Self::process_frontier) but also returns the
    /// extracted frontier as the original indices in increasing order
    /// (Appendix A uses this to reconstruct an actual LIS).  The values at
    /// those indices are non-increasing (Lemma A.2).
    pub fn process_frontier_collect(
        &mut self,
        round: u32,
        rank: &mut [u32],
    ) -> (FrontierStats, Vec<usize>) {
        assert_eq!(rank.len(), self.n, "rank array length mismatch");
        if self.is_empty() {
            return (FrontierStats::default(), Vec::new());
        }
        let inf = self.inf;
        let mut out = Collect(Vec::new());
        let stats = prefix_min(&mut self.tree, rank, self.n, inf, round, inf, &mut out);
        self.remaining -= stats.frontier_size;
        (stats, out.0)
    }

    /// Extract every frontier until the tree is empty, returning all ranks
    /// and the number of rounds (= the LIS length).  This is the main loop of
    /// Algorithm 1 packaged as a convenience; the `plis-lis` crate wraps it
    /// with input preprocessing.
    pub fn extract_all_ranks(mut self) -> (Vec<u32>, u32) {
        let mut rank = vec![0u32; self.n];
        let mut round = 0u32;
        while !self.is_empty() {
            round += 1;
            self.process_frontier(round, &mut rank);
        }
        (rank, round)
    }
}

/// Frontier sink: either discard the extracted indices or collect them.
/// Collecting appends the right child's results after the left child's, so
/// indices come out in increasing original order.
trait Sink: Send {
    fn push(&mut self, idx: usize);
    fn split(&self) -> Self
    where
        Self: Sized;
    fn absorb(&mut self, other: Self)
    where
        Self: Sized;
}

struct NoCollect;
impl Sink for NoCollect {
    fn push(&mut self, _idx: usize) {}
    fn split(&self) -> Self {
        NoCollect
    }
    fn absorb(&mut self, _other: Self) {}
}

struct Collect(Vec<usize>);
impl Sink for Collect {
    fn push(&mut self, idx: usize) {
        self.0.push(idx);
    }
    fn split(&self) -> Self {
        Collect(Vec::new())
    }
    fn absorb(&mut self, mut other: Self) {
        if self.0.is_empty() {
            self.0 = std::mem::take(&mut other.0);
        } else {
            self.0.append(&mut other.0);
        }
    }
}

/// Build the contiguous-layout tree over `values`; `tree.len() == 2·values.len() − 1`.
fn build<T: Ord + Copy + Send + Sync>(tree: &mut [T], values: &[T]) {
    let m = values.len();
    debug_assert_eq!(tree.len(), 2 * m - 1);
    if m == 1 {
        tree[0] = values[0];
        return;
    }
    let half = m.div_ceil(2);
    let (root, rest) = tree.split_first_mut().expect("non-empty tree");
    let (left, right) = rest.split_at_mut(2 * half - 1);
    let ((), ()) =
        maybe_join(m, GRAIN, || build(left, &values[..half]), || build(right, &values[half..]));
    *root = left[0].min(right[0]);
}

/// Read the current value of original leaf `i` by walking down the layout.
fn leaf_value<T: Copy>(tree: &[T], mut i: usize) -> T {
    let mut m = tree.len().div_ceil(2);
    let mut off = 0usize;
    loop {
        if m == 1 {
            return tree[off];
        }
        let half = m.div_ceil(2);
        if i < half {
            off += 1;
            m = half;
        } else {
            off += 2 * half; // skip root (1) + left subtree (2·half − 1)
            i -= half;
            m -= half;
        }
    }
}

/// `PrefixMin` (Alg. 1 lines 12–21) over the contiguous layout.
///
/// `tree` is the subtree slice (2m−1 slots), `rank` the matching slice of the
/// rank array (m slots), `base` the original index of the first leaf in this
/// subtree... — actually the original index is recovered from the rank-slice
/// offset, so we pass `base` explicitly.  Returns the visit statistics.
#[allow(clippy::too_many_arguments)]
fn prefix_min<T, S>(
    tree: &mut [T],
    rank: &mut [u32],
    base_len: usize,
    inf: T,
    round: u32,
    lmin: T,
    out: &mut S,
) -> FrontierStats
where
    T: Ord + Copy + Send + Sync,
    S: Sink,
{
    // The recursion below threads the original index through the slice
    // offsets, so wrap the real worker with base = 0.
    debug_assert_eq!(rank.len(), base_len);
    go(tree, rank, 0, inf, round, lmin, out)
}

fn go<T, S>(
    tree: &mut [T],
    rank: &mut [u32],
    base: usize,
    inf: T,
    round: u32,
    lmin: T,
    out: &mut S,
) -> FrontierStats
where
    T: Ord + Copy + Send + Sync,
    S: Sink,
{
    let m = rank.len();
    debug_assert_eq!(tree.len(), 2 * m - 1);
    // Line 13: if the subtree minimum exceeds LMin, nothing here can be a
    // prefix-min object; skip the subtree (still counts as one visited node).
    // A subtree whose minimum is the +∞ sentinel is empty (all removed) and
    // is skipped as well — this covers the corner case LMin = +∞ where the
    // paper's `>` comparison alone would revisit removed leaves.
    if tree[0] > lmin || tree[0] == inf {
        return FrontierStats { frontier_size: 0, nodes_visited: 1 };
    }
    if m == 1 {
        // Lines 14–16: a leaf that passed the check is a prefix-min object.
        rank[0] = round;
        tree[0] = inf;
        out.push(base);
        return FrontierStats { frontier_size: 1, nodes_visited: 1 };
    }
    let half = m.div_ceil(2);
    let (root, rest) = tree.split_first_mut().expect("internal node");
    let (left, right) = rest.split_at_mut(2 * half - 1);
    let (rank_l, rank_r) = rank.split_at_mut(half);
    // Line 20: the right child's LMin additionally accounts for the minimum
    // of the left subtree *before* this round's removals.
    let left_min_before = left[0];
    let rmin = lmin.min(left_min_before);

    let mut out_l = out.split();
    let mut out_r = out.split();
    // Fork only when a fork can pay off: the subtree is above the grain size
    // *and* both children will actually be descended into.  When the frontier
    // is sparse most relevant nodes have a single relevant child (the
    // traversal degenerates to a path), and forking for a child that is
    // immediately pruned would just burn scheduler overhead — this matters for
    // large-k inputs where Algorithm 1 runs thousands of tiny rounds.
    let left_pruned = left[0] > lmin || left[0] == inf;
    let right_pruned = right[0] > rmin || right[0] == inf;
    let fork_size = if left_pruned || right_pruned { 0 } else { m };
    let (stats_l, stats_r) = maybe_join(
        fork_size,
        ROUND_GRAIN,
        || go(left, rank_l, base, inf, round, lmin, &mut out_l),
        || go(right, rank_r, base + half, inf, round, rmin, &mut out_r),
    );
    out.absorb(out_l);
    out.absorb(out_r);
    // Line 21: refresh the subtree minimum after removals.
    *root = left[0].min(right[0]);
    FrontierStats {
        frontier_size: stats_l.frontier_size + stats_r.frontier_size,
        nodes_visited: 1 + stats_l.nodes_visited + stats_r.nodes_visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force one phase-parallel round: ranks via repeated prefix-min
    /// removal, used as the oracle.
    fn oracle_ranks(a: &[u64]) -> Vec<u32> {
        let mut rank = vec![0u32; a.len()];
        let mut removed = vec![false; a.len()];
        let mut round = 0;
        while removed.iter().any(|r| !r) {
            round += 1;
            let mut cur_min = u64::MAX;
            let mut this_round = Vec::new();
            for i in 0..a.len() {
                if removed[i] {
                    continue;
                }
                if a[i] <= cur_min {
                    this_round.push(i);
                }
                cur_min = cur_min.min(a[i]);
            }
            for i in this_round {
                rank[i] = round;
                removed[i] = true;
            }
        }
        rank
    }

    #[test]
    fn paper_running_example() {
        // Figure 3 of the paper.
        let input = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let tree = TournamentTree::new(&input, u64::MAX);
        let (rank, rounds) = tree.extract_all_ranks();
        assert_eq!(rank, vec![1, 1, 2, 1, 3, 1, 2, 3]);
        assert_eq!(rounds, 3);
    }

    #[test]
    fn empty_input() {
        let tree: TournamentTree<u64> = TournamentTree::new(&[], u64::MAX);
        assert!(tree.is_empty());
        let (rank, rounds) = tree.extract_all_ranks();
        assert!(rank.is_empty());
        assert_eq!(rounds, 0);
    }

    #[test]
    fn single_element() {
        let tree = TournamentTree::new(&[7u64], u64::MAX);
        let (rank, rounds) = tree.extract_all_ranks();
        assert_eq!(rank, vec![1]);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn strictly_increasing_takes_n_rounds() {
        let a: Vec<u64> = (1..=50).collect();
        let tree = TournamentTree::new(&a, u64::MAX);
        let (rank, rounds) = tree.extract_all_ranks();
        assert_eq!(rounds, 50);
        assert_eq!(rank, (1..=50u32).collect::<Vec<_>>());
    }

    #[test]
    fn strictly_decreasing_takes_one_round() {
        let a: Vec<u64> = (1..=1000).rev().collect();
        let tree = TournamentTree::new(&a, u64::MAX);
        let mut rank = vec![0u32; a.len()];
        let mut tree = tree;
        let stats = tree.process_frontier(1, &mut rank);
        assert_eq!(stats.frontier_size, 1000);
        assert!(tree.is_empty());
        assert!(rank.iter().all(|&r| r == 1));
    }

    #[test]
    fn duplicates_share_rank_one_when_non_increasing() {
        // Equal elements: A_i <= A_j counts as prefix-min, so equal runs all
        // get rank 1 in a constant sequence.
        let a = vec![5u64; 64];
        let tree = TournamentTree::new(&a, u64::MAX);
        let (rank, rounds) = tree.extract_all_ranks();
        assert_eq!(rounds, 1);
        assert!(rank.iter().all(|&r| r == 1));
    }

    #[test]
    fn ranks_match_oracle_on_random_inputs() {
        let mut state = 0x243F6A8885A308D3u64;
        for trial in 0..20 {
            let n = 1 + (trial * 137) % 3000;
            let a: Vec<u64> = (0..n)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    state >> 40
                })
                .collect();
            let tree = TournamentTree::new(&a, u64::MAX);
            let (rank, _rounds) = tree.extract_all_ranks();
            assert_eq!(rank, oracle_ranks(&a), "mismatch on trial {trial} (n={n})");
        }
    }

    #[test]
    fn collect_returns_sorted_indices_with_nonincreasing_values() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let a: Vec<u64> = (0..5000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 10_000
            })
            .collect();
        let mut tree = TournamentTree::new(&a, u64::MAX);
        let mut rank = vec![0u32; a.len()];
        let mut round = 0;
        let mut total = 0usize;
        while !tree.is_empty() {
            round += 1;
            let (stats, frontier) = tree.process_frontier_collect(round, &mut rank);
            assert_eq!(stats.frontier_size, frontier.len());
            total += frontier.len();
            // Indices strictly increasing.
            assert!(frontier.windows(2).all(|w| w[0] < w[1]));
            // Lemma A.2: values along a frontier are non-increasing.
            assert!(frontier.windows(2).all(|w| a[w[0]] >= a[w[1]]));
            // All extracted objects carry this round's rank.
            assert!(frontier.iter().all(|&i| rank[i] == round));
        }
        assert_eq!(total, a.len());
    }

    #[test]
    fn leaf_accessor_reflects_removals() {
        let a = [9u64, 2, 7, 4];
        let mut tree = TournamentTree::new(&a, u64::MAX);
        for (i, &v) in a.iter().enumerate() {
            assert_eq!(tree.leaf(i), v);
        }
        let mut rank = vec![0u32; 4];
        tree.process_frontier(1, &mut rank);
        // Prefix-min objects of [9,2,7,4] are 9 and 2.
        assert_eq!(tree.leaf(0), u64::MAX);
        assert_eq!(tree.leaf(1), u64::MAX);
        assert_eq!(tree.leaf(2), 7);
        assert_eq!(tree.leaf(3), 4);
        assert_eq!(tree.remaining(), 2);
        assert_eq!(tree.min(), Some(4));
    }

    #[test]
    fn nodes_visited_is_positive_and_bounded_by_tree_size() {
        let a: Vec<u64> = (0..10_000u64).map(|i| (i * 48271) % 65_536).collect();
        let mut tree = TournamentTree::new(&a, u64::MAX);
        let mut rank = vec![0u32; a.len()];
        let stats = tree.process_frontier(1, &mut rank);
        assert!(stats.nodes_visited >= stats.frontier_size);
        assert!(stats.nodes_visited < 2 * a.len());
    }

    #[test]
    #[should_panic(expected = "strictly smaller than the +infinity sentinel")]
    fn sentinel_collision_is_rejected() {
        TournamentTree::new(&[1u64, u64::MAX], u64::MAX);
    }

    #[test]
    #[should_panic(expected = "rank array length mismatch")]
    fn rank_length_mismatch_is_rejected() {
        let mut tree = TournamentTree::new(&[1u64, 2], u64::MAX);
        let mut rank = vec![0u32; 1];
        tree.process_frontier(1, &mut rank);
    }

    #[test]
    fn work_bound_scales_like_n_log_k() {
        // Theorem 3.2 sanity check: for a sequence with small LIS length k,
        // total visited nodes should be far below n log2(n).
        let n: usize = 1 << 14;
        let k = 4usize;
        // k descending blocks => LIS length k.
        let a: Vec<u64> = (0..n)
            .map(|i| {
                let block = i / (n / k);
                (block as u64) * 1_000_000 + (n as u64 - i as u64)
            })
            .collect();
        let mut tree = TournamentTree::new(&a, u64::MAX);
        let mut rank = vec![0u32; n];
        let mut visited = 0usize;
        let mut round = 0;
        while !tree.is_empty() {
            round += 1;
            visited += tree.process_frontier(round, &mut rank).nodes_visited;
        }
        assert_eq!(round as usize, k);
        let n_log_n = n * (usize::BITS - n.leading_zeros()) as usize;
        assert!(
            visited < n_log_n,
            "visited {visited} should be well below n·log n = {n_log_n} for k = {k}"
        );
    }
}
