//! WLIS oracle property tests: differential-test `wlis_rangetree` and
//! `wlis_rangeveb` against the sequential `O(n²)` dp reference
//! (`plis_baselines::wlis_dp_quadratic`) on the paper's input patterns
//! (range, line, permutation) plus adversarial shapes, with random weights,
//! at 1 thread and at the full pool — the two runs must also be
//! bit-identical to each other, which pins the parallel frontier path to
//! the sequential semantics.
//!
//! The pool size for the "parallel" leg honors `PLIS_BENCH_THREADS` (the
//! CI pin) and falls back to the hardware parallelism, but is always at
//! least 2 so single-core machines still exercise the splitting scheduler
//! (the vendored rayon spawns scoped threads independently of core count).

use plis_baselines::wlis_dp_quadratic;
use plis_lis::{wlis_rangetree, wlis_rangeveb, wlis_with, DominantMaxStore};
use plis_workloads::{
    adversarial, line_pattern, random_permutation, range_pattern, uniform_weights,
};
use proptest::prelude::*;

/// Pool size for the parallel leg: `PLIS_BENCH_THREADS`, else the hardware
/// parallelism, floored at 2 so the scheduler actually splits.
fn parallel_threads() -> usize {
    std::env::var("PLIS_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .max(2)
}

fn on_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(f)
}

/// Run both backends at 1 thread and at the full pool; all four results
/// must equal the quadratic oracle.
fn check_against_oracle(values: &[u64], weights: &[u64], label: &str) {
    let want = wlis_dp_quadratic(values, weights);
    for threads in [1, parallel_threads()] {
        let (tree, veb) =
            on_pool(threads, || (wlis_rangetree(values, weights), wlis_rangeveb(values, weights)));
        assert_eq!(tree, want, "range-tree backend, {label}, {threads} thread(s)");
        assert_eq!(veb, want, "range-vEB backend, {label}, {threads} thread(s)");
    }
}

#[test]
fn range_pattern_matches_oracle() {
    for (trial, &k_prime) in [2u64, 5, 23, 120].iter().enumerate() {
        let n = 220 + trial * 90;
        let values = range_pattern(n, k_prime, 0xA11CE + trial as u64);
        let weights = uniform_weights(n, 40, 0xBEE5 + trial as u64);
        check_against_oracle(&values, &weights, &format!("range k'={k_prime}"));
    }
}

#[test]
fn line_pattern_matches_oracle() {
    for (trial, &noise) in [1u64, 8, 64, 700].iter().enumerate() {
        let n = 200 + trial * 80;
        let values = line_pattern(n, 1, noise, 0x11E + trial as u64);
        let weights = uniform_weights(n, 25, 0x5EED + trial as u64);
        check_against_oracle(&values, &weights, &format!("line noise={noise}"));
    }
}

#[test]
fn permutation_matches_oracle() {
    for trial in 0..4u64 {
        let n = 180 + (trial as usize) * 110;
        let values = random_permutation(n, 0xFACE + trial);
        let weights = uniform_weights(n, 1000, 0xD00D + trial);
        check_against_oracle(&values, &weights, &format!("permutation trial {trial}"));
    }
}

#[test]
fn adversarial_patterns_match_oracle() {
    let n = 400;
    let cases: Vec<(&str, Vec<u64>)> = vec![
        ("increasing", adversarial::increasing(n)),
        ("decreasing", adversarial::decreasing(n)),
        ("constant", adversarial::constant(n, 7)),
        ("sawtooth-8", adversarial::sawtooth(n, 8)),
        ("sawtooth-97", adversarial::sawtooth(n, 97)),
    ];
    for (label, values) in cases {
        let weights = uniform_weights(values.len(), 60, 0xCAFE);
        check_against_oracle(&values, &weights, label);
        // Unit weights must reduce to plain LIS dp values.
        let unit = vec![1u64; values.len()];
        check_against_oracle(&values, &unit, &format!("{label} (unit weights)"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fully random inputs and weights, both backends, both thread counts.
    #[test]
    fn random_inputs_match_oracle(
        values in proptest::collection::vec(0u64..500, 1..220),
        weight_seed in 0u64..1_000_000,
        max_weight in 1u64..1_000,
    ) {
        let weights = uniform_weights(values.len(), max_weight, weight_seed);
        let want = wlis_dp_quadratic(&values, &weights);
        for threads in [1, parallel_threads()] {
            let (tree, veb) = on_pool(threads, || {
                (wlis_rangetree(&values, &weights), wlis_rangeveb(&values, &weights))
            });
            prop_assert_eq!(&tree, &want, "range-tree, {} thread(s)", threads);
            prop_assert_eq!(&veb, &want, "range-vEB, {} thread(s)", threads);
        }
    }
}

/// A dominant-max backend that wraps the range tree and records which
/// threads served frontier queries: proves the WLIS frontier loop really
/// executes through the parallel path (acceptance criterion), not the old
/// sequential `par_iter` fallback.
struct ThreadProbe {
    inner: plis_rangetree::RangeMaxTree,
    seen: std::sync::Mutex<std::collections::HashSet<std::thread::ThreadId>>,
}

impl DominantMaxStore for ThreadProbe {
    fn build(points: &[(u64, u64)]) -> Self {
        ThreadProbe {
            inner: <plis_rangetree::RangeMaxTree as DominantMaxStore>::build(points),
            seen: std::sync::Mutex::new(std::collections::HashSet::new()),
        }
    }
    fn dominant_max(&self, qx: u64, qy: u64) -> u64 {
        self.seen.lock().unwrap().insert(std::thread::current().id());
        self.inner.dominant_max(qx, qy)
    }
    fn update_batch(&mut self, updates: &[(u64, u64, u64)]) {
        DominantMaxStore::update_batch(&mut self.inner, updates);
    }
    fn name() -> &'static str {
        "thread-probe"
    }
}

static PROBE_SEEN: std::sync::Mutex<Option<usize>> = std::sync::Mutex::new(None);

struct CountingProbe(ThreadProbe);

impl DominantMaxStore for CountingProbe {
    fn build(points: &[(u64, u64)]) -> Self {
        CountingProbe(ThreadProbe::build(points))
    }
    fn dominant_max(&self, qx: u64, qy: u64) -> u64 {
        self.0.dominant_max(qx, qy)
    }
    fn update_batch(&mut self, updates: &[(u64, u64, u64)]) {
        self.0.update_batch(updates);
        // Publish the running distinct-thread count after every frontier.
        let seen = self.0.seen.lock().unwrap().len();
        let mut slot = PROBE_SEEN.lock().unwrap();
        let best = slot.unwrap_or(0);
        *slot = Some(best.max(seen));
    }
    fn name() -> &'static str {
        "counting-probe"
    }
}

#[test]
fn frontier_queries_use_multiple_threads_and_stay_exact() {
    // A strictly decreasing sequence puts all n objects in one frontier, so
    // the dominant-max queries form a single large parallel map.
    let n = 60_000usize;
    let values = adversarial::decreasing(n);
    let weights = uniform_weights(n, 9, 0x7EA5);

    let seq = on_pool(1, || wlis_rangetree(&values, &weights));
    let mut best_threads = 1usize;
    // The helper-thread budget is process-global; retry a few times rather
    // than flaking when another test transiently holds every slot.
    for _attempt in 0..20 {
        *PROBE_SEEN.lock().unwrap() = Some(0);
        let par = on_pool(parallel_threads().max(4), || {
            wlis_with::<u64, CountingProbe>(&values, &weights)
        });
        assert_eq!(par, seq, "parallel frontier result must be bit-identical to 1-thread run");
        best_threads = best_threads.max(PROBE_SEEN.lock().unwrap().unwrap_or(1));
        if best_threads > 1 {
            break;
        }
    }
    assert!(
        best_threads > 1,
        "expected >1 worker thread through the WLIS frontier queries (observed {best_threads})"
    );
}
