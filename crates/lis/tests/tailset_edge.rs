//! Edge-case coverage for the [`TailSet`] backends — the probes a query
//! plane leans on hardest: empty sessions (no tails at all), single-element
//! sessions, and duplicate-heavy streams whose tail arrays churn in place.
//!
//! The harness simulates the patience loop exactly as a streaming session
//! drives its mirror (insert on extension, delete+insert on displacement),
//! keeps the canonical `tails` array next to every store, and cross-checks
//! all three built-in stores (`VebTailSet`, `SortedVecTailSet`,
//! `AnyTailSet` in both configurations) probe-for-probe after every
//! element.

use plis_lis::tailset::{AnyTailSet, SortedVecTailSet, TailSet, VebTailSet};

/// The patience step: update `tails` for `x` and mirror the delta into
/// every store.
fn patience_step(tails: &mut Vec<u64>, stores: &mut [&mut dyn DynTailSet], x: u64) {
    let pos = tails.partition_point(|&t| t < x);
    if pos == tails.len() {
        tails.push(x);
        for store in stores.iter_mut() {
            store.insert_dyn(x);
        }
    } else if x < tails[pos] {
        let displaced = std::mem::replace(&mut tails[pos], x);
        for store in stores.iter_mut() {
            store.delete_dyn(displaced);
            store.insert_dyn(x);
        }
    }
}

/// Object-safe shim over [`TailSet`] so one driver exercises every store
/// (the trait itself is not object safe: `Clone` supertrait).
trait DynTailSet {
    fn insert_dyn(&mut self, key: u64);
    fn delete_dyn(&mut self, key: u64);
    fn pred_dyn(&self, tails: &[u64], x: u64) -> Option<u64>;
    fn succ_dyn(&self, tails: &[u64], x: u64) -> Option<u64>;
    fn len_dyn(&self, tails: &[u64]) -> usize;
    fn keys_dyn(&self, tails: &[u64]) -> Vec<u64>;
    fn check_dyn(&self, tails: &[u64]);
    fn name_dyn(&self) -> &'static str;
}

impl<S: TailSet> DynTailSet for S {
    fn insert_dyn(&mut self, key: u64) {
        self.insert(key);
    }
    fn delete_dyn(&mut self, key: u64) {
        self.delete(key);
    }
    fn pred_dyn(&self, tails: &[u64], x: u64) -> Option<u64> {
        self.pred(tails, x)
    }
    fn succ_dyn(&self, tails: &[u64], x: u64) -> Option<u64> {
        self.succ(tails, x)
    }
    fn len_dyn(&self, tails: &[u64]) -> usize {
        self.len(tails)
    }
    fn keys_dyn(&self, tails: &[u64]) -> Vec<u64> {
        self.collect_keys(tails)
    }
    fn check_dyn(&self, tails: &[u64]) {
        self.check_invariants(tails);
    }
    fn name_dyn(&self) -> &'static str {
        self.name()
    }
}

/// Probe every store against the stateless reference on a spread of keys
/// including both universe boundaries.
fn cross_probe(stores: &[&mut dyn DynTailSet], tails: &[u64], universe: u64) {
    let reference = SortedVecTailSet;
    let probes: Vec<u64> = (0..universe)
        .step_by((universe as usize / 16).max(1))
        .chain([0, 1, universe - 1, universe, universe + 1, u64::MAX])
        .collect();
    for store in stores {
        store.check_dyn(tails);
        assert_eq!(store.len_dyn(tails), tails.len(), "{}", store.name_dyn());
        assert_eq!(store.keys_dyn(tails), tails, "{}", store.name_dyn());
        for &p in &probes {
            assert_eq!(
                store.pred_dyn(tails, p),
                reference.pred(tails, p),
                "{} pred {p}",
                store.name_dyn()
            );
            assert_eq!(
                store.succ_dyn(tails, p),
                reference.succ(tails, p),
                "{} succ {p}",
                store.name_dyn()
            );
        }
    }
}

/// Drive `input` through the patience loop over all four store
/// configurations, cross-probing after every element.
fn drive(input: &[u64], universe: u64) {
    let mut veb = VebTailSet::new(universe);
    let mut any_veb = AnyTailSet::veb(universe);
    let mut any_vec = AnyTailSet::sorted_vec();
    let mut plain_vec = SortedVecTailSet;
    let mut tails: Vec<u64> = Vec::new();
    {
        let mut stores: [&mut dyn DynTailSet; 4] =
            [&mut veb, &mut any_veb, &mut any_vec, &mut plain_vec];
        // Empty-session probes come first: no tails, every query answers None/0.
        cross_probe(&stores, &tails, universe);
        for &x in input {
            patience_step(&mut tails, &mut stores, x);
            cross_probe(&stores, &tails, universe);
        }
    }
    assert_eq!(veb.tree().len(), tails.len(), "vEB mirror size");
}

#[test]
fn empty_session_probes_answer_none() {
    for universe in [1u64, 2, 16, 1 << 12] {
        let veb = VebTailSet::new(universe);
        let any = AnyTailSet::veb(universe);
        let vec_store = AnyTailSet::sorted_vec();
        for probe in [0u64, universe / 2, universe.saturating_sub(1), universe, u64::MAX] {
            assert_eq!(veb.pred(&[], probe), None, "veb pred {probe} (U = {universe})");
            assert_eq!(veb.succ(&[], probe), None, "veb succ {probe} (U = {universe})");
            assert_eq!(any.pred(&[], probe), None);
            assert_eq!(any.succ(&[], probe), None);
            assert_eq!(vec_store.pred(&[], probe), None);
            assert_eq!(vec_store.succ(&[], probe), None);
        }
        assert_eq!(veb.len(&[]), 0);
        assert!(veb.collect_keys(&[]).is_empty());
        assert!(vec_store.collect_keys(&[]).is_empty());
        veb.check_invariants(&[]);
        vec_store.check_invariants(&[]);
    }
}

#[test]
fn single_element_sessions_answer_from_one_tail() {
    // One tail at every interesting position of a small universe,
    // including both ends.
    for universe in [1u64, 2, 7, 64] {
        for key in [0, universe / 2, universe - 1] {
            let tails = [key];
            let mut veb = VebTailSet::new(universe);
            veb.insert(key);
            let mut any = AnyTailSet::veb(universe);
            any.insert(key);
            let reference = SortedVecTailSet;
            for probe in [0u64, key, key + 1, universe - 1, universe, u64::MAX] {
                assert_eq!(
                    veb.pred(&tails, probe),
                    reference.pred(&tails, probe),
                    "U = {universe}, key {key}, pred {probe}"
                );
                assert_eq!(
                    veb.succ(&tails, probe),
                    reference.succ(&tails, probe),
                    "U = {universe}, key {key}, succ {probe}"
                );
                assert_eq!(any.pred(&tails, probe), reference.pred(&tails, probe));
                assert_eq!(any.succ(&tails, probe), reference.succ(&tails, probe));
            }
            // The only tail is its own successor-at and has no strict
            // predecessor.
            assert_eq!(veb.succ(&tails, key), Some(key));
            assert_eq!(veb.pred(&tails, key), None);
            veb.check_invariants(&tails);
        }
    }
}

#[test]
fn duplicate_heavy_streams_churn_in_place() {
    // Two distinct values over 500 elements: the tail array never exceeds
    // two entries but every repeated value exercises the displacement
    // path (delete + insert of the same key is a no-op the mirror must
    // absorb cleanly).
    let universe = 32u64;
    let input: Vec<u64> = (0..500u64).map(|i| [7, 7, 19, 7, 19][(i % 5) as usize]).collect();
    drive(&input, universe);
}

#[test]
fn constant_stream_keeps_one_tail() {
    drive(&vec![5u64; 300], 16);
}

#[test]
fn duplicate_blocks_with_interleaved_extremes() {
    // Blocks of duplicates touching both universe boundaries: inserting 0
    // and U-1 repeatedly stresses the vEB min/max bookkeeping.
    let universe = 1u64 << 10;
    let mut input = Vec::new();
    for _ in 0..40 {
        input.extend_from_slice(&[0, 0, universe - 1, universe - 1, 512, 512, 0, universe - 1]);
    }
    drive(&input, universe);
}

#[test]
fn random_duplicate_heavy_stream_matches_reference() {
    // Values drawn from a tiny range so nearly every element is a
    // duplicate; the mirror sees constant churn at the same handful of
    // keys.
    let universe = 8u64;
    let mut state = 0x1357_9BDFu64;
    let input: Vec<u64> = (0..600)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % universe
        })
        .collect();
    drive(&input, universe);
}
