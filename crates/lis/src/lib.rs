//! Work-efficient parallel LIS and weighted LIS — the core contribution of
//! "Parallel Longest Increasing Subsequence and van Emde Boas Trees"
//! (SPAA 2023).
//!
//! * [`lis_ranks`] / [`lis_ranks_u64`] — Algorithm 1: compute every object's
//!   *rank* (the length of the LIS ending at it, i.e. its `dp` value) with a
//!   parallel tournament tree.  `O(n log k)` work, `O(k log n)` span,
//!   `O(n)` space (Theorem 1.1).
//! * [`lis_length`] — just the LIS length `k`.
//! * [`lis_indices`] — an actual longest increasing subsequence, recovered
//!   from the ranks as in Appendix A.
//! * [`wlis_rangetree`] / [`wlis_rangeveb`] — Algorithm 2: weighted LIS on
//!   top of a dominant-max structure; the range-tree instantiation is the
//!   practical one (Theorem 4.1, `O(n log² n)` work), the Range-vEB
//!   instantiation the theoretical one (Theorem 1.2).
//!
//! # Quick start
//!
//! ```
//! let a = vec![52u64, 31, 45, 26, 61, 10, 39, 44];
//!
//! // dp values (Figure 2/3 of the paper) and the LIS length.
//! let (ranks, k) = plis_lis::lis_ranks_u64(&a);
//! assert_eq!(ranks, vec![1, 1, 2, 1, 3, 1, 2, 3]);
//! assert_eq!(k, 3);
//!
//! // An actual LIS.
//! let lis = plis_lis::lis_indices(&a);
//! assert_eq!(lis.len(), 3);
//! assert!(lis.windows(2).all(|w| w[0] < w[1] && a[w[0]] < a[w[1]]));
//!
//! // Weighted LIS with unit weights equals the LIS length.
//! let dp = plis_lis::wlis_rangetree(&a, &vec![1u64; a.len()]);
//! assert_eq!(dp.iter().max(), Some(&3));
//! ```

mod compress;
mod ranks;
mod reconstruct;
mod wlis;

pub use compress::compress_to_ranks;
pub use ranks::{lis_length, lis_ranks, lis_ranks_u64, lis_ranks_u64_with_stats, LisStats};
pub use reconstruct::{lis_indices, lis_indices_from_ranks};
pub use wlis::{wlis_rangetree, wlis_rangeveb, wlis_with, DominantMaxBackend};
