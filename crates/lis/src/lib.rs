//! Work-efficient parallel LIS and weighted LIS — the core contribution of
//! "Parallel Longest Increasing Subsequence and van Emde Boas Trees"
//! (SPAA 2023).
//!
//! * [`lis_ranks`] / [`lis_ranks_u64`] — Algorithm 1: compute every object's
//!   *rank* (the length of the LIS ending at it, i.e. its `dp` value) with a
//!   parallel tournament tree.  `O(n log k)` work, `O(k log n)` span,
//!   `O(n)` space (Theorem 1.1).
//! * [`lis_length`] — just the LIS length `k`.
//! * [`lis_indices`] — an actual longest increasing subsequence, recovered
//!   from the ranks as in Appendix A.  [`lis_indices_from_frontiers`] and
//!   [`wlis_indices_from_scores`] expose the same reconstruction over the
//!   *streaming* representations (maintained per-rank index lists and
//!   maintained dp scores), which is how the `plis-engine` query plane
//!   serves live certificates.
//! * [`wlis_with`] — Algorithm 2: the single generic weighted-LIS driver
//!   over the [`DominantMaxStore`] trait; [`wlis_kind`] dispatches it
//!   through the [`DominantMaxKind`] factory, and [`wlis_rangetree`] /
//!   [`wlis_rangeveb`] pin the practical (Theorem 4.1, `O(n log² n)` work)
//!   and theoretical (Theorem 1.2) stores respectively.
//! * [`tailset`] — the [`TailSet`] trait: value-domain mirrors of patience
//!   tail arrays (vEB or stateless sorted-vec), consumed generically by the
//!   streaming sessions of `plis-engine`.
//!
//! # Quick start
//!
//! ```
//! let a = vec![52u64, 31, 45, 26, 61, 10, 39, 44];
//!
//! // dp values (Figure 2/3 of the paper) and the LIS length.
//! let (ranks, k) = plis_lis::lis_ranks_u64(&a);
//! assert_eq!(ranks, vec![1, 1, 2, 1, 3, 1, 2, 3]);
//! assert_eq!(k, 3);
//!
//! // An actual LIS.
//! let lis = plis_lis::lis_indices(&a);
//! assert_eq!(lis.len(), 3);
//! assert!(lis.windows(2).all(|w| w[0] < w[1] && a[w[0]] < a[w[1]]));
//!
//! // Weighted LIS with unit weights equals the LIS length.
//! let dp = plis_lis::wlis_rangetree(&a, &vec![1u64; a.len()]);
//! assert_eq!(dp.iter().max(), Some(&3));
//! ```

#![warn(missing_docs)]

mod compress;
mod ranks;
mod reconstruct;
pub mod tailset;
mod wlis;

pub use compress::compress_to_ranks;
pub use plis_primitives::DominantMaxStore;
pub use ranks::{lis_length, lis_ranks, lis_ranks_u64, lis_ranks_u64_with_stats, LisStats};
pub use reconstruct::{
    lis_indices, lis_indices_from_frontiers, lis_indices_from_ranks, wlis_indices_from_scores,
};
pub use tailset::{AnyTailSet, AutoTailSet, SortedVecTailSet, TailRoute, TailSet, VebTailSet};
pub use wlis::{
    wlis_kind, wlis_kind_stats, wlis_rangetree, wlis_rangeveb, wlis_with, wlis_with_stats,
    DominantMaxKind, AUTO_RANGEVEB_POINTS_THRESHOLD,
};
