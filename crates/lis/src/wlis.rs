//! Algorithm 2: the parallel weighted LIS algorithm.
//!
//! The dp recurrence (Equation 2) is
//! `dp[i] = w_i + max(0, max_{j<i, A_j<A_i} dp[j])`.
//! The phase-parallel driver first computes every object's rank with
//! Algorithm 1, groups the objects into frontiers by rank, and then
//! processes the frontiers in order: all dp values inside one frontier are
//! independent (their predecessors all have strictly smaller ranks), so they
//! are computed by parallel *dominant-max* queries and then written back to
//! the structure as a batch.
//!
//! The structure is pluggable through [`DominantMaxBackend`]:
//! [`wlis_rangetree`] uses the parallel range tree of `plis-rangetree`
//! (Theorem 4.1) and [`wlis_rangeveb`] the Range-vEB tree of `plis-rangeveb`
//! (Theorem 1.2).

use crate::compress::compress_to_ranks;
use plis_primitives::{group_by_rank, par_map_collect};
use std::sync::atomic::{AtomicU64, Ordering};

/// A dominant-max structure usable by the WLIS driver (the `RangeStruct` of
/// Algorithm 2): built once over the full point set, queried with strict 2D
/// dominance, updated frontier by frontier.
pub trait DominantMaxBackend: Sized + Sync {
    /// Build the structure over `points = (x, y)` pairs (scores start at 0).
    fn build(points: &[(u64, u64)]) -> Self;
    /// Maximum score among points with `x < qx` and `y < qy`, or 0.
    fn dominant_max(&self, qx: u64, qy: u64) -> u64;
    /// Set the scores of a batch of `(x, y, score)` entries.
    fn update_batch(&mut self, updates: &[(u64, u64, u64)]);
    /// Short human-readable name used by the benchmark reports.
    fn name() -> &'static str;
}

impl DominantMaxBackend for plis_rangetree::RangeMaxTree {
    fn build(points: &[(u64, u64)]) -> Self {
        let pts: Vec<plis_rangetree::Point2> =
            points.iter().map(|&(x, y)| plis_rangetree::Point2 { x, y }).collect();
        plis_rangetree::RangeMaxTree::new(&pts)
    }
    fn dominant_max(&self, qx: u64, qy: u64) -> u64 {
        plis_rangetree::RangeMaxTree::dominant_max(self, qx, qy)
    }
    fn update_batch(&mut self, updates: &[(u64, u64, u64)]) {
        let ups: Vec<plis_rangetree::ScoreUpdate> = updates
            .iter()
            .map(|&(x, y, score)| plis_rangetree::ScoreUpdate {
                point: plis_rangetree::Point2 { x, y },
                score,
            })
            .collect();
        plis_rangetree::RangeMaxTree::update_batch(self, &ups);
    }
    fn name() -> &'static str {
        "range-tree"
    }
}

impl DominantMaxBackend for plis_rangeveb::RangeVeb {
    fn build(points: &[(u64, u64)]) -> Self {
        let pts: Vec<plis_rangeveb::Point2> =
            points.iter().map(|&(x, y)| plis_rangeveb::Point2 { x, y }).collect();
        plis_rangeveb::RangeVeb::new(&pts)
    }
    fn dominant_max(&self, qx: u64, qy: u64) -> u64 {
        plis_rangeveb::RangeVeb::dominant_max(self, qx, qy)
    }
    fn update_batch(&mut self, updates: &[(u64, u64, u64)]) {
        let ups: Vec<plis_rangeveb::ScoreUpdate> = updates
            .iter()
            .map(|&(x, y, score)| plis_rangeveb::ScoreUpdate {
                point: plis_rangeveb::Point2 { x, y },
                score,
            })
            .collect();
        plis_rangeveb::RangeVeb::update_batch(self, &ups);
    }
    fn name() -> &'static str {
        "range-veb"
    }
}

/// Weighted LIS over an arbitrary comparable element type using the chosen
/// dominant-max backend.  Returns the dp values of every object
/// (`dp[i] = w_i + max(0, max_{j<i, A_j<A_i} dp[j])`).
///
/// # Panics
/// Panics if `values` and `weights` have different lengths.
pub fn wlis_with<T: Ord + Sync, S: DominantMaxBackend>(values: &[T], weights: &[u64]) -> Vec<u64> {
    assert_eq!(values.len(), weights.len(), "one weight per value is required");
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    // Line 11 of Alg. 2: ranks via Alg. 1, then group indices into frontiers.
    let (ranks, k) = crate::lis_ranks(values);
    let rank_keys: Vec<usize> = ranks.iter().map(|&r| (r - 1) as usize).collect();
    let frontiers = group_by_rank(&rank_keys, k as usize);

    // Lines 12–13: one 2D point per object, x = value rank, y = index.
    let xranks = compress_to_ranks(values);
    let points: Vec<(u64, u64)> = (0..n).map(|i| (xranks[i], i as u64)).collect();
    let mut structure = S::build(&points);

    // Lines 14–18: process the frontiers in rank order.
    let dp: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    for frontier in &frontiers {
        // Queries of one frontier are independent: all dependencies have
        // strictly smaller ranks and are already in the structure.  The
        // join-splitting parallel map keeps the update list in frontier
        // order, so the batch write-back is identical for any thread count.
        let updates: Vec<(u64, u64, u64)> = par_map_collect(frontier.len(), |idx| {
            let j = frontier[idx];
            let best = structure.dominant_max(xranks[j], j as u64);
            let value = best + weights[j];
            dp[j].store(value, Ordering::Relaxed);
            (xranks[j], j as u64, value)
        });
        structure.update_batch(&updates);
    }
    dp.into_iter().map(AtomicU64::into_inner).collect()
}

/// Weighted LIS using the parallel range tree (the practical configuration,
/// Theorem 4.1: `O(n log² n)` work, `O(k log² n)` span).
pub fn wlis_rangetree<T: Ord + Sync>(values: &[T], weights: &[u64]) -> Vec<u64> {
    wlis_with::<T, plis_rangetree::RangeMaxTree>(values, weights)
}

/// Weighted LIS using the Range-vEB tree (the theoretical configuration,
/// Theorem 1.2).
pub fn wlis_rangeveb<T: Ord + Sync>(values: &[T], weights: &[u64]) -> Vec<u64> {
    wlis_with::<T, plis_rangeveb::RangeVeb>(values, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) oracle for the weighted dp recurrence.
    fn oracle_wdp(a: &[u64], w: &[u64]) -> Vec<u64> {
        let n = a.len();
        let mut dp = vec![0u64; n];
        for i in 0..n {
            let mut best = 0;
            for j in 0..i {
                if a[j] < a[i] {
                    best = best.max(dp[j]);
                }
            }
            dp[i] = best + w[i];
        }
        dp
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn empty_input() {
        assert!(wlis_rangetree::<u64>(&[], &[]).is_empty());
        assert!(wlis_rangeveb::<u64>(&[], &[]).is_empty());
    }

    #[test]
    fn unit_weights_reduce_to_lis_ranks() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let w = vec![1u64; a.len()];
        let expect: Vec<u64> = vec![1, 1, 2, 1, 3, 1, 2, 3];
        assert_eq!(wlis_rangetree(&a, &w), expect);
        assert_eq!(wlis_rangeveb(&a, &w), expect);
    }

    #[test]
    fn weighted_example_prefers_heavy_objects() {
        // Values increasing, but a single huge weight dominates.
        let a = [1u64, 2, 3, 4];
        let w = [1u64, 100, 1, 1];
        let dp = wlis_rangetree(&a, &w);
        assert_eq!(dp, vec![1, 101, 102, 103]);
    }

    #[test]
    fn duplicates_do_not_chain() {
        let a = [5u64, 5, 5];
        let w = [2u64, 3, 4];
        assert_eq!(wlis_rangetree(&a, &w), vec![2, 3, 4]);
        assert_eq!(wlis_rangeveb(&a, &w), vec![2, 3, 4]);
    }

    #[test]
    fn both_backends_match_the_oracle_on_random_inputs() {
        let mut state = 0x41C64E6D12345u64;
        for trial in 0..8 {
            let n = 150 + trial * 60;
            let a: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 300).collect();
            let w: Vec<u64> = (0..n).map(|_| 1 + xorshift(&mut state) % 50).collect();
            let want = oracle_wdp(&a, &w);
            assert_eq!(wlis_rangetree(&a, &w), want, "range tree, trial {trial}");
            assert_eq!(wlis_rangeveb(&a, &w), want, "range vEB, trial {trial}");
        }
    }

    #[test]
    #[should_panic(expected = "one weight per value")]
    fn mismatched_lengths_panic() {
        wlis_rangetree(&[1u64, 2], &[1u64]);
    }
}
