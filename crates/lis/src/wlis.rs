//! Algorithm 2: the parallel weighted LIS algorithm.
//!
//! The dp recurrence (Equation 2) is
//! `dp[i] = w_i + max(0, max_{j<i, A_j<A_i} dp[j])`.
//! The phase-parallel driver first computes every object's rank with
//! Algorithm 1, groups the objects into frontiers by rank, and then
//! processes the frontiers in order: all dp values inside one frontier are
//! independent (their predecessors all have strictly smaller ranks), so they
//! are computed by parallel *dominant-max* queries and then written back to
//! the structure as a batch.
//!
//! There is exactly **one** driver, [`wlis_with`], generic over the
//! [`DominantMaxStore`] trait of `plis-primitives`; the concrete structures
//! implement that trait in their own crates (`plis-rangetree`, Theorem 4.1;
//! `plis-rangeveb`, Theorem 1.2).  [`DominantMaxKind`] is the runtime
//! selector — a zero-cost enum factory that monomorphizes the driver per
//! backend — and [`wlis_kind`] dispatches through it; [`wlis_rangetree`] /
//! [`wlis_rangeveb`] are the fixed-backend conveniences.

use crate::compress::compress_to_ranks;
use plis_primitives::{group_by_rank, par_map_collect, DomMaxStats, DominantMaxStore};
use std::sync::atomic::{AtomicU64, Ordering};

/// Point count at which [`DominantMaxKind::Auto`] switches from the range
/// tree to the Range-vEB tree.  The vEB store's asymptotic edge
/// (`O(n log n log log n)` vs `O(n log² n)` work) is swamped by its batch
/// write-back constants at practical sizes — measured on the reference
/// container the range tree wins at every point count up to 2^18, with the
/// ratio narrowing from ~2x to ~1.4x — so the crossover is placed where
/// the extrapolated ratio reaches parity.  Below it (i.e. at every size
/// the streaming engine's `frontier ++ batch` runs actually reach) Auto
/// routes around the Range-vEB write-back entirely.
pub const AUTO_RANGEVEB_POINTS_THRESHOLD: usize = 1 << 22;

/// Which dominant-max store backs a weighted-LIS run — the runtime-facing
/// factory over the open [`DominantMaxStore`] trait (mirroring how the
/// engine's `Backend` enum fronts the `TailSet` trait).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominantMaxKind {
    /// Pick per run from the input size: the range tree below
    /// [`AUTO_RANGEVEB_POINTS_THRESHOLD`] points, the Range-vEB tree at or
    /// above it.
    Auto,
    /// Parallel range tree (Theorem 4.1): `O(n log² n)` work — the
    /// configuration the paper's own evaluation uses.
    RangeTree,
    /// Range-vEB tree (Theorem 1.2): the theoretically stronger
    /// `O(n log n log log n)` work bound.
    RangeVeb,
}

impl DominantMaxKind {
    /// Resolve [`DominantMaxKind::Auto`] to a concrete backend without a
    /// size in hand — the range tree, the practical configuration.
    /// Size-aware callers should prefer [`DominantMaxKind::resolve_for`].
    pub fn resolve(self) -> DominantMaxKind {
        self.resolve_for(0)
    }

    /// Resolve [`DominantMaxKind::Auto`] to a concrete backend for a run
    /// over `points` points (see [`AUTO_RANGEVEB_POINTS_THRESHOLD`]).
    /// Concrete kinds return themselves.  A pure function of `points`, so
    /// routing decisions are deterministic across thread counts.
    pub fn resolve_for(self, points: usize) -> DominantMaxKind {
        match self {
            DominantMaxKind::Auto => {
                if points >= AUTO_RANGEVEB_POINTS_THRESHOLD {
                    DominantMaxKind::RangeVeb
                } else {
                    DominantMaxKind::RangeTree
                }
            }
            other => other,
        }
    }

    /// Short human-readable backend name; [`DominantMaxKind::Auto`] names
    /// itself (its concrete store varies per run).
    pub fn name(self) -> &'static str {
        match self {
            DominantMaxKind::Auto => "auto",
            DominantMaxKind::RangeTree => {
                <plis_rangetree::RangeMaxTree as DominantMaxStore>::name()
            }
            DominantMaxKind::RangeVeb => <plis_rangeveb::RangeVeb as DominantMaxStore>::name(),
        }
    }
}

/// Weighted LIS over an arbitrary comparable element type using the chosen
/// dominant-max store.  Returns the dp values of every object
/// (`dp[i] = w_i + max(0, max_{j<i, A_j<A_i} dp[j])`).
///
/// This is the only Algorithm-2 driver in the workspace: every backend and
/// every caller (offline, streaming engine, probes in the test suites) goes
/// through this function.
///
/// # Panics
/// Panics if `values` and `weights` have different lengths.
pub fn wlis_with<T: Ord + Sync, S: DominantMaxStore>(values: &[T], weights: &[u64]) -> Vec<u64> {
    wlis_with_stats::<T, S>(values, weights).0
}

/// [`wlis_with`] plus the store's cumulative [`DomMaxStats`] — the hook the
/// telemetry plane uses, since the store is built and dropped inside the
/// driver.  The stats are purely observational: the returned dp vector is
/// identical to [`wlis_with`]'s.
///
/// # Panics
/// Panics if `values` and `weights` have different lengths.
pub fn wlis_with_stats<T: Ord + Sync, S: DominantMaxStore>(
    values: &[T],
    weights: &[u64],
) -> (Vec<u64>, DomMaxStats) {
    assert_eq!(values.len(), weights.len(), "one weight per value is required");
    let n = values.len();
    if n == 0 {
        return (Vec::new(), DomMaxStats::default());
    }
    // Line 11 of Alg. 2: ranks via Alg. 1, then group indices into frontiers.
    let (ranks, k) = crate::lis_ranks(values);
    let rank_keys: Vec<usize> = ranks.iter().map(|&r| (r - 1) as usize).collect();
    let frontiers = group_by_rank(&rank_keys, k as usize);

    // Lines 12–13: one 2D point per object, x = value rank, y = index.
    let xranks = compress_to_ranks(values);
    let points: Vec<(u64, u64)> = (0..n).map(|i| (xranks[i], i as u64)).collect();
    let mut structure = S::build(&points);

    // Lines 14–18: process the frontiers in rank order.
    let dp: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    for frontier in &frontiers {
        // Queries of one frontier are independent: all dependencies have
        // strictly smaller ranks and are already in the structure.  The
        // join-splitting parallel map keeps the update list in frontier
        // order, so the batch write-back is identical for any thread count.
        let updates: Vec<(u64, u64, u64)> = par_map_collect(frontier.len(), |idx| {
            let j = frontier[idx];
            let best = structure.dominant_max(xranks[j], j as u64);
            let value = best + weights[j];
            dp[j].store(value, Ordering::Relaxed);
            (xranks[j], j as u64, value)
        });
        structure.update_batch(&updates);
    }
    let stats = structure.stats();
    (dp.into_iter().map(AtomicU64::into_inner).collect(), stats)
}

/// Weighted LIS with the backend chosen at runtime by [`DominantMaxKind`]
/// (enum-dispatch into the generic driver, one monomorphization per store).
pub fn wlis_kind<T: Ord + Sync>(kind: DominantMaxKind, values: &[T], weights: &[u64]) -> Vec<u64> {
    wlis_kind_stats(kind, values, weights).0
}

/// [`wlis_kind`] plus the store's cumulative [`DomMaxStats`] (see
/// [`wlis_with_stats`]).
pub fn wlis_kind_stats<T: Ord + Sync>(
    kind: DominantMaxKind,
    values: &[T],
    weights: &[u64],
) -> (Vec<u64>, DomMaxStats) {
    match kind.resolve_for(values.len()) {
        DominantMaxKind::RangeTree => {
            wlis_with_stats::<T, plis_rangetree::RangeMaxTree>(values, weights)
        }
        DominantMaxKind::RangeVeb => wlis_with_stats::<T, plis_rangeveb::RangeVeb>(values, weights),
        DominantMaxKind::Auto => unreachable!("resolve_for() never returns Auto"),
    }
}

/// Weighted LIS using the parallel range tree (the practical configuration,
/// Theorem 4.1: `O(n log² n)` work, `O(k log² n)` span).
pub fn wlis_rangetree<T: Ord + Sync>(values: &[T], weights: &[u64]) -> Vec<u64> {
    wlis_with::<T, plis_rangetree::RangeMaxTree>(values, weights)
}

/// Weighted LIS using the Range-vEB tree (the theoretical configuration,
/// Theorem 1.2).
pub fn wlis_rangeveb<T: Ord + Sync>(values: &[T], weights: &[u64]) -> Vec<u64> {
    wlis_with::<T, plis_rangeveb::RangeVeb>(values, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) oracle for the weighted dp recurrence.
    fn oracle_wdp(a: &[u64], w: &[u64]) -> Vec<u64> {
        let n = a.len();
        let mut dp = vec![0u64; n];
        for i in 0..n {
            let mut best = 0;
            for j in 0..i {
                if a[j] < a[i] {
                    best = best.max(dp[j]);
                }
            }
            dp[i] = best + w[i];
        }
        dp
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn empty_input() {
        assert!(wlis_rangetree::<u64>(&[], &[]).is_empty());
        assert!(wlis_rangeveb::<u64>(&[], &[]).is_empty());
    }

    #[test]
    fn unit_weights_reduce_to_lis_ranks() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let w = vec![1u64; a.len()];
        let expect: Vec<u64> = vec![1, 1, 2, 1, 3, 1, 2, 3];
        assert_eq!(wlis_rangetree(&a, &w), expect);
        assert_eq!(wlis_rangeveb(&a, &w), expect);
    }

    #[test]
    fn weighted_example_prefers_heavy_objects() {
        // Values increasing, but a single huge weight dominates.
        let a = [1u64, 2, 3, 4];
        let w = [1u64, 100, 1, 1];
        let dp = wlis_rangetree(&a, &w);
        assert_eq!(dp, vec![1, 101, 102, 103]);
    }

    #[test]
    fn duplicates_do_not_chain() {
        let a = [5u64, 5, 5];
        let w = [2u64, 3, 4];
        assert_eq!(wlis_rangetree(&a, &w), vec![2, 3, 4]);
        assert_eq!(wlis_rangeveb(&a, &w), vec![2, 3, 4]);
    }

    #[test]
    fn both_backends_match_the_oracle_on_random_inputs() {
        let mut state = 0x41C64E6D12345u64;
        for trial in 0..8 {
            let n = 150 + trial * 60;
            let a: Vec<u64> = (0..n).map(|_| xorshift(&mut state) % 300).collect();
            let w: Vec<u64> = (0..n).map(|_| 1 + xorshift(&mut state) % 50).collect();
            let want = oracle_wdp(&a, &w);
            assert_eq!(wlis_rangetree(&a, &w), want, "range tree, trial {trial}");
            assert_eq!(wlis_rangeveb(&a, &w), want, "range vEB, trial {trial}");
        }
    }

    #[test]
    fn stats_variant_returns_same_dp_and_counts_work() {
        let a = [9u64, 2, 7, 4, 8, 1, 6];
        let w = [3u64, 5, 2, 9, 1, 4, 7];
        let (dp, stats) = wlis_kind_stats(DominantMaxKind::RangeTree, &a, &w);
        assert_eq!(dp, wlis_kind(DominantMaxKind::RangeTree, &a, &w));
        // One dominant_max per object, one write-back entry per object.
        assert_eq!(stats.queries, a.len() as u64);
        assert_eq!(stats.writeback_elems, a.len() as u64);
        // One update_batch per frontier: as many as distinct LIS ranks.
        let (_, k) = crate::lis_ranks(&a);
        assert_eq!(stats.writeback_batches, u64::from(k));
        // The other backend reports the same trait-level totals.
        let (_, veb_stats) = wlis_kind_stats(DominantMaxKind::RangeVeb, &a, &w);
        assert_eq!(stats, veb_stats);
    }

    #[test]
    fn kind_dispatch_resolves_and_agrees() {
        let a = [9u64, 2, 7, 4, 8, 1, 6];
        let w = [3u64, 5, 2, 9, 1, 4, 7];
        let want = oracle_wdp(&a, &w);
        for kind in [DominantMaxKind::Auto, DominantMaxKind::RangeTree, DominantMaxKind::RangeVeb] {
            assert_eq!(wlis_kind(kind, &a, &w), want, "{:?}", kind);
        }
        assert_eq!(DominantMaxKind::Auto.name(), "auto");
        assert_eq!(DominantMaxKind::RangeTree.name(), "range-tree");
        assert_eq!(DominantMaxKind::RangeVeb.name(), "range-veb");
        // Size-aware resolution: range tree below the threshold, Range-vEB
        // at or above it; concrete kinds are fixed points.
        assert_eq!(DominantMaxKind::Auto.resolve(), DominantMaxKind::RangeTree);
        assert_eq!(DominantMaxKind::Auto.resolve_for(0), DominantMaxKind::RangeTree);
        assert_eq!(
            DominantMaxKind::Auto.resolve_for(AUTO_RANGEVEB_POINTS_THRESHOLD - 1),
            DominantMaxKind::RangeTree
        );
        assert_eq!(
            DominantMaxKind::Auto.resolve_for(AUTO_RANGEVEB_POINTS_THRESHOLD),
            DominantMaxKind::RangeVeb
        );
        assert_eq!(DominantMaxKind::RangeVeb.resolve_for(0), DominantMaxKind::RangeVeb);
    }

    #[test]
    #[should_panic(expected = "one weight per value")]
    fn mismatched_lengths_panic() {
        wlis_rangetree(&[1u64, 2], &[1u64]);
    }
}
