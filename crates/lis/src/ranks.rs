//! Algorithm 1: the parallel (unweighted) LIS algorithm.
//!
//! The rank of an object is the length of the LIS ending at it (its `dp`
//! value from Equation (1)).  Lemma 3.1 characterises the rank-`r` objects
//! as the prefix-min objects of the sequence obtained by removing everything
//! of smaller rank, so the algorithm repeatedly extracts all current
//! prefix-min objects from a parallel tournament tree — one round per rank.
//! `O(n log k)` work, `O(k log n)` span, `O(n)` space (Theorems 1.1, 3.2).

use plis_tournament::TournamentTree;

/// Instrumentation returned by [`lis_ranks_u64_with_stats`]: per-round
/// frontier sizes and the total number of tournament-tree nodes visited,
/// used by the work-bound experiment (E7 in `DESIGN.md`).
#[derive(Debug, Clone, Default)]
pub struct LisStats {
    /// `frontier_sizes[r]` is the number of objects with rank `r + 1`.
    pub frontier_sizes: Vec<usize>,
    /// Total tournament-tree nodes visited across all rounds (Theorem 3.1
    /// bounds this by `O(n log k)`).
    pub nodes_visited: usize,
}

/// Compute the rank (dp value) of every object of `values` and the LIS
/// length `k`, for `u64` inputs.  `u64::MAX` is reserved as the sentinel.
pub fn lis_ranks_u64(values: &[u64]) -> (Vec<u32>, u32) {
    let tree = TournamentTree::new(values, u64::MAX);
    tree.extract_all_ranks()
}

/// [`lis_ranks_u64`] plus the instrumentation of [`LisStats`].
pub fn lis_ranks_u64_with_stats(values: &[u64]) -> (Vec<u32>, u32, LisStats) {
    let mut tree = TournamentTree::new(values, u64::MAX);
    let mut rank = vec![0u32; values.len()];
    let mut stats = LisStats::default();
    let mut round = 0u32;
    while !tree.is_empty() {
        round += 1;
        let fs = tree.process_frontier(round, &mut rank);
        stats.frontier_sizes.push(fs.frontier_size);
        stats.nodes_visited += fs.nodes_visited;
    }
    (rank, round, stats)
}

/// Comparison-based variant of [`lis_ranks_u64`] for any `Ord` element type.
/// The tournament tree holds references wrapped so that "removed" compares
/// greater than every real value, exactly like the paper's `+∞`.
pub fn lis_ranks<T: Ord + Sync>(values: &[T]) -> (Vec<u32>, u32) {
    enum Slot<'a, T> {
        Finite(&'a T),
        Inf,
    }
    // Manual Clone/Copy: the enum only holds a reference, so it is copyable
    // regardless of whether `T` itself is.
    impl<'a, T> Clone for Slot<'a, T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'a, T> Copy for Slot<'a, T> {}
    impl<'a, T: Ord> PartialEq for Slot<'a, T> {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == std::cmp::Ordering::Equal
        }
    }
    impl<'a, T: Ord> Eq for Slot<'a, T> {}
    impl<'a, T: Ord> PartialOrd for Slot<'a, T> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<'a, T: Ord> Ord for Slot<'a, T> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            match (self, other) {
                (Slot::Inf, Slot::Inf) => std::cmp::Ordering::Equal,
                (Slot::Inf, Slot::Finite(_)) => std::cmp::Ordering::Greater,
                (Slot::Finite(_), Slot::Inf) => std::cmp::Ordering::Less,
                (Slot::Finite(a), Slot::Finite(b)) => a.cmp(b),
            }
        }
    }
    let slots: Vec<Slot<'_, T>> = values.iter().map(Slot::Finite).collect();
    let tree = TournamentTree::new(&slots, Slot::Inf);
    tree.extract_all_ranks()
}

/// The LIS length of `values` (`k` in the paper's notation).
pub fn lis_length<T: Ord + Sync>(values: &[T]) -> u32 {
    lis_ranks(values).1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) dynamic-programming oracle for dp values.
    fn oracle_dp(a: &[u64]) -> Vec<u32> {
        let n = a.len();
        let mut dp = vec![0u32; n];
        for i in 0..n {
            dp[i] = 1;
            for j in 0..i {
                if a[j] < a[i] {
                    dp[i] = dp[i].max(dp[j] + 1);
                }
            }
        }
        dp
    }

    #[test]
    fn paper_example() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let (ranks, k) = lis_ranks_u64(&a);
        assert_eq!(ranks, vec![1, 1, 2, 1, 3, 1, 2, 3]);
        assert_eq!(k, 3);
        let (granks, gk) = lis_ranks(&a);
        assert_eq!(granks, ranks);
        assert_eq!(gk, k);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(lis_ranks_u64(&[]), (vec![], 0));
        assert_eq!(lis_ranks_u64(&[9]), (vec![1], 1));
        assert_eq!(lis_length::<u64>(&[]), 0);
    }

    #[test]
    fn monotone_sequences() {
        let inc: Vec<u64> = (0..500).collect();
        assert_eq!(lis_ranks_u64(&inc).1, 500);
        let dec: Vec<u64> = (0..500).rev().collect();
        assert_eq!(lis_ranks_u64(&dec).1, 1);
        let flat = vec![7u64; 300];
        assert_eq!(lis_ranks_u64(&flat).1, 1);
    }

    #[test]
    fn ranks_equal_dp_values_on_random_inputs() {
        let mut state = 0xD1B54A32D192ED03u64;
        for trial in 0..10 {
            let n = 200 + trial * 150;
            let a: Vec<u64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % 500
                })
                .collect();
            let (ranks, k) = lis_ranks_u64(&a);
            let dp = oracle_dp(&a);
            assert_eq!(ranks, dp, "trial {trial}");
            assert_eq!(k, *dp.iter().max().unwrap(), "trial {trial}");
        }
    }

    #[test]
    fn generic_version_works_on_strings() {
        let words = ["banana", "apple", "cherry", "blueberry", "date"];
        let owned: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        let (ranks, k) = lis_ranks(&owned);
        // apple < blueberry < date is a longest chain by index & lexicographic order.
        assert_eq!(k, 3);
        assert_eq!(ranks.len(), owned.len());
    }

    #[test]
    fn stats_report_consistent_totals() {
        let a: Vec<u64> = (0..4000u64).map(|i| (i * 2654435761) % 9973).collect();
        let (ranks, k, stats) = lis_ranks_u64_with_stats(&a);
        assert_eq!(stats.frontier_sizes.len(), k as usize);
        assert_eq!(stats.frontier_sizes.iter().sum::<usize>(), a.len());
        assert!(stats.nodes_visited >= a.len());
        let (plain, pk) = lis_ranks_u64(&a);
        assert_eq!(ranks, plain);
        assert_eq!(k, pk);
    }
}
