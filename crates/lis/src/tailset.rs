//! The *tail set* abstraction: a value-domain mirror of the patience tails
//! array, factored behind a trait so streaming sessions are generic over
//! the mirror structure instead of hard-coding an enum of backends.
//!
//! A streaming-LIS session owns the canonical `tails` array (`tails[r]` =
//! smallest value ending an increasing subsequence of length `r + 1`,
//! strictly increasing).  A [`TailSet`] mirrors that set in the *value*
//! domain so predecessor/successor probes don't have to binary-search the
//! rank domain:
//!
//! * [`VebTailSet`] maintains a [`VebTree`] over the session universe and
//!   applies every ingest's tail-set delta with the paper's parallel
//!   `batch_insert` / `batch_delete` (Theorems 5.1/5.2); probes cost
//!   `O(log log U)`.
//! * [`SortedVecTailSet`] keeps no extra state at all and answers probes by
//!   binary search over the `tails` array itself — the right choice for
//!   small universes where the vEB constant factors dominate.  This is why
//!   every query method receives the current `tails` slice: a stateless
//!   backend answers from it, a stateful one ignores it.
//! * [`AnyTailSet`] is the closed enum-dispatch combination of the two —
//!   the zero-cost factory behind the engine's `Backend` selector — while
//!   the trait itself stays open: a new mirror structure plugs into
//!   `StreamingLisOn` by implementing [`TailSet`] in its own file.

use plis_veb::VebTree;

/// Which concrete structure serves a tail-set delta: the value recorded on
/// ingest reports and counted by the engine's telemetry plane.  Fixed
/// backends always report their own kind; [`AutoTailSet`] switches between
/// the two per parallel ingest under the engine's cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailRoute {
    /// A vEB mirror applies the delta and serves probes in `O(log log U)`.
    Veb,
    /// No mirror: the delta is a no-op and probes binary-search `tails`.
    SortedVec,
}

impl TailRoute {
    /// Stable lowercase name (report / bench column vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            TailRoute::Veb => "veb",
            TailRoute::SortedVec => "sorted-vec",
        }
    }
}

/// Value-domain mirror of a strictly increasing tail array.
///
/// Mutations (`insert`/`delete`/`batch_insert`/`batch_delete`) keep the
/// mirror in sync with the tail-set delta of an ingest; queries receive the
/// canonical `tails` slice so stateless implementations can answer from it.
/// `check_invariants` is the hook the oracle test layers call to cross-check
/// mirror-vs-tails consistency after every batch.
pub trait TailSet: std::fmt::Debug + Clone {
    /// Short human-readable name used by reports and benchmarks.
    fn name(&self) -> &'static str;
    /// Mirror a single tail insertion.
    fn insert(&mut self, key: u64);
    /// Mirror a single tail removal.
    fn delete(&mut self, key: u64);
    /// Mirror a sorted batch of insertions (the added side of a delta).
    fn batch_insert(&mut self, keys: &[u64]);
    /// Mirror a sorted batch of removals (the removed side of a delta).
    fn batch_delete(&mut self, keys: &[u64]);
    /// Largest tail value strictly below `x`, if any.
    fn pred(&self, tails: &[u64], x: u64) -> Option<u64>;
    /// Smallest tail value at or above `x`, if any.  Probes at or beyond
    /// the universe return `None` (all tails are inside the universe).
    fn succ(&self, tails: &[u64], x: u64) -> Option<u64>;
    /// Number of mirrored tails.
    fn len(&self, tails: &[u64]) -> usize;
    /// The mirrored keys in increasing order.
    fn collect_keys(&self, tails: &[u64]) -> Vec<u64>;
    /// Assert every internal invariant against the canonical tails.
    fn check_invariants(&self, tails: &[u64]);
    /// Rough heap footprint of the mirror structure in bytes (0 for
    /// stateless backends, which answer from the canonical `tails` the
    /// session already accounts for).  Used by the engine's per-session
    /// memory accounting; `O(structure)` — call at snapshot time, not per
    /// op.
    fn approx_bytes(&self) -> usize {
        0
    }
    /// Route selection hook, called once per *parallel* ingest before the
    /// delta is applied.  `route` is the cost model's pick and `tails` is
    /// the canonical array the mirror must represent if it switches
    /// structure.  Fixed backends ignore the hint; [`AutoTailSet`] builds
    /// or drops its vEB mirror here.  Returns the route actually in effect
    /// for the coming delta (what the ingest report records).
    fn route_parallel(&mut self, route: Option<TailRoute>, tails: &[u64]) -> TailRoute;
    /// Whether this store actually consults the cost model's route hint.
    /// Fixed backends return `false`, which lets sessions skip computing
    /// the hint entirely — load-bearing during cost calibration, which
    /// drives fixed-backend sessions from *inside* the model's one-time
    /// initialisation (asking for the model there would deadlock).
    fn wants_route_hint(&self) -> bool {
        false
    }
    /// Pre-size for up to `additional` net-new keys so steady-state point
    /// operations stay off the allocator (the vEB mirror stocks its node
    /// pool; stateless stores have nothing to do).  Called from the
    /// sessions' `reserve`.
    fn reserve(&mut self, additional: usize) {
        let _ = additional;
    }
    /// Append the mirrored keys in increasing order to a caller-owned
    /// buffer — the snapshot plane's bulk export.  Stateful mirrors walk
    /// their own structure (no per-key probing, no rebuild); the default
    /// reads the canonical `tails`, which stateless backends mirror by
    /// definition.
    fn export_into(&self, tails: &[u64], out: &mut Vec<u64>) {
        out.extend_from_slice(tails);
    }
    /// Rebuild the mirror so it represents exactly `tails` — the snapshot
    /// plane's bulk import, called once on a freshly constructed store
    /// during session restore.  The default applies one sorted batch
    /// insert, which is correct for every backend whose empty state mirrors
    /// an empty tail set; structures with a cheaper bulk construction
    /// override it.
    fn import(&mut self, tails: &[u64]) {
        self.batch_insert(tails);
    }
}

/// [`TailSet`] backed by a parallel van Emde Boas tree over the session
/// universe (Theorems 5.1/5.2 for the batch delta application).
#[derive(Debug, Clone)]
pub struct VebTailSet(VebTree);

impl VebTailSet {
    /// Empty mirror over the value universe `[0, universe)`.
    pub fn new(universe: u64) -> Self {
        VebTailSet(VebTree::new(universe))
    }

    /// The underlying vEB tree (read-only; used by value-domain probes that
    /// want the raw structure).
    pub fn tree(&self) -> &VebTree {
        &self.0
    }
}

impl TailSet for VebTailSet {
    fn name(&self) -> &'static str {
        "veb"
    }
    fn reserve(&mut self, additional: usize) {
        self.0.reserve_nodes(additional);
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn delete(&mut self, key: u64) {
        self.0.delete(key);
    }
    fn batch_insert(&mut self, keys: &[u64]) {
        self.0.batch_insert(keys);
    }
    fn batch_delete(&mut self, keys: &[u64]) {
        self.0.batch_delete(keys);
    }
    fn pred(&self, _tails: &[u64], x: u64) -> Option<u64> {
        self.0.pred(x.min(self.0.universe()))
    }
    fn succ(&self, _tails: &[u64], x: u64) -> Option<u64> {
        if x >= self.0.universe() {
            None
        } else if self.0.contains(x) {
            Some(x)
        } else {
            self.0.succ(x)
        }
    }
    fn len(&self, _tails: &[u64]) -> usize {
        self.0.len()
    }
    fn collect_keys(&self, _tails: &[u64]) -> Vec<u64> {
        self.0.iter_keys()
    }
    fn check_invariants(&self, tails: &[u64]) {
        assert_eq!(self.0.iter_keys(), tails, "vEB mirror out of sync with tails");
    }
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes()
    }
    fn route_parallel(&mut self, _route: Option<TailRoute>, _tails: &[u64]) -> TailRoute {
        TailRoute::Veb
    }
    fn export_into(&self, _tails: &[u64], out: &mut Vec<u64>) {
        self.0.keys_into(out);
    }
    fn import(&mut self, tails: &[u64]) {
        self.0 = VebTree::from_sorted(self.0.universe(), tails);
    }
}

/// Stateless [`TailSet`]: no mirror structure at all; every probe
/// binary-searches the canonical `tails` array (`O(log k)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SortedVecTailSet;

impl TailSet for SortedVecTailSet {
    fn name(&self) -> &'static str {
        "sorted-vec"
    }
    fn insert(&mut self, _key: u64) {}
    fn delete(&mut self, _key: u64) {}
    fn batch_insert(&mut self, _keys: &[u64]) {}
    fn batch_delete(&mut self, _keys: &[u64]) {}
    fn pred(&self, tails: &[u64], x: u64) -> Option<u64> {
        let p = tails.partition_point(|&t| t < x);
        p.checked_sub(1).map(|i| tails[i])
    }
    fn succ(&self, tails: &[u64], x: u64) -> Option<u64> {
        let p = tails.partition_point(|&t| t < x);
        tails.get(p).copied()
    }
    fn len(&self, tails: &[u64]) -> usize {
        tails.len()
    }
    fn collect_keys(&self, tails: &[u64]) -> Vec<u64> {
        tails.to_vec()
    }
    fn check_invariants(&self, _tails: &[u64]) {}
    fn route_parallel(&mut self, _route: Option<TailRoute>, _tails: &[u64]) -> TailRoute {
        TailRoute::SortedVec
    }
}

/// Cost-routed [`TailSet`]: keeps a vEB mirror only while the caller's cost
/// model says the per-ingest delta work pays for itself, and otherwise
/// keeps no state at all (probes binary-search the canonical `tails`, like
/// [`SortedVecTailSet`]).
///
/// The store starts mirror-less.  Every parallel ingest the session passes
/// the cost model's pick to [`TailSet::route_parallel`]: switching *to* the
/// vEB route rebuilds the mirror from the current tails with the paper's
/// `O(k log log U)` bulk construction; switching away drops it.  Sequential
/// (point) ingests never build the mirror — they keep a live mirror in sync
/// with `O(log log U)` point updates and are free when no mirror exists.
/// Probe answers are exact on both routes, so sessions behave identically
/// to a fixed backend; only the constant factors move.
#[derive(Debug, Clone)]
pub struct AutoTailSet {
    universe: u64,
    mirror: Option<VebTree>,
}

impl AutoTailSet {
    /// A mirror-less cost-routed store over `[0, universe)`.
    pub fn new(universe: u64) -> Self {
        AutoTailSet { universe, mirror: None }
    }

    /// The route currently in effect (which structure answers probes now).
    pub fn active(&self) -> TailRoute {
        if self.mirror.is_some() {
            TailRoute::Veb
        } else {
            TailRoute::SortedVec
        }
    }
}

impl TailSet for AutoTailSet {
    fn name(&self) -> &'static str {
        "auto"
    }
    fn insert(&mut self, key: u64) {
        if let Some(m) = &mut self.mirror {
            m.insert(key);
        }
    }
    fn delete(&mut self, key: u64) {
        if let Some(m) = &mut self.mirror {
            m.delete(key);
        }
    }
    fn batch_insert(&mut self, keys: &[u64]) {
        if let Some(m) = &mut self.mirror {
            m.batch_insert(keys);
        }
    }
    fn batch_delete(&mut self, keys: &[u64]) {
        if let Some(m) = &mut self.mirror {
            m.batch_delete(keys);
        }
    }
    fn pred(&self, tails: &[u64], x: u64) -> Option<u64> {
        match &self.mirror {
            Some(m) => m.pred(x.min(m.universe())),
            None => SortedVecTailSet.pred(tails, x),
        }
    }
    fn succ(&self, tails: &[u64], x: u64) -> Option<u64> {
        match &self.mirror {
            Some(m) => {
                if x >= m.universe() {
                    None
                } else if m.contains(x) {
                    Some(x)
                } else {
                    m.succ(x)
                }
            }
            None => SortedVecTailSet.succ(tails, x),
        }
    }
    fn len(&self, tails: &[u64]) -> usize {
        tails.len()
    }
    fn collect_keys(&self, tails: &[u64]) -> Vec<u64> {
        tails.to_vec()
    }
    fn check_invariants(&self, tails: &[u64]) {
        if let Some(m) = &self.mirror {
            assert_eq!(m.iter_keys(), tails, "auto vEB mirror out of sync with tails");
        }
    }
    fn approx_bytes(&self) -> usize {
        self.mirror.as_ref().map_or(0, VebTree::approx_bytes)
    }
    fn wants_route_hint(&self) -> bool {
        true
    }
    fn reserve(&mut self, additional: usize) {
        if let Some(m) = &self.mirror {
            m.reserve_nodes(additional);
        }
    }
    fn route_parallel(&mut self, route: Option<TailRoute>, tails: &[u64]) -> TailRoute {
        match route {
            Some(TailRoute::Veb) => {
                if self.mirror.is_none() {
                    self.mirror = Some(VebTree::from_sorted(self.universe, tails));
                }
                TailRoute::Veb
            }
            Some(TailRoute::SortedVec) => {
                self.mirror = None;
                TailRoute::SortedVec
            }
            None => self.active(),
        }
    }
}

/// Enum dispatch over the built-in tail-set backends: the concrete store
/// type behind the engine's non-generic `StreamingLis` alias, so sessions
/// with different backends share one type (and one shard map) at zero
/// virtual-call cost.
#[derive(Debug, Clone)]
pub enum AnyTailSet {
    /// vEB-mirrored tails.
    Veb(VebTailSet),
    /// Stateless binary-search tails.
    SortedVec(SortedVecTailSet),
    /// Cost-routed: vEB mirror only while it pays for itself.
    Auto(AutoTailSet),
}

impl AnyTailSet {
    /// A vEB-backed store over `[0, universe)`.
    pub fn veb(universe: u64) -> Self {
        AnyTailSet::Veb(VebTailSet::new(universe))
    }

    /// The stateless sorted-vec store.
    pub fn sorted_vec() -> Self {
        AnyTailSet::SortedVec(SortedVecTailSet)
    }

    /// The cost-routed store over `[0, universe)`.
    pub fn auto(universe: u64) -> Self {
        AnyTailSet::Auto(AutoTailSet::new(universe))
    }
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $e:expr) => {
        match $self {
            AnyTailSet::Veb($inner) => $e,
            AnyTailSet::SortedVec($inner) => $e,
            AnyTailSet::Auto($inner) => $e,
        }
    };
}

impl TailSet for AnyTailSet {
    fn name(&self) -> &'static str {
        dispatch!(self, s => s.name())
    }
    fn insert(&mut self, key: u64) {
        dispatch!(self, s => s.insert(key))
    }
    fn delete(&mut self, key: u64) {
        dispatch!(self, s => s.delete(key))
    }
    fn batch_insert(&mut self, keys: &[u64]) {
        dispatch!(self, s => s.batch_insert(keys))
    }
    fn batch_delete(&mut self, keys: &[u64]) {
        dispatch!(self, s => s.batch_delete(keys))
    }
    fn pred(&self, tails: &[u64], x: u64) -> Option<u64> {
        dispatch!(self, s => s.pred(tails, x))
    }
    fn succ(&self, tails: &[u64], x: u64) -> Option<u64> {
        dispatch!(self, s => s.succ(tails, x))
    }
    fn len(&self, tails: &[u64]) -> usize {
        dispatch!(self, s => s.len(tails))
    }
    fn collect_keys(&self, tails: &[u64]) -> Vec<u64> {
        dispatch!(self, s => s.collect_keys(tails))
    }
    fn check_invariants(&self, tails: &[u64]) {
        dispatch!(self, s => s.check_invariants(tails))
    }
    fn approx_bytes(&self) -> usize {
        dispatch!(self, s => s.approx_bytes())
    }
    fn route_parallel(&mut self, route: Option<TailRoute>, tails: &[u64]) -> TailRoute {
        dispatch!(self, s => s.route_parallel(route, tails))
    }
    fn wants_route_hint(&self) -> bool {
        dispatch!(self, s => s.wants_route_hint())
    }
    fn reserve(&mut self, additional: usize) {
        dispatch!(self, s => s.reserve(additional))
    }
    fn export_into(&self, tails: &[u64], out: &mut Vec<u64>) {
        dispatch!(self, s => s.export_into(tails, out))
    }
    fn import(&mut self, tails: &[u64]) {
        dispatch!(self, s => s.import(tails))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a mirror through inserts/deletes mirroring a tails array and
    /// compare probes against the stateless reference.
    fn cross_check(mut store: impl TailSet, tails: &[u64], universe: u64) {
        let reference = SortedVecTailSet;
        for &t in tails {
            store.insert(t);
        }
        store.check_invariants(tails);
        assert_eq!(store.len(tails), tails.len());
        assert_eq!(store.collect_keys(tails), tails);
        for probe in [0, 1, 2, 3, 5, 7, 8, 14, 15, universe - 1, universe, u64::MAX] {
            assert_eq!(store.pred(tails, probe), reference.pred(tails, probe), "pred {probe}");
            assert_eq!(store.succ(tails, probe), reference.succ(tails, probe), "succ {probe}");
        }
    }

    #[test]
    fn veb_and_sorted_vec_agree_on_probes() {
        let tails = [2u64, 5, 7, 11, 13];
        cross_check(VebTailSet::new(16), &tails, 16);
        cross_check(AnyTailSet::veb(16), &tails, 16);
        cross_check(AnyTailSet::sorted_vec(), &tails, 16);
    }

    #[test]
    fn batch_delta_keeps_mirror_in_sync() {
        let mut store = VebTailSet::new(64);
        store.batch_insert(&[3, 9, 20, 40]);
        store.batch_delete(&[9, 40]);
        store.insert(10);
        store.delete(3);
        let tails = [10u64, 20];
        store.check_invariants(&tails);
        assert_eq!(store.collect_keys(&tails), &tails);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AnyTailSet::veb(8).name(), "veb");
        assert_eq!(AnyTailSet::sorted_vec().name(), "sorted-vec");
        assert_eq!(AnyTailSet::auto(8).name(), "auto");
        assert_eq!(TailRoute::Veb.name(), "veb");
        assert_eq!(TailRoute::SortedVec.name(), "sorted-vec");
    }

    #[test]
    fn auto_probes_agree_on_both_routes() {
        let tails = [2u64, 5, 7, 11, 13];
        // Mirror-less: answers come from binary search.
        cross_check(AutoTailSet::new(16), &tails, 16);
        // Mirrored: build the mirror first, then replay the same probes.
        let mut auto = AutoTailSet::new(16);
        assert_eq!(auto.route_parallel(Some(TailRoute::Veb), &[]), TailRoute::Veb);
        assert_eq!(auto.active(), TailRoute::Veb);
        cross_check(auto, &tails, 16);
    }

    #[test]
    fn auto_route_switching_rebuilds_and_drops_the_mirror() {
        let tails = [3u64, 9, 20, 40];
        let mut auto = AutoTailSet::new(64);
        assert_eq!(auto.active(), TailRoute::SortedVec);
        assert_eq!(auto.approx_bytes(), 0);
        // Point updates on the sorted-vec route keep no state.
        auto.insert(3);
        assert_eq!(auto.approx_bytes(), 0);

        // Switch to the vEB route: the mirror is rebuilt from `tails`.
        assert_eq!(auto.route_parallel(Some(TailRoute::Veb), &tails), TailRoute::Veb);
        auto.check_invariants(&tails);
        assert!(auto.approx_bytes() > 0);
        assert_eq!(auto.pred(&tails, 10), Some(9));
        assert_eq!(auto.succ(&tails, 10), Some(20));

        // A delta now maintains the mirror.
        auto.batch_delete(&[9]);
        auto.batch_insert(&[8]);
        auto.check_invariants(&[3, 8, 20, 40]);

        // Switch away: state dropped, probes still exact via binary search.
        assert_eq!(
            auto.route_parallel(Some(TailRoute::SortedVec), &[3, 8, 20, 40]),
            TailRoute::SortedVec
        );
        assert_eq!(auto.approx_bytes(), 0);
        assert_eq!(auto.pred(&[3, 8, 20, 40], 10), Some(8));
        // A `None` hint (sequential ingests) keeps the current route.
        assert_eq!(auto.route_parallel(None, &[3, 8, 20, 40]), TailRoute::SortedVec);
    }

    #[test]
    fn approx_bytes_reflects_mirror_state() {
        assert_eq!(AnyTailSet::sorted_vec().approx_bytes(), 0);
        let mut veb = AnyTailSet::veb(1 << 16);
        let empty = veb.approx_bytes();
        veb.batch_insert(&[1, 100, 5_000, 40_000]);
        assert!(veb.approx_bytes() > empty, "populated mirror must account more bytes");
    }

    #[test]
    fn export_and_import_round_trip_every_backend() {
        let tails = [2u64, 5, 7, 11, 13];
        let stores = [AnyTailSet::veb(16), AnyTailSet::sorted_vec(), AnyTailSet::auto(16)];
        for mut store in stores {
            // Import into a fresh store must reproduce exactly `tails`...
            store.import(&tails);
            store.check_invariants(&tails);
            // ...and export must walk it back out, appending to the buffer.
            let mut out = vec![99u64];
            store.export_into(&tails, &mut out);
            assert_eq!(out[1..], tails, "{}", store.name());
        }
    }

    #[test]
    #[should_panic(expected = "out of sync")]
    fn veb_invariant_check_catches_divergence() {
        let mut store = VebTailSet::new(32);
        store.insert(4);
        store.check_invariants(&[4, 9]);
    }
}
