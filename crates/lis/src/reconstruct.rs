//! Recovering an actual LIS from the rank array (Appendix A).
//!
//! Lemma A.1: for an object with rank `r`, the *smallest* object with rank
//! `r − 1` before it is a best decision; by Lemma A.2 the rank-`(r − 1)`
//! objects are non-increasing in value along increasing index, so the
//! smallest one before index `i` is simply the *last* one before index `i`,
//! which a binary search over the frontier's (sorted) index list finds in
//! `O(log n)`.

use plis_primitives::group_by_rank;

/// Return the indices (increasing) of one longest increasing subsequence of
/// `values`, using the ranks produced by Algorithm 1.
pub fn lis_indices<T: Ord + Sync>(values: &[T]) -> Vec<usize> {
    let (ranks, k) = crate::lis_ranks(values);
    lis_indices_from_ranks(values, &ranks, k)
}

/// As [`lis_indices`], but reusing ranks that were already computed.
///
/// # Panics
/// Panics if `ranks`/`k` are inconsistent with `values` (e.g. not produced
/// by [`crate::lis_ranks`]).
pub fn lis_indices_from_ranks<T: Ord>(values: &[T], ranks: &[u32], k: u32) -> Vec<usize> {
    assert_eq!(values.len(), ranks.len(), "ranks must cover every value");
    if k == 0 {
        assert!(values.is_empty(), "k = 0 requires an empty input");
        return Vec::new();
    }
    // frontiers[r - 1] lists, in increasing index order, the objects of rank r.
    let rank_keys: Vec<usize> = ranks.iter().map(|&r| (r - 1) as usize).collect();
    let frontiers = group_by_rank(&rank_keys, k as usize);
    assert!(frontiers.iter().all(|f| !f.is_empty()), "every rank 1..=k must be populated");

    let mut out = Vec::with_capacity(k as usize);
    // Start from the first (leftmost) object of the top frontier and walk
    // down one rank at a time.
    let mut current = frontiers[k as usize - 1][0];
    out.push(current);
    for r in (1..k).rev() {
        let frontier = &frontiers[(r - 1) as usize];
        // Last index in this frontier that is strictly before `current`.
        let pos = frontier.partition_point(|&idx| idx < current);
        assert!(pos > 0, "a rank-{r} predecessor must exist before index {current}");
        let chosen = frontier[pos - 1];
        debug_assert!(values[chosen] < values[current], "best decision must be smaller");
        out.push(chosen);
        current = chosen;
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_lis<T: Ord + std::fmt::Debug>(
        values: &[T],
        indices: &[usize],
        expected_len: u32,
    ) {
        assert_eq!(indices.len(), expected_len as usize);
        assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices must increase: {indices:?}");
        assert!(
            indices.windows(2).all(|w| values[w[0]] < values[w[1]]),
            "values must strictly increase along the subsequence"
        );
    }

    #[test]
    fn paper_example_reconstruction() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let lis = lis_indices(&a);
        assert_valid_lis(&a, &lis, 3);
    }

    #[test]
    fn empty_and_monotone() {
        assert!(lis_indices::<u64>(&[]).is_empty());
        let inc: Vec<u64> = (0..100).collect();
        assert_valid_lis(&inc, &lis_indices(&inc), 100);
        let dec: Vec<u64> = (0..100).rev().collect();
        assert_valid_lis(&dec, &lis_indices(&dec), 1);
    }

    #[test]
    fn duplicates_do_not_extend_the_subsequence() {
        let a = [3u64, 3, 3, 4, 4, 5];
        let lis = lis_indices(&a);
        assert_valid_lis(&a, &lis, 3);
    }

    #[test]
    fn random_inputs_reconstruct_valid_optimal_subsequences() {
        let mut state = 0xC6A4A7935BD1E995u64;
        for trial in 0..10 {
            let n = 300 + trial * 100;
            let a: Vec<u64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % 1000
                })
                .collect();
            let (ranks, k) = crate::lis_ranks_u64(&a);
            let lis = lis_indices_from_ranks(&a, &ranks, k);
            assert_valid_lis(&a, &lis, k);
        }
    }
}
