//! Recovering an actual LIS — or maximum-weight increasing subsequence —
//! from maintained dp values (Appendix A).
//!
//! Lemma A.1: for an object with rank `r`, the *smallest* object with rank
//! `r − 1` before it is a best decision; by Lemma A.2 the rank-`(r − 1)`
//! objects are non-increasing in value along increasing index, so the
//! smallest one before index `i` is simply the *last* one before index `i`,
//! which a binary search over the frontier's (sorted) index list finds in
//! `O(log n)`.
//!
//! The entry points come in three layers so both the offline algorithms and
//! the streaming sessions of `plis-engine` share one reconstruction:
//!
//! * [`lis_indices`] — offline convenience: computes ranks, then walks.
//! * [`lis_indices_from_ranks`] — reuses a rank array (offline or the
//!   exact ranks a streaming session maintains) and groups it into
//!   frontiers itself.
//! * [`lis_indices_from_frontiers`] — the walk alone, over frontiers the
//!   caller already maintains incrementally (the streaming query plane
//!   keeps per-rank index lists live, so certificates cost
//!   `O(k log n)` with no per-query grouping pass).
//!
//! [`wlis_indices_from_scores`] is the weighted analogue: it recovers a
//! maximum-weight increasing subsequence from the dp scores of Algorithm 2
//! (Equation 2) with one backward scan — see its docs for the argument.

use plis_primitives::group_by_rank;

/// Return the indices (increasing) of one longest increasing subsequence of
/// `values`, using the ranks produced by Algorithm 1.
pub fn lis_indices<T: Ord + Sync>(values: &[T]) -> Vec<usize> {
    let (ranks, k) = crate::lis_ranks(values);
    lis_indices_from_ranks(values, &ranks, k)
}

/// As [`lis_indices`], but reusing ranks that were already computed.
///
/// # Panics
/// Panics if `ranks`/`k` are inconsistent with `values` (e.g. not produced
/// by [`crate::lis_ranks`]).
pub fn lis_indices_from_ranks<T: Ord>(values: &[T], ranks: &[u32], k: u32) -> Vec<usize> {
    assert_eq!(values.len(), ranks.len(), "ranks must cover every value");
    if k == 0 {
        assert!(values.is_empty(), "k = 0 requires an empty input");
        return Vec::new();
    }
    // frontiers[r - 1] lists, in increasing index order, the objects of rank r.
    let rank_keys: Vec<usize> = ranks.iter().map(|&r| (r - 1) as usize).collect();
    let frontiers = group_by_rank(&rank_keys, k as usize);
    lis_indices_from_frontiers(values, &frontiers)
}

/// The Appendix-A walk alone: recover one LIS from per-rank *frontiers* —
/// `frontiers[r - 1]` lists, in increasing index order, every object of
/// rank `r`.  This is the streaming entry point: a live session maintains
/// exactly these index lists incrementally (ranks are final on ingest, so
/// each list only ever grows at the end), and a certificate query walks
/// them in `O(k log n)` without re-grouping anything.
///
/// The walk is deterministic — it always starts from the leftmost
/// top-rank object and takes the last valid predecessor in each frontier —
/// so streaming answers are bit-identical to the offline
/// [`lis_indices_from_ranks`] on the same prefix.
///
/// # Panics
/// Panics if the frontiers are inconsistent with `values` (empty rank
/// class, or a rank class whose predecessor class is exhausted) — i.e. if
/// they were not produced by grouping a valid rank array.
pub fn lis_indices_from_frontiers<T: Ord>(values: &[T], frontiers: &[Vec<usize>]) -> Vec<usize> {
    let k = frontiers.len();
    if k == 0 {
        return Vec::new();
    }
    assert!(frontiers.iter().all(|f| !f.is_empty()), "every rank 1..=k must be populated");

    let mut out = Vec::with_capacity(k);
    // Start from the first (leftmost) object of the top frontier and walk
    // down one rank at a time.
    let mut current = frontiers[k - 1][0];
    out.push(current);
    for r in (1..k).rev() {
        let frontier = &frontiers[r - 1];
        // Last index in this frontier that is strictly before `current`.
        let pos = frontier.partition_point(|&idx| idx < current);
        assert!(pos > 0, "a rank-{r} predecessor must exist before index {current}");
        let chosen = frontier[pos - 1];
        debug_assert!(values[chosen] < values[current], "best decision must be smaller");
        out.push(chosen);
        current = chosen;
    }
    out.reverse();
    out
}

/// Recover the indices (increasing) of one **maximum-weight** increasing
/// subsequence from the dp scores of Algorithm 2
/// (`dp[i] = w_i + max(0, max_{j<i, A_j<A_i} dp[j])`) — the weighted
/// analogue of [`lis_indices_from_ranks`], consumed by the streaming
/// weighted sessions whose scores are exact and final on ingest.
///
/// The walk starts at the leftmost element of maximum score and repeatedly
/// looks for the *nearest* earlier element `j` with `values[j] < values[i]`
/// and `dp[j] = dp[i] − w_i`.  Any such `j` is a valid link: `dp[j]`
/// certifies an increasing subsequence of weight `dp[i] − w_i` ending at
/// `j`, and appending `i` re-creates weight `dp[i]`; one always exists
/// while `dp[i] − w_i > 0` by the definition of the recurrence.  Taking
/// the nearest one makes the walk a single backward scan — `O(n)` total —
/// and makes the answer deterministic, so streaming certificates are
/// bit-identical to this function run offline on the same prefix.
///
/// The total weight of the returned subsequence equals `max(scores)`; the
/// returned indices are strictly increasing, and so are the values along
/// them.  Returns an empty vector when `values` is empty or every score is
/// zero (all-zero weights: the empty subsequence is already optimal).
///
/// # Panics
/// Panics if the slice lengths disagree or `scores` was not produced by
/// the Algorithm-2 recurrence on `(values, weights)`.
pub fn wlis_indices_from_scores<T: Ord>(
    values: &[T],
    weights: &[u64],
    scores: &[u64],
) -> Vec<usize> {
    assert_eq!(values.len(), weights.len(), "one weight per value is required");
    assert_eq!(values.len(), scores.len(), "one score per value is required");
    let Some(&best) = scores.iter().max() else {
        return Vec::new();
    };
    if best == 0 {
        return Vec::new();
    }
    // Leftmost element achieving the best score.
    let mut current = scores.iter().position(|&s| s == best).expect("max exists");
    let mut out = vec![current];
    let chain_link = |i: usize| {
        scores[i].checked_sub(weights[i]).expect("score below own weight: corrupt scores")
    };
    let mut needed = chain_link(current);
    while needed > 0 {
        // Nearest predecessor with the required score and a smaller value.
        let link = (0..current)
            .rev()
            .find(|&j| scores[j] == needed && values[j] < values[current])
            .unwrap_or_else(|| {
                panic!("no rank-{needed} predecessor before index {current}: corrupt scores")
            });
        out.push(link);
        current = link;
        needed = chain_link(current);
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_lis<T: Ord + std::fmt::Debug>(
        values: &[T],
        indices: &[usize],
        expected_len: u32,
    ) {
        assert_eq!(indices.len(), expected_len as usize);
        assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices must increase: {indices:?}");
        assert!(
            indices.windows(2).all(|w| values[w[0]] < values[w[1]]),
            "values must strictly increase along the subsequence"
        );
    }

    #[test]
    fn paper_example_reconstruction() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let lis = lis_indices(&a);
        assert_valid_lis(&a, &lis, 3);
    }

    #[test]
    fn empty_and_monotone() {
        assert!(lis_indices::<u64>(&[]).is_empty());
        let inc: Vec<u64> = (0..100).collect();
        assert_valid_lis(&inc, &lis_indices(&inc), 100);
        let dec: Vec<u64> = (0..100).rev().collect();
        assert_valid_lis(&dec, &lis_indices(&dec), 1);
    }

    #[test]
    fn duplicates_do_not_extend_the_subsequence() {
        let a = [3u64, 3, 3, 4, 4, 5];
        let lis = lis_indices(&a);
        assert_valid_lis(&a, &lis, 3);
    }

    /// O(n²) oracle for the weighted dp recurrence, local to the tests.
    fn oracle_wdp(a: &[u64], w: &[u64]) -> Vec<u64> {
        let n = a.len();
        let mut dp = vec![0u64; n];
        for i in 0..n {
            let mut best = 0;
            for j in 0..i {
                if a[j] < a[i] {
                    best = best.max(dp[j]);
                }
            }
            dp[i] = best + w[i];
        }
        dp
    }

    fn assert_valid_wlis(values: &[u64], weights: &[u64], indices: &[usize], claimed: u64) {
        assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices must increase: {indices:?}");
        assert!(
            indices.windows(2).all(|w| values[w[0]] < values[w[1]]),
            "values must strictly increase along the subsequence"
        );
        let total: u64 = indices.iter().map(|&i| weights[i]).sum();
        assert_eq!(total, claimed, "certificate weight must equal the claimed score");
    }

    #[test]
    fn frontier_walk_matches_the_rank_entry_point() {
        let a = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let (ranks, k) = crate::lis_ranks_u64(&a);
        let rank_keys: Vec<usize> = ranks.iter().map(|&r| (r - 1) as usize).collect();
        let frontiers = group_by_rank(&rank_keys, k as usize);
        assert_eq!(
            lis_indices_from_frontiers(&a, &frontiers),
            lis_indices_from_ranks(&a, &ranks, k)
        );
        assert!(lis_indices_from_frontiers::<u64>(&[], &[]).is_empty());
    }

    #[test]
    fn weighted_reconstruction_recovers_the_best_total() {
        let a = [1u64, 2, 3, 4];
        let w = [1u64, 100, 1, 1];
        let dp = oracle_wdp(&a, &w);
        let cert = wlis_indices_from_scores(&a, &w, &dp);
        assert_valid_wlis(&a, &w, &cert, 103);
        assert_eq!(cert, vec![0, 1, 2, 3]);
    }

    #[test]
    fn weighted_reconstruction_handles_degenerate_inputs() {
        assert!(wlis_indices_from_scores::<u64>(&[], &[], &[]).is_empty());
        // All-zero weights: every score is 0, the empty chain is optimal.
        let a = [5u64, 1, 9];
        let w = [0u64, 0, 0];
        assert!(wlis_indices_from_scores(&a, &w, &oracle_wdp(&a, &w)).is_empty());
        // A single element certifies itself.
        assert_eq!(wlis_indices_from_scores(&[7u64], &[3], &[3]), vec![0]);
        // Duplicates never chain: the certificate is one element.
        let a = [4u64, 4, 4];
        let w = [2u64, 3, 1];
        let dp = oracle_wdp(&a, &w);
        let cert = wlis_indices_from_scores(&a, &w, &dp);
        assert_valid_wlis(&a, &w, &cert, 3);
    }

    #[test]
    fn weighted_reconstruction_is_valid_on_random_inputs() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..8 {
            let n = 100 + trial * 80;
            let a: Vec<u64> = (0..n).map(|_| next() % 250).collect();
            let w: Vec<u64> = (0..n).map(|_| next() % 40).collect(); // zero weights included
            let dp = oracle_wdp(&a, &w);
            let cert = wlis_indices_from_scores(&a, &w, &dp);
            assert_valid_wlis(&a, &w, &cert, dp.iter().copied().max().unwrap_or(0));
        }
    }

    #[test]
    fn random_inputs_reconstruct_valid_optimal_subsequences() {
        let mut state = 0xC6A4A7935BD1E995u64;
        for trial in 0..10 {
            let n = 300 + trial * 100;
            let a: Vec<u64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % 1000
                })
                .collect();
            let (ranks, k) = crate::lis_ranks_u64(&a);
            let lis = lis_indices_from_ranks(&a, &ranks, k);
            assert_valid_lis(&a, &lis, k);
        }
    }
}
