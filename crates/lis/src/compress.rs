//! Coordinate compression.
//!
//! The WLIS structures index their first dimension by the *rank* of the
//! input value (ties share a rank), keeping the algorithm comparison-based:
//! only the relative order of the inputs ever matters, exactly as the paper
//! requires ("we assume general input and only use comparisons").

/// Map every element of `values` to its dense rank: the number of distinct
/// values strictly smaller than it.  Equal values share a rank, so the
/// strict comparison `rank(a) < rank(b)` holds exactly when `a < b`.
///
/// `O(n log n)` work, polylogarithmic span.
pub fn compress_to_ranks<T: Ord + Sync>(values: &[T]) -> Vec<u64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    plis_primitives::par_sort_by(&mut order, |&a, &b| values[a as usize].cmp(&values[b as usize]));
    // Assign ranks along the sorted order; ties keep the previous rank.
    let mut ranks = vec![0u64; n];
    let mut current = 0u64;
    for w in 0..n {
        if w > 0 && values[order[w] as usize] > values[order[w - 1] as usize] {
            current += 1;
        }
        ranks[order[w] as usize] = current;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert!(compress_to_ranks::<u64>(&[]).is_empty());
    }

    #[test]
    fn distinct_values() {
        let v = vec![30u64, 10, 20];
        assert_eq!(compress_to_ranks(&v), vec![2, 0, 1]);
    }

    #[test]
    fn ties_share_ranks() {
        let v = vec![5u64, 1, 5, 3, 1];
        assert_eq!(compress_to_ranks(&v), vec![2, 0, 2, 1, 0]);
    }

    #[test]
    fn order_is_preserved() {
        let v: Vec<i64> = vec![-5, 100, 0, -5, 7];
        let r = compress_to_ranks(&v);
        for i in 0..v.len() {
            for j in 0..v.len() {
                assert_eq!(v[i] < v[j], r[i] < r[j], "pair ({i},{j})");
                assert_eq!(v[i] == v[j], r[i] == r[j], "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn works_on_strings() {
        let v = vec!["pear".to_string(), "apple".into(), "mango".into(), "apple".into()];
        assert_eq!(compress_to_ranks(&v), vec![2, 0, 1, 0]);
    }
}
