//! Cost-based ingest path selection.
//!
//! The session types have two exact ways to apply a batch: the sequential
//! per-element path (`O(m log k)` with a tiny constant — one binary search
//! and at most one point insert/delete per element) and the parallel merge
//! path (Algorithm 1 over `tails ++ batch`, then a batched store delta —
//! asymptotically work-efficient, but it rebuilds a tournament tree over
//! `m + k` elements and pays fork/join and batch write-back constants).
//! Which one is faster depends on the batch size `m`, the summary size `k`
//! (tails or Pareto frontier), and how much real parallelism the machine
//! offers — not on any fixed batch-size threshold.
//!
//! Historically sessions switched paths at a fixed `batch >= 512`, which
//! routed every large batch onto the merge path even on machines where the
//! merge constant is 3–30x the sequential constant; `BENCH_streaming.json`
//! recorded the resulting cliff (batch 2048 ~40x slower per element than
//! batch 256).  This module replaces the fixed threshold with a measured
//! model:
//!
//! * [`CostModel`] — per-element constants for both paths, turned into
//!   predicted costs `seq ≈ m · c_seq · log2(k + 2)` and
//!   `par ≈ c_fixed + (m + k) · c_par · log2(m + k + 2)`.
//! * [`calibration`] — a cheap one-time (per process, lazy per session
//!   kind) measurement of those constants on synthetic streams, through
//!   the real session code.  On a machine with genuine parallel speedup
//!   the measured `c_par` shrinks with the pool and a crossover appears;
//!   on a single-core host calibration discovers that the merge path
//!   never wins at realistic sizes and routes everything sequential.
//! * [`PathPolicy`] — the session knob: `Fixed(t)` keeps the historical
//!   behaviour (`batch >= t` goes parallel; what `with_par_threshold`
//!   configures), `Cost` asks the calibrated model per batch.
//!
//! Determinism: the model is calibrated at most once per process and the
//! decision is a pure function of `(batch_len, summary_len)` thereafter —
//! it never reads the ambient pool size at decision time — so replaying a
//! schedule under `num_threads(1)` and under the full pool takes identical
//! paths and produces identical [`crate::IngestReport`]s.  Calibration can
//! differ *between* processes (it is a timing measurement); both paths are
//! exact, so only timing, never outcomes, depends on the decision.
//!
//! Env knobs (read once, at first use): `PLIS_COST_CALIBRATE=off` skips
//! the measurement and uses baked-in defaults; `PLIS_COST_SEQ_NS`,
//! `PLIS_COST_PAR_NS`, `PLIS_COST_PAR_FIXED_NS` (and the `PLIS_COST_W*`
//! variants for weighted sessions) pin individual constants.

use crate::session::IngestPath;
use plis_lis::TailRoute;
use std::sync::OnceLock;
use std::time::Instant;

/// Per-path cost constants, in nanoseconds.  See the module docs for the
/// formulas they feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Sequential cost per batch element per `log2` of the summary size.
    pub seq_ns: f64,
    /// Parallel-merge cost per *merged* element (`batch + summary`) per
    /// `log2` of the merged size.
    pub par_ns: f64,
    /// Fixed per-call overhead of the parallel path (tree allocation,
    /// fork setup, batch write-back floor).
    pub par_fixed_ns: f64,
}

/// Baked-in fallback for unweighted sessions (used when calibration is
/// disabled): measured on a 1-core container, where the merge path never
/// wins — `par_ns > seq_ns` makes [`CostModel::choose`] always sequential.
pub const DEFAULT_UNWEIGHTED: CostModel =
    CostModel { seq_ns: 14.0, par_ns: 30.0, par_fixed_ns: 2_000.0 };

/// Baked-in fallback for weighted sessions: the merge path additionally
/// rebuilds a dominant-max store per call, so its constant is far larger.
pub const DEFAULT_WEIGHTED: CostModel =
    CostModel { seq_ns: 14.0, par_ns: 250.0, par_fixed_ns: 20_000.0 };

fn log2p2(n: usize) -> f64 {
    ((n + 2) as f64).log2()
}

/// Fraction of a parallel ingest's predicted merge cost that maintaining
/// the vEB tail-set mirror may add before `Backend::Auto` drops the mirror
/// and falls back to binary-searching the tails array.  The mirror only
/// speeds up value-domain *probes*; ingest itself never needs it, so it is
/// kept exactly when it is cheap insurance relative to the work the batch
/// already does.
const MIRROR_SLACK: f64 = 0.10;

/// Amortised nanoseconds per vEB delta element per `log2` of the universe
/// bit width (`PLIS_COST_VEB_DELTA_NS` pins it; read once).  Not measured
/// by calibration: unlike the path constants it only scales a single term
/// against the already-calibrated merge cost.
fn veb_delta_ns() -> f64 {
    static NS: OnceLock<f64> = OnceLock::new();
    *NS.get_or_init(|| {
        std::env::var("PLIS_COST_VEB_DELTA_NS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|v: &f64| v.is_finite() && *v > 0.0)
            .unwrap_or(64.0)
    })
}

impl CostModel {
    /// Predicted nanoseconds for the sequential path on a `batch`-element
    /// batch against a `summary`-entry tails array / frontier.
    pub fn seq_cost_ns(&self, batch: usize, summary: usize) -> f64 {
        batch as f64 * self.seq_ns * log2p2(summary)
    }

    /// Predicted nanoseconds for the parallel merge path on the same call.
    pub fn par_cost_ns(&self, batch: usize, summary: usize) -> f64 {
        let merged = batch + summary;
        self.par_fixed_ns + merged as f64 * self.par_ns * log2p2(merged)
    }

    /// The cheaper path for this call.  Ties go sequential (it has the
    /// smaller memory footprint and no fork traffic).
    pub fn choose(&self, batch: usize, summary: usize) -> IngestPath {
        if self.par_cost_ns(batch, summary) < self.seq_cost_ns(batch, summary) {
            IngestPath::ParallelMerge
        } else {
            IngestPath::Sequential
        }
    }

    /// Tail-set route for a parallel ingest of `batch` elements against
    /// `tails` current tails over `[0, universe)` — the decision behind
    /// `Backend::Auto`, mirroring how `DominantMaxKind::Auto` resolves per
    /// call from the merged size.
    ///
    /// The tail-set delta of one ingest is bounded by the smaller merge
    /// side, and each delta element costs `O(log log U)` vEB work with a
    /// large constant; the mirror is kept exactly when that predicted work
    /// stays within `MIRROR_SLACK` of the merge work the batch performs
    /// anyway.  Like [`CostModel::choose`], the decision is a pure function
    /// of `(universe, tails, batch)` — never the pool width — so outcomes
    /// stay bit-identical across thread counts.
    pub fn tail_route(&self, universe: u64, tails: usize, batch: usize) -> TailRoute {
        let delta = (tails.min(batch) + 1) as f64;
        let bits = 64 - universe.saturating_sub(1).leading_zeros() as usize;
        let mirror_ns = delta * veb_delta_ns() * log2p2(bits);
        if mirror_ns <= MIRROR_SLACK * self.par_cost_ns(batch, tails) {
            TailRoute::Veb
        } else {
            TailRoute::SortedVec
        }
    }

    /// Smallest batch size at which the parallel path wins against a
    /// `summary`-entry summary, if one exists below 2^26.  `None` means
    /// the model never prefers the merge path at realistic sizes (the
    /// single-core outcome).  Exposed for diagnostics and the bench bin.
    pub fn crossover_batch(&self, summary: usize) -> Option<usize> {
        // par/seq cost ratio is monotone decreasing in the batch size, so
        // a doubling search suffices.
        let mut m = 1usize;
        while m <= (1 << 26) {
            if self.choose(m, summary) == IngestPath::ParallelMerge {
                // Binary-search the exact boundary inside [m/2, m].
                let (mut lo, mut hi) = (m / 2, m);
                while lo + 1 < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.choose(mid, summary) == IngestPath::ParallelMerge {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                return Some(hi);
            }
            m *= 2;
        }
        None
    }
}

/// How a session decides between the sequential and the parallel-merge
/// ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathPolicy {
    /// The historical knob: batches of at least this many elements take
    /// the parallel path, smaller ones the sequential path.
    Fixed(usize),
    /// Ask the calibrated [`CostModel`] per batch (the default).
    #[default]
    Cost,
}

impl PathPolicy {
    /// Decide the path for an unweighted ingest of `batch` elements
    /// against `tails` current tails.
    pub fn choose(self, batch: usize, tails: usize) -> IngestPath {
        match self {
            PathPolicy::Fixed(t) => {
                if batch >= t {
                    IngestPath::ParallelMerge
                } else {
                    IngestPath::Sequential
                }
            }
            PathPolicy::Cost => calibration::unweighted().choose(batch, tails),
        }
    }

    /// Decide the path for a weighted ingest of `batch` pairs against a
    /// `frontier`-entry Pareto frontier.
    pub fn choose_weighted(self, batch: usize, frontier: usize) -> IngestPath {
        match self {
            PathPolicy::Fixed(t) => {
                if batch >= t {
                    IngestPath::ParallelMerge
                } else {
                    IngestPath::Sequential
                }
            }
            PathPolicy::Cost => calibration::weighted().choose(batch, frontier),
        }
    }

    /// Parse a policy spec: `"cost"` or `"fixed:N"` (also bare `"N"`).
    /// Used by the bench bin's `PLIS_BENCH_PATH_POLICY` knob.
    pub fn parse(s: &str) -> Option<PathPolicy> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("cost") {
            return Some(PathPolicy::Cost);
        }
        let t = s.strip_prefix("fixed:").unwrap_or(s);
        t.parse::<usize>().ok().map(|n| PathPolicy::Fixed(n.max(1)))
    }

    /// Short display name (`"cost"` or `"fixed:N"`), the inverse of
    /// [`PathPolicy::parse`].
    pub fn name(self) -> String {
        match self {
            PathPolicy::Fixed(t) => format!("fixed:{t}"),
            PathPolicy::Cost => "cost".to_string(),
        }
    }
}

/// One-time measurement of the [`CostModel`] constants, through the real
/// session code on synthetic streams.
pub mod calibration {
    use super::*;
    use crate::session::{Backend, StreamingLis};
    use crate::wsession::WeightedStreamingLis;
    use plis_lis::DominantMaxKind;

    /// The calibrated unweighted model (memoised per process).
    pub fn unweighted() -> &'static CostModel {
        static MODEL: OnceLock<CostModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            resolve("PLIS_COST_SEQ_NS", "PLIS_COST_PAR_NS", "PLIS_COST_PAR_FIXED_NS", || {
                measure_unweighted()
            })
            .unwrap_or(DEFAULT_UNWEIGHTED)
        })
    }

    /// The calibrated weighted model (memoised per process, lazily — an
    /// unweighted-only workload never pays the weighted probe).
    pub fn weighted() -> &'static CostModel {
        static MODEL: OnceLock<CostModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            resolve("PLIS_COST_WSEQ_NS", "PLIS_COST_WPAR_NS", "PLIS_COST_WPAR_FIXED_NS", || {
                measure_weighted()
            })
            .unwrap_or(DEFAULT_WEIGHTED)
        })
    }

    fn env_f64(key: &str) -> Option<f64> {
        std::env::var(key).ok().and_then(|s| s.parse().ok()).filter(|v: &f64| v.is_finite())
    }

    fn calibration_off() -> bool {
        matches!(std::env::var("PLIS_COST_CALIBRATE").as_deref(), Ok("off") | Ok("0") | Ok("false"))
    }

    /// Measurement, with every constant individually overridable from the
    /// environment; `None` means "use the baked default".
    fn resolve(
        seq_key: &str,
        par_key: &str,
        fixed_key: &str,
        measure: impl FnOnce() -> CostModel,
    ) -> Option<CostModel> {
        let mut model = if calibration_off() { None } else { Some(measure()) };
        if let (Some(seq), Some(par)) = (env_f64(seq_key), env_f64(par_key)) {
            let base = model.unwrap_or(DEFAULT_UNWEIGHTED);
            model = Some(CostModel { seq_ns: seq, par_ns: par, ..base });
        }
        if let Some(fixed) = env_f64(fixed_key) {
            let base = model.unwrap_or(DEFAULT_UNWEIGHTED);
            model = Some(CostModel { par_fixed_ns: fixed, ..base });
        }
        model
    }

    /// Deterministic synthetic stream with a mildly increasing bias, so
    /// the session grows a non-trivial summary during the probe.
    fn stream(n: usize, universe: u64) -> Vec<u64> {
        let mut state = 0x9E3779B97F4A7C15u64;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let jitter = (state >> 33) % (universe / 4).max(1);
                let ramp = (i as u64).saturating_mul(universe / (2 * n as u64).max(1));
                (ramp + jitter).min(universe - 1)
            })
            .collect()
    }

    /// Best-of-`reps` wall-clock nanoseconds of `f`.
    fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_nanos() as f64);
        }
        best
    }

    const PROBE_N: usize = 4_096;
    const PROBE_BATCH: usize = 256;
    const PROBE_UNIVERSE: u64 = 1 << 16;

    /// Fit a [`CostModel`] from two measured replays: the whole probe
    /// stream through the sequential path, then through the merge path.
    fn fit(seq_total_ns: f64, par_total_ns: f64, final_summary: usize) -> CostModel {
        // Representative per-call sizes over the probe: the summary grows
        // from 0 to its final size, so charge half of it on average.
        let summary = (final_summary / 2).max(1);
        let calls = (PROBE_N / PROBE_BATCH).max(1) as f64;
        let seq_ns = (seq_total_ns / PROBE_N as f64 / log2p2(summary)).max(0.1);
        let merged = PROBE_BATCH + summary;
        let par_fixed_ns = 2_000.0f64;
        let par_ns = ((par_total_ns - calls * par_fixed_ns).max(0.0)
            / (calls * merged as f64)
            / log2p2(merged))
        .max(0.1);
        CostModel { seq_ns, par_ns, par_fixed_ns }
    }

    fn measure_unweighted() -> CostModel {
        let values = stream(PROBE_N, PROBE_UNIVERSE);
        let replay = |threshold: usize| {
            let mut s =
                StreamingLis::new(PROBE_UNIVERSE, Backend::Veb).with_par_threshold(threshold);
            for chunk in values.chunks(PROBE_BATCH) {
                s.ingest(chunk);
            }
            s.lis_length() as usize
        };
        let mut final_k = 0usize;
        let seq_ns = best_ns(2, || final_k = replay(usize::MAX));
        let par_ns = best_ns(2, || {
            replay(1);
        });
        fit(seq_ns, par_ns, final_k)
    }

    fn measure_weighted() -> CostModel {
        // The weighted merge path is ~25x the sequential cost per element,
        // so a smaller probe keeps one-time calibration in the low
        // milliseconds.
        let n = PROBE_N / 4;
        let values = stream(n, PROBE_UNIVERSE);
        let pairs: Vec<(u64, u64)> = values.iter().map(|&v| (v, 1 + v % 97)).collect();
        let replay = |threshold: usize| {
            let mut s = WeightedStreamingLis::new(PROBE_UNIVERSE, DominantMaxKind::RangeTree)
                .with_par_threshold(threshold);
            for chunk in pairs.chunks(PROBE_BATCH) {
                s.ingest(chunk);
            }
            s.frontier().len()
        };
        let mut final_f = 0usize;
        let seq_total = best_ns(2, || final_f = replay(usize::MAX));
        let par_total = best_ns(1, || {
            replay(1);
        });
        // Rescale the fit to this probe's smaller n.
        let summary = (final_f / 2).max(1);
        let calls = (n / PROBE_BATCH).max(1) as f64;
        let seq_ns = (seq_total / n as f64 / log2p2(summary)).max(0.1);
        let merged = PROBE_BATCH + summary;
        let par_fixed_ns = 20_000.0f64;
        let par_ns = ((par_total - calls * par_fixed_ns).max(0.0)
            / (calls * merged as f64)
            / log2p2(merged))
        .max(0.1);
        CostModel { seq_ns, par_ns, par_fixed_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_replicates_the_threshold_rule() {
        let p = PathPolicy::Fixed(512);
        assert_eq!(p.choose(511, 0), IngestPath::Sequential);
        assert_eq!(p.choose(512, 0), IngestPath::ParallelMerge);
        assert_eq!(p.choose_weighted(512, 9_999), IngestPath::ParallelMerge);
    }

    #[test]
    fn cost_decisions_are_stable_within_a_process() {
        // Whatever calibration measured, the same (batch, summary) point
        // must map to the same path on every call — the determinism
        // contract the engine's cross-pool tests rely on.
        for &(m, k) in &[(1usize, 0usize), (64, 10), (512, 200), (2_048, 170), (65_536, 4_000)] {
            let first = PathPolicy::Cost.choose(m, k);
            for _ in 0..3 {
                assert_eq!(PathPolicy::Cost.choose(m, k), first);
            }
            let firstw = PathPolicy::Cost.choose_weighted(m, k);
            for _ in 0..3 {
                assert_eq!(PathPolicy::Cost.choose_weighted(m, k), firstw);
            }
        }
    }

    #[test]
    fn model_prefers_sequential_when_par_constant_dominates() {
        let m = CostModel { seq_ns: 14.0, par_ns: 45.0, par_fixed_ns: 2_000.0 };
        // par per-element constant above the sequential one: the merge
        // path can never win (its log factor is also the larger one).
        for &(batch, k) in &[(64usize, 0usize), (512, 170), (2_048, 170), (1 << 20, 1 << 10)] {
            assert_eq!(m.choose(batch, k), IngestPath::Sequential, "batch {batch} k {k}");
        }
        assert_eq!(m.crossover_batch(170), None);
    }

    #[test]
    fn model_finds_a_crossover_when_parallelism_pays() {
        // A machine where the merge path is 4x cheaper per element than
        // the sequential path (e.g. real parallel speedup): large batches
        // must flip, small ones must not.
        let m = CostModel { seq_ns: 40.0, par_ns: 10.0, par_fixed_ns: 50_000.0 };
        let cross = m.crossover_batch(1_000).expect("crossover must exist");
        assert!(cross > 64, "tiny batches must stay sequential (got {cross})");
        assert_eq!(m.choose(cross - 1, 1_000), IngestPath::Sequential);
        assert_eq!(m.choose(cross, 1_000), IngestPath::ParallelMerge);
        // And the boundary is consistent with choose() everywhere nearby.
        for probe in (cross.saturating_sub(32))..cross {
            assert_eq!(m.choose(probe, 1_000), IngestPath::Sequential);
        }
    }

    #[test]
    fn tail_route_tracks_delta_versus_merge_work() {
        let m = DEFAULT_UNWEIGHTED;
        let universe = 1u64 << 32;
        // Small batch against comparable tails: the delta is as large as
        // the batch itself, the mirror costs more than its slack — drop it.
        assert_eq!(m.tail_route(universe, 300, 256), TailRoute::SortedVec);
        // Large batch against few tails: the delta is bounded by the tails
        // and the merge dwarfs it — keep the mirror.
        assert_eq!(m.tail_route(universe, 100, 4_096), TailRoute::Veb);
        // The decision is a pure function: stable across calls.
        for _ in 0..3 {
            assert_eq!(m.tail_route(universe, 300, 256), TailRoute::SortedVec);
        }
    }

    #[test]
    fn policy_parse_round_trips() {
        assert_eq!(PathPolicy::parse("cost"), Some(PathPolicy::Cost));
        assert_eq!(PathPolicy::parse("fixed:512"), Some(PathPolicy::Fixed(512)));
        assert_eq!(PathPolicy::parse("512"), Some(PathPolicy::Fixed(512)));
        assert_eq!(PathPolicy::parse("fixed:0"), Some(PathPolicy::Fixed(1)));
        assert_eq!(PathPolicy::parse("nonsense"), None);
        for p in [PathPolicy::Cost, PathPolicy::Fixed(64)] {
            assert_eq!(PathPolicy::parse(&p.name()), Some(p));
        }
    }
}
