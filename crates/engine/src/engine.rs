//! The multi-session front: shard many [`StreamingLis`] sessions and
//! process whole traffic ticks in parallel.
//!
//! Sessions are owned by *shards* (session id → shard by FNV-1a hash).  A
//! tick is a `Vec<(SessionId, Batch)>`; [`Engine::ingest_tick`] partitions
//! the tick by shard and processes the shards through the join-splitting
//! `par_iter` surface with a one-shard grain (disjoint shards, no locks —
//! the same isolation argument the vEB batch operations use for disjoint
//! clusters), then returns per-batch [`IngestReport`]s in the original tick
//! order.  Batches addressed to the same session within one tick are
//! applied in tick order, because a session lives in exactly one shard and
//! each shard replays its work list sequentially.  [`TickReport`] exposes
//! how many distinct worker threads actually participated, which the
//! determinism and parallelism tests assert on.

use crate::session::{Backend, IngestReport, StreamingLis};
use rayon::prelude::*;
use std::collections::HashMap;

/// Name of one independent stream within an [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(String);

impl SessionId {
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for SessionId {
    fn from(s: &str) -> Self {
        SessionId(s.to_string())
    }
}

impl From<String> for SessionId {
    fn from(s: String) -> Self {
        SessionId(s)
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Engine-wide configuration, applied to every session it creates.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Value universe `[0, universe)` for every session.
    pub universe: u64,
    /// Tail-set backend for every session.
    pub backend: Backend,
    /// Number of shards sessions are spread over.  Defaults to the
    /// hardware parallelism.
    pub shards: usize,
    /// Batch size at which a session switches to the parallel merge path.
    pub par_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            universe: 1 << 32,
            backend: Backend::Auto,
            shards: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            par_threshold: crate::session::DEFAULT_PAR_THRESHOLD,
        }
    }
}

/// What one [`Engine::ingest_tick`] call did.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// One report per input batch, in the original tick order.
    pub reports: Vec<(SessionId, IngestReport)>,
    /// Total elements ingested across all batches.
    pub total_ingested: usize,
    /// Number of distinct sessions that received data.
    pub sessions_touched: usize,
    /// Number of distinct worker threads that processed shards in this
    /// tick.  Purely observational (scheduling-dependent): it is 1 under a
    /// 1-thread pool and may exceed 1 when the pool and the helper-thread
    /// budget allow real parallelism.  Excluded from determinism
    /// comparisons, which use [`TickReport::reports`] and the totals.
    pub worker_threads: usize,
}

#[derive(Debug, Default)]
struct Shard {
    sessions: HashMap<String, StreamingLis>,
}

/// One batch of a tick, borrowed from the caller: original tick position,
/// target session, payload.
type WorkItem<'a> = (usize, &'a SessionId, &'a [u64]);

impl Shard {
    /// Apply this shard's slice of the tick, in tick order, creating
    /// sessions on first contact.
    fn process(
        &mut self,
        work: Vec<WorkItem<'_>>,
        config: &EngineConfig,
    ) -> Vec<(usize, SessionId, IngestReport)> {
        work.into_iter()
            .map(|(index, id, batch)| {
                let session = self.sessions.entry(id.as_str().to_string()).or_insert_with(|| {
                    StreamingLis::new(config.universe, config.backend)
                        .with_par_threshold(config.par_threshold)
                });
                let report = session.ingest(batch);
                (index, id.clone(), report)
            })
            .collect()
    }
}

/// A sharded multiplexer of independent [`StreamingLis`] sessions.
///
/// See the crate docs for a usage example.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    shards: Vec<Shard>,
}

impl Engine {
    pub fn new(mut config: EngineConfig) -> Self {
        config.shards = config.shards.max(1);
        let shards = (0..config.shards).map(|_| Shard::default()).collect();
        Engine { config, shards }
    }

    /// Engine with default config over the given universe.
    pub fn with_universe(universe: u64) -> Self {
        Engine::new(EngineConfig { universe, ..EngineConfig::default() })
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn shard_index(&self, id: &str) -> usize {
        // FNV-1a; any stable hash works, but the std RandomState hasher is
        // seeded per-process and would make shard assignment (and therefore
        // parallel schedules) non-reproducible across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Create an empty session; returns `false` if it already exists.
    /// (Sessions are also created implicitly on first ingest.)
    pub fn create_session(&mut self, id: impl Into<SessionId>) -> bool {
        let id = id.into();
        let shard = self.shard_index(id.as_str());
        let config = &self.config;
        let fresh = !self.shards[shard].sessions.contains_key(id.as_str());
        if fresh {
            self.shards[shard].sessions.insert(
                id.as_str().to_string(),
                StreamingLis::new(config.universe, config.backend)
                    .with_par_threshold(config.par_threshold),
            );
        }
        fresh
    }

    /// Drop a session and all its state; returns `true` if it existed.
    pub fn remove_session(&mut self, id: &str) -> bool {
        let shard = self.shard_index(id);
        self.shards[shard].sessions.remove(id).is_some()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.len()).sum()
    }

    /// All session ids, sorted.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .shards
            .iter()
            .flat_map(|s| s.sessions.keys().map(|k| SessionId::from(k.clone())))
            .collect();
        ids.sort();
        ids
    }

    /// Read access to one session's full query API.
    pub fn session(&self, id: &str) -> Option<&StreamingLis> {
        self.shards[self.shard_index(id)].sessions.get(id)
    }

    /// Current LIS length of a session, if it exists.
    pub fn lis_length(&self, id: &str) -> Option<u32> {
        self.session(id).map(StreamingLis::lis_length)
    }

    /// Ingest one traffic tick: many `(session, batch)` pairs, processed
    /// shard-parallel.  Unknown sessions are created on the fly.
    pub fn ingest_tick(&mut self, tick: Vec<(SessionId, Vec<u64>)>) -> TickReport {
        self.ingest_tick_ref(&tick)
    }

    /// As [`Engine::ingest_tick`], but borrowing the tick — callers that
    /// replay a prepared schedule (benchmarks, log replays) avoid deep
    /// copies of every batch.
    pub fn ingest_tick_ref(&mut self, tick: &[(SessionId, Vec<u64>)]) -> TickReport {
        let batch_count = tick.len();
        // Partition the tick by shard, remembering original positions.
        let mut work: Vec<Vec<WorkItem<'_>>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (index, (id, batch)) in tick.iter().enumerate() {
            let shard = self.shard_index(id.as_str());
            work[shard].push((index, id, batch.as_slice()));
        }

        // Process the disjoint shards through the parallel-iterator surface.
        // `with_max_len(1)` makes every shard its own piece: shards are few
        // but heavy, so the default element-count grain would under-split.
        type ShardOutput = (Vec<(usize, SessionId, IngestReport)>, std::thread::ThreadId);
        let config = &self.config;
        let per_shard: Vec<ShardOutput> = self
            .shards
            .par_iter_mut()
            .zip(work.par_iter_mut())
            .with_max_len(1)
            .map(|(shard, work)| {
                (shard.process(std::mem::take(work), config), std::thread::current().id())
            })
            .collect();
        let worker_threads = per_shard
            .iter()
            .map(|(_, id)| *id)
            .collect::<std::collections::HashSet<_>>()
            .len()
            .max(1);
        let mut labeled: Vec<(usize, SessionId, IngestReport)> =
            per_shard.into_iter().flat_map(|(reports, _)| reports).collect();
        labeled.sort_unstable_by_key(|&(index, _, _)| index);
        debug_assert_eq!(labeled.len(), batch_count);

        let total_ingested = labeled.iter().map(|(_, _, r)| r.ingested).sum();
        let sessions_touched = {
            let mut names: Vec<&str> = labeled.iter().map(|(_, id, _)| id.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            names.len()
        };
        TickReport {
            reports: labeled.into_iter().map(|(_, id, r)| (id, r)).collect(),
            total_ingested,
            sessions_touched,
            worker_threads,
        }
    }

    /// Cross-check invariants of every session; used by the test suites.
    pub fn check_invariants(&self) {
        for shard in &self.shards {
            for session in shard.sessions.values() {
                session.check_invariants();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn tick_reports_preserve_input_order() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 16, shards: 4, ..EngineConfig::default() });
        let tick: Vec<(SessionId, Vec<u64>)> = (0..20)
            .map(|i| (SessionId::from(format!("s{}", i % 7)), vec![i as u64, i as u64 + 1]))
            .collect();
        let expect_ids: Vec<SessionId> = tick.iter().map(|(id, _)| id.clone()).collect();
        let report = engine.ingest_tick(tick);
        let got_ids: Vec<SessionId> = report.reports.iter().map(|(id, _)| id.clone()).collect();
        assert_eq!(got_ids, expect_ids);
        assert_eq!(report.total_ingested, 40);
        assert_eq!(report.sessions_touched, 7);
        assert_eq!(engine.session_count(), 7);
        engine.check_invariants();
    }

    #[test]
    fn multiplexed_sessions_match_dedicated_sessions() {
        let mut state = 0xFEED_BEEFu64;
        let universe = 1u64 << 14;
        let session_names = ["alpha", "bravo", "charlie", "delta", "echo"];
        let mut engine = Engine::new(EngineConfig {
            universe,
            shards: 3,
            par_threshold: 64,
            ..EngineConfig::default()
        });
        let mut reference: HashMap<&str, StreamingLis> = session_names
            .iter()
            .map(|&name| (name, StreamingLis::new(universe, Backend::Auto).with_par_threshold(64)))
            .collect();
        for _round in 0..12 {
            let mut tick = Vec::new();
            for &name in &session_names {
                let len = (xorshift(&mut state) % 200) as usize;
                let batch: Vec<u64> = (0..len).map(|_| xorshift(&mut state) % universe).collect();
                reference.get_mut(name).unwrap().ingest(&batch);
                tick.push((SessionId::from(name), batch));
            }
            engine.ingest_tick(tick);
        }
        for &name in &session_names {
            let live = engine.session(name).expect("session exists");
            let want = &reference[name];
            assert_eq!(live.ranks(), want.ranks(), "session {name}");
            assert_eq!(live.tails(), want.tails(), "session {name}");
        }
        engine.check_invariants();
    }

    #[test]
    fn same_session_twice_in_one_tick_applies_in_order() {
        let mut engine = Engine::with_universe(1 << 10);
        let report = engine.ingest_tick(vec![
            (SessionId::from("s"), vec![100, 200]),
            (SessionId::from("s"), vec![150, 300]),
        ]);
        assert_eq!(report.reports.len(), 2);
        assert_eq!(report.sessions_touched, 1);
        // 100 < 200 then 150 does not extend, 300 does: LIS = 100, 200, 300.
        assert_eq!(engine.lis_length("s"), Some(3));
        let session = engine.session("s").unwrap();
        assert_eq!(session.values(), &[100, 200, 150, 300]);
        assert_eq!(session.ranks(), &[1, 2, 2, 3]);
    }

    #[test]
    fn create_remove_and_lookup() {
        let mut engine = Engine::with_universe(1 << 8);
        assert!(engine.create_session("x"));
        assert!(!engine.create_session("x"));
        assert_eq!(engine.session_count(), 1);
        assert_eq!(engine.lis_length("x"), Some(0));
        assert_eq!(engine.lis_length("missing"), None);
        assert!(engine.remove_session("x"));
        assert!(!engine.remove_session("x"));
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn single_shard_engine_still_works() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 1, ..EngineConfig::default() });
        let report = engine.ingest_tick(vec![
            (SessionId::from("a"), vec![1, 2, 3]),
            (SessionId::from("b"), vec![3, 2, 1]),
        ]);
        assert_eq!(report.total_ingested, 6);
        assert_eq!(engine.lis_length("a"), Some(3));
        assert_eq!(engine.lis_length("b"), Some(1));
    }

    #[test]
    fn session_ids_are_sorted_and_complete() {
        let mut engine = Engine::with_universe(64);
        for name in ["zeta", "alpha", "mid"] {
            engine.create_session(name);
        }
        let ids: Vec<String> =
            engine.session_ids().iter().map(|id| id.as_str().to_string()).collect();
        assert_eq!(ids, vec!["alpha", "mid", "zeta"]);
    }
}
