//! The multi-session front: shard many streaming sessions — unweighted
//! ([`StreamingLis`]) and weighted ([`WeightedStreamingLis`]) side by side
//! — and process whole traffic ticks in parallel.
//!
//! Sessions are owned by *shards* (session id → shard by FNV-1a hash).  A
//! tick is a list of `(SessionId, batch)` pairs — plain `Vec<u64>` batches,
//! weighted `Vec<(u64, u64)>` batches, or a [`TickBatch`] mix of both —
//! and [`Engine::ingest_tick_mixed`] partitions the tick by shard and
//! processes the shards through the join-splitting `par_iter` surface with
//! a one-shard grain (disjoint shards, no locks — the same isolation
//! argument the vEB batch operations use for disjoint clusters), then
//! returns per-batch [`BatchReport`]s in the original tick order.  Batches
//! addressed to the same session within one tick are applied in tick
//! order, because a session lives in exactly one shard and each shard
//! replays its work list sequentially.  [`TickReport`] exposes how many
//! distinct worker threads actually participated, which the determinism
//! and parallelism tests assert on.
//!
//! # Session kinds
//!
//! Every session has a [`SessionKind`]: *unweighted* sessions serve plain
//! LIS state, *weighted* sessions serve Algorithm-2 dp scores.  A session's
//! kind is fixed when it is created — explicitly via
//! [`Engine::create_session_kind`], or implicitly on first contact: a
//! weighted batch creates a weighted session, a plain batch creates a
//! session of the configured [`EngineConfig::default_kind`].  Plain batches
//! into a weighted session ingest with unit weights; weighted batches into
//! an unweighted session are a caller error (panic).

use crate::query::{MixedTickReport, OpReport, QueryBatch, QueryReport, QueryTickReport, TickOp};
use crate::session::{Backend, IngestReport, StreamingLis};
use crate::wsession::{WeightedIngestReport, WeightedStreamingLis};
use plis_lis::DominantMaxKind;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Name of one independent stream within an [`Engine`].
///
/// Internally an `Arc<str>`: ids are cloned into every per-batch report and
/// into the shard maps, so cloning must be a reference bump, not a heap
/// copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(Arc<str>);

impl SessionId {
    /// The session name as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared key, for maps keyed on the same allocation.
    fn key(&self) -> Arc<str> {
        Arc::clone(&self.0)
    }
}

impl From<&str> for SessionId {
    fn from(s: &str) -> Self {
        SessionId(Arc::from(s))
    }
}

impl From<String> for SessionId {
    fn from(s: String) -> Self {
        SessionId(Arc::from(s))
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Which algorithm a session serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// Plain LIS state ([`StreamingLis`]): ranks, tails, LIS length.
    Unweighted,
    /// Weighted LIS state ([`WeightedStreamingLis`]): dp scores and the
    /// Pareto frontier, served by Algorithm 2.
    Weighted,
}

/// One batch of a mixed tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickBatch {
    /// Unweighted values.
    Plain(Vec<u64>),
    /// `(value, weight)` pairs.
    Weighted(Vec<(u64, u64)>),
}

impl TickBatch {
    /// Number of elements in the batch.
    pub fn len(&self) -> usize {
        match self {
            TickBatch::Plain(b) => b.len(),
            TickBatch::Weighted(b) => b.len(),
        }
    }

    /// True when the batch holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u64>> for TickBatch {
    fn from(b: Vec<u64>) -> Self {
        TickBatch::Plain(b)
    }
}

impl From<Vec<(u64, u64)>> for TickBatch {
    fn from(b: Vec<(u64, u64)>) -> Self {
        TickBatch::Weighted(b)
    }
}

/// Borrowed view of one tick batch (what the shard workers consume).
#[derive(Debug, Clone, Copy)]
enum BatchRef<'a> {
    Plain(&'a [u64]),
    Weighted(&'a [(u64, u64)]),
}

impl BatchRef<'_> {
    /// The kind a session implicitly created by this batch should get:
    /// weighted data forces a weighted session; plain data defers to the
    /// engine default.
    fn implied_kind(self, default_kind: SessionKind) -> SessionKind {
        match self {
            BatchRef::Plain(_) => default_kind,
            BatchRef::Weighted(_) => SessionKind::Weighted,
        }
    }
}

/// Borrowed view of one slot of a mixed tick: a write or a read.
#[derive(Debug, Clone, Copy)]
enum OpRef<'a> {
    Ingest(BatchRef<'a>),
    Query(&'a QueryBatch),
}

/// Engine-wide configuration, applied to every session it creates.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Value universe `[0, universe)` for every session.
    pub universe: u64,
    /// Tail-set backend for every unweighted session.
    pub backend: Backend,
    /// Dominant-max store for every weighted session.
    pub dommax: DominantMaxKind,
    /// Kind given to sessions created without an explicit kind (by
    /// [`Engine::create_session`] or implicitly by a plain batch).
    pub default_kind: SessionKind,
    /// Number of shards sessions are spread over.  Defaults to the
    /// hardware parallelism.
    pub shards: usize,
    /// Batch size at which a session switches to the parallel merge path.
    pub par_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            universe: 1 << 32,
            backend: Backend::Auto,
            dommax: DominantMaxKind::Auto,
            default_kind: SessionKind::Unweighted,
            // The cached pool width, NOT std::thread::available_parallelism:
            // the latter re-reads cgroup state on every call (~10µs), which
            // is exactly the cost the vendored rayon caches away.
            shards: rayon::current_num_threads(),
            par_threshold: crate::session::DEFAULT_PAR_THRESHOLD,
        }
    }
}

impl EngineConfig {
    /// Build a fresh session of the given kind under this configuration.
    fn new_session(&self, kind: SessionKind) -> SessionState {
        match kind {
            SessionKind::Unweighted => SessionState::Unweighted(
                StreamingLis::new(self.universe, self.backend)
                    .with_par_threshold(self.par_threshold),
            ),
            SessionKind::Weighted => SessionState::Weighted(
                WeightedStreamingLis::new(self.universe, self.dommax)
                    .with_par_threshold(self.par_threshold),
            ),
        }
    }
}

/// A live session of either kind.
#[derive(Debug, Clone)]
pub enum SessionState {
    /// An unweighted (plain-LIS) session.
    Unweighted(StreamingLis),
    /// A weighted (Algorithm-2) session.
    Weighted(WeightedStreamingLis),
}

impl SessionState {
    /// Which kind this session is.
    pub fn kind(&self) -> SessionKind {
        match self {
            SessionState::Unweighted(_) => SessionKind::Unweighted,
            SessionState::Weighted(_) => SessionKind::Weighted,
        }
    }

    /// The plain session, if this is one.
    pub fn as_unweighted(&self) -> Option<&StreamingLis> {
        match self {
            SessionState::Unweighted(s) => Some(s),
            SessionState::Weighted(_) => None,
        }
    }

    /// The weighted session, if this is one.
    pub fn as_weighted(&self) -> Option<&WeightedStreamingLis> {
        match self {
            SessionState::Weighted(s) => Some(s),
            SessionState::Unweighted(_) => None,
        }
    }

    fn check_invariants(&self) {
        match self {
            SessionState::Unweighted(s) => s.check_invariants(),
            SessionState::Weighted(s) => s.check_invariants(),
        }
    }
}

/// What one batch of a tick did — the per-kind report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchReport {
    /// Report from an unweighted session.
    Unweighted(IngestReport),
    /// Report from a weighted session.
    Weighted(WeightedIngestReport),
}

impl BatchReport {
    /// Number of elements the batch ingested, whatever the kind.
    pub fn ingested(&self) -> usize {
        match self {
            BatchReport::Unweighted(r) => r.ingested,
            BatchReport::Weighted(r) => r.ingested,
        }
    }

    /// The unweighted report, if this batch hit a plain session.
    pub fn as_unweighted(&self) -> Option<&IngestReport> {
        match self {
            BatchReport::Unweighted(r) => Some(r),
            BatchReport::Weighted(_) => None,
        }
    }

    /// The weighted report, if this batch hit a weighted session.
    pub fn as_weighted(&self) -> Option<&WeightedIngestReport> {
        match self {
            BatchReport::Weighted(r) => Some(r),
            BatchReport::Unweighted(_) => None,
        }
    }
}

/// What one tick-ingest call did.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// One report per input batch, in the original tick order.
    pub reports: Vec<(SessionId, BatchReport)>,
    /// Total elements ingested across all batches.
    pub total_ingested: usize,
    /// Number of distinct sessions that received data.
    pub sessions_touched: usize,
    /// Of [`TickReport::sessions_touched`], how many were weighted
    /// sessions — the session-kind axis of the tick.
    pub weighted_sessions_touched: usize,
    /// Number of distinct worker threads that processed shards in this
    /// tick.  Purely observational (scheduling-dependent): it is 1 under a
    /// 1-thread pool and may exceed 1 when the pool and the helper-thread
    /// budget allow real parallelism.  Excluded from determinism
    /// comparisons, which use [`TickReport::reports`] and the totals.
    pub worker_threads: usize,
}

#[derive(Debug, Default)]
struct Shard {
    sessions: HashMap<Arc<str>, SessionState>,
}

/// What one shard hands back from a tick: position-labeled reports plus
/// the worker thread that produced them.
type ShardOutput<R> = (Vec<(usize, SessionId, R)>, std::thread::ThreadId);

/// The last stage of every tick path: merge per-shard outputs back into
/// tick order and count the distinct worker threads that participated
/// (at least 1, so empty ticks still report the calling thread).
fn reassemble<R>(per_shard: Vec<ShardOutput<R>>, expected: usize) -> (Vec<(SessionId, R)>, usize) {
    let worker_threads =
        per_shard.iter().map(|(_, id)| *id).collect::<std::collections::HashSet<_>>().len().max(1);
    let mut labeled: Vec<(usize, SessionId, R)> =
        per_shard.into_iter().flat_map(|(reports, _)| reports).collect();
    labeled.sort_unstable_by_key(|slot| slot.0);
    debug_assert_eq!(labeled.len(), expected);
    (labeled.into_iter().map(|(_, id, r)| (id, r)).collect(), worker_threads)
}

/// Distinct sessions among `(name, flag)` pairs: `(total, flagged)` counts
/// — the session-axis summaries of the tick reports.
fn distinct_sessions<'a>(pairs: impl Iterator<Item = (&'a str, bool)>) -> (usize, usize) {
    let mut names: Vec<(&str, bool)> = pairs.collect();
    names.sort_unstable();
    names.dedup();
    let flagged = names.iter().filter(|&&(_, flag)| flag).count();
    (names.len(), flagged)
}

/// One slot of a mixed tick, borrowed from the caller: original tick
/// position, target session, payload.
type WorkItem<'a> = (usize, &'a SessionId, OpRef<'a>);

/// One query batch of a read-only tick: original tick position, target
/// session, queries.
type QueryItem<'a> = (usize, &'a SessionId, &'a QueryBatch);

impl Shard {
    /// Apply this shard's slice of a mixed tick, in tick order.  Writes
    /// create sessions on first contact; reads never do — a query against
    /// an absent session reports [`QueryReport::missing`].
    fn process(
        &mut self,
        work: Vec<WorkItem<'_>>,
        config: &EngineConfig,
    ) -> Vec<(usize, SessionId, OpReport)> {
        work.into_iter()
            .map(|(index, id, op)| {
                let report = match op {
                    OpRef::Ingest(batch) => {
                        let state = self.sessions.entry(id.key()).or_insert_with(|| {
                            config.new_session(batch.implied_kind(config.default_kind))
                        });
                        let report = match (state, batch) {
                            (SessionState::Unweighted(s), BatchRef::Plain(b)) => {
                                BatchReport::Unweighted(s.ingest(b))
                            }
                            (SessionState::Weighted(s), BatchRef::Plain(b)) => {
                                BatchReport::Weighted(s.ingest_plain(b))
                            }
                            (SessionState::Weighted(s), BatchRef::Weighted(b)) => {
                                BatchReport::Weighted(s.ingest(b))
                            }
                            (SessionState::Unweighted(_), BatchRef::Weighted(_)) => {
                                panic!("weighted batch sent to unweighted session {id}")
                            }
                        };
                        OpReport::Ingest(report)
                    }
                    OpRef::Query(batch) => OpReport::Query(self.answer(id, batch)),
                };
                (index, id.clone(), report)
            })
            .collect()
    }

    /// Answer one query batch against this shard's copy of the session.
    fn answer(&self, id: &SessionId, batch: &QueryBatch) -> QueryReport {
        match self.sessions.get(id.as_str()) {
            Some(state) => state.answer_batch(batch),
            None => QueryReport::missing(),
        }
    }

    /// Answer this shard's slice of a read-only tick, in tick order.
    fn query(&self, work: &[QueryItem<'_>]) -> Vec<(usize, SessionId, QueryReport)> {
        work.iter().map(|&(index, id, batch)| (index, id.clone(), self.answer(id, batch))).collect()
    }
}

/// A sharded multiplexer of independent streaming sessions, weighted and
/// unweighted side by side.
///
/// See the crate docs for a usage example.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    shards: Vec<Shard>,
}

impl Engine {
    /// An engine under the given configuration (shard count floored at 1).
    pub fn new(mut config: EngineConfig) -> Self {
        config.shards = config.shards.max(1);
        let shards = (0..config.shards).map(|_| Shard::default()).collect();
        Engine { config, shards }
    }

    /// Engine with default config over the given universe.
    pub fn with_universe(universe: u64) -> Self {
        Engine::new(EngineConfig { universe, ..EngineConfig::default() })
    }

    /// The configuration every session of this engine is created under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn shard_index(&self, id: &str) -> usize {
        // FNV-1a; any stable hash works, but the std RandomState hasher is
        // seeded per-process and would make shard assignment (and therefore
        // parallel schedules) non-reproducible across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Create an empty session of the engine's default kind; returns
    /// `false` if the id already exists.  (Sessions are also created
    /// implicitly on first ingest.)
    pub fn create_session(&mut self, id: impl Into<SessionId>) -> bool {
        let kind = self.config.default_kind;
        self.create_session_kind(id, kind)
    }

    /// Create an empty session of an explicit kind; returns `false` if the
    /// id already exists (whatever its kind).
    pub fn create_session_kind(&mut self, id: impl Into<SessionId>, kind: SessionKind) -> bool {
        let id = id.into();
        let shard = self.shard_index(id.as_str());
        let config = &self.config;
        match self.shards[shard].sessions.entry(id.key()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(config.new_session(kind));
                true
            }
        }
    }

    /// Drop a session and all its state; returns `true` if it existed.
    pub fn remove_session(&mut self, id: &str) -> bool {
        let shard = self.shard_index(id);
        self.shards[shard].sessions.remove(id).is_some()
    }

    /// Number of live sessions (of both kinds).
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.len()).sum()
    }

    /// All session ids, sorted.  Ids are `Arc`-backed, so this clones
    /// references, not strings.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .shards
            .iter()
            .flat_map(|s| s.sessions.keys().map(|k| SessionId(Arc::clone(k))))
            .collect();
        ids.sort();
        ids
    }

    /// A session of either kind, if it exists.
    pub fn session_state(&self, id: &str) -> Option<&SessionState> {
        self.shards[self.shard_index(id)].sessions.get(id)
    }

    /// The kind of a session, if it exists.
    pub fn session_kind(&self, id: &str) -> Option<SessionKind> {
        self.session_state(id).map(SessionState::kind)
    }

    /// Read access to an unweighted session's full query API (`None` if
    /// the id is missing or the session is weighted).
    pub fn session(&self, id: &str) -> Option<&StreamingLis> {
        self.session_state(id).and_then(SessionState::as_unweighted)
    }

    /// Read access to a weighted session's full query API (`None` if the
    /// id is missing or the session is unweighted).
    pub fn weighted_session(&self, id: &str) -> Option<&WeightedStreamingLis> {
        self.session_state(id).and_then(SessionState::as_weighted)
    }

    /// Current LIS length of an unweighted session, if it exists.
    pub fn lis_length(&self, id: &str) -> Option<u32> {
        self.session(id).map(StreamingLis::lis_length)
    }

    /// Current best dp score of a weighted session, if it exists.
    pub fn best_score(&self, id: &str) -> Option<u64> {
        self.weighted_session(id).map(WeightedStreamingLis::best_score)
    }

    /// Ingest one traffic tick of plain batches: many `(session, batch)`
    /// pairs, processed shard-parallel.  Unknown sessions are created on
    /// the fly.
    pub fn ingest_tick(&mut self, tick: Vec<(SessionId, Vec<u64>)>) -> TickReport {
        self.ingest_tick_ref(&tick)
    }

    /// As [`Engine::ingest_tick`], but borrowing the tick — callers that
    /// replay a prepared schedule (benchmarks, log replays) avoid deep
    /// copies of every batch.
    pub fn ingest_tick_ref(&mut self, tick: &[(SessionId, Vec<u64>)]) -> TickReport {
        let work: Vec<(&SessionId, BatchRef<'_>)> =
            tick.iter().map(|(id, batch)| (id, BatchRef::Plain(batch.as_slice()))).collect();
        self.process_tick(&work)
    }

    /// Ingest one traffic tick of weighted batches (`(value, weight)`
    /// pairs).  Unknown sessions are created weighted.
    pub fn ingest_weighted_tick(&mut self, tick: Vec<(SessionId, Vec<(u64, u64)>)>) -> TickReport {
        self.ingest_weighted_tick_ref(&tick)
    }

    /// As [`Engine::ingest_weighted_tick`], borrowing the tick.
    pub fn ingest_weighted_tick_ref(
        &mut self,
        tick: &[(SessionId, Vec<(u64, u64)>)],
    ) -> TickReport {
        let work: Vec<(&SessionId, BatchRef<'_>)> =
            tick.iter().map(|(id, batch)| (id, BatchRef::Weighted(batch.as_slice()))).collect();
        self.process_tick(&work)
    }

    /// Ingest a mixed tick: plain and weighted batches interleaved, so one
    /// engine serves both traffic kinds in a single parallel pass.
    pub fn ingest_tick_mixed(&mut self, tick: &[(SessionId, TickBatch)]) -> TickReport {
        let work: Vec<(&SessionId, BatchRef<'_>)> = tick
            .iter()
            .map(|(id, batch)| {
                let r = match batch {
                    TickBatch::Plain(b) => BatchRef::Plain(b.as_slice()),
                    TickBatch::Weighted(b) => BatchRef::Weighted(b.as_slice()),
                };
                (id, r)
            })
            .collect();
        self.process_tick(&work)
    }

    /// Execute a mixed read/write tick: each slot either ingests a batch
    /// (plain or weighted) or answers a [`QueryBatch`], and slots for the
    /// same session apply in tick order — so reads observe every write
    /// that precedes them in the tick.  Writes create sessions on first
    /// contact exactly like [`Engine::ingest_tick_mixed`]; reads never do.
    pub fn ingest_query_tick(&mut self, tick: &[(SessionId, TickOp)]) -> MixedTickReport {
        let work: Vec<(&SessionId, OpRef<'_>)> = tick
            .iter()
            .map(|(id, op)| {
                let r = match op {
                    TickOp::Ingest(TickBatch::Plain(b)) => {
                        OpRef::Ingest(BatchRef::Plain(b.as_slice()))
                    }
                    TickOp::Ingest(TickBatch::Weighted(b)) => {
                        OpRef::Ingest(BatchRef::Weighted(b.as_slice()))
                    }
                    TickOp::Query(q) => OpRef::Query(q),
                };
                (id, r)
            })
            .collect();
        self.process_ops(&work)
    }

    /// Answer one tick of query batches, shard-parallel with the same
    /// one-shard grain as ingest.  Reads take `&self`: they mutate
    /// nothing, never create sessions (absent ids report
    /// [`QueryReport::missing`]), and reports come back in tick order.
    pub fn query_tick(&self, tick: &[(SessionId, QueryBatch)]) -> QueryTickReport {
        let work = self.partition_by_shard(tick.iter().map(|(id, batch)| (id, batch)));
        let per_shard: Vec<ShardOutput<QueryReport>> = self
            .shards
            .par_iter()
            .zip(work.par_iter())
            .with_max_len(1)
            .map(|(shard, work)| (shard.query(work), std::thread::current().id()))
            .collect();
        let (reports, worker_threads) = reassemble(per_shard, tick.len());

        let total_queries = reports.iter().map(|(_, r)| r.answers.len()).sum();
        let (total_sessions, sessions_queried) =
            distinct_sessions(reports.iter().map(|(id, r)| (id.as_str(), r.answered())));
        QueryTickReport {
            reports,
            total_queries,
            sessions_queried,
            sessions_missing: total_sessions - sessions_queried,
            worker_threads,
        }
    }

    /// The first stage of every tick path: partition tick slots by shard,
    /// remembering original positions so reports can be reassembled in
    /// tick order.
    fn partition_by_shard<'a, P>(
        &self,
        slots: impl Iterator<Item = (&'a SessionId, P)>,
    ) -> Vec<Vec<(usize, &'a SessionId, P)>> {
        let mut work: Vec<Vec<(usize, &'a SessionId, P)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (index, (id, payload)) in slots.enumerate() {
            work[self.shard_index(id.as_str())].push((index, id, payload));
        }
        work
    }

    /// The write-plane tick path: wrap every batch as a write op and strip
    /// the mixed report back down to a [`TickReport`].
    fn process_tick(&mut self, tick: &[(&SessionId, BatchRef<'_>)]) -> TickReport {
        let ops: Vec<(&SessionId, OpRef<'_>)> =
            tick.iter().map(|&(id, batch)| (id, OpRef::Ingest(batch))).collect();
        let mixed = self.process_ops(&ops);
        TickReport {
            reports: mixed
                .reports
                .into_iter()
                .map(|(id, op)| match op {
                    OpReport::Ingest(r) => (id, r),
                    OpReport::Query(_) => unreachable!("write-only tick produced a query report"),
                })
                .collect(),
            total_ingested: mixed.total_ingested,
            sessions_touched: mixed.sessions_touched,
            weighted_sessions_touched: mixed.weighted_sessions_touched,
            worker_threads: mixed.worker_threads,
        }
    }

    /// The shared mixed-tick path: partition by shard, process shards
    /// through the parallel-iterator surface (one piece per shard — shards
    /// are few but heavy, so the default element-count grain would
    /// under-split), reassemble reports in tick order.
    fn process_ops(&mut self, tick: &[(&SessionId, OpRef<'_>)]) -> MixedTickReport {
        let mut work = self.partition_by_shard(tick.iter().map(|&(id, op)| (id, op)));

        // Process the disjoint shards through the parallel-iterator surface.
        let config = &self.config;
        let per_shard: Vec<ShardOutput<OpReport>> = self
            .shards
            .par_iter_mut()
            .zip(work.par_iter_mut())
            .with_max_len(1)
            .map(|(shard, work)| {
                (shard.process(std::mem::take(work), config), std::thread::current().id())
            })
            .collect();
        let (reports, worker_threads) = reassemble(per_shard, tick.len());

        let total_ingested = reports.iter().map(|(_, r)| r.ingested()).sum();
        let total_queries = reports.iter().map(|(_, r)| r.queries()).sum();
        let (sessions_touched, weighted_sessions_touched) =
            distinct_sessions(reports.iter().filter_map(|(id, r)| {
                r.as_ingest().map(|r| (id.as_str(), matches!(r, BatchReport::Weighted(_))))
            }));
        let (sessions_queried, _) = distinct_sessions(reports.iter().filter_map(|(id, r)| {
            r.as_query().filter(|q| q.answered()).map(|_| (id.as_str(), false))
        }));
        MixedTickReport {
            reports,
            total_ingested,
            total_queries,
            sessions_touched,
            weighted_sessions_touched,
            sessions_queried,
            worker_threads,
        }
    }

    /// Cross-check invariants of every session; used by the test suites.
    pub fn check_invariants(&self) {
        for shard in &self.shards {
            for session in shard.sessions.values() {
                session.check_invariants();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn tick_reports_preserve_input_order() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 16, shards: 4, ..EngineConfig::default() });
        let tick: Vec<(SessionId, Vec<u64>)> = (0..20)
            .map(|i| (SessionId::from(format!("s{}", i % 7)), vec![i as u64, i as u64 + 1]))
            .collect();
        let expect_ids: Vec<SessionId> = tick.iter().map(|(id, _)| id.clone()).collect();
        let report = engine.ingest_tick(tick);
        let got_ids: Vec<SessionId> = report.reports.iter().map(|(id, _)| id.clone()).collect();
        assert_eq!(got_ids, expect_ids);
        assert_eq!(report.total_ingested, 40);
        assert_eq!(report.sessions_touched, 7);
        assert_eq!(report.weighted_sessions_touched, 0);
        assert_eq!(engine.session_count(), 7);
        engine.check_invariants();
    }

    #[test]
    fn multiplexed_sessions_match_dedicated_sessions() {
        let mut state = 0xFEED_BEEFu64;
        let universe = 1u64 << 14;
        let session_names = ["alpha", "bravo", "charlie", "delta", "echo"];
        let mut engine = Engine::new(EngineConfig {
            universe,
            shards: 3,
            par_threshold: 64,
            ..EngineConfig::default()
        });
        let mut reference: HashMap<&str, StreamingLis> = session_names
            .iter()
            .map(|&name| (name, StreamingLis::new(universe, Backend::Auto).with_par_threshold(64)))
            .collect();
        for _round in 0..12 {
            let mut tick = Vec::new();
            for &name in &session_names {
                let len = (xorshift(&mut state) % 200) as usize;
                let batch: Vec<u64> = (0..len).map(|_| xorshift(&mut state) % universe).collect();
                reference.get_mut(name).unwrap().ingest(&batch);
                tick.push((SessionId::from(name), batch));
            }
            engine.ingest_tick(tick);
        }
        for &name in &session_names {
            let live = engine.session(name).expect("session exists");
            let want = &reference[name];
            assert_eq!(live.ranks(), want.ranks(), "session {name}");
            assert_eq!(live.tails(), want.tails(), "session {name}");
        }
        engine.check_invariants();
    }

    #[test]
    fn same_session_twice_in_one_tick_applies_in_order() {
        let mut engine = Engine::with_universe(1 << 10);
        let report = engine.ingest_tick(vec![
            (SessionId::from("s"), vec![100, 200]),
            (SessionId::from("s"), vec![150, 300]),
        ]);
        assert_eq!(report.reports.len(), 2);
        assert_eq!(report.sessions_touched, 1);
        // 100 < 200 then 150 does not extend, 300 does: LIS = 100, 200, 300.
        assert_eq!(engine.lis_length("s"), Some(3));
        let session = engine.session("s").unwrap();
        assert_eq!(session.values(), &[100, 200, 150, 300]);
        assert_eq!(session.ranks(), &[1, 2, 2, 3]);
    }

    #[test]
    fn create_remove_and_lookup() {
        let mut engine = Engine::with_universe(1 << 8);
        assert!(engine.create_session("x"));
        assert!(!engine.create_session("x"));
        assert_eq!(engine.session_count(), 1);
        assert_eq!(engine.lis_length("x"), Some(0));
        assert_eq!(engine.lis_length("missing"), None);
        assert!(engine.remove_session("x"));
        assert!(!engine.remove_session("x"));
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn single_shard_engine_still_works() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 1, ..EngineConfig::default() });
        let report = engine.ingest_tick(vec![
            (SessionId::from("a"), vec![1, 2, 3]),
            (SessionId::from("b"), vec![3, 2, 1]),
        ]);
        assert_eq!(report.total_ingested, 6);
        assert_eq!(engine.lis_length("a"), Some(3));
        assert_eq!(engine.lis_length("b"), Some(1));
    }

    #[test]
    fn session_ids_are_sorted_and_complete() {
        let mut engine = Engine::with_universe(64);
        for name in ["zeta", "alpha", "mid"] {
            engine.create_session(name);
        }
        let ids: Vec<String> =
            engine.session_ids().iter().map(|id| id.as_str().to_string()).collect();
        assert_eq!(ids, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn weighted_sessions_multiplex_next_to_plain_ones() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 3, ..EngineConfig::default() });
        let tick: Vec<(SessionId, TickBatch)> = vec![
            (SessionId::from("plain"), vec![5u64, 7, 6, 8].into()),
            (SessionId::from("heavy"), vec![(5u64, 10u64), (7, 1), (6, 20), (8, 1)].into()),
        ];
        let report = engine.ingest_tick_mixed(&tick);
        assert_eq!(report.total_ingested, 8);
        assert_eq!(report.sessions_touched, 2);
        assert_eq!(report.weighted_sessions_touched, 1);
        assert_eq!(engine.session_kind("plain"), Some(SessionKind::Unweighted));
        assert_eq!(engine.session_kind("heavy"), Some(SessionKind::Weighted));
        assert_eq!(engine.lis_length("plain"), Some(3)); // 5 < 6 < 8
        assert_eq!(engine.lis_length("heavy"), None);
        assert_eq!(engine.best_score("heavy"), Some(31)); // 5 + 6 + 8 weights
        let heavy = engine.weighted_session("heavy").unwrap();
        assert_eq!(heavy.scores(), &[10, 11, 30, 31]);
        engine.check_invariants();
    }

    #[test]
    fn plain_batches_feed_weighted_sessions_with_unit_weights() {
        let mut engine = Engine::new(EngineConfig {
            universe: 1 << 10,
            default_kind: SessionKind::Weighted,
            ..EngineConfig::default()
        });
        let report = engine.ingest_tick(vec![(SessionId::from("w"), vec![3, 1, 4, 1, 5])]);
        assert_eq!(report.weighted_sessions_touched, 1);
        let session = engine.weighted_session("w").expect("created weighted by default kind");
        assert_eq!(session.scores(), &[1, 1, 2, 1, 3]);
        assert_eq!(engine.best_score("w"), Some(3));
        match &report.reports[0].1 {
            BatchReport::Weighted(r) => assert_eq!(r.score_after, 3),
            other => panic!("expected a weighted report, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "weighted batch sent to unweighted session")]
    fn weighted_batch_into_plain_session_panics() {
        let mut engine = Engine::with_universe(1 << 8);
        engine.create_session("p");
        engine.ingest_weighted_tick(vec![(SessionId::from("p"), vec![(1, 1)])]);
    }

    #[test]
    fn explicit_kind_creation_wins_over_default() {
        let mut engine = Engine::with_universe(1 << 8);
        assert!(engine.create_session_kind("w", SessionKind::Weighted));
        assert!(!engine.create_session("w"), "id taken regardless of kind");
        assert_eq!(engine.session_kind("w"), Some(SessionKind::Weighted));
        assert_eq!(engine.best_score("w"), Some(0));
        assert_eq!(engine.lis_length("w"), None, "kind-mismatched accessor returns None");
    }

    #[test]
    fn query_ticks_answer_in_order_and_skip_missing_sessions() {
        use crate::query::{Query, QueryAnswer, QueryBatch};
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 4, ..EngineConfig::default() });
        engine.ingest_tick(vec![(SessionId::from("a"), vec![1, 5, 3, 7])]);
        engine.ingest_weighted_tick(vec![(SessionId::from("w"), vec![(2u64, 10u64), (4, 20)])]);

        let tick: Vec<(SessionId, QueryBatch)> = vec![
            (SessionId::from("a"), vec![Query::RankOf(3), Query::CountAt(1)].into()),
            (SessionId::from("ghost"), Query::Certificate.into()),
            (SessionId::from("w"), vec![Query::RankOf(1), Query::TopK(1)].into()),
            (SessionId::from("a"), Query::Certificate.into()),
        ];
        let report = engine.query_tick(&tick);
        assert_eq!(report.reports.len(), 4);
        assert_eq!(report.total_queries, 5, "missing sessions answer nothing");
        assert_eq!(report.sessions_queried, 2);
        assert_eq!(report.sessions_missing, 1);
        let ids: Vec<&str> = report.reports.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, vec!["a", "ghost", "w", "a"]);
        assert_eq!(report.reports[0].1.answers[0], QueryAnswer::Rank(Some(3)));
        assert_eq!(report.reports[0].1.answers[1], QueryAnswer::Count(1));
        assert!(!report.reports[1].1.answered());
        assert_eq!(report.reports[2].1.answers[0], QueryAnswer::Rank(Some(30)));
        assert_eq!(report.reports[2].1.answers[1], QueryAnswer::TopK(vec![(1, 30)]));
        let QueryAnswer::Certificate(cert) = &report.reports[3].1.answers[0] else {
            panic!("expected a certificate");
        };
        assert_eq!(cert.claimed, 3); // 1 < 5 < 7 (or 1 < 3 < 7)
                                     // Queries never create sessions.
        assert_eq!(engine.session_count(), 2);
    }

    #[test]
    fn mixed_read_write_ticks_read_their_own_writes() {
        use crate::query::{Query, QueryAnswer, TickOp};
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 2, ..EngineConfig::default() });
        let tick: Vec<(SessionId, TickOp)> = vec![
            // Query before the session exists: missing, no session created.
            (SessionId::from("s"), TickOp::Query(Query::RankOf(0).into())),
            (SessionId::from("s"), TickOp::Ingest(vec![10u64, 20].into())),
            // Query between two writes to the same session sees the first.
            (SessionId::from("s"), TickOp::Query(vec![Query::RankOf(1), Query::RankOf(2)].into())),
            (SessionId::from("s"), TickOp::Ingest(vec![30u64].into())),
            (SessionId::from("s"), TickOp::Query(Query::RankOf(2).into())),
        ];
        let report = engine.ingest_query_tick(&tick);
        assert_eq!(report.total_ingested, 3);
        assert_eq!(report.total_queries, 3, "the missing-session batch answers nothing");
        assert_eq!(report.sessions_touched, 1);
        assert_eq!(report.weighted_sessions_touched, 0);
        assert_eq!(report.sessions_queried, 1);
        assert!(!report.reports[0].1.as_query().unwrap().answered());
        let mid = report.reports[2].1.as_query().unwrap();
        assert_eq!(mid.answers, vec![QueryAnswer::Rank(Some(2)), QueryAnswer::Rank(None)]);
        let last = report.reports[4].1.as_query().unwrap();
        assert_eq!(last.answers, vec![QueryAnswer::Rank(Some(3))]);
        assert_eq!(engine.lis_length("s"), Some(3));
    }

    #[test]
    fn session_ids_share_the_arc_allocation() {
        let id = SessionId::from("shared");
        let clone = id.clone();
        assert!(Arc::ptr_eq(&id.0, &clone.0), "cloning must bump the refcount, not copy");
        let mut engine = Engine::with_universe(64);
        engine.ingest_tick(vec![(id.clone(), vec![1, 2])]);
        let ids = engine.session_ids();
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0], id);
    }
}
