//! The multi-session front: shard many streaming sessions — unweighted
//! ([`StreamingLis`]) and weighted ([`WeightedStreamingLis`]) side by side
//! — and process whole traffic ticks in parallel.
//!
//! Sessions are owned by *shards* (session id → shard by FNV-1a hash).  A
//! [`Tick`] is a list of `(SessionId, Op)` slots — appends, queries, and
//! explicit lifecycle ops — and [`Engine::execute`] partitions the tick by
//! shard and processes the shards through the join-splitting `par_iter`
//! surface with a one-shard grain (disjoint shards, no locks — the same
//! isolation argument the vEB batch operations use for disjoint clusters),
//! then returns one typed [`OpResult`] per slot in the original tick
//! order.  Ops addressed to the same session within one tick apply in
//! tick order, because a session lives in exactly one shard and each
//! shard replays its work list sequentially — so reads observe every
//! write that precedes them in the tick.  [`TickOutcome::worker_threads`]
//! exposes how many distinct worker threads actually participated, which
//! the determinism and parallelism tests assert on.
//!
//! Read-only traffic goes through [`Engine::execute_read`], which takes
//! `&self`, mutates nothing, and runs the same one-shard-grain parallel
//! pass over a [`ReadTick`] of query batches.
//!
//! # Session kinds
//!
//! Every session has a [`SessionKind`]: *unweighted* sessions serve plain
//! LIS state, *weighted* sessions serve Algorithm-2 dp scores.  A session's
//! kind is fixed when it is created — explicitly via [`Op::CreateSession`]
//! (or the [`Engine::create_session_kind`] convenience), or, when a tick
//! opts into [`Tick::auto_create`], implicitly on first contact: a
//! weighted batch creates a weighted session, a plain batch creates a
//! session of the configured [`EngineConfig::default_kind`].  Plain
//! batches into a weighted session ingest with unit weights; weighted
//! batches into an unweighted session fail that op with
//! [`OpError::KindMismatch`] — a malformed tick degrades per op, it never
//! panics.

use crate::cost::PathPolicy;
use crate::metrics::{Metrics, MetricsSnapshot, TickDigest};
use crate::op::{Op, OpError, OpOutput, OpResult, ReadOutcome, ReadTick, Tick, TickOutcome};
use crate::query::{QueryBatch, QueryReport};
use crate::session::{Backend, IngestReport, StreamingLis};
use crate::snapshot::{EngineSnapshot, SessionSnapshot};
use crate::wsession::{WeightedIngestReport, WeightedStreamingLis};
use plis_lis::DominantMaxKind;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Name of one independent stream within an [`Engine`].
///
/// Internally an `Arc<str>`: ids are cloned into every per-op outcome and
/// into the shard maps, so cloning must be a reference bump, not a heap
/// copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(Arc<str>);

impl SessionId {
    /// The session name as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared key, for maps keyed on the same allocation.
    fn key(&self) -> Arc<str> {
        Arc::clone(&self.0)
    }

    /// Internal constructor sharing an existing allocation.
    pub(crate) fn from_key(key: Arc<str>) -> Self {
        SessionId(key)
    }

    /// Whether two ids share the same backing allocation (test hook).
    #[cfg(test)]
    pub(crate) fn shares_allocation(&self, other: &SessionId) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl From<&str> for SessionId {
    fn from(s: &str) -> Self {
        SessionId(Arc::from(s))
    }
}

impl From<String> for SessionId {
    fn from(s: String) -> Self {
        SessionId(Arc::from(s))
    }
}

impl From<&SessionId> for SessionId {
    fn from(id: &SessionId) -> Self {
        id.clone()
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Which algorithm a session serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// Plain LIS state ([`StreamingLis`]): ranks, tails, LIS length.
    Unweighted,
    /// Weighted LIS state ([`WeightedStreamingLis`]): dp scores and the
    /// Pareto frontier, served by Algorithm 2.
    Weighted,
}

/// One batch of values, plain or weighted — the payload shape shared by
/// [`Op::Append`] / [`Op::AppendWeighted`] and the legacy mixed ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickBatch {
    /// Unweighted values.
    Plain(Vec<u64>),
    /// `(value, weight)` pairs.
    Weighted(Vec<(u64, u64)>),
}

impl TickBatch {
    /// Number of elements in the batch.
    pub fn len(&self) -> usize {
        match self {
            TickBatch::Plain(b) => b.len(),
            TickBatch::Weighted(b) => b.len(),
        }
    }

    /// True when the batch holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u64>> for TickBatch {
    fn from(b: Vec<u64>) -> Self {
        TickBatch::Plain(b)
    }
}

impl From<Vec<(u64, u64)>> for TickBatch {
    fn from(b: Vec<(u64, u64)>) -> Self {
        TickBatch::Weighted(b)
    }
}

/// Borrowed view of one append batch (what the shard workers consume).
#[derive(Debug, Clone, Copy)]
enum BatchRef<'a> {
    Plain(&'a [u64]),
    Weighted(&'a [(u64, u64)]),
}

impl BatchRef<'_> {
    /// Number of elements in the batch.
    fn len(self) -> usize {
        match self {
            BatchRef::Plain(b) => b.len(),
            BatchRef::Weighted(b) => b.len(),
        }
    }

    /// The kind a session implicitly created by this batch should get:
    /// weighted data forces a weighted session; plain data defers to the
    /// engine default.
    fn implied_kind(self, default_kind: SessionKind) -> SessionKind {
        match self {
            BatchRef::Plain(_) => default_kind,
            BatchRef::Weighted(_) => SessionKind::Weighted,
        }
    }

    /// First value outside `[0, universe)`, if any.
    fn overflow(self, universe: u64) -> Option<u64> {
        match self {
            BatchRef::Plain(b) => b.iter().copied().find(|&v| v >= universe),
            BatchRef::Weighted(b) => b.iter().map(|&(v, _)| v).find(|&v| v >= universe),
        }
    }
}

/// Borrowed view of one tick slot (the executor's working shape).
#[derive(Debug, Clone, Copy)]
enum OpRef<'a> {
    Append(BatchRef<'a>),
    Query(&'a QueryBatch),
    Create(SessionKind),
    Remove,
    Snapshot,
    Restore(&'a SessionSnapshot),
}

impl Op {
    /// Lower an owned op to the borrowed view the shard workers consume.
    fn as_op_ref(&self) -> OpRef<'_> {
        match self {
            Op::Append(b) => OpRef::Append(BatchRef::Plain(b)),
            Op::AppendWeighted(b) => OpRef::Append(BatchRef::Weighted(b)),
            Op::Query(q) => OpRef::Query(q),
            Op::CreateSession { kind } => OpRef::Create(*kind),
            Op::RemoveSession => OpRef::Remove,
            Op::Snapshot => OpRef::Snapshot,
            Op::Restore(snapshot) => OpRef::Restore(snapshot),
        }
    }
}

/// Engine-wide configuration, applied to every session it creates.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Value universe `[0, universe)` for every session.
    pub universe: u64,
    /// Tail-set backend for every unweighted session.
    pub backend: Backend,
    /// Dominant-max store for every weighted session.
    pub dommax: DominantMaxKind,
    /// Kind given to sessions created without an explicit kind (by
    /// [`Engine::create_session`] or implicitly by a plain batch under
    /// [`Tick::auto_create`]).
    pub default_kind: SessionKind,
    /// Number of shards sessions are spread over.  Defaults to the
    /// hardware parallelism.
    pub shards: usize,
    /// How every session decides between the sequential and the parallel
    /// merge ingest path.  Defaults to [`PathPolicy::Cost`]; use
    /// [`PathPolicy::Fixed`] to reproduce the historical fixed-threshold
    /// behaviour.
    pub path_policy: PathPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            universe: 1 << 32,
            backend: Backend::Auto,
            dommax: DominantMaxKind::Auto,
            default_kind: SessionKind::Unweighted,
            // The cached pool width, NOT std::thread::available_parallelism:
            // the latter re-reads cgroup state on every call (~10µs), which
            // is exactly the cost the vendored rayon caches away.
            shards: rayon::current_num_threads(),
            path_policy: PathPolicy::default(),
        }
    }
}

impl EngineConfig {
    /// Build a fresh session of the given kind under this configuration.
    fn new_session(&self, kind: SessionKind) -> SessionState {
        match kind {
            SessionKind::Unweighted => SessionState::Unweighted(
                StreamingLis::new(self.universe, self.backend).with_path_policy(self.path_policy),
            ),
            SessionKind::Weighted => SessionState::Weighted(
                WeightedStreamingLis::new(self.universe, self.dommax)
                    .with_path_policy(self.path_policy),
            ),
        }
    }
}

/// A live session of either kind.
#[derive(Debug, Clone)]
pub enum SessionState {
    /// An unweighted (plain-LIS) session.
    Unweighted(StreamingLis),
    /// A weighted (Algorithm-2) session.
    Weighted(WeightedStreamingLis),
}

impl SessionState {
    /// Which kind this session is.
    pub fn kind(&self) -> SessionKind {
        match self {
            SessionState::Unweighted(_) => SessionKind::Unweighted,
            SessionState::Weighted(_) => SessionKind::Weighted,
        }
    }

    /// The plain session, if this is one.
    pub fn as_unweighted(&self) -> Option<&StreamingLis> {
        match self {
            SessionState::Unweighted(s) => Some(s),
            SessionState::Weighted(_) => None,
        }
    }

    /// The weighted session, if this is one.
    pub fn as_weighted(&self) -> Option<&WeightedStreamingLis> {
        match self {
            SessionState::Weighted(s) => Some(s),
            SessionState::Unweighted(_) => None,
        }
    }

    /// Rough heap footprint of the session in bytes, whatever the kind
    /// (see `StreamingLisOn::approx_bytes` /
    /// `WeightedStreamingLis::approx_bytes`).  Used by the telemetry
    /// plane's per-shard memory accounting at snapshot time.
    pub fn approx_bytes(&self) -> usize {
        match self {
            SessionState::Unweighted(s) => s.approx_bytes(),
            SessionState::Weighted(s) => s.approx_bytes(),
        }
    }

    /// Bytes held by the session's reusable ingest scratch (arena buffers
    /// plus the flat rank index) — the memory a zero-allocation steady
    /// state retains.  A subset of [`SessionState::approx_bytes`];
    /// reported separately by [`Engine::metrics_snapshot`].
    pub fn arena_bytes(&self) -> usize {
        match self {
            SessionState::Unweighted(s) => s.arena_bytes(),
            SessionState::Weighted(s) => s.arena_bytes(),
        }
    }

    fn check_invariants(&self) {
        match self {
            SessionState::Unweighted(s) => s.check_invariants(),
            SessionState::Weighted(s) => s.check_invariants(),
        }
    }
}

/// What one landed append did — the per-kind ingest report, carried by
/// [`OpOutput::Appended`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchReport {
    /// Report from an unweighted session.
    Unweighted(IngestReport),
    /// Report from a weighted session.
    Weighted(WeightedIngestReport),
}

impl BatchReport {
    /// Number of elements the batch ingested, whatever the kind.
    pub fn ingested(&self) -> usize {
        match self {
            BatchReport::Unweighted(r) => r.ingested,
            BatchReport::Weighted(r) => r.ingested,
        }
    }

    /// The unweighted report, if this batch hit a plain session.
    pub fn as_unweighted(&self) -> Option<&IngestReport> {
        match self {
            BatchReport::Unweighted(r) => Some(r),
            BatchReport::Weighted(_) => None,
        }
    }

    /// The weighted report, if this batch hit a weighted session.
    pub fn as_weighted(&self) -> Option<&WeightedIngestReport> {
        match self {
            BatchReport::Weighted(r) => Some(r),
            BatchReport::Unweighted(_) => None,
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    sessions: HashMap<Arc<str>, SessionState>,
    /// Reusable routing buffer: the tick-slot indices addressed to this
    /// shard, refilled by [`Engine::route_tick`] every write tick.  Held
    /// on the shard so steady-state ticks build no per-tick partition
    /// vectors — the buffers reach their high-water capacity once and
    /// stay there.  Slot indices are `u32`; [`Engine::execute`] asserts
    /// the tick bound.
    route: Vec<u32>,
}

/// What one shard hands back from a tick: position-labeled results plus
/// the worker thread that produced them.
type ShardOutput<R> = (Vec<(usize, SessionId, R)>, std::thread::ThreadId);

/// The last stage of every tick path: merge per-shard outputs back into
/// tick order and count the distinct worker threads that participated
/// (at least 1, so empty ticks still report the calling thread).
fn reassemble<R>(per_shard: Vec<ShardOutput<R>>, expected: usize) -> (Vec<(SessionId, R)>, usize) {
    let worker_threads =
        per_shard.iter().map(|(_, id)| *id).collect::<std::collections::HashSet<_>>().len().max(1);
    let mut labeled: Vec<(usize, SessionId, R)> =
        per_shard.into_iter().flat_map(|(results, _)| results).collect();
    labeled.sort_unstable_by_key(|slot| slot.0);
    debug_assert_eq!(labeled.len(), expected);
    (labeled.into_iter().map(|(_, id, r)| (id, r)).collect(), worker_threads)
}

/// One query batch of a read-only tick: original tick position, target
/// session, queries.
type QueryItem<'a> = (usize, &'a SessionId, &'a QueryBatch);

/// Ticks whose total estimated work stays under this many element-units
/// run inline on the calling thread.  Each piece of the per-shard
/// parallel spine costs a fork (tens of microseconds on this pool —
/// every join spawns a scoped OS thread), which swamps light ticks: the
/// query sweep lost 2x going from 1 to 4 shards before this gate
/// existed.  Heavy ticks still take the spine, restricted to the shards
/// that actually have work.  The gate reads only tick content — never
/// pool width — so the inline/spine decision is identical at one thread
/// and at the full pool.
const INLINE_TICK_WEIGHT: usize = 256;

/// Estimated work of one tick slot, in ingest-element units: appends
/// charge their batch length, reads charge [`query_weight`], lifecycle
/// ops charge 1.  A snapshot walks the session's whole maintained state
/// (a certificate-weight read); a restore re-validates and rebuilds from
/// the captured stream, so it charges the stream length.
fn op_weight(op: &OpRef<'_>) -> usize {
    match op {
        OpRef::Append(batch) => batch.len(),
        OpRef::Query(batch) => query_weight(batch),
        OpRef::Create(_) | OpRef::Remove => 1,
        OpRef::Snapshot => 64,
        OpRef::Restore(snapshot) => snapshot.len().max(1),
    }
}

/// Estimated work of one query batch: 1 per point read, a flat heavy
/// charge per certificate (a full reconstruction walks the whole
/// maintained state, not one entry).
fn query_weight(batch: &QueryBatch) -> usize {
    batch
        .queries()
        .iter()
        .map(|q| match q {
            crate::query::Query::Certificate => 64,
            _ => 1,
        })
        .sum()
}

/// Whether a partitioned tick is light enough to run inline: at most one
/// shard has work (a single piece gains nothing from the spine), or the
/// total estimated weight is under [`INLINE_TICK_WEIGHT`].
fn tick_is_light<T>(work: &[Vec<T>], weight: impl Fn(&T) -> usize) -> bool {
    let busy = work.iter().filter(|w| !w.is_empty()).count();
    busy <= 1 || work.iter().flatten().map(weight).sum::<usize>() < INLINE_TICK_WEIGHT
}

impl Shard {
    /// Apply this shard's slice of a tick, in tick order.  `route` holds
    /// the tick-slot indices addressed to this shard (taken off the
    /// shard's own reusable buffer by the caller, so `&mut self` stays
    /// free for the sessions) and `slots` is the whole borrowed tick.
    /// Every op resolves to a typed [`OpResult`]; a rejected op never
    /// touches the session and never disturbs its neighbours.
    /// `create_missing` controls whether appends create their target on
    /// first contact ([`Tick::auto_create`]); queries and removes never
    /// do.
    fn process(
        &mut self,
        route: &[u32],
        slots: &[(SessionId, Op)],
        config: &EngineConfig,
        create_missing: bool,
        metrics: &Metrics,
    ) -> Vec<(usize, SessionId, OpResult)> {
        route
            .iter()
            .map(|&index| {
                let (id, op) = &slots[index as usize];
                let index = index as usize;
                let timer = metrics.start_timer();
                let result = match op.as_op_ref() {
                    OpRef::Append(batch) => self.append(id, batch, config, create_missing),
                    OpRef::Query(batch) => self
                        .answer(id, batch)
                        .map(OpOutput::Answered)
                        .ok_or(OpError::UnknownSession),
                    OpRef::Create(kind) => match self.sessions.entry(id.key()) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            Err(OpError::SessionExists { kind: e.get().kind() })
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(config.new_session(kind));
                            Ok(OpOutput::Created)
                        }
                    },
                    OpRef::Remove => self
                        .sessions
                        .remove(id.as_str())
                        .map(|_| OpOutput::Removed)
                        .ok_or(OpError::UnknownSession),
                    OpRef::Snapshot => self
                        .sessions
                        .get(id.as_str())
                        .map(|state| {
                            OpOutput::Snapshotted(Box::new(SessionSnapshot::capture(state)))
                        })
                        .ok_or(OpError::UnknownSession),
                    OpRef::Restore(snapshot) => match self.sessions.entry(id.key()) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            Err(OpError::SessionExists { kind: e.get().kind() })
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            snapshot.restore_state(config).map(|state| {
                                e.insert(state);
                                OpOutput::Restored
                            })
                        }
                    },
                };
                metrics.record_op_since(timer);
                (index, id.clone(), result)
            })
            .collect()
    }

    /// One append op: validate the batch against the universe, resolve
    /// (or create) the target session, check the kind axis, ingest.
    fn append(
        &mut self,
        id: &SessionId,
        batch: BatchRef<'_>,
        config: &EngineConfig,
        create_missing: bool,
    ) -> OpResult {
        // Deliberately redundant with the per-element asserts inside the
        // session ingest paths: this pre-scan is what makes a rejected
        // batch *atomic* (a typed error before any element mutates the
        // session), while the session-level asserts keep guarding callers
        // that drive StreamingLis/WeightedStreamingLis directly.
        if let Some(value) = batch.overflow(config.universe) {
            return Err(OpError::UniverseOverflow { value, universe: config.universe });
        }
        let state = match self.sessions.entry(id.key()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) if create_missing => {
                e.insert(config.new_session(batch.implied_kind(config.default_kind)))
            }
            std::collections::hash_map::Entry::Vacant(_) => return Err(OpError::UnknownSession),
        };
        let report = match (state, batch) {
            (SessionState::Unweighted(s), BatchRef::Plain(b)) => {
                BatchReport::Unweighted(s.ingest(b))
            }
            (SessionState::Weighted(s), BatchRef::Plain(b)) => {
                BatchReport::Weighted(s.ingest_plain(b))
            }
            (SessionState::Weighted(s), BatchRef::Weighted(b)) => {
                BatchReport::Weighted(s.ingest(b))
            }
            (SessionState::Unweighted(_), BatchRef::Weighted(_)) => {
                return Err(OpError::KindMismatch {
                    session: SessionKind::Unweighted,
                    batch: SessionKind::Weighted,
                })
            }
        };
        Ok(OpOutput::Appended(report))
    }

    /// Answer one query batch against this shard's copy of the session
    /// (`None` when the session does not exist — queries never create).
    fn answer(&self, id: &SessionId, batch: &QueryBatch) -> Option<QueryReport> {
        self.sessions.get(id.as_str()).map(|state| state.answer_batch(batch))
    }

    /// Answer this shard's slice of a read-only tick, in tick order.
    fn read(
        &self,
        work: &[QueryItem<'_>],
        metrics: &Metrics,
    ) -> Vec<(usize, SessionId, Result<QueryReport, OpError>)> {
        work.iter()
            .map(|&(index, id, batch)| {
                let timer = metrics.start_timer();
                let result = self.answer(id, batch).ok_or(OpError::UnknownSession);
                metrics.record_op_since(timer);
                (index, id.clone(), result)
            })
            .collect()
    }

    /// Rough heap footprint of every session in this shard, in bytes.
    fn approx_bytes(&self) -> usize {
        self.sessions.values().map(SessionState::approx_bytes).sum()
    }
}

/// A sharded multiplexer of independent streaming sessions, weighted and
/// unweighted side by side.
///
/// See the crate docs for a usage example.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    shards: Vec<Shard>,
    /// The telemetry registry (a no-op ZST without the `telemetry`
    /// feature).  Purely observational — see [`crate::metrics`].
    metrics: Metrics,
    /// Allocation-meter baseline captured at construction, so snapshots
    /// report allocations attributable to this engine's lifetime.  Stays
    /// all-zero (and costs nothing) unless the binary installs the
    /// counting global allocator (`plis-testalloc`).
    alloc_base: plis_telemetry::AllocTally,
    /// Optional JSON-lines trace sink: one event per executed tick.
    #[cfg(feature = "telemetry")]
    trace: Option<plis_telemetry::TraceSink>,
}

impl Engine {
    /// An engine under the given configuration (shard count floored at 1).
    pub fn new(mut config: EngineConfig) -> Self {
        config.shards = config.shards.max(1);
        let shards = (0..config.shards).map(|_| Shard::default()).collect();
        Engine {
            config,
            shards,
            metrics: Metrics::new(),
            alloc_base: plis_telemetry::alloc_tally(),
            #[cfg(feature = "telemetry")]
            trace: None,
        }
    }

    /// Engine with default config over the given universe.
    pub fn with_universe(universe: u64) -> Self {
        Engine::new(EngineConfig { universe, ..EngineConfig::default() })
    }

    /// The configuration every session of this engine is created under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's telemetry registry — use it to toggle recording at
    /// runtime ([`Metrics::set_enabled`]).  A no-op handle when the
    /// `telemetry` feature is off.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A point-in-time copy of the whole telemetry plane: the cumulative
    /// counters and latency histograms, plus live-session and per-shard
    /// memory accounting computed by walking the shards now (`O(sessions)`
    /// plus the store walks — snapshot-time cost, never per-op).  All-zero
    /// when the `telemetry` feature is off (session accounting included,
    /// so a feature-off build is observably inert).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.counters_snapshot();
        if cfg!(feature = "telemetry") {
            snap.sessions = self.session_count() as u64;
            snap.shard_bytes = self.shards.iter().map(|s| s.approx_bytes() as u64).collect();
            snap.session_bytes = snap.shard_bytes.iter().sum();
            let allocs = plis_telemetry::alloc_tally().since(self.alloc_base);
            snap.alloc_count = allocs.allocs;
            snap.allocs_per_elem = allocs.allocs.checked_div(snap.elems_ingested).unwrap_or(0);
            snap.arena_bytes = self
                .shards
                .iter()
                .flat_map(|s| s.sessions.values())
                .map(|s| s.arena_bytes() as u64)
                .sum();
        }
        snap
    }

    /// Install (or clear) a JSON-lines trace sink: after every
    /// [`Engine::execute`] / [`Engine::execute_read`] the engine emits one
    /// event with the tick's latency, op counts, and ingest-path digest.
    /// Emission follows the runtime [`Metrics::set_enabled`] toggle.  A
    /// no-op when the `telemetry` feature is off.
    pub fn set_trace_sink(&mut self, sink: Option<plis_telemetry::TraceSink>) {
        #[cfg(feature = "telemetry")]
        {
            self.trace = sink;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = sink;
    }

    fn shard_index(&self, id: &str) -> usize {
        // FNV-1a; any stable hash works, but the std RandomState hasher is
        // seeded per-process and would make shard assignment (and therefore
        // parallel schedules) non-reproducible across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Create an empty session of the engine's default kind; returns
    /// `false` if the id already exists.  Convenience over
    /// [`Op::CreateSession`] for administrative callers outside a tick.
    pub fn create_session(&mut self, id: impl Into<SessionId>) -> bool {
        let kind = self.config.default_kind;
        self.create_session_kind(id, kind)
    }

    /// Create an empty session of an explicit kind; returns `false` if the
    /// id already exists (whatever its kind).
    pub fn create_session_kind(&mut self, id: impl Into<SessionId>, kind: SessionKind) -> bool {
        let id = id.into();
        let shard = self.shard_index(id.as_str());
        let config = &self.config;
        match self.shards[shard].sessions.entry(id.key()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(config.new_session(kind));
                true
            }
        }
    }

    /// Drop a session and all its state; returns `true` if it existed.
    /// Convenience over [`Op::RemoveSession`] for administrative callers
    /// outside a tick.
    pub fn remove_session(&mut self, id: &str) -> bool {
        let shard = self.shard_index(id);
        self.shards[shard].sessions.remove(id).is_some()
    }

    /// Number of live sessions (of both kinds).
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.len()).sum()
    }

    /// All session ids, in deterministic sorted order (shard maps iterate
    /// in hash order, which is never exposed).  Ids are `Arc`-backed, so
    /// this clones references, not strings.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .shards
            .iter()
            .flat_map(|s| s.sessions.keys().map(|k| SessionId::from_key(Arc::clone(k))))
            .collect();
        ids.sort();
        ids
    }

    /// A session of either kind, if it exists.
    pub fn session_state(&self, id: &str) -> Option<&SessionState> {
        self.shards[self.shard_index(id)].sessions.get(id)
    }

    /// The kind of a session, if it exists.
    pub fn session_kind(&self, id: &str) -> Option<SessionKind> {
        self.session_state(id).map(SessionState::kind)
    }

    /// Read access to an unweighted session's full query API (`None` if
    /// the id is missing or the session is weighted).
    pub fn session(&self, id: &str) -> Option<&StreamingLis> {
        self.session_state(id).and_then(SessionState::as_unweighted)
    }

    /// Read access to a weighted session's full query API (`None` if the
    /// id is missing or the session is unweighted).
    pub fn weighted_session(&self, id: &str) -> Option<&WeightedStreamingLis> {
        self.session_state(id).and_then(SessionState::as_weighted)
    }

    /// Current LIS length of an unweighted session, if it exists.
    pub fn lis_length(&self, id: &str) -> Option<u32> {
        self.session(id).map(StreamingLis::lis_length)
    }

    /// Current best dp score of a weighted session, if it exists.
    pub fn best_score(&self, id: &str) -> Option<u64> {
        self.weighted_session(id).map(WeightedStreamingLis::best_score)
    }

    /// Snapshot one session's complete algorithmic state, if it exists.
    /// Convenience over [`Op::Snapshot`] for administrative callers
    /// outside a tick; use the op form when the checkpoint must be
    /// ordered against other traffic.
    pub fn snapshot_session(&self, id: &str) -> Option<SessionSnapshot> {
        self.session_state(id).map(SessionSnapshot::capture)
    }

    /// Restore a session from a snapshot under a fresh id.  Validates the
    /// snapshot first and fails with a typed [`OpError`] — never a panic,
    /// never a partially restored session — when the id is taken, the
    /// universe disagrees, or the snapshot is internally inconsistent.
    /// Convenience over [`Op::Restore`] for administrative callers
    /// outside a tick.
    pub fn restore_session(
        &mut self,
        id: impl Into<SessionId>,
        snapshot: &SessionSnapshot,
    ) -> Result<(), OpError> {
        let id = id.into();
        let shard = self.shard_index(id.as_str());
        if self.shards[shard].sessions.contains_key(id.as_str()) {
            let kind = self.shards[shard].sessions[id.as_str()].kind();
            return Err(OpError::SessionExists { kind });
        }
        let state = snapshot.restore_state(&self.config)?;
        self.shards[shard].sessions.insert(id.key(), state);
        Ok(())
    }

    /// Snapshot the whole engine: every live session, keyed and sorted by
    /// id (the [`Engine::session_ids`] order).
    pub fn snapshot(&self) -> EngineSnapshot {
        let sessions = self
            .session_ids()
            .into_iter()
            .map(|id| {
                let snapshot =
                    SessionSnapshot::capture(self.session_state(id.as_str()).expect("listed id"));
                (id.as_str().to_string(), snapshot)
            })
            .collect();
        EngineSnapshot { universe: self.config.universe, sessions }
    }

    /// Build a fresh engine from an engine snapshot under the given
    /// configuration.  `config.universe` must match the snapshot's;
    /// sharding, backend and path policy are free to differ (outcomes are
    /// deterministic across all of them).  All-or-nothing: any rejected
    /// session means no engine.
    pub fn restore(config: EngineConfig, snapshot: &EngineSnapshot) -> Result<Engine, OpError> {
        if config.universe != snapshot.universe {
            return Err(OpError::UniverseMismatch {
                snapshot: snapshot.universe,
                universe: config.universe,
            });
        }
        let mut engine = Engine::new(config);
        for (id, session) in &snapshot.sessions {
            engine.restore_session(id.as_str(), session)?;
        }
        Ok(engine)
    }

    /// Execute one tick of commands — the engine's **single write/mixed
    /// entry point**.  The tick is partitioned by shard and the disjoint
    /// shards are processed through the parallel-iterator surface (one
    /// piece per shard — shards are few but heavy, so the default
    /// element-count grain would under-split); results come back as one
    /// typed [`OpResult`] per slot, in submission order.
    ///
    /// Ops for the same session apply in submission order, so a
    /// [`Op::Query`] slot observes every earlier slot of the same tick
    /// addressed to its session (read-your-writes), an append lands in a
    /// session created by an earlier [`Op::CreateSession`] of the same
    /// tick, and an append after [`Op::RemoveSession`] fails with
    /// [`OpError::UnknownSession`] (unless the tick opted into
    /// [`Tick::auto_create`]).
    ///
    /// The tick is borrowed: callers that replay a prepared schedule
    /// (benchmarks, log replays) build their [`Tick`]s once and execute
    /// them any number of times without deep-copying batches.
    pub fn execute(&mut self, tick: &Tick) -> TickOutcome {
        let timer = self.metrics.start_timer();
        self.route_tick(tick);

        let slots = tick.slots();
        let config = &self.config;
        let metrics = &self.metrics;
        let create_missing = tick.creates_missing();
        let busy_shards = self.shards.iter().filter(|s| !s.route.is_empty()).count();
        let inline = busy_shards <= 1
            || slots.iter().map(|(_, op)| op_weight(&op.as_op_ref())).sum::<usize>()
                < INLINE_TICK_WEIGHT;
        let busy: Vec<&mut Shard> =
            self.shards.iter_mut().filter(|s| !s.route.is_empty()).collect();
        let run = |shard: &mut Shard| {
            // Take the route buffer off the shard so `&mut self` is free
            // for the sessions, then hand it back for the next tick.
            let route = std::mem::take(&mut shard.route);
            let results = shard.process(&route, slots, config, create_missing, metrics);
            shard.route = route;
            (results, std::thread::current().id())
        };
        let per_shard: Vec<ShardOutput<OpResult>> = if inline {
            busy.into_iter().map(run).collect()
        } else {
            busy.into_par_iter().with_max_len(1).map(run).collect()
        };
        let (outcomes, worker_threads) = reassemble(per_shard, tick.len());
        let mut outcome = TickOutcome::collect(outcomes, worker_threads);
        outcome.elapsed_ns = Metrics::elapsed_ns(timer);
        let digest = self.metrics.record_tick(&outcome, inline);
        self.trace_tick(&outcome, digest);
        outcome
    }

    /// Execute one read-only tick — the engine's **single read entry
    /// point**.  Takes `&self`: reads mutate nothing, never create
    /// sessions (absent ids fail their slot with
    /// [`OpError::UnknownSession`]), and answers come back in submission
    /// order, served shard-parallel with the same one-shard grain as
    /// [`Engine::execute`].
    pub fn execute_read(&self, tick: &ReadTick) -> ReadOutcome {
        let timer = self.metrics.start_timer();
        let work = self.partition_by_shard(tick.slots().iter().map(|(id, batch)| (id, batch)));
        let metrics = &self.metrics;
        let inline = tick_is_light(&work, |(_, _, batch)| query_weight(batch));
        let busy: Vec<(&Shard, &Vec<QueryItem<'_>>)> =
            self.shards.iter().zip(work.iter()).filter(|(_, work)| !work.is_empty()).collect();
        let run = |(shard, work): (&Shard, &Vec<QueryItem<'_>>)| {
            (shard.read(work, metrics), std::thread::current().id())
        };
        let per_shard: Vec<ShardOutput<Result<QueryReport, OpError>>> = if inline {
            busy.into_iter().map(run).collect()
        } else {
            busy.into_par_iter().with_max_len(1).map(run).collect()
        };
        let (outcomes, worker_threads) = reassemble(per_shard, tick.len());
        let mut outcome = ReadOutcome::collect(outcomes, worker_threads);
        outcome.elapsed_ns = Metrics::elapsed_ns(timer);
        self.metrics.record_read(&outcome, inline);
        self.trace_read(&outcome);
        outcome
    }

    /// Emit one trace event for an executed write tick (no-op without a
    /// sink, with recording disabled, or without the `telemetry` feature).
    #[cfg(feature = "telemetry")]
    fn trace_tick(&self, outcome: &TickOutcome, digest: TickDigest) {
        use plis_telemetry::JsonValue;
        let Some(trace) = &self.trace else { return };
        if !self.metrics.is_enabled() {
            return;
        }
        trace.emit(&[
            ("event", JsonValue::from("tick")),
            ("elapsed_us", JsonValue::from(outcome.elapsed_ns as f64 / 1_000.0)),
            ("ops", JsonValue::from(outcome.outcomes.len())),
            ("ingested", JsonValue::from(outcome.total_ingested)),
            ("queries", JsonValue::from(outcome.total_queries)),
            ("failed", JsonValue::from(outcome.failed_ops)),
            ("seq_ingests", JsonValue::from(digest.seq_ingests)),
            ("par_merge_ingests", JsonValue::from(digest.par_merge_ingests)),
            ("par_merge_elems", JsonValue::from(digest.par_merge_elems)),
            ("veb_delta_elems", JsonValue::from(digest.veb_delta_elems)),
            ("worker_threads", JsonValue::from(outcome.worker_threads)),
        ]);
    }

    #[cfg(not(feature = "telemetry"))]
    fn trace_tick(&self, _outcome: &TickOutcome, _digest: TickDigest) {}

    /// Emit one trace event for an executed read tick (same gating as
    /// [`Engine::trace_tick`]).
    #[cfg(feature = "telemetry")]
    fn trace_read(&self, outcome: &ReadOutcome) {
        use plis_telemetry::JsonValue;
        let Some(trace) = &self.trace else { return };
        if !self.metrics.is_enabled() {
            return;
        }
        trace.emit(&[
            ("event", JsonValue::from("read_tick")),
            ("elapsed_us", JsonValue::from(outcome.elapsed_ns as f64 / 1_000.0)),
            ("ops", JsonValue::from(outcome.outcomes.len())),
            ("queries", JsonValue::from(outcome.total_queries)),
            ("missing", JsonValue::from(outcome.sessions_missing)),
            ("worker_threads", JsonValue::from(outcome.worker_threads)),
        ]);
    }

    #[cfg(not(feature = "telemetry"))]
    fn trace_read(&self, _outcome: &ReadOutcome) {}

    /// The first stage of the write path: refill every shard's reusable
    /// routing buffer with the tick-slot indices addressed to it.  No
    /// per-tick vectors — the buffers live on the shards and keep their
    /// capacity across ticks ([`Shard::route`]).
    fn route_tick(&mut self, tick: &Tick) {
        assert!(tick.len() <= u32::MAX as usize, "tick exceeds u32 slot addressing");
        for shard in &mut self.shards {
            shard.route.clear();
        }
        for (index, (id, _)) in tick.slots().iter().enumerate() {
            let shard = self.shard_index(id.as_str());
            self.shards[shard].route.push(index as u32);
        }
    }

    /// The first stage of the read path: partition tick slots by shard,
    /// remembering original positions so results can be reassembled in
    /// tick order.  Reads take `&self` (many read ticks may run
    /// concurrently), so they cannot share the write path's mutable
    /// routing buffers; query batches are rarer and heavier than appends,
    /// so the per-tick partition build stays acceptable here.
    fn partition_by_shard<'a, P>(
        &self,
        slots: impl Iterator<Item = (&'a SessionId, P)>,
    ) -> Vec<Vec<(usize, &'a SessionId, P)>> {
        let mut work: Vec<Vec<(usize, &'a SessionId, P)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (index, (id, payload)) in slots.enumerate() {
            work[self.shard_index(id.as_str())].push((index, id, payload));
        }
        work
    }

    /// Cross-check invariants of every session; used by the test suites.
    pub fn check_invariants(&self) {
        for shard in &self.shards {
            for session in shard.sessions.values() {
                session.check_invariants();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Query, QueryAnswer};
    use crate::testutil::xorshift;

    /// The landed ingest reports of an outcome, in tick order.
    fn ingests(outcome: &TickOutcome) -> Vec<(SessionId, BatchReport)> {
        outcome
            .outcomes
            .iter()
            .filter_map(|(id, r)| {
                r.as_ref().ok().and_then(OpOutput::as_appended).map(|b| (id.clone(), *b))
            })
            .collect()
    }

    #[test]
    fn tick_outcomes_preserve_input_order() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 16, shards: 4, ..EngineConfig::default() });
        let tick: Tick = (0..20)
            .map(|i| (format!("s{}", i % 7), vec![i as u64, i as u64 + 1]))
            .collect::<Tick>()
            .auto_create();
        let expect_ids: Vec<&str> = tick.slots().iter().map(|(id, _)| id.as_str()).collect();
        let outcome = engine.execute(&tick);
        let got_ids: Vec<&str> = outcome.outcomes.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(got_ids, expect_ids);
        assert!(outcome.fully_applied());
        assert_eq!(outcome.total_ingested, 40);
        assert_eq!(outcome.sessions_touched, 7);
        assert_eq!(outcome.weighted_sessions_touched, 0);
        assert_eq!(engine.session_count(), 7);
        engine.check_invariants();
    }

    #[test]
    fn multiplexed_sessions_match_dedicated_sessions() {
        let mut state = 0xFEED_BEEFu64;
        let universe = 1u64 << 14;
        let session_names = ["alpha", "bravo", "charlie", "delta", "echo"];
        let mut engine = Engine::new(EngineConfig {
            universe,
            shards: 3,
            path_policy: PathPolicy::Fixed(64),
            ..EngineConfig::default()
        });
        let mut reference: HashMap<&str, StreamingLis> = session_names
            .iter()
            .map(|&name| (name, StreamingLis::new(universe, Backend::Auto).with_par_threshold(64)))
            .collect();
        for &name in &session_names {
            assert!(engine.create_session(name));
        }
        for _round in 0..12 {
            let mut tick = Tick::new();
            for &name in &session_names {
                let len = (xorshift(&mut state) % 200) as usize;
                let batch: Vec<u64> = (0..len).map(|_| xorshift(&mut state) % universe).collect();
                reference.get_mut(name).unwrap().ingest(&batch);
                tick.push(name, Op::Append(batch));
            }
            assert!(engine.execute(&tick).fully_applied());
        }
        for &name in &session_names {
            let live = engine.session(name).expect("session exists");
            let want = &reference[name];
            assert_eq!(live.ranks(), want.ranks(), "session {name}");
            assert_eq!(live.tails(), want.tails(), "session {name}");
        }
        engine.check_invariants();
    }

    #[test]
    fn same_session_twice_in_one_tick_applies_in_order() {
        let mut engine = Engine::with_universe(1 << 10);
        let outcome = engine.execute(
            &Tick::new()
                .create("s", SessionKind::Unweighted)
                .append("s", vec![100, 200])
                .append("s", vec![150, 300]),
        );
        assert_eq!(outcome.outcomes.len(), 3);
        assert_eq!(outcome.sessions_touched, 1);
        assert_eq!(outcome.sessions_created, 1);
        assert!(outcome.fully_applied());
        // 100 < 200 then 150 does not extend, 300 does: LIS = 100, 200, 300.
        assert_eq!(engine.lis_length("s"), Some(3));
        let session = engine.session("s").unwrap();
        assert_eq!(session.values(), &[100, 200, 150, 300]);
        assert_eq!(session.ranks(), &[1, 2, 2, 3]);
    }

    #[test]
    fn lifecycle_ops_ride_the_tick_in_order() {
        let mut engine = Engine::with_universe(1 << 10);
        let outcome = engine.execute(
            &Tick::new()
                .create("s", SessionKind::Unweighted)
                .append("s", vec![1, 2, 3])
                .remove("s")
                .create("s", SessionKind::Weighted)
                .append_weighted("s", vec![(4, 9), (5, 2)]),
        );
        assert!(outcome.fully_applied(), "errors: {:?}", outcome.errors().collect::<Vec<_>>());
        assert_eq!(outcome.sessions_created, 2);
        assert_eq!(outcome.sessions_removed, 1);
        // One distinct session received data, even though its kind
        // flipped across the mid-tick removal; the weighted axis counts
        // it because it took weighted data at some point.
        assert_eq!(outcome.sessions_touched, 1);
        assert_eq!(outcome.weighted_sessions_touched, 1);
        // The surviving session is the weighted re-creation.
        assert_eq!(engine.session_kind("s"), Some(SessionKind::Weighted));
        assert_eq!(engine.best_score("s"), Some(11));
        engine.check_invariants();
    }

    #[test]
    fn create_remove_and_lookup() {
        let mut engine = Engine::with_universe(1 << 8);
        assert!(engine.create_session("x"));
        assert!(!engine.create_session("x"));
        assert_eq!(engine.session_count(), 1);
        assert_eq!(engine.lis_length("x"), Some(0));
        assert_eq!(engine.lis_length("missing"), None);
        assert!(engine.remove_session("x"));
        assert!(!engine.remove_session("x"));
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn single_shard_engine_still_works() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 1, ..EngineConfig::default() });
        let outcome = engine.execute(
            &Tick::new().append("a", vec![1, 2, 3]).append("b", vec![3, 2, 1]).auto_create(),
        );
        assert_eq!(outcome.total_ingested, 6);
        assert_eq!(engine.lis_length("a"), Some(3));
        assert_eq!(engine.lis_length("b"), Some(1));
    }

    #[test]
    fn session_ids_are_sorted_and_complete() {
        let mut engine = Engine::with_universe(64);
        for name in ["zeta", "alpha", "mid", "bravo", "yankee", "delta"] {
            engine.create_session(name);
        }
        let ids: Vec<String> =
            engine.session_ids().iter().map(|id| id.as_str().to_string()).collect();
        assert_eq!(ids, vec!["alpha", "bravo", "delta", "mid", "yankee", "zeta"]);
    }

    #[test]
    fn weighted_sessions_multiplex_next_to_plain_ones() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 3, ..EngineConfig::default() });
        let tick = Tick::new()
            .append("plain", vec![5u64, 7, 6, 8])
            .append_weighted("heavy", vec![(5u64, 10u64), (7, 1), (6, 20), (8, 1)])
            .auto_create();
        let outcome = engine.execute(&tick);
        assert_eq!(outcome.total_ingested, 8);
        assert_eq!(outcome.sessions_touched, 2);
        assert_eq!(outcome.weighted_sessions_touched, 1);
        assert_eq!(engine.session_kind("plain"), Some(SessionKind::Unweighted));
        assert_eq!(engine.session_kind("heavy"), Some(SessionKind::Weighted));
        assert_eq!(engine.lis_length("plain"), Some(3)); // 5 < 6 < 8
        assert_eq!(engine.lis_length("heavy"), None);
        assert_eq!(engine.best_score("heavy"), Some(31)); // 5 + 6 + 8 weights
        let heavy = engine.weighted_session("heavy").unwrap();
        assert_eq!(heavy.scores(), &[10, 11, 30, 31]);
        engine.check_invariants();
    }

    #[test]
    fn plain_batches_feed_weighted_sessions_with_unit_weights() {
        let mut engine = Engine::new(EngineConfig {
            universe: 1 << 10,
            default_kind: SessionKind::Weighted,
            ..EngineConfig::default()
        });
        let outcome = engine.execute(&Tick::new().append("w", vec![3, 1, 4, 1, 5]).auto_create());
        assert_eq!(outcome.weighted_sessions_touched, 1);
        let session = engine.weighted_session("w").expect("created weighted by default kind");
        assert_eq!(session.scores(), &[1, 1, 2, 1, 3]);
        assert_eq!(engine.best_score("w"), Some(3));
        match ingests(&outcome)[0].1 {
            BatchReport::Weighted(r) => assert_eq!(r.score_after, 3),
            other => panic!("expected a weighted report, got {other:?}"),
        }
    }

    #[test]
    fn weighted_batch_into_plain_session_fails_typed_without_touching_it() {
        let mut engine = Engine::with_universe(1 << 8);
        engine.create_session("p");
        let outcome =
            engine.execute(&Tick::new().append("p", vec![9]).append_weighted("p", vec![(1, 1)]));
        assert_eq!(outcome.failed_ops, 1);
        assert_eq!(
            outcome.outcomes[1].1,
            Err(OpError::KindMismatch {
                session: SessionKind::Unweighted,
                batch: SessionKind::Weighted,
            })
        );
        // The plain append before it landed; the session is untouched by
        // the rejected op.
        assert_eq!(outcome.total_ingested, 1);
        assert_eq!(engine.session("p").unwrap().values(), &[9]);
        engine.check_invariants();
    }

    #[test]
    fn universe_overflow_rejects_the_whole_batch_atomically() {
        let mut engine = Engine::with_universe(8);
        engine.create_session("s");
        let outcome = engine.execute(&Tick::new().append("s", vec![1, 2, 99, 3]));
        assert_eq!(
            outcome.outcomes[0].1,
            Err(OpError::UniverseOverflow { value: 99, universe: 8 })
        );
        assert_eq!(engine.session("s").unwrap().len(), 0, "no element of the batch may land");
        // Weighted overflow reports the first offending value too.
        engine.create_session_kind("w", SessionKind::Weighted);
        let outcome = engine.execute(&Tick::new().append_weighted("w", vec![(3, 1), (8, 2)]));
        assert_eq!(outcome.outcomes[0].1, Err(OpError::UniverseOverflow { value: 8, universe: 8 }));
        assert_eq!(engine.weighted_session("w").unwrap().len(), 0);
    }

    #[test]
    fn strict_ticks_require_explicit_creation() {
        let mut engine = Engine::with_universe(1 << 8);
        let outcome = engine.execute(&Tick::new().append("ghost", vec![1]));
        assert_eq!(outcome.outcomes[0].1, Err(OpError::UnknownSession));
        assert_eq!(engine.session_count(), 0, "strict appends never create sessions");
        // The same tick with an explicit create succeeds end to end.
        let outcome = engine.execute(
            &Tick::new().create("ghost", SessionKind::Unweighted).append("ghost", vec![1]),
        );
        assert!(outcome.fully_applied());
        assert_eq!(engine.lis_length("ghost"), Some(1));
    }

    #[test]
    fn explicit_kind_creation_wins_over_default() {
        let mut engine = Engine::with_universe(1 << 8);
        assert!(engine.create_session_kind("w", SessionKind::Weighted));
        assert!(!engine.create_session("w"), "id taken regardless of kind");
        assert_eq!(engine.session_kind("w"), Some(SessionKind::Weighted));
        assert_eq!(engine.best_score("w"), Some(0));
        assert_eq!(engine.lis_length("w"), None, "kind-mismatched accessor returns None");
        // The op-level create reports the occupant's kind.
        let outcome = engine.execute(&Tick::new().create("w", SessionKind::Unweighted));
        assert_eq!(
            outcome.outcomes[0].1,
            Err(OpError::SessionExists { kind: SessionKind::Weighted })
        );
    }

    #[test]
    fn read_ticks_answer_in_order_and_flag_missing_sessions() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 4, ..EngineConfig::default() });
        engine.execute(
            &Tick::new()
                .append("a", vec![1, 5, 3, 7])
                .append_weighted("w", vec![(2u64, 10u64), (4, 20)])
                .auto_create(),
        );

        let tick = ReadTick::new()
            .query("a", vec![Query::RankOf(3), Query::CountAt(1)])
            .query("ghost", Query::Certificate)
            .query("w", vec![Query::RankOf(1), Query::TopK(1)])
            .query("a", Query::Certificate);
        let outcome = engine.execute_read(&tick);
        assert_eq!(outcome.outcomes.len(), 4);
        assert_eq!(outcome.total_queries, 5, "missing sessions answer nothing");
        assert_eq!(outcome.sessions_queried, 2);
        assert_eq!(outcome.sessions_missing, 1);
        assert!(!outcome.fully_answered());
        let ids: Vec<&str> = outcome.outcomes.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, vec!["a", "ghost", "w", "a"]);
        let a = outcome.outcomes[0].1.as_ref().unwrap();
        assert_eq!(a.answers[0], QueryAnswer::Rank(Some(3)));
        assert_eq!(a.answers[1], QueryAnswer::Count(1));
        assert_eq!(outcome.outcomes[1].1, Err(OpError::UnknownSession));
        let w = outcome.outcomes[2].1.as_ref().unwrap();
        assert_eq!(w.answers[0], QueryAnswer::Rank(Some(30)));
        assert_eq!(w.answers[1], QueryAnswer::TopK(vec![(1, 30)]));
        let QueryAnswer::Certificate(cert) = &outcome.outcomes[3].1.as_ref().unwrap().answers[0]
        else {
            panic!("expected a certificate");
        };
        assert_eq!(cert.claimed, 3); // 1 < 5 < 7 (or 1 < 3 < 7)
                                     // Queries never create sessions.
        assert_eq!(engine.session_count(), 2);
    }

    #[test]
    fn mixed_read_write_ticks_read_their_own_writes() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 2, ..EngineConfig::default() });
        let tick = Tick::new()
            // Query before the session exists: typed error, no session
            // created (auto_create only applies to appends).
            .query("s", Query::RankOf(0))
            .append("s", vec![10u64, 20])
            // Query between two writes to the same session sees the first.
            .query("s", vec![Query::RankOf(1), Query::RankOf(2)])
            .append("s", vec![30u64])
            .query("s", Query::RankOf(2))
            .auto_create();
        let outcome = engine.execute(&tick);
        assert_eq!(outcome.total_ingested, 3);
        assert_eq!(outcome.total_queries, 3, "the missing-session batch answers nothing");
        assert_eq!(outcome.sessions_touched, 1);
        assert_eq!(outcome.weighted_sessions_touched, 0);
        assert_eq!(outcome.sessions_queried, 1);
        assert_eq!(outcome.failed_ops, 1);
        assert_eq!(outcome.outcomes[0].1, Err(OpError::UnknownSession));
        let mid = outcome.outcomes[2].1.as_ref().unwrap().as_answered().unwrap();
        assert_eq!(mid.answers, vec![QueryAnswer::Rank(Some(2)), QueryAnswer::Rank(None)]);
        let last = outcome.outcomes[4].1.as_ref().unwrap().as_answered().unwrap();
        assert_eq!(last.answers, vec![QueryAnswer::Rank(Some(3))]);
        assert_eq!(engine.lis_length("s"), Some(3));
    }

    #[test]
    fn session_ids_share_the_arc_allocation() {
        let id = SessionId::from("shared");
        let clone = id.clone();
        assert!(id.shares_allocation(&clone), "cloning must bump the refcount, not copy");
        let mut engine = Engine::with_universe(64);
        engine.execute(&Tick::new().append(id.clone(), vec![1, 2]).auto_create());
        let ids = engine.session_ids();
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0], id);
    }
}
