//! The engine's **persistence plane**: versioned binary snapshots of
//! session state, plus the tick codec and replay driver that pair them
//! with the append-only journal in `plis-telemetry`.
//!
//! # Why hand-rolled
//!
//! The build environment has no registry access, so `serde`/`bincode` are
//! unavailable; the codec here is written by hand against a fixed byte
//! layout.  That also keeps the format honest: every field is spelled out
//! below, and the proptest layer round-trips it.
//!
//! # Format
//!
//! The sealed-container framing (magic, version, payload kind, CRC) and
//! the tick codec live in [`crate::wire`] — one byte layout shared by
//! this persistence plane and the service plane, so the journal and the
//! TCP server can never drift apart.  This module layers the snapshot
//! payloads, the journal driver and replay on top.  Any single mutated
//! byte fails decode with a typed [`SnapshotError`]; nothing here panics
//! on foreign bytes.
//!
//! Inside a payload, integers are fixed-width little-endian and every
//! array is length-prefixed with a `u64`.  A session payload is
//!
//! ```text
//! [session kind: u8]
//! kind 0 (unweighted): [universe: u64][values][ranks (u32)][tails]
//! kind 1 (weighted):   [universe: u64][values][weights][scores][frontier pairs]
//! ```
//!
//! # Validation: decode implies restorable
//!
//! [`SessionSnapshot::decode`] (and [`SessionSnapshot::validate`], which
//! the restore paths also run on programmatically built snapshots)
//! re-derives the summary state from the captured stream — a sequential
//! patience pass for ranks/tails, a sequential Algorithm-2 pass for
//! scores/frontier — and rejects any disagreement.  A snapshot that
//! decodes is therefore *exactly* the state ingesting its stream would
//! produce, so restore can rebuild the derived structures (rank index,
//! tail-set mirror, score multiplicities) without re-checking anything,
//! and no later query can trip an internal invariant.  Restore is
//! all-or-nothing: a rejected snapshot creates no session.
//!
//! # Snapshot + journal ≡ never stopped
//!
//! The engine is deterministic tick-for-tick (the `determinism.rs` layer
//! pins this), so the recovery contract is compositional: a snapshot
//! captures the complete algorithmic state of its sessions (values, ranks,
//! tails / weights, scores, frontier — everything ingest reads), and
//! replaying the journal suffix from that state applies the exact same
//! per-session op sequences the uninterrupted engine saw.  The
//! `snapshot_replay.rs` differential suite asserts the resulting outcomes,
//! answers and certificates are bit-identical.

use crate::engine::{Engine, EngineConfig, SessionKind, SessionState};
use crate::op::{OpError, Tick, TickOutcome};
use crate::session::StreamingLisOn;
use crate::wire::{
    open, put_pairs, put_str, put_u32s, put_u64, put_u64s, seal, Reader, PAYLOAD_ENGINE,
    PAYLOAD_SESSION,
};
use crate::wsession::WeightedStreamingLis;
use plis_lis::DominantMaxKind;
use plis_telemetry::{read_journal, JournalTail, JournalWriter};
use std::io::{self, Write};

pub use crate::wire::{decode_tick, encode_tick, FORMAT_VERSION};

/// Why a byte stream failed to decode (or a snapshot failed validation).
/// Decoding foreign bytes never panics: every failure is one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream ended before the announced data did.
    Truncated,
    /// The stream does not start with the `PLISSNAP` magic.
    BadMagic,
    /// The stream announces a format version this build cannot read.
    UnsupportedVersion(u8),
    /// A checksum failed: some byte of the stream was altered.
    ChecksumMismatch,
    /// The framing is intact but the content is inconsistent — the
    /// message names the first violated property.
    Malformed(&'static str),
    /// The payload decoded completely but bytes remain after it.
    TrailingBytes,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "byte stream truncated"),
            SnapshotError::BadMagic => write!(f, "not a plis snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported format version {v} (this build reads {FORMAT_VERSION})")
            }
            SnapshotError::ChecksumMismatch => write!(f, "checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed payload: {what}"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// Session snapshots.

/// Point-in-time state of one session — everything its ingest and query
/// paths read.  Derived structures (the flat rank index, the tail-set
/// mirror, the score-multiplicity map) are *not* stored: they are pure
/// functions of the fields here and are rebuilt on restore, which keeps
/// the format small and the validation story airtight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionSnapshot {
    /// An unweighted (plain LIS) session.
    Unweighted {
        /// Value universe the session runs over.
        universe: u64,
        /// Every ingested value, in arrival order.
        values: Vec<u64>,
        /// Exact per-element ranks (dp values), final on ingest.
        ranks: Vec<u32>,
        /// The patience tails, extracted through the tail-set mirror's
        /// bulk export (strictly increasing).
        tails: Vec<u64>,
    },
    /// A weighted (Algorithm-2) session.
    Weighted {
        /// Value universe the session runs over.
        universe: u64,
        /// Every ingested value, in arrival order.
        values: Vec<u64>,
        /// Every ingested weight, in arrival order.
        weights: Vec<u64>,
        /// Exact per-element dp scores, final on ingest.
        scores: Vec<u64>,
        /// The Pareto frontier of `(value, score)` pairs (strictly
        /// increasing in both coordinates).
        frontier: Vec<(u64, u64)>,
    },
}

impl SessionSnapshot {
    /// Capture the complete algorithmic state of a live session.
    pub fn capture(state: &SessionState) -> SessionSnapshot {
        match state {
            SessionState::Unweighted(s) => {
                let mut tails = Vec::new();
                s.export_tails_into(&mut tails);
                SessionSnapshot::Unweighted {
                    universe: s.universe(),
                    values: s.values().to_vec(),
                    ranks: s.ranks().to_vec(),
                    tails,
                }
            }
            SessionState::Weighted(s) => SessionSnapshot::Weighted {
                universe: s.universe(),
                values: s.values().to_vec(),
                weights: s.weights().to_vec(),
                scores: s.scores().to_vec(),
                frontier: s.frontier().to_vec(),
            },
        }
    }

    /// Which session kind this snapshot restores to.
    pub fn kind(&self) -> SessionKind {
        match self {
            SessionSnapshot::Unweighted { .. } => SessionKind::Unweighted,
            SessionSnapshot::Weighted { .. } => SessionKind::Weighted,
        }
    }

    /// The universe the snapshot was captured over.
    pub fn universe(&self) -> u64 {
        match self {
            SessionSnapshot::Unweighted { universe, .. }
            | SessionSnapshot::Weighted { universe, .. } => *universe,
        }
    }

    /// Number of stream elements the snapshot holds.
    pub fn len(&self) -> usize {
        match self {
            SessionSnapshot::Unweighted { values, .. }
            | SessionSnapshot::Weighted { values, .. } => values.len(),
        }
    }

    /// True when the captured stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize into a sealed, checksummed byte stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16 * self.len() + 64);
        self.encode_payload(&mut payload);
        seal(PAYLOAD_SESSION, &payload)
    }

    /// Decode a sealed byte stream produced by [`SessionSnapshot::encode`].
    ///
    /// Never panics: framing damage, version skew and semantic
    /// inconsistencies all come back as typed [`SnapshotError`]s, and a
    /// snapshot that decodes is guaranteed restorable (see the module
    /// docs).
    pub fn decode(bytes: &[u8]) -> Result<SessionSnapshot, SnapshotError> {
        let mut r = Reader::new(open(bytes, PAYLOAD_SESSION)?);
        let snapshot = SessionSnapshot::decode_payload(&mut r)?;
        r.finish()?;
        Ok(snapshot)
    }

    /// Write the (unsealed) session payload; used directly when nesting
    /// inside engine snapshots, tick records and outcome frames.
    pub(crate) fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            SessionSnapshot::Unweighted { universe, values, ranks, tails } => {
                out.push(0);
                put_u64(out, *universe);
                put_u64s(out, values);
                put_u32s(out, ranks);
                put_u64s(out, tails);
            }
            SessionSnapshot::Weighted { universe, values, weights, scores, frontier } => {
                out.push(1);
                put_u64(out, *universe);
                put_u64s(out, values);
                put_u64s(out, weights);
                put_u64s(out, scores);
                put_pairs(out, frontier);
            }
        }
    }

    /// Read one session payload (validated) from `r`.
    pub(crate) fn decode_payload(r: &mut Reader<'_>) -> Result<SessionSnapshot, SnapshotError> {
        let snapshot = match r.u8()? {
            0 => SessionSnapshot::Unweighted {
                universe: r.u64()?,
                values: r.u64s()?,
                ranks: r.u32s()?,
                tails: r.u64s()?,
            },
            1 => SessionSnapshot::Weighted {
                universe: r.u64()?,
                values: r.u64s()?,
                weights: r.u64s()?,
                scores: r.u64s()?,
                frontier: r.pairs()?,
            },
            _ => return Err(SnapshotError::Malformed("unknown session kind byte")),
        };
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// Check that the snapshot is internally consistent — i.e. that the
    /// summary state (ranks/tails or scores/frontier) is exactly what
    /// ingesting the captured stream produces.  [`SessionSnapshot::decode`]
    /// runs this on every decode, and the restore paths run it again on
    /// snapshots handed to them directly, so a hand-crafted inconsistent
    /// snapshot is rejected instead of poisoning a session.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        match self {
            SessionSnapshot::Unweighted { universe, values, ranks, tails } => {
                validate_unweighted(*universe, values, ranks, tails)
            }
            SessionSnapshot::Weighted { universe, values, weights, scores, frontier } => {
                validate_weighted(*universe, values, weights, scores, frontier)
            }
        }
    }

    /// Build the live session state this snapshot describes, using the
    /// engine's configured backend / dominant-max store / path policy for
    /// the rebuilt derived structures.  Validates first; all-or-nothing.
    pub(crate) fn restore_state(&self, config: &EngineConfig) -> Result<SessionState, OpError> {
        if self.universe() != config.universe {
            return Err(OpError::UniverseMismatch {
                snapshot: self.universe(),
                universe: config.universe,
            });
        }
        self.validate().map_err(OpError::InvalidSnapshot)?;
        Ok(match self {
            SessionSnapshot::Unweighted { universe, values, ranks, tails } => {
                SessionState::Unweighted(StreamingLisOn::from_restored(
                    *universe,
                    values.clone(),
                    ranks.clone(),
                    tails.clone(),
                    config.backend.store(*universe),
                    config.path_policy,
                ))
            }
            SessionSnapshot::Weighted { universe, values, weights, scores, frontier } => {
                SessionState::Weighted(WeightedStreamingLis::from_restored(
                    *universe,
                    values.clone(),
                    weights.clone(),
                    scores.clone(),
                    frontier.clone(),
                    config.dommax,
                    config.path_policy,
                ))
            }
        })
    }
}

/// Re-run the sequential patience pass over `values` and require `ranks`
/// and `tails` to match it exactly.
fn validate_unweighted(
    universe: u64,
    values: &[u64],
    ranks: &[u32],
    tails: &[u64],
) -> Result<(), SnapshotError> {
    if universe == 0 {
        return Err(SnapshotError::Malformed("universe must be non-empty"));
    }
    if values.len() != ranks.len() {
        return Err(SnapshotError::Malformed("values and ranks differ in length"));
    }
    if values.len() > u32::MAX as usize {
        return Err(SnapshotError::Malformed("stream exceeds u32 element addressing"));
    }
    if values.iter().any(|&v| v >= universe) {
        return Err(SnapshotError::Malformed("value outside the universe"));
    }
    let mut t: Vec<u64> = Vec::with_capacity(tails.len());
    for (&v, &r) in values.iter().zip(ranks) {
        let pos = t.partition_point(|&x| x < v);
        if r as usize != pos + 1 {
            return Err(SnapshotError::Malformed("ranks inconsistent with the value stream"));
        }
        if pos == t.len() {
            t.push(v);
        } else if v < t[pos] {
            t[pos] = v;
        }
    }
    if t != tails {
        return Err(SnapshotError::Malformed("tails inconsistent with the value stream"));
    }
    Ok(())
}

/// Re-run the sequential Algorithm-2 pass over the stream and require
/// `scores` and `frontier` to match it exactly.
fn validate_weighted(
    universe: u64,
    values: &[u64],
    weights: &[u64],
    scores: &[u64],
    frontier: &[(u64, u64)],
) -> Result<(), SnapshotError> {
    if universe == 0 {
        return Err(SnapshotError::Malformed("universe must be non-empty"));
    }
    if values.len() != weights.len() || values.len() != scores.len() {
        return Err(SnapshotError::Malformed("values, weights and scores differ in length"));
    }
    if values.iter().any(|&v| v >= universe) {
        return Err(SnapshotError::Malformed("value outside the universe"));
    }
    let mut probe =
        WeightedStreamingLis::new(universe, DominantMaxKind::Auto).with_par_threshold(usize::MAX);
    let pairs: Vec<(u64, u64)> = values.iter().zip(weights).map(|(&v, &w)| (v, w)).collect();
    probe.ingest(&pairs);
    if probe.scores() != scores {
        return Err(SnapshotError::Malformed("scores inconsistent with the stream"));
    }
    if probe.frontier() != frontier {
        return Err(SnapshotError::Malformed("frontier inconsistent with the stream"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Engine snapshots.

/// Point-in-time state of a whole engine: every live session's snapshot,
/// keyed by id and sorted by it (the same order `session_ids()` reports),
/// plus the configured universe.
///
/// Sharding, path policy and backend selection are *not* stored: they are
/// configuration, not state, and a snapshot may legitimately be restored
/// into an engine with a different shard count or backend — outcomes are
/// bit-identical either way (the determinism layers pin this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// The engine's value universe.
    pub universe: u64,
    /// `(id, snapshot)` per live session, sorted by id.
    pub sessions: Vec<(String, SessionSnapshot)>,
}

impl EngineSnapshot {
    /// Serialize into a sealed, checksummed byte stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.universe);
        put_u64(&mut payload, self.sessions.len() as u64);
        for (id, snapshot) in &self.sessions {
            put_str(&mut payload, id);
            snapshot.encode_payload(&mut payload);
        }
        seal(PAYLOAD_ENGINE, &payload)
    }

    /// Decode a sealed byte stream produced by [`EngineSnapshot::encode`].
    /// Every nested session is validated; never panics.
    pub fn decode(bytes: &[u8]) -> Result<EngineSnapshot, SnapshotError> {
        let mut r = Reader::new(open(bytes, PAYLOAD_ENGINE)?);
        let universe = r.u64()?;
        // Each session costs at least an id length and a kind byte.
        let n = r.len(9)?;
        let mut sessions = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.str()?.to_string();
            if let Some((last, _)) = sessions.last() {
                if *last >= id {
                    return Err(SnapshotError::Malformed("session ids must be sorted and unique"));
                }
            }
            let snapshot = SessionSnapshot::decode_payload(&mut r)?;
            if snapshot.universe() != universe {
                return Err(SnapshotError::Malformed(
                    "session universe differs from the engine universe",
                ));
            }
            sessions.push((id, snapshot));
        }
        r.finish()?;
        Ok(EngineSnapshot { universe, sessions })
    }

    /// Number of sessions captured.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }
}

// ---------------------------------------------------------------------------
// The tick journal and the replay driver.

/// Append-only journal of executed ticks: [`encode_tick`] records framed
/// by the generic [`JournalWriter`] of `plis-telemetry` (each record
/// independently checksummed, torn tails recoverable).  Write every tick
/// *before* executing it — the recovery contract replays journalled ticks
/// after the last snapshot, so a tick that executed but never reached the
/// journal would be lost.
#[derive(Debug)]
pub struct TickJournal<W: Write> {
    writer: JournalWriter<W>,
}

impl<W: Write> TickJournal<W> {
    /// Start journalling onto `target` (a file, a
    /// [`MemorySink`](plis_telemetry::MemorySink), a `Vec<u8>`, …).
    pub fn new(target: W) -> Self {
        TickJournal { writer: JournalWriter::new(target) }
    }

    /// Append one tick; flushed before returning.
    pub fn record(&mut self, tick: &Tick) -> io::Result<()> {
        self.writer.append(&encode_tick(tick))
    }

    /// Ticks recorded so far.
    pub fn records(&self) -> u64 {
        self.writer.records()
    }

    /// Borrow the underlying writer.
    pub fn get_ref(&self) -> &W {
        self.writer.get_ref()
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

/// What one journal replay did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// One outcome per replayed tick, in journal order.
    pub outcomes: Vec<TickOutcome>,
    /// Complete journal records skipped (the prefix a snapshot already
    /// covers).
    pub skipped: usize,
    /// Bytes of a torn trailing record that were ignored (0 for a clean
    /// journal) — the crash-recovery case.
    pub truncated_bytes: usize,
}

/// Re-execute a tick journal against `engine`, starting after the first
/// `skip` records (the ticks a restored snapshot already covers).
///
/// A torn trailing record — the classic kill-during-append — is ignored
/// and reported via [`ReplayReport::truncated_bytes`]; a checksum failure
/// on a *complete* record, or an undecodable tick, aborts with a typed
/// error before executing anything further.
pub fn replay_journal_from(
    engine: &mut Engine,
    journal: &[u8],
    skip: usize,
) -> Result<ReplayReport, SnapshotError> {
    let contents = read_journal(journal).map_err(|_| SnapshotError::ChecksumMismatch)?;
    let mut outcomes = Vec::new();
    for record in contents.records.iter().skip(skip) {
        let tick = decode_tick(record)?;
        outcomes.push(engine.execute(&tick));
    }
    let truncated_bytes = match contents.tail {
        JournalTail::Clean => 0,
        JournalTail::Truncated { dropped_bytes } => dropped_bytes,
    };
    Ok(ReplayReport { outcomes, skipped: skip.min(contents.records.len()), truncated_bytes })
}

/// Re-execute a whole tick journal against `engine` (no skipping) — the
/// from-scratch recovery path, equivalent to
/// [`replay_journal_from`]`(engine, journal, 0)`.
pub fn replay_journal(engine: &mut Engine, journal: &[u8]) -> Result<ReplayReport, SnapshotError> {
    replay_journal_from(engine, journal, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn config() -> EngineConfig {
        EngineConfig { universe: 1 << 16, ..EngineConfig::default() }
    }

    fn warm_engine() -> Engine {
        let mut engine = Engine::new(config());
        let tick = Tick::new()
            .create("plain", SessionKind::Unweighted)
            .append("plain", vec![52, 31, 45, 26, 61, 10, 39, 44])
            .create("heavy", SessionKind::Weighted)
            .append_weighted("heavy", vec![(1, 1), (2, 100), (3, 1), (4, 1)]);
        assert!(engine.execute(&tick).fully_applied());
        engine
    }

    #[test]
    fn session_snapshot_round_trips() {
        let engine = warm_engine();
        for id in ["plain", "heavy"] {
            let snapshot = engine.snapshot_session(id).unwrap();
            let bytes = snapshot.encode();
            assert_eq!(SessionSnapshot::decode(&bytes), Ok(snapshot), "{id}");
        }
    }

    #[test]
    fn engine_snapshot_round_trips_and_orders_ids() {
        let engine = warm_engine();
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.session_count(), 2);
        let ids: Vec<&str> = snapshot.sessions.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, ["heavy", "plain"], "sorted by id");
        let decoded = EngineSnapshot::decode(&snapshot.encode()).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn decode_rejects_header_damage_with_typed_errors() {
        let engine = warm_engine();
        let bytes = engine.snapshot_session("plain").unwrap().encode();
        assert_eq!(SessionSnapshot::decode(&bytes[..4]), Err(SnapshotError::Truncated));
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(SessionSnapshot::decode(&bad_magic), Err(SnapshotError::BadMagic));
        let mut bad_version = bytes.clone();
        bad_version[8] = FORMAT_VERSION + 1;
        assert_eq!(
            SessionSnapshot::decode(&bad_version),
            Err(SnapshotError::UnsupportedVersion(FORMAT_VERSION + 1))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SessionSnapshot::decode(&trailing).is_err());
        // A session stream is not an engine stream.
        assert!(EngineSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn validate_rejects_inconsistent_state() {
        let engine = warm_engine();
        let snapshot = engine.snapshot_session("plain").unwrap();
        let SessionSnapshot::Unweighted { universe, values, mut ranks, tails } = snapshot else {
            panic!("plain session must snapshot unweighted");
        };
        ranks[0] = 3;
        let forged = SessionSnapshot::Unweighted { universe, values, ranks, tails };
        assert!(matches!(forged.validate(), Err(SnapshotError::Malformed(_))));
        // And the restore paths reject it instead of building a session.
        let mut target = Engine::new(config());
        assert!(matches!(
            target.restore_session("forged", &forged),
            Err(OpError::InvalidSnapshot(_))
        ));
        assert_eq!(target.session_count(), 0);
    }

    #[test]
    fn tick_codec_round_trips_every_op() {
        let snapshot = warm_engine().snapshot_session("heavy").unwrap();
        let tick = Tick::new()
            .create("a", SessionKind::Unweighted)
            .append("a", vec![1, 2, 3])
            .append_weighted("w", vec![(5, 2), (6, 1)])
            .query(
                "a",
                vec![Query::RankOf(0), Query::CountAt(7), Query::TopK(2), Query::Certificate],
            )
            .snapshot("a")
            .restore("w2", snapshot)
            .remove("a");
        let bytes = encode_tick(&tick);
        assert_eq!(decode_tick(&bytes), Ok(tick));
        let auto = Tick::new().auto_create().append("x", vec![9]);
        assert_eq!(decode_tick(&encode_tick(&auto)), Ok(auto));
    }

    #[test]
    fn replay_reproduces_the_journalled_engine() {
        let mut journal = TickJournal::new(Vec::new());
        let ticks = [
            Tick::new().auto_create().append("s", vec![5, 3, 8]),
            Tick::new().append("s", vec![1, 9, 2]).query("s", Query::Certificate),
        ];
        let mut live = Engine::new(config());
        for tick in &ticks {
            journal.record(tick).unwrap();
            live.execute(tick);
        }
        let bytes = journal.into_inner();
        let mut recovered = Engine::new(config());
        let report = replay_journal(&mut recovered, &bytes).unwrap();
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(recovered.session_ids(), live.session_ids());
        assert_eq!(recovered.session("s").unwrap().ranks(), live.session("s").unwrap().ranks());
    }
}
