//! The engine's **wire codec**: the one binary encoding shared by the
//! persistence plane (tick journal, snapshot files) and the service plane
//! (`plis-server`'s TCP protocol).
//!
//! Historically the tick codec lived inside [`crate::snapshot`]; serving
//! the command plane over a network needs the same byte layout on both
//! sides of a socket, so the codec moved here and grew the remaining
//! message kinds: read ticks and both outcome types.  The journal and the
//! server now frame through *one* implementation — there is no second
//! copy to drift.
//!
//! # Format
//!
//! Every artifact is a *sealed container*, little-endian throughout:
//!
//! ```text
//! [magic "PLISSNAP": 8][version: u8][payload kind: u8]
//! [crc64(payload): u64][payload bytes...]
//! ```
//!
//! The CRC is CRC-64/XZ ([`plis_telemetry::crc64`]) over the payload, so
//! any single mutated byte — header or payload — fails decode with a typed
//! [`SnapshotError`]; nothing in this module panics on foreign bytes.
//! Payload kinds: `0` = one session, `1` = a whole engine, `2` = one tick,
//! `3` = one read tick, `4` = one tick outcome, `5` = one read outcome.
//! The version byte is bumped on any layout change; old readers reject new
//! artifacts with [`SnapshotError::UnsupportedVersion`] instead of
//! misparsing them.
//!
//! Inside a payload, integers are fixed-width little-endian and every
//! array is length-prefixed with a `u64`.  Outcome payloads carry every
//! *algorithmic* field of [`TickOutcome`] / [`ReadOutcome`] plus the
//! observational `worker_threads` / `elapsed_ns` gauges, so a remote
//! client sees exactly what a library caller would; decode reassembles the
//! aggregate counters through the same constructor the executor uses.

use crate::engine::{SessionId, SessionKind};
use crate::op::{Op, OpError, OpOutput, ReadOutcome, ReadTick, Tick, TickOutcome};
use crate::query::{Certificate, Query, QueryAnswer, QueryBatch, QueryReport};
use crate::session::{IngestPath, IngestReport};
use crate::snapshot::{SessionSnapshot, SnapshotError};
use crate::wsession::WeightedIngestReport;
use crate::{BatchReport, DominantMaxKind};
use plis_lis::TailRoute;
use plis_telemetry::crc64;

/// Leading magic of every sealed artifact.
pub(crate) const MAGIC: &[u8; 8] = b"PLISSNAP";

/// Current format version; bumped on any layout change.
pub const FORMAT_VERSION: u8 = 1;

/// Sealed-container header length: magic + version + payload kind + CRC.
pub(crate) const HEADER_LEN: usize = 8 + 1 + 1 + 8;

/// Payload kind byte: one session.
pub(crate) const PAYLOAD_SESSION: u8 = 0;
/// Payload kind byte: a whole engine.
pub(crate) const PAYLOAD_ENGINE: u8 = 1;
/// Payload kind byte: one tick.
pub(crate) const PAYLOAD_TICK: u8 = 2;
/// Payload kind byte: one read-only tick.
pub(crate) const PAYLOAD_READ_TICK: u8 = 3;
/// Payload kind byte: one tick outcome.
pub(crate) const PAYLOAD_TICK_OUTCOME: u8 = 4;
/// Payload kind byte: one read outcome.
pub(crate) const PAYLOAD_READ_OUTCOME: u8 = 5;

// ---------------------------------------------------------------------------
// Byte-level helpers.

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64s(out: &mut Vec<u8>, xs: &[u64]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u64(out, x);
    }
}

pub(crate) fn put_u32s(out: &mut Vec<u8>, xs: &[u32]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u32(out, x);
    }
}

pub(crate) fn put_pairs(out: &mut Vec<u8>, xs: &[(u64, u64)]) {
    put_u64(out, xs.len() as u64);
    for &(a, b) in xs {
        put_u64(out, a);
        put_u64(out, b);
    }
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(b as u8);
}

/// A bounds-checked reader over a payload slice.  Every accessor returns
/// [`SnapshotError::Truncated`] instead of slicing out of range, and the
/// array readers verify the announced length fits the remaining bytes
/// *before* allocating, so a corrupted length can never trigger a huge
/// allocation.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.pos < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Malformed("usize overflow"))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("flag byte must be 0 or 1")),
        }
    }

    /// Read an array length and check `len * elem_size` fits the bytes
    /// that are actually left.
    pub(crate) fn len(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let n = usize::try_from(self.u64()?).map_err(|_| SnapshotError::Truncated)?;
        match n.checked_mul(elem_size) {
            Some(bytes) if bytes <= self.bytes.len() - self.pos => Ok(n),
            _ => Err(SnapshotError::Truncated),
        }
    }

    pub(crate) fn u64s(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    pub(crate) fn u32s(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    pub(crate) fn pairs(&mut self) -> Result<Vec<(u64, u64)>, SnapshotError> {
        let n = self.len(16)?;
        (0..n).map(|_| Ok((self.u64()?, self.u64()?))).collect()
    }

    pub(crate) fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let n = self.len(1)?;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| SnapshotError::Malformed("session id is not valid UTF-8"))
    }

    pub(crate) fn finish(&self) -> Result<(), SnapshotError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes)
        }
    }
}

/// Wrap `payload` in the sealed container (magic, version, kind, CRC).
pub(crate) fn seal(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.push(FORMAT_VERSION);
    out.push(kind);
    put_u64(&mut out, crc64(payload));
    out.extend_from_slice(payload);
    out
}

/// Check the sealed container around `bytes` and return the verified
/// payload slice.
pub(crate) fn open(bytes: &[u8], kind: u8) -> Result<&[u8], SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes[8] != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(bytes[8]));
    }
    let crc = u64::from_le_bytes(bytes[10..18].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if crc64(payload) != crc {
        return Err(SnapshotError::ChecksumMismatch);
    }
    if bytes[9] != kind {
        return Err(SnapshotError::Malformed("sealed payload is of a different kind"));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// The tick codec.

/// Serialize one tick into a sealed, checksummed byte stream — the record
/// format of the tick journal and the request format of the service plane.
pub fn encode_tick(tick: &Tick) -> Vec<u8> {
    let mut payload = Vec::new();
    put_bool(&mut payload, tick.creates_missing());
    put_u64(&mut payload, tick.slots().len() as u64);
    for (id, op) in tick.slots() {
        put_str(&mut payload, id.as_str());
        encode_op(&mut payload, op);
    }
    seal(PAYLOAD_TICK, &payload)
}

/// Decode a sealed byte stream produced by [`encode_tick`].  Never
/// panics; nested [`Op::Restore`] snapshots are validated like any other.
pub fn decode_tick(bytes: &[u8]) -> Result<Tick, SnapshotError> {
    let mut r = Reader::new(open(bytes, PAYLOAD_TICK)?);
    let create_missing = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Malformed("create_missing must be 0 or 1")),
    };
    let mut tick = if create_missing { Tick::new().auto_create() } else { Tick::new() };
    // Each slot costs at least an id length and an op tag.
    let n = r.len(9)?;
    for _ in 0..n {
        let id = r.str()?.to_string();
        let op = decode_op(&mut r)?;
        tick.push(id, op);
    }
    r.finish()?;
    Ok(tick)
}

/// Serialize one read-only tick into a sealed, checksummed byte stream —
/// the read-request format of the service plane.
pub fn encode_read_tick(tick: &ReadTick) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, tick.slots().len() as u64);
    for (id, batch) in tick.slots() {
        put_str(&mut payload, id.as_str());
        put_queries(&mut payload, batch);
    }
    seal(PAYLOAD_READ_TICK, &payload)
}

/// Decode a sealed byte stream produced by [`encode_read_tick`].
pub fn decode_read_tick(bytes: &[u8]) -> Result<ReadTick, SnapshotError> {
    let mut r = Reader::new(open(bytes, PAYLOAD_READ_TICK)?);
    let mut tick = ReadTick::new();
    // Each slot costs at least an id length and a batch length.
    let n = r.len(16)?;
    for _ in 0..n {
        let id = r.str()?.to_string();
        let batch = read_queries(&mut r)?;
        tick.push(id, batch);
    }
    r.finish()?;
    Ok(tick)
}

fn encode_kind(out: &mut Vec<u8>, kind: SessionKind) {
    out.push(match kind {
        SessionKind::Unweighted => 0,
        SessionKind::Weighted => 1,
    });
}

fn decode_kind(r: &mut Reader<'_>) -> Result<SessionKind, SnapshotError> {
    match r.u8()? {
        0 => Ok(SessionKind::Unweighted),
        1 => Ok(SessionKind::Weighted),
        _ => Err(SnapshotError::Malformed("unknown session kind byte")),
    }
}

fn put_queries(out: &mut Vec<u8>, batch: &QueryBatch) {
    put_u64(out, batch.queries().len() as u64);
    for &q in batch.queries() {
        match q {
            Query::RankOf(i) => {
                out.push(0);
                put_u64(out, i as u64);
            }
            Query::CountAt(x) => {
                out.push(1);
                put_u64(out, x);
            }
            Query::TopK(k) => {
                out.push(2);
                put_u64(out, k as u64);
            }
            Query::Certificate => out.push(3),
        }
    }
}

fn read_queries(r: &mut Reader<'_>) -> Result<QueryBatch, SnapshotError> {
    let n = r.len(1)?;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        queries.push(match r.u8()? {
            0 => Query::RankOf(
                usize::try_from(r.u64()?)
                    .map_err(|_| SnapshotError::Malformed("rank-of index overflow"))?,
            ),
            1 => Query::CountAt(r.u64()?),
            2 => Query::TopK(
                usize::try_from(r.u64()?)
                    .map_err(|_| SnapshotError::Malformed("top-k overflow"))?,
            ),
            3 => Query::Certificate,
            _ => return Err(SnapshotError::Malformed("unknown query tag")),
        });
    }
    Ok(QueryBatch::new(queries))
}

fn encode_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Append(batch) => {
            out.push(0);
            put_u64s(out, batch);
        }
        Op::AppendWeighted(batch) => {
            out.push(1);
            put_pairs(out, batch);
        }
        Op::Query(batch) => {
            out.push(2);
            put_queries(out, batch);
        }
        Op::CreateSession { kind } => {
            out.push(3);
            encode_kind(out, *kind);
        }
        Op::RemoveSession => out.push(4),
        Op::Snapshot => out.push(5),
        Op::Restore(snapshot) => {
            out.push(6);
            snapshot.encode_payload(out);
        }
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<Op, SnapshotError> {
    Ok(match r.u8()? {
        0 => Op::Append(r.u64s()?),
        1 => Op::AppendWeighted(r.pairs()?),
        2 => Op::Query(read_queries(r)?),
        3 => Op::CreateSession { kind: decode_kind(r)? },
        4 => Op::RemoveSession,
        5 => Op::Snapshot,
        6 => Op::Restore(Box::new(SessionSnapshot::decode_payload(r)?)),
        _ => return Err(SnapshotError::Malformed("unknown op tag")),
    })
}

// ---------------------------------------------------------------------------
// The outcome codec.

/// The closed set of [`SnapshotError::Malformed`] messages this build can
/// produce, in a fixed order the wire codec indexes into.  `&'static str`
/// cannot round-trip arbitrary remote strings, so the codec ships a table
/// index instead; an index from a build with more messages decodes to
/// [`UNKNOWN_MALFORMED`] rather than failing.
const MALFORMED_MESSAGES: &[&str] = &[
    "create_missing must be 0 or 1",
    "flag byte must be 0 or 1",
    "frontier inconsistent with the stream",
    "rank-of index overflow",
    "ranks inconsistent with the value stream",
    "scores inconsistent with the stream",
    "sealed payload is of a different kind",
    "session id is not valid UTF-8",
    "session ids must be sorted and unique",
    "session universe differs from the engine universe",
    "stream exceeds u32 element addressing",
    "tails inconsistent with the value stream",
    "top-k overflow",
    "universe must be non-empty",
    "unknown op tag",
    "unknown query tag",
    "unknown session kind byte",
    "usize overflow",
    "value outside the universe",
    "values and ranks differ in length",
    "values, weights and scores differ in length",
];

/// What a [`SnapshotError::Malformed`] message outside
/// [`MALFORMED_MESSAGES`] decodes to — a forward-compat stand-in, not an
/// error.
const UNKNOWN_MALFORMED: &str = "validation failure from a newer peer";

fn encode_snapshot_error(out: &mut Vec<u8>, e: &SnapshotError) {
    match e {
        SnapshotError::Truncated => out.push(0),
        SnapshotError::BadMagic => out.push(1),
        SnapshotError::UnsupportedVersion(v) => {
            out.push(2);
            out.push(*v);
        }
        SnapshotError::ChecksumMismatch => out.push(3),
        SnapshotError::Malformed(msg) => {
            out.push(4);
            let index = MALFORMED_MESSAGES.iter().position(|m| m == msg);
            put_u64(out, index.map_or(u64::MAX, |i| i as u64));
        }
        SnapshotError::TrailingBytes => out.push(5),
    }
}

fn decode_snapshot_error(r: &mut Reader<'_>) -> Result<SnapshotError, SnapshotError> {
    Ok(match r.u8()? {
        0 => SnapshotError::Truncated,
        1 => SnapshotError::BadMagic,
        2 => SnapshotError::UnsupportedVersion(r.u8()?),
        3 => SnapshotError::ChecksumMismatch,
        4 => {
            let index = r.u64()?;
            let msg = usize::try_from(index)
                .ok()
                .and_then(|i| MALFORMED_MESSAGES.get(i).copied())
                .unwrap_or(UNKNOWN_MALFORMED);
            SnapshotError::Malformed(msg)
        }
        5 => SnapshotError::TrailingBytes,
        _ => return Err(SnapshotError::Malformed("unknown snapshot-error tag")),
    })
}

fn encode_op_error(out: &mut Vec<u8>, e: &OpError) {
    match e {
        OpError::UnknownSession => out.push(0),
        OpError::KindMismatch { session, batch } => {
            out.push(1);
            encode_kind(out, *session);
            encode_kind(out, *batch);
        }
        OpError::UniverseOverflow { value, universe } => {
            out.push(2);
            put_u64(out, *value);
            put_u64(out, *universe);
        }
        OpError::SessionExists { kind } => {
            out.push(3);
            encode_kind(out, *kind);
        }
        OpError::UniverseMismatch { snapshot, universe } => {
            out.push(4);
            put_u64(out, *snapshot);
            put_u64(out, *universe);
        }
        OpError::InvalidSnapshot(inner) => {
            out.push(5);
            encode_snapshot_error(out, inner);
        }
    }
}

fn decode_op_error(r: &mut Reader<'_>) -> Result<OpError, SnapshotError> {
    Ok(match r.u8()? {
        0 => OpError::UnknownSession,
        1 => OpError::KindMismatch { session: decode_kind(r)?, batch: decode_kind(r)? },
        2 => OpError::UniverseOverflow { value: r.u64()?, universe: r.u64()? },
        3 => OpError::SessionExists { kind: decode_kind(r)? },
        4 => OpError::UniverseMismatch { snapshot: r.u64()?, universe: r.u64()? },
        5 => OpError::InvalidSnapshot(decode_snapshot_error(r)?),
        _ => return Err(SnapshotError::Malformed("unknown op-error tag")),
    })
}

fn encode_ingest_path(out: &mut Vec<u8>, path: IngestPath) {
    out.push(match path {
        IngestPath::Sequential => 0,
        IngestPath::ParallelMerge => 1,
    });
}

fn decode_ingest_path(r: &mut Reader<'_>) -> Result<IngestPath, SnapshotError> {
    match r.u8()? {
        0 => Ok(IngestPath::Sequential),
        1 => Ok(IngestPath::ParallelMerge),
        _ => Err(SnapshotError::Malformed("unknown ingest-path byte")),
    }
}

fn encode_batch_report(out: &mut Vec<u8>, report: &BatchReport) {
    match report {
        BatchReport::Unweighted(r) => {
            out.push(0);
            put_u64(out, r.ingested as u64);
            put_u32(out, r.lis_before);
            put_u32(out, r.lis_after);
            encode_ingest_path(out, r.path);
            put_u64(out, r.tail_inserts as u64);
            put_u64(out, r.tail_removals as u64);
            out.push(match r.tail_store {
                None => 0,
                Some(TailRoute::Veb) => 1,
                Some(TailRoute::SortedVec) => 2,
            });
        }
        BatchReport::Weighted(r) => {
            out.push(1);
            put_u64(out, r.ingested as u64);
            put_u64(out, r.score_before);
            put_u64(out, r.score_after);
            encode_ingest_path(out, r.path);
            put_u64(out, r.frontier_len as u64);
            out.push(match r.dommax_used {
                None => 0,
                Some(DominantMaxKind::Auto) => 1,
                Some(DominantMaxKind::RangeTree) => 2,
                Some(DominantMaxKind::RangeVeb) => 3,
            });
            put_u64(out, r.dommax_queries);
            put_u64(out, r.dommax_writeback_elems);
        }
    }
}

fn decode_batch_report(r: &mut Reader<'_>) -> Result<BatchReport, SnapshotError> {
    Ok(match r.u8()? {
        0 => BatchReport::Unweighted(IngestReport {
            ingested: r.usize()?,
            lis_before: r.u32()?,
            lis_after: r.u32()?,
            path: decode_ingest_path(r)?,
            tail_inserts: r.usize()?,
            tail_removals: r.usize()?,
            tail_store: match r.u8()? {
                0 => None,
                1 => Some(TailRoute::Veb),
                2 => Some(TailRoute::SortedVec),
                _ => return Err(SnapshotError::Malformed("unknown tail-route byte")),
            },
        }),
        1 => BatchReport::Weighted(WeightedIngestReport {
            ingested: r.usize()?,
            score_before: r.u64()?,
            score_after: r.u64()?,
            path: decode_ingest_path(r)?,
            frontier_len: r.usize()?,
            dommax_used: match r.u8()? {
                0 => None,
                1 => Some(DominantMaxKind::Auto),
                2 => Some(DominantMaxKind::RangeTree),
                3 => Some(DominantMaxKind::RangeVeb),
                _ => return Err(SnapshotError::Malformed("unknown dominant-max byte")),
            },
            dommax_queries: r.u64()?,
            dommax_writeback_elems: r.u64()?,
        }),
        _ => return Err(SnapshotError::Malformed("unknown batch-report kind byte")),
    })
}

fn encode_query_report(out: &mut Vec<u8>, report: &QueryReport) {
    out.push(match report.kind {
        None => 0,
        Some(SessionKind::Unweighted) => 1,
        Some(SessionKind::Weighted) => 2,
    });
    put_u64(out, report.answers.len() as u64);
    for answer in &report.answers {
        match answer {
            QueryAnswer::Rank(rank) => {
                out.push(0);
                match rank {
                    None => put_bool(out, false),
                    Some(v) => {
                        put_bool(out, true);
                        put_u64(out, *v);
                    }
                }
            }
            QueryAnswer::Count(n) => {
                out.push(1);
                put_u64(out, *n as u64);
            }
            QueryAnswer::TopK(pairs) => {
                out.push(2);
                put_u64(out, pairs.len() as u64);
                for &(index, dp) in pairs {
                    put_u64(out, index as u64);
                    put_u64(out, dp);
                }
            }
            QueryAnswer::Certificate(cert) => {
                out.push(3);
                put_u64(out, cert.indices.len() as u64);
                for &i in &cert.indices {
                    put_u64(out, i as u64);
                }
                put_u64(out, cert.claimed);
            }
        }
    }
}

fn decode_query_report(r: &mut Reader<'_>) -> Result<QueryReport, SnapshotError> {
    let kind = match r.u8()? {
        0 => None,
        1 => Some(SessionKind::Unweighted),
        2 => Some(SessionKind::Weighted),
        _ => return Err(SnapshotError::Malformed("unknown session kind byte")),
    };
    let n = r.len(1)?;
    let mut answers = Vec::with_capacity(n);
    for _ in 0..n {
        answers.push(match r.u8()? {
            0 => QueryAnswer::Rank(if r.bool()? { Some(r.u64()?) } else { None }),
            1 => QueryAnswer::Count(r.usize()?),
            2 => {
                let k = r.len(16)?;
                let mut pairs = Vec::with_capacity(k);
                for _ in 0..k {
                    pairs.push((r.usize()?, r.u64()?));
                }
                QueryAnswer::TopK(pairs)
            }
            3 => {
                let k = r.len(8)?;
                let mut indices = Vec::with_capacity(k);
                for _ in 0..k {
                    indices.push(r.usize()?);
                }
                QueryAnswer::Certificate(Certificate { indices, claimed: r.u64()? })
            }
            _ => return Err(SnapshotError::Malformed("unknown answer tag")),
        });
    }
    Ok(QueryReport { kind, answers })
}

fn encode_op_output(out: &mut Vec<u8>, output: &OpOutput) {
    match output {
        OpOutput::Appended(report) => {
            out.push(0);
            encode_batch_report(out, report);
        }
        OpOutput::Answered(report) => {
            out.push(1);
            encode_query_report(out, report);
        }
        OpOutput::Created => out.push(2),
        OpOutput::Removed => out.push(3),
        OpOutput::Snapshotted(snapshot) => {
            out.push(4);
            snapshot.encode_payload(out);
        }
        OpOutput::Restored => out.push(5),
    }
}

fn decode_op_output(r: &mut Reader<'_>) -> Result<OpOutput, SnapshotError> {
    Ok(match r.u8()? {
        0 => OpOutput::Appended(decode_batch_report(r)?),
        1 => OpOutput::Answered(decode_query_report(r)?),
        2 => OpOutput::Created,
        3 => OpOutput::Removed,
        4 => OpOutput::Snapshotted(Box::new(SessionSnapshot::decode_payload(r)?)),
        5 => OpOutput::Restored,
        _ => return Err(SnapshotError::Malformed("unknown op-output tag")),
    })
}

/// Serialize one [`TickOutcome`] into a sealed, checksummed byte stream —
/// the write-response format of the service plane.  Observational fields
/// (`worker_threads`, `elapsed_ns`) ride along so a remote client sees
/// what a library caller would.
pub fn encode_tick_outcome(outcome: &TickOutcome) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, outcome.outcomes.len() as u64);
    for (id, result) in &outcome.outcomes {
        put_str(&mut payload, id.as_str());
        match result {
            Ok(output) => {
                payload.push(0);
                encode_op_output(&mut payload, output);
            }
            Err(e) => {
                payload.push(1);
                encode_op_error(&mut payload, e);
            }
        }
    }
    put_u64(&mut payload, outcome.worker_threads as u64);
    put_u64(&mut payload, outcome.elapsed_ns);
    seal(PAYLOAD_TICK_OUTCOME, &payload)
}

/// Decode a sealed byte stream produced by [`encode_tick_outcome`].  The
/// aggregate counters are reassembled from the per-op results through the
/// same constructor the executor uses, so they can never disagree with
/// the payload.
pub fn decode_tick_outcome(bytes: &[u8]) -> Result<TickOutcome, SnapshotError> {
    let mut r = Reader::new(open(bytes, PAYLOAD_TICK_OUTCOME)?);
    // Each outcome costs at least an id length and two tag bytes.
    let n = r.len(10)?;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        let id: SessionId = r.str()?.to_string().into();
        let result = match r.u8()? {
            0 => Ok(decode_op_output(&mut r)?),
            1 => Err(decode_op_error(&mut r)?),
            _ => return Err(SnapshotError::Malformed("unknown result tag")),
        };
        outcomes.push((id, result));
    }
    let worker_threads = r.usize()?;
    let elapsed_ns = r.u64()?;
    r.finish()?;
    Ok(TickOutcome::from_parts(outcomes, worker_threads, elapsed_ns))
}

/// Serialize one [`ReadOutcome`] into a sealed, checksummed byte stream —
/// the read-response format of the service plane.
pub fn encode_read_outcome(outcome: &ReadOutcome) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, outcome.outcomes.len() as u64);
    for (id, result) in &outcome.outcomes {
        put_str(&mut payload, id.as_str());
        match result {
            Ok(report) => {
                payload.push(0);
                encode_query_report(&mut payload, report);
            }
            Err(e) => {
                payload.push(1);
                encode_op_error(&mut payload, e);
            }
        }
    }
    put_u64(&mut payload, outcome.worker_threads as u64);
    put_u64(&mut payload, outcome.elapsed_ns);
    seal(PAYLOAD_READ_OUTCOME, &payload)
}

/// Decode a sealed byte stream produced by [`encode_read_outcome`].
pub fn decode_read_outcome(bytes: &[u8]) -> Result<ReadOutcome, SnapshotError> {
    let mut r = Reader::new(open(bytes, PAYLOAD_READ_OUTCOME)?);
    // Each outcome costs at least an id length and two tag bytes.
    let n = r.len(10)?;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        let id: SessionId = r.str()?.to_string().into();
        let result = match r.u8()? {
            0 => Ok(decode_query_report(&mut r)?),
            1 => Err(decode_op_error(&mut r)?),
            _ => return Err(SnapshotError::Malformed("unknown result tag")),
        };
        outcomes.push((id, result));
    }
    let worker_threads = r.usize()?;
    let elapsed_ns = r.u64()?;
    r.finish()?;
    Ok(ReadOutcome::from_parts(outcomes, worker_threads, elapsed_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};

    fn config() -> EngineConfig {
        EngineConfig { universe: 1 << 16, ..EngineConfig::default() }
    }

    fn traffic_tick() -> Tick {
        Tick::new()
            .create("plain", SessionKind::Unweighted)
            .append("plain", vec![52, 31, 45, 26, 61, 10, 39, 44])
            .create("heavy", SessionKind::Weighted)
            .append_weighted("heavy", vec![(1, 1), (2, 100), (3, 1), (4, 1)])
            .query(
                "plain",
                vec![Query::RankOf(0), Query::CountAt(1), Query::TopK(2), Query::Certificate],
            )
            .snapshot("heavy")
    }

    #[test]
    fn read_tick_round_trips() {
        let tick = ReadTick::new()
            .query("a", vec![Query::RankOf(3), Query::CountAt(7)])
            .query("b", Query::Certificate);
        assert_eq!(decode_read_tick(&encode_read_tick(&tick)), Ok(tick));
        let empty = ReadTick::new();
        assert_eq!(decode_read_tick(&encode_read_tick(&empty)), Ok(empty));
    }

    #[test]
    fn tick_outcome_round_trips_with_observational_fields() {
        let mut engine = Engine::new(config());
        let mut outcome = engine.execute(&traffic_tick());
        outcome.worker_threads = 3;
        outcome.elapsed_ns = 12_345;
        let decoded = decode_tick_outcome(&encode_tick_outcome(&outcome)).unwrap();
        assert_eq!(decoded, outcome);
        // `==` excludes the observational fields; check them explicitly.
        assert_eq!(decoded.worker_threads, 3);
        assert_eq!(decoded.elapsed_ns, 12_345);
        assert_eq!(decoded.total_ingested, outcome.total_ingested);
        assert_eq!(decoded.sessions_snapshotted, 1);
    }

    #[test]
    fn error_outcomes_round_trip() {
        let mut engine = Engine::new(config());
        engine.execute(&traffic_tick());
        // A tick of nothing but typed failures.
        let bad = Tick::new()
            .append("ghost", vec![1])
            .append_weighted("plain", vec![(1, 2)])
            .append("plain", vec![u64::MAX])
            .create("plain", SessionKind::Unweighted);
        let outcome = engine.execute(&bad);
        assert_eq!(outcome.failed_ops, 4);
        let decoded = decode_tick_outcome(&encode_tick_outcome(&outcome)).unwrap();
        assert_eq!(decoded, outcome);
    }

    #[test]
    fn invalid_snapshot_errors_round_trip_through_the_message_table() {
        for inner in [
            SnapshotError::Truncated,
            SnapshotError::BadMagic,
            SnapshotError::UnsupportedVersion(9),
            SnapshotError::ChecksumMismatch,
            SnapshotError::Malformed("ranks inconsistent with the value stream"),
            SnapshotError::TrailingBytes,
        ] {
            let outcome = TickOutcome::from_parts(
                vec![(SessionId::from("s"), Err(OpError::InvalidSnapshot(inner)))],
                1,
                0,
            );
            let decoded = decode_tick_outcome(&encode_tick_outcome(&outcome)).unwrap();
            assert_eq!(decoded.outcomes, outcome.outcomes, "{inner:?}");
        }
        // A message outside the table decodes to the forward-compat
        // stand-in instead of failing.
        let alien = TickOutcome::from_parts(
            vec![(
                SessionId::from("s"),
                Err(OpError::InvalidSnapshot(SnapshotError::Malformed("from the future"))),
            )],
            1,
            0,
        );
        let decoded = decode_tick_outcome(&encode_tick_outcome(&alien)).unwrap();
        assert_eq!(
            decoded.outcomes[0].1,
            Err(OpError::InvalidSnapshot(SnapshotError::Malformed(UNKNOWN_MALFORMED)))
        );
    }

    #[test]
    fn malformed_message_table_is_sorted_and_unique() {
        // Index stability matters: a duplicate entry would alias two
        // encodings, an unsorted table invites drift on edits.
        for pair in MALFORMED_MESSAGES.windows(2) {
            assert!(pair[0] < pair[1], "{:?} out of order", pair);
        }
    }

    #[test]
    fn read_outcome_round_trips() {
        let mut engine = Engine::new(config());
        engine.execute(&traffic_tick());
        let tick = ReadTick::new()
            .query("plain", vec![Query::TopK(3), Query::Certificate])
            .query("ghost", Query::RankOf(0))
            .query("heavy", Query::CountAt(100));
        let mut outcome = engine.execute_read(&tick);
        outcome.worker_threads = 2;
        outcome.elapsed_ns = 777;
        let decoded = decode_read_outcome(&encode_read_outcome(&outcome)).unwrap();
        assert_eq!(decoded, outcome);
        assert_eq!(decoded.worker_threads, 2);
        assert_eq!(decoded.elapsed_ns, 777);
        assert_eq!(decoded.sessions_missing, 1);
    }

    #[test]
    fn outcome_kinds_do_not_cross_decode() {
        let mut engine = Engine::new(config());
        let outcome = engine.execute(&traffic_tick());
        let read = engine.execute_read(&ReadTick::new().query("plain", Query::Certificate));
        let tick_bytes = encode_tick_outcome(&outcome);
        let read_bytes = encode_read_outcome(&read);
        assert!(decode_read_outcome(&tick_bytes).is_err());
        assert!(decode_tick_outcome(&read_bytes).is_err());
        assert!(decode_tick(&tick_bytes).is_err());
    }
}
