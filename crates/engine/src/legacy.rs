//! The **legacy command surface**: the seven historical tick entry
//! points (six entry-point families — the `_ref` variants ride with
//! their owners) and their report shapes, kept as one-line deprecated
//! wrappers over the typed executor ([`Engine::execute`] /
//! [`Engine::execute_read`]).
//!
//! Before the command plane existed, the engine grew one entry point per
//! feature (`ingest_tick`, `ingest_tick_ref`, `ingest_weighted_tick`,
//! `ingest_weighted_tick_ref`, `ingest_tick_mixed`, `ingest_query_tick`,
//! `query_tick`) and one report type per entry point.  All of them now
//! desugar to a [`Tick`] / [`ReadTick`] and run the same shard-parallel
//! spine; the wrappers only translate shapes:
//!
//! | legacy entry point | [`Op`] mapping |
//! |---|---|
//! | `ingest_tick(_ref)` | [`Op::Append`] per batch, [`Tick::auto_create`] |
//! | `ingest_weighted_tick(_ref)` | [`Op::AppendWeighted`] per batch, [`Tick::auto_create`] |
//! | `ingest_tick_mixed` | [`Op::Append`] / [`Op::AppendWeighted`] per [`TickBatch`] |
//! | `ingest_query_tick` | [`Op::Append*`](Op::Append) / [`Op::Query`] per [`TickOp`] |
//! | `query_tick` | a [`ReadTick`] of the same query batches |
//!
//! Two legacy behaviours are preserved by the wrappers, not the executor:
//! sessions are created implicitly on first append (the ticks opt into
//! [`Tick::auto_create`]), and a query against an absent session reports
//! [`QueryReport::missing`] instead of a typed error.  One legacy
//! behaviour is deliberately **not** preserved: a weighted batch aimed at
//! an unweighted session used to `panic!`; it now fails that op with
//! [`OpError::KindMismatch`] and the
//! wrapper drops the slot from the legacy report (which cannot express
//! errors) — the rest of the tick is served normally.

#![allow(deprecated)]

use crate::engine::{BatchReport, Engine, SessionId, TickBatch};
use crate::op::{Op, OpError, OpOutput, ReadOutcome, ReadTick, Tick, TickOutcome};
use crate::query::{QueryBatch, QueryReport};

/// What one tick-ingest call did.
#[deprecated(note = "use `Engine::execute`, which returns a `TickOutcome`")]
#[derive(Debug, Clone)]
pub struct TickReport {
    /// One report per input batch that landed, in the original tick order
    /// (rejected batches — e.g. kind mismatches that used to panic — are
    /// dropped; the typed API reports them as `Err(OpError)`).
    pub reports: Vec<(SessionId, BatchReport)>,
    /// Total elements ingested across all batches.
    pub total_ingested: usize,
    /// Number of distinct sessions that received data.
    pub sessions_touched: usize,
    /// Of [`TickReport::sessions_touched`], how many were weighted
    /// sessions — the session-kind axis of the tick.
    pub weighted_sessions_touched: usize,
    /// Number of distinct worker threads that processed shards in this
    /// tick (see [`TickOutcome::worker_threads`]).
    pub worker_threads: usize,
}

/// One slot of a mixed read/write tick (the input shape of the legacy
/// `ingest_query_tick`).
#[deprecated(note = "use `Op` slots in a `Tick` (`Op::Append*` / `Op::Query`)")]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickOp {
    /// Write: ingest one batch (plain or weighted).
    Ingest(TickBatch),
    /// Read: answer one query batch against the state so far — including
    /// every earlier slot of the *same tick* addressed to the session.
    Query(QueryBatch),
}

impl From<TickBatch> for TickOp {
    fn from(batch: TickBatch) -> Self {
        TickOp::Ingest(batch)
    }
}

impl From<QueryBatch> for TickOp {
    fn from(batch: QueryBatch) -> Self {
        TickOp::Query(batch)
    }
}

impl From<TickOp> for Op {
    fn from(op: TickOp) -> Self {
        match op {
            TickOp::Ingest(batch) => batch.into(),
            TickOp::Query(batch) => Op::Query(batch),
        }
    }
}

/// What one slot of a mixed tick did.
#[deprecated(note = "use the typed `OpResult` slots of `TickOutcome`")]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpReport {
    /// The slot was a write.
    Ingest(BatchReport),
    /// The slot was a read.
    Query(QueryReport),
}

impl OpReport {
    /// Elements ingested by this slot (0 for reads).
    pub fn ingested(&self) -> usize {
        match self {
            OpReport::Ingest(r) => r.ingested(),
            OpReport::Query(_) => 0,
        }
    }

    /// Queries answered by this slot (0 for writes).
    pub fn queries(&self) -> usize {
        match self {
            OpReport::Ingest(_) => 0,
            OpReport::Query(r) => r.answers.len(),
        }
    }

    /// The ingest report, if this slot was a write.
    pub fn as_ingest(&self) -> Option<&BatchReport> {
        match self {
            OpReport::Ingest(r) => Some(r),
            OpReport::Query(_) => None,
        }
    }

    /// The query report, if this slot was a read.
    pub fn as_query(&self) -> Option<&QueryReport> {
        match self {
            OpReport::Query(r) => Some(r),
            OpReport::Ingest(_) => None,
        }
    }
}

/// What one legacy `ingest_query_tick` call did.
#[deprecated(note = "use `Engine::execute`, which returns a `TickOutcome`")]
#[derive(Debug, Clone)]
pub struct MixedTickReport {
    /// One report per input slot, in the original tick order (slots
    /// rejected with a typed error other than a missing queried session
    /// are dropped).
    pub reports: Vec<(SessionId, OpReport)>,
    /// Total elements ingested by the write slots.
    pub total_ingested: usize,
    /// Total queries answered by the read slots.
    pub total_queries: usize,
    /// Number of distinct sessions that received data.
    pub sessions_touched: usize,
    /// Of [`MixedTickReport::sessions_touched`], how many were weighted.
    pub weighted_sessions_touched: usize,
    /// Number of distinct existing sessions that answered queries.
    pub sessions_queried: usize,
    /// Number of distinct worker threads that served shards (see
    /// [`TickOutcome::worker_threads`]).
    pub worker_threads: usize,
}

/// What one legacy `query_tick` call did.
#[deprecated(note = "use `Engine::execute_read`, which returns a `ReadOutcome`")]
#[derive(Debug, Clone)]
pub struct QueryTickReport {
    /// One report per input query batch, in the original tick order
    /// (absent sessions report [`QueryReport::missing`]).
    pub reports: Vec<(SessionId, QueryReport)>,
    /// Total queries answered across all batches (missing sessions answer
    /// nothing).
    pub total_queries: usize,
    /// Number of distinct existing sessions that answered queries.
    pub sessions_queried: usize,
    /// Number of distinct session ids addressed that do not exist.
    pub sessions_missing: usize,
    /// Number of distinct worker threads that served shards (see
    /// [`TickOutcome::worker_threads`]).
    pub worker_threads: usize,
}

impl From<TickOutcome> for TickReport {
    fn from(outcome: TickOutcome) -> Self {
        TickReport {
            total_ingested: outcome.total_ingested,
            sessions_touched: outcome.sessions_touched,
            weighted_sessions_touched: outcome.weighted_sessions_touched,
            worker_threads: outcome.worker_threads,
            reports: outcome
                .outcomes
                .into_iter()
                .filter_map(|(id, result)| match result {
                    Ok(OpOutput::Appended(report)) => Some((id, report)),
                    _ => None,
                })
                .collect(),
        }
    }
}

impl MixedTickReport {
    /// The legacy shape for one executed mixed tick.  The original slots
    /// are consulted to classify failures: a *query* that missed its
    /// session keeps its position as [`QueryReport::missing`] (the old
    /// contract), while any other rejected slot — e.g. the kind mismatch
    /// that used to panic — is dropped from the report.
    fn for_tick(outcome: TickOutcome, tick: &[(SessionId, TickOp)]) -> Self {
        MixedTickReport {
            total_ingested: outcome.total_ingested,
            total_queries: outcome.total_queries,
            sessions_touched: outcome.sessions_touched,
            weighted_sessions_touched: outcome.weighted_sessions_touched,
            sessions_queried: outcome.sessions_queried,
            worker_threads: outcome.worker_threads,
            reports: outcome
                .outcomes
                .into_iter()
                .zip(tick)
                .filter_map(|((id, result), (_, op))| match result {
                    Ok(OpOutput::Appended(report)) => Some((id, OpReport::Ingest(report))),
                    Ok(OpOutput::Answered(report)) => Some((id, OpReport::Query(report))),
                    Err(OpError::UnknownSession) if matches!(op, TickOp::Query(_)) => {
                        Some((id, OpReport::Query(QueryReport::missing())))
                    }
                    _ => None,
                })
                .collect(),
        }
    }
}

impl From<ReadOutcome> for QueryTickReport {
    fn from(outcome: ReadOutcome) -> Self {
        QueryTickReport {
            total_queries: outcome.total_queries,
            sessions_queried: outcome.sessions_queried,
            sessions_missing: outcome.sessions_missing,
            worker_threads: outcome.worker_threads,
            reports: outcome
                .outcomes
                .into_iter()
                .map(|(id, result)| (id, result.unwrap_or_else(|_| QueryReport::missing())))
                .collect(),
        }
    }
}

impl Engine {
    /// Ingest one traffic tick of plain batches.  Unknown sessions are
    /// created on the fly.
    #[deprecated(note = "use `Engine::execute` with `Op::Append` slots in a `Tick`")]
    pub fn ingest_tick(&mut self, tick: Vec<(SessionId, Vec<u64>)>) -> TickReport {
        self.execute(&tick.into_iter().collect::<Tick>().auto_create()).into()
    }

    /// As `ingest_tick`, borrowing the tick.
    ///
    /// **Note**: this wrapper now clones the batches into a [`Tick`] on
    /// every call — it no longer avoids deep copies.  Replaying callers
    /// (benchmarks, log replays) should build the [`Tick`] once and pass
    /// it borrowed to [`Engine::execute`], which copies nothing.
    #[deprecated(note = "clones every batch per call; build a `Tick` once and replay it through \
                `Engine::execute`")]
    pub fn ingest_tick_ref(&mut self, tick: &[(SessionId, Vec<u64>)]) -> TickReport {
        self.execute(&tick.iter().cloned().collect::<Tick>().auto_create()).into()
    }

    /// Ingest one traffic tick of weighted batches (`(value, weight)`
    /// pairs).  Unknown sessions are created weighted.
    #[deprecated(note = "use `Engine::execute` with `Op::AppendWeighted` slots in a `Tick`")]
    pub fn ingest_weighted_tick(&mut self, tick: Vec<(SessionId, Vec<(u64, u64)>)>) -> TickReport {
        self.execute(&tick.into_iter().collect::<Tick>().auto_create()).into()
    }

    /// As `ingest_weighted_tick`, borrowing the tick.
    ///
    /// **Note**: clones the batches per call, exactly like
    /// [`Engine::ingest_tick_ref`] — replaying callers should build a
    /// [`Tick`] once and execute it borrowed.
    #[deprecated(note = "clones every batch per call; build a `Tick` once and replay it through \
                `Engine::execute`")]
    pub fn ingest_weighted_tick_ref(
        &mut self,
        tick: &[(SessionId, Vec<(u64, u64)>)],
    ) -> TickReport {
        self.execute(&tick.iter().cloned().collect::<Tick>().auto_create()).into()
    }

    /// Ingest a mixed tick: plain and weighted batches interleaved.
    #[deprecated(note = "use `Engine::execute`; `TickBatch` converts straight into an `Op`")]
    pub fn ingest_tick_mixed(&mut self, tick: &[(SessionId, TickBatch)]) -> TickReport {
        self.execute(&tick.iter().cloned().collect::<Tick>().auto_create()).into()
    }

    /// Execute a mixed read/write tick of [`TickOp`] slots, with
    /// read-your-writes in tick order.
    #[deprecated(note = "use `Engine::execute`; `Op` covers writes, reads, and lifecycle")]
    pub fn ingest_query_tick(&mut self, tick: &[(SessionId, TickOp)]) -> MixedTickReport {
        MixedTickReport::for_tick(
            self.execute(&tick.iter().cloned().collect::<Tick>().auto_create()),
            tick,
        )
    }

    /// Answer one tick of query batches, read-only and shard-parallel.
    #[deprecated(note = "use `Engine::execute_read` with a `ReadTick`")]
    pub fn query_tick(&self, tick: &[(SessionId, QueryBatch)]) -> QueryTickReport {
        self.execute_read(&tick.iter().cloned().collect::<ReadTick>()).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SessionKind};
    use crate::query::{Query, QueryAnswer};

    #[test]
    fn legacy_ingest_wrappers_delegate_to_the_executor() {
        let mut legacy = Engine::with_universe(1 << 10);
        let report = legacy.ingest_tick(vec![
            (SessionId::from("s"), vec![100, 200]),
            (SessionId::from("s"), vec![150, 300]),
        ]);
        assert_eq!(report.reports.len(), 2);
        assert_eq!(report.total_ingested, 4);
        assert_eq!(report.sessions_touched, 1);

        let mut typed = Engine::with_universe(1 << 10);
        typed.execute(
            &Tick::new().append("s", vec![100, 200]).append("s", vec![150, 300]).auto_create(),
        );
        assert_eq!(legacy.session("s").unwrap().ranks(), typed.session("s").unwrap().ranks());
        assert_eq!(legacy.session("s").unwrap().tails(), typed.session("s").unwrap().tails());
    }

    #[test]
    fn legacy_weighted_wrappers_create_weighted_sessions() {
        let mut engine = Engine::with_universe(1 << 10);
        let tick = vec![(SessionId::from("w"), vec![(5u64, 10u64), (7, 1)])];
        let by_ref = engine.ingest_weighted_tick_ref(&tick);
        assert_eq!(by_ref.weighted_sessions_touched, 1);
        let by_val = engine.ingest_weighted_tick(tick);
        assert_eq!(by_val.total_ingested, 2);
        assert_eq!(engine.session_kind("w"), Some(SessionKind::Weighted));
        assert_eq!(engine.best_score("w"), Some(11));
    }

    #[test]
    fn kind_mismatch_no_longer_panics_and_drops_the_slot() {
        let mut engine = Engine::with_universe(1 << 8);
        engine.create_session("p");
        let report = engine.ingest_weighted_tick(vec![
            (SessionId::from("p"), vec![(1, 1)]),
            (SessionId::from("fresh"), vec![(2, 5)]),
        ]);
        // The mismatched slot is dropped from the legacy report; the rest
        // of the tick is served.
        assert_eq!(report.reports.len(), 1);
        assert_eq!(report.reports[0].0.as_str(), "fresh");
        assert_eq!(report.total_ingested, 1);
        assert_eq!(engine.session("p").unwrap().len(), 0, "rejected op never touches the session");
        assert_eq!(engine.best_score("fresh"), Some(5));
    }

    #[test]
    fn legacy_mixed_and_query_wrappers_preserve_missing_semantics() {
        let mut engine =
            Engine::new(EngineConfig { universe: 1 << 10, shards: 2, ..EngineConfig::default() });
        let mixed: Vec<(SessionId, TickOp)> = vec![
            (SessionId::from("s"), TickOp::Query(Query::RankOf(0).into())),
            (SessionId::from("s"), TickOp::Ingest(TickBatch::Plain(vec![10u64, 20]))),
            (SessionId::from("s"), TickOp::Query(Query::RankOf(1).into())),
        ];
        let report = engine.ingest_query_tick(&mixed);
        assert_eq!(report.reports.len(), 3, "missing-session queries keep their slot");
        assert!(!report.reports[0].1.as_query().unwrap().answered());
        assert_eq!(report.total_ingested, 2);
        assert_eq!(report.total_queries, 1);
        assert_eq!(report.reports[2].1.as_query().unwrap().answers[0], QueryAnswer::Rank(Some(2)));

        let read = vec![
            (SessionId::from("s"), QueryBatch::from(Query::CountAt(1))),
            (SessionId::from("ghost"), QueryBatch::from(Query::Certificate)),
        ];
        let report = engine.query_tick(&read);
        assert_eq!(report.reports.len(), 2);
        assert_eq!(report.sessions_queried, 1);
        assert_eq!(report.sessions_missing, 1);
        assert!(!report.reports[1].1.answered());
        assert_eq!(engine.session_count(), 1, "queries never create sessions");
    }

    #[test]
    fn legacy_mixed_batches_route_by_payload_kind() {
        let mut engine = Engine::with_universe(1 << 10);
        let tick: Vec<(SessionId, TickBatch)> = vec![
            (SessionId::from("plain"), vec![5u64, 7, 6, 8].into()),
            (SessionId::from("heavy"), vec![(5u64, 10u64), (7, 1), (6, 20), (8, 1)].into()),
        ];
        let report = engine.ingest_tick_mixed(&tick);
        assert_eq!(report.total_ingested, 8);
        assert_eq!(report.sessions_touched, 2);
        assert_eq!(report.weighted_sessions_touched, 1);
        assert_eq!(engine.lis_length("plain"), Some(3));
        assert_eq!(engine.best_score("heavy"), Some(31));
    }
}
