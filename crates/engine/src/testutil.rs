//! Shared helpers for the in-crate test suites (compiled under
//! `cfg(test)` only): one deterministic PRNG instead of a copy per
//! module.

/// The classic xorshift64 step: deterministic, seedable, good enough to
/// spread test inputs across a universe.
pub(crate) fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// `n` random `(value, weight)` pairs with values in `[0, universe)` and
/// weights in `[1, max_w]`.
pub(crate) fn random_pairs(n: usize, universe: u64, max_w: u64, seed: u64) -> Vec<(u64, u64)> {
    let mut state = seed;
    (0..n).map(|_| (xorshift(&mut state) % universe, 1 + xorshift(&mut state) % max_w)).collect()
}
