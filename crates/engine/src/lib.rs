//! `plis-engine` — an online/streaming LIS engine on top of the
//! batch-parallel vEB machinery.
//!
//! The offline algorithms of the paper answer "what is the LIS of this
//! array" one-shot.  This crate turns them into a *service*: data arrives
//! continuously in batches, and LIS state is maintained incrementally
//! instead of recomputed from scratch.
//!
//! * [`StreamingLisOn`] — a single unweighted session, **generic over the
//!   [`plis_lis::TailSet`] trait**.  It keeps the classic *tails* array
//!   `B[r]` = smallest value ending an increasing subsequence of length
//!   `r + 1` over everything ingested so far, mirrored in a pluggable
//!   value-domain store; [`Backend`] is the enum-dispatch factory over the
//!   built-in mirrors (vEB, kept in sync with the paper's parallel
//!   `batch_insert` / `batch_delete`, Theorems 5.1/5.2; or a stateless
//!   sorted-vec probe), and [`StreamingLis`] is the non-generic alias the
//!   engine serves.  [`StreamingLisOn::ingest`] appends a batch and returns
//!   an [`IngestReport`]; large batches take a parallel merge path that
//!   runs Algorithm 1 (the tournament-tree LIS) over `tails ++ batch` —
//!   see the module docs of [`session`] for why that is exact.
//! * [`WeightedStreamingLis`] — a single *weighted* session serving
//!   Algorithm 2 as live traffic: per-element dp scores (Equation 2) over
//!   `(value, weight)` streams.  Its summary structure is the Pareto
//!   frontier of `(value, score)` pairs, and large batches re-run the one
//!   generic WLIS driver over `frontier ++ batch`, with the dominant-max
//!   store chosen by [`DominantMaxKind`] — see [`wsession`].
//! * [`Engine`] — a front that multiplexes many independent named sessions
//!   ([`SessionId`]) of **both kinds** ([`SessionKind`]), shards them
//!   across the fork-join pool, and processes a whole tick — plain,
//!   weighted, or mixed ([`TickBatch`]) — in parallel: the "heavy traffic"
//!   shape of the ROADMAP.
//! * The **query plane** ([`query`]) — typed reads served from live
//!   sessions with the same shard/tick parallelism as ingest: per-element
//!   dp values ([`Query::RankOf`]), dp-value counts ([`Query::CountAt`]),
//!   top-k by dp ([`Query::TopK`]), and full LIS/WLIS certificate
//!   reconstruction ([`Query::Certificate`]), batched per session
//!   ([`QueryBatch`]) and executed by [`Engine::query_tick`] (read-only)
//!   or interleaved with writes by [`Engine::ingest_query_tick`]
//!   ([`TickOp`]).
//!
//! # Quick start
//!
//! ```
//! use plis_engine::{Backend, Engine, EngineConfig, SessionId, TickBatch};
//!
//! let mut engine = Engine::new(EngineConfig {
//!     universe: 1 << 16,
//!     backend: Backend::Veb,
//!     ..EngineConfig::default()
//! });
//! let tick = vec![
//!     (SessionId::from("alice"), vec![5u64, 3, 4, 8]),
//!     (SessionId::from("bob"), vec![9u64, 1, 2]),
//!     (SessionId::from("alice"), vec![6u64, 9]),
//! ];
//! let report = engine.ingest_tick(tick);
//! assert_eq!(report.total_ingested, 9);
//! assert_eq!(engine.lis_length("alice"), Some(4)); // 3 < 4 < 6 < 9
//! assert_eq!(engine.lis_length("bob"), Some(2));   // 1 < 2
//! let lis = engine.session("alice").unwrap().reconstruct_lis();
//! assert_eq!(lis.len(), 4);
//!
//! // Weighted sessions ride the same ticks: (value, weight) batches.
//! let wtick = vec![(SessionId::from("carol"), TickBatch::from(vec![(3u64, 10u64), (7, 5)]))];
//! engine.ingest_tick_mixed(&wtick);
//! assert_eq!(engine.best_score("carol"), Some(15)); // 3 then 7: 10 + 5
//!
//! // Reads ride ticks too: batched queries, answered shard-parallel.
//! use plis_engine::{Query, QueryAnswer, QueryBatch};
//! let qtick = vec![(SessionId::from("alice"), QueryBatch::from(Query::TopK(1)))];
//! let answers = engine.query_tick(&qtick);
//! assert_eq!(answers.reports[0].1.answers[0], QueryAnswer::TopK(vec![(5, 4)])); // 9, rank 4
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod query;
pub mod session;
pub mod wsession;

pub use engine::{
    BatchReport, Engine, EngineConfig, SessionId, SessionKind, SessionState, TickBatch, TickReport,
};
pub use plis_lis::DominantMaxKind;
pub use query::{
    Certificate, MixedTickReport, OpReport, Query, QueryAnswer, QueryBatch, QueryReport,
    QueryTickReport, TickOp,
};
pub use session::{Backend, IngestPath, IngestReport, StreamingLis, StreamingLisOn};
pub use wsession::{WeightedIngestReport, WeightedStreamingLis};
