//! `plis-engine` — an online/streaming LIS engine on top of the
//! batch-parallel vEB machinery.
//!
//! The offline algorithms of the paper answer "what is the LIS of this
//! array" one-shot.  This crate turns them into a *service*: data arrives
//! continuously in batches, and LIS state is maintained incrementally
//! instead of recomputed from scratch.
//!
//! * [`StreamingLisOn`] — a single unweighted session, **generic over the
//!   [`plis_lis::TailSet`] trait**.  It keeps the classic *tails* array
//!   `B[r]` = smallest value ending an increasing subsequence of length
//!   `r + 1` over everything ingested so far, mirrored in a pluggable
//!   value-domain store; [`Backend`] is the enum-dispatch factory over the
//!   built-in mirrors (vEB, kept in sync with the paper's parallel
//!   `batch_insert` / `batch_delete`, Theorems 5.1/5.2; or a stateless
//!   sorted-vec probe), and [`StreamingLis`] is the non-generic alias the
//!   engine serves.  [`StreamingLisOn::ingest`] appends a batch and returns
//!   an [`IngestReport`]; large batches take a parallel merge path that
//!   runs Algorithm 1 (the tournament-tree LIS) over `tails ++ batch` —
//!   see the module docs of [`session`] for why that is exact.
//! * [`WeightedStreamingLis`] — a single *weighted* session serving
//!   Algorithm 2 as live traffic: per-element dp scores (Equation 2) over
//!   `(value, weight)` streams.  Its summary structure is the Pareto
//!   frontier of `(value, score)` pairs, and large batches re-run the one
//!   generic WLIS driver over `frontier ++ batch`, with the dominant-max
//!   store chosen by [`DominantMaxKind`] — see [`wsession`].
//! * [`Engine`] — a front that multiplexes many independent named sessions
//!   ([`SessionId`]) of **both kinds** ([`SessionKind`]), shards them
//!   across the fork-join pool, and executes whole command ticks in
//!   parallel: the "heavy traffic" shape of the ROADMAP.
//! * The **command plane** ([`op`]) — the single typed submission API:
//!   one [`Op`] enum covering appends ([`Op::Append`] /
//!   [`Op::AppendWeighted`]), reads ([`Op::Query`]), and explicit
//!   lifecycle ([`Op::CreateSession`] / [`Op::RemoveSession`]); a
//!   [`Tick`] builder grouping ops per session in submission order;
//!   [`Engine::execute`] for write/mixed traffic and
//!   [`Engine::execute_read`] (over a [`ReadTick`]) for read-only
//!   traffic.  Every op resolves to a typed [`Result<OpOutput, OpError>`]
//!   — unknown sessions, kind mismatches, universe overflows, and
//!   create-twice races degrade per op instead of panicking or vanishing.
//! * The **query vocabulary** ([`query`]) — typed reads served from live
//!   sessions: per-element dp values ([`Query::RankOf`]), dp-value counts
//!   ([`Query::CountAt`]), top-k by dp ([`Query::TopK`]), and full
//!   LIS/WLIS certificate reconstruction ([`Query::Certificate`]),
//!   batched per session ([`QueryBatch`]).
//! * The **persistence plane** ([`snapshot`]) — versioned, checksummed
//!   binary snapshots of session and engine state
//!   ([`SessionSnapshot`] / [`EngineSnapshot`], hand-rolled codec, typed
//!   [`SnapshotError`]s, never panics on foreign bytes), checkpoint ops
//!   on the command plane ([`Op::Snapshot`] / [`Op::Restore`]) so
//!   checkpoints are tick-ordered like every other command, and a tick
//!   journal + replay driver ([`TickJournal`], [`replay_journal_from`])
//!   whose restore-then-replay outcome is bit-identical to a
//!   never-stopped engine.
//! * The **telemetry plane** ([`metrics`]) — per-engine counters and
//!   log-scale latency histograms behind the `telemetry` feature
//!   (default on; compiled to no-ops when off), read through
//!   [`Engine::metrics_snapshot`] as a typed [`MetricsSnapshot`], with an
//!   optional JSON-lines trace sink ([`Engine::set_trace_sink`]).  Purely
//!   observational: outcomes are bit-identical with telemetry on or off.
//! * The **legacy surface** ([`legacy`]) — the historical tick entry
//!   points (`ingest_tick` and friends), kept as one-line deprecated
//!   wrappers over the executor, with a migration table in the module
//!   docs.
//!
//! # Quick start
//!
//! ```
//! use plis_engine::{Engine, EngineConfig, Op, SessionKind, Tick};
//!
//! let mut engine = Engine::new(EngineConfig { universe: 1 << 16, ..EngineConfig::default() });
//!
//! // One tick, every kind of command: explicit lifecycle, plain and
//! // weighted appends, and a read that sees the writes before it.
//! use plis_engine::{Query, QueryAnswer};
//! let tick = Tick::new()
//!     .create("alice", SessionKind::Unweighted)
//!     .create("orders", SessionKind::Weighted)
//!     .append("alice", vec![5u64, 3, 4, 8])
//!     .append_weighted("orders", vec![(100u64, 5u64), (200, 9)])
//!     .append("alice", vec![6u64, 9])
//!     .query("alice", Query::RankOf(5));
//! let outcome = engine.execute(&tick);
//! assert!(outcome.fully_applied());
//! assert_eq!(outcome.total_ingested, 8);
//! assert_eq!(engine.lis_length("alice"), Some(4)); // 3 < 4 < 6 < 9
//! assert_eq!(engine.best_score("orders"), Some(14)); // 100 < 200: 5 + 9
//!
//! // Every op resolved to a typed Result; the query saw both writes.
//! let answered = outcome.outcomes[5].1.as_ref().unwrap().as_answered().unwrap();
//! assert_eq!(answered.answers[0], QueryAnswer::Rank(Some(4))); // ...6 < 9
//!
//! // Malformed ops fail typed instead of panicking or being skipped.
//! use plis_engine::{OpError, ReadTick};
//! let bad = engine.execute(&Tick::new().append("ghost", vec![1]));
//! assert_eq!(bad.outcomes[0].1, Err(OpError::UnknownSession));
//!
//! // Read-only traffic takes &self.
//! let reads = engine.execute_read(&ReadTick::new().query("alice", Query::TopK(1)));
//! assert_eq!(
//!     reads.outcomes[0].1.as_ref().unwrap().answers[0],
//!     QueryAnswer::TopK(vec![(5, 4)]) // value 9, dp 4
//! );
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod legacy;
pub mod metrics;
pub mod op;
pub mod query;
mod rankindex;
pub mod session;
pub mod snapshot;
#[cfg(test)]
mod testutil;
pub mod wire;
pub mod wsession;

pub use cost::{CostModel, PathPolicy};
pub use engine::{
    BatchReport, Engine, EngineConfig, SessionId, SessionKind, SessionState, TickBatch,
};
pub use metrics::{Metrics, MetricsSnapshot, TickDigest};
pub use op::{Op, OpError, OpOutput, OpResult, ReadOutcome, ReadTick, Tick, TickOutcome};
pub use plis_lis::DominantMaxKind;
pub use plis_telemetry::{HistogramSnapshot, MemorySink, TraceSink};
pub use query::{Certificate, Query, QueryAnswer, QueryBatch, QueryReport};
pub use session::{Backend, IngestPath, IngestReport, StreamingLis, StreamingLisOn};
pub use snapshot::{
    replay_journal, replay_journal_from, EngineSnapshot, ReplayReport, SessionSnapshot,
    SnapshotError, TickJournal,
};
pub use wire::{
    decode_read_outcome, decode_read_tick, decode_tick, decode_tick_outcome, encode_read_outcome,
    encode_read_tick, encode_tick, encode_tick_outcome,
};
pub use wsession::{WeightedIngestReport, WeightedStreamingLis};

#[allow(deprecated)]
pub use legacy::{MixedTickReport, OpReport, QueryTickReport, TickOp, TickReport};
