//! `plis-engine` — an online/streaming LIS engine on top of the
//! batch-parallel vEB machinery.
//!
//! The offline algorithms of the paper answer "what is the LIS of this
//! array" one-shot.  This crate turns them into a *service*: data arrives
//! continuously in batches, and LIS state is maintained incrementally
//! instead of recomputed from scratch.
//!
//! * [`StreamingLis`] — a single session.  It keeps the classic *tails*
//!   array `B[r]` = smallest value ending an increasing subsequence of
//!   length `r + 1` over everything ingested so far, mirrored in a value
//!   domain structure selected by [`Backend`]: either a [`plis_veb::VebTree`]
//!   (kept in sync with the paper's parallel `batch_insert` /
//!   `batch_delete`, Theorems 5.1/5.2) or a plain sorted vector for small
//!   universes.  [`StreamingLis::ingest`] appends a batch and returns an
//!   [`IngestReport`]; large batches take a parallel merge path that runs
//!   Algorithm 1 (the tournament-tree LIS) over `tails ++ batch` — see the
//!   module docs of [`session`] for why that is exact.
//! * [`Engine`] — a front that multiplexes many independent named sessions
//!   ([`SessionId`]), shards them across the fork-join pool, and processes a
//!   whole `Vec<(SessionId, Batch)>` tick in parallel: the "heavy traffic"
//!   shape of the ROADMAP.
//!
//! # Quick start
//!
//! ```
//! use plis_engine::{Backend, Engine, EngineConfig, SessionId};
//!
//! let mut engine = Engine::new(EngineConfig {
//!     universe: 1 << 16,
//!     backend: Backend::Veb,
//!     ..EngineConfig::default()
//! });
//! let tick = vec![
//!     (SessionId::from("alice"), vec![5u64, 3, 4, 8]),
//!     (SessionId::from("bob"), vec![9u64, 1, 2]),
//!     (SessionId::from("alice"), vec![6u64, 9]),
//! ];
//! let report = engine.ingest_tick(tick);
//! assert_eq!(report.total_ingested, 9);
//! assert_eq!(engine.lis_length("alice"), Some(4)); // 3 < 4 < 6 < 9
//! assert_eq!(engine.lis_length("bob"), Some(2));   // 1 < 2
//! let lis = engine.session("alice").unwrap().reconstruct_lis();
//! assert_eq!(lis.len(), 4);
//! ```

pub mod engine;
pub mod session;

pub use engine::{Engine, EngineConfig, SessionId, TickReport};
pub use session::{Backend, IngestPath, IngestReport, StreamingLis};
