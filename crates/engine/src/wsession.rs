//! A streaming *weighted*-LIS session: incremental Algorithm-2 state over
//! an append-only stream of `(value, weight)` pairs, ingested batch by
//! batch.
//!
//! # State
//!
//! The weighted dp recurrence (Equation 2 of the paper) is
//! `dp[i] = w_i + max(0, max_{j<i, A_j<A_i} dp[j])`.  Like a rank in the
//! unweighted session, an element's dp value (*score*) only depends on the
//! elements before it, so scores are exact and final the moment an element
//! is ingested.
//!
//! The streaming summary of the prefix is the **Pareto frontier** of the
//! `(value, score)` pairs seen so far: the entries not dominated by any
//! other (an entry is useless iff some element has value `≤` it and score
//! `≥` it).  The frontier is strictly increasing in both coordinates, and
//! for any probe `x`, `max {dp[j] : A_j < x}` over the whole prefix equals
//! the score of the last frontier entry with value `< x` — the frontier is
//! to weighted LIS exactly what the patience `tails` array is to unweighted
//! LIS (where it degenerates to `tails`: the `r`-th tail is the smallest
//! value with score `≥ r + 1`).
//!
//! # Batch ingestion
//!
//! Small batches take the sequential path: each element binary-searches the
//! frontier for its best predecessor score and the frontier is repaired in
//! place.
//!
//! Large batches take the **parallel merge path**, mirroring the
//! `tails ++ batch` argument of the unweighted session (see `DESIGN.md`):
//! encode the frontier as a weighted sequence — frontier values in
//! increasing order, each weighted by its score *increment* over the
//! previous entry — and run the one generic Algorithm-2 driver
//! ([`plis_lis::wlis_with`], dispatched through [`DominantMaxKind`]) over
//! `frontier ++ batch`.  Feeding the frontier this way reproduces each
//! frontier entry's own score (the entries are increasing in value, so
//! entry `r` scores `increment_r + score_{r-1} = score_r` by induction),
//! and because the frontier answers every dominant-max probe of the prefix
//! exactly, the dp values that come back at the batch positions are exactly
//! the scores of the batch elements in the full stream.  The new frontier
//! is the Pareto staircase of the old frontier and the batch points.
//!
//! # Queries
//!
//! Scores are final on ingest, so the session serves a live query plane:
//! [`WeightedStreamingLis::count_at_score`] answers from a maintained
//! score-multiplicity map in `O(1)`, [`WeightedStreamingLis::top_k`] scans
//! the score array with a size-`k` heap (`O(n log k)`), and
//! [`WeightedStreamingLis::reconstruct_wlis`] recovers a maximum-weight
//! increasing subsequence from the maintained scores with one backward
//! scan ([`plis_lis::wlis_indices_from_scores`], `O(n)`) — deterministic,
//! and bit-identical to the same function run offline on the prefix.
//!
//! # Backends
//!
//! The dominant-max structure used by the parallel path is selected by
//! [`DominantMaxKind`] — the same open [`plis_primitives::DominantMaxStore`]
//! trait surface the offline driver uses, so both structures (range tree
//! and Range-vEB) serve streaming sessions with no per-backend code here.

use crate::cost::PathPolicy;
use crate::session::IngestPath;
use plis_lis::{wlis_kind_stats, DominantMaxKind};
use std::collections::HashMap;

/// Reusable staging buffers for the weighted parallel merge path (and the
/// plain-batch adapter), owned per session: cleared, never freed, so
/// steady-state ingestion stays off the allocator.  The weighted analogue
/// of the unweighted session's scratch arena.
#[derive(Debug, Clone, Default)]
struct WScratchArena {
    /// Values of `frontier ++ batch`, the Algorithm-2 input.
    merged_values: Vec<u64>,
    /// Weights of `frontier ++ batch` (frontier entries carry their score
    /// *increment*).
    merged_weights: Vec<u64>,
    /// Frontier-rebuild staging: old frontier plus batch points, compacted
    /// to the Pareto staircase in place, then swapped with the frontier
    /// (the two buffers ping-pong across ingests).
    candidates: Vec<(u64, u64)>,
    /// Unit-weight pair staging for [`WeightedStreamingLis::ingest_plain`].
    plain_pairs: Vec<(u64, u64)>,
}

impl WScratchArena {
    fn reserve(&mut self, additional: usize) {
        self.merged_values.reserve(additional);
        self.merged_weights.reserve(additional);
        self.candidates.reserve(additional);
        self.plain_pairs.reserve(additional);
    }

    /// Heap bytes currently held across all staging buffers (capacity).
    fn approx_bytes(&self) -> usize {
        (self.merged_values.capacity() + self.merged_weights.capacity())
            * std::mem::size_of::<u64>()
            + (self.candidates.capacity() + self.plain_pairs.capacity())
                * std::mem::size_of::<(u64, u64)>()
    }
}

/// What one [`WeightedStreamingLis::ingest`] call did.
///
/// Equality is structural in the sense of [`crate::TickOutcome`]'s
/// invariant: the telemetry tallies ([`WeightedIngestReport::dommax_queries`],
/// [`WeightedIngestReport::dommax_writeback_elems`]) and the store-routing
/// record ([`WeightedIngestReport::dommax_used`]) are observational and
/// excluded from `==`, so reports stay comparable across backends and
/// paths.
#[derive(Debug, Clone, Copy)]
pub struct WeightedIngestReport {
    /// Number of `(value, weight)` pairs appended by this call.
    pub ingested: usize,
    /// Best (maximum) dp score of the stream before the batch.
    pub score_before: u64,
    /// Best (maximum) dp score of the stream after the batch.
    pub score_after: u64,
    /// Code path taken.
    pub path: IngestPath,
    /// Pareto-frontier size after the batch.
    pub frontier_len: usize,
    /// The concrete dominant-max store the parallel path ran with (what
    /// [`DominantMaxKind::Auto`] resolved to for this call's merged size;
    /// `None` on the sequential path, which uses no store).  Telemetry
    /// only — excluded from `==`.
    pub dommax_used: Option<DominantMaxKind>,
    /// Dominant-max point queries the parallel path issued (one per
    /// element of the `frontier ++ batch` run; 0 on the sequential
    /// path).  Telemetry only — excluded from `==`.
    pub dommax_queries: u64,
    /// Elements the parallel path wrote back to the dominant-max store.
    /// Telemetry only — excluded from `==`.
    pub dommax_writeback_elems: u64,
}

impl PartialEq for WeightedIngestReport {
    /// Field-wise equality, excluding the observational dominant-max
    /// tallies (see the type docs).
    fn eq(&self, other: &Self) -> bool {
        self.ingested == other.ingested
            && self.score_before == other.score_before
            && self.score_after == other.score_after
            && self.path == other.path
            && self.frontier_len == other.frontier_len
    }
}

impl Eq for WeightedIngestReport {}

impl WeightedIngestReport {
    fn empty(score: u64, frontier_len: usize) -> Self {
        WeightedIngestReport {
            ingested: 0,
            score_before: score,
            score_after: score,
            path: IngestPath::Sequential,
            frontier_len,
            dommax_used: None,
            dommax_queries: 0,
            dommax_writeback_elems: 0,
        }
    }
}

/// Incremental weighted LIS (Algorithm 2) over an append-only stream of
/// `(value, weight)` pairs.  See the module docs for the algorithm; see
/// [`crate::Engine`] for multiplexing weighted sessions next to unweighted
/// ones.
#[derive(Debug, Clone)]
pub struct WeightedStreamingLis {
    /// Every ingested value, in arrival order.
    values: Vec<u64>,
    /// Every ingested weight, in arrival order.
    weights: Vec<u64>,
    /// `scores[i]` = dp value of element `i` (Equation 2); exact and final.
    scores: Vec<u64>,
    /// Pareto frontier of `(value, score)` pairs: strictly increasing in
    /// both coordinates, scores all `≥ 1` (zero-score entries answer no
    /// probe that `max(0, ·)` doesn't already).
    frontier: Vec<(u64, u64)>,
    /// Multiplicity of every dp score seen so far (`score → count`),
    /// maintained on ingest so count-at-score queries are `O(1)`.
    score_counts: HashMap<u64, usize>,
    /// Dominant-max store selector for the parallel merge path, as
    /// configured.  [`DominantMaxKind::Auto`] is kept un-resolved so each
    /// parallel ingest can pick per merged size — the store is built
    /// fresh inside every merge run, so the choice is free to vary call
    /// to call.
    kind: DominantMaxKind,
    /// Reusable staging buffers for the parallel merge path.
    scratch: WScratchArena,
    universe: u64,
    /// How ingest picks between the sequential and parallel merge path.
    policy: PathPolicy,
}

impl WeightedStreamingLis {
    /// Create a session over the value universe `[0, universe)` using the
    /// chosen dominant-max store for parallel ingests.
    ///
    /// # Panics
    /// Panics if `universe == 0`.
    pub fn new(universe: u64, kind: DominantMaxKind) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        WeightedStreamingLis {
            values: Vec::new(),
            weights: Vec::new(),
            scores: Vec::new(),
            frontier: Vec::new(),
            score_counts: HashMap::new(),
            kind,
            scratch: WScratchArena::default(),
            universe,
            policy: PathPolicy::default(),
        }
    }

    /// Rebuild a session from snapshot state: the captured stream, dp
    /// scores and Pareto frontier.  The score-multiplicity map is recounted
    /// from the score array (it is a pure function of it).  The caller
    /// (the snapshot codec) has already validated that `scores`/`frontier`
    /// are exactly what ingesting the stream produces; this constructor
    /// assumes it and does no checking of its own.
    pub(crate) fn from_restored(
        universe: u64,
        values: Vec<u64>,
        weights: Vec<u64>,
        scores: Vec<u64>,
        frontier: Vec<(u64, u64)>,
        kind: DominantMaxKind,
        policy: PathPolicy,
    ) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        let mut score_counts = HashMap::with_capacity(scores.len());
        for &s in &scores {
            *score_counts.entry(s).or_default() += 1;
        }
        WeightedStreamingLis {
            values,
            weights,
            scores,
            frontier,
            score_counts,
            kind,
            scratch: WScratchArena::default(),
            universe,
            policy,
        }
    }

    /// Force a fixed batch-size threshold for the parallel merge path —
    /// shorthand for [`PathPolicy::Fixed`] (mainly for tests, benchmarks,
    /// and reproducing the historical behaviour).
    pub fn with_par_threshold(self, threshold: usize) -> Self {
        self.with_path_policy(PathPolicy::Fixed(threshold.max(1)))
    }

    /// Set how ingest decides between the sequential and the parallel
    /// merge path.  Both paths are exact, so the policy affects timing
    /// only — never scores or the frontier.
    pub fn with_path_policy(mut self, policy: PathPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active ingest path policy.
    pub fn path_policy(&self) -> PathPolicy {
        self.policy
    }

    /// Pre-size every internal buffer for `additional` more elements, so a
    /// workload of known size never grows them mid-ingest.  Purely a
    /// capacity hint: state and outcomes are unaffected.  (Each element
    /// introduces at most one previously unseen score, so the
    /// score-multiplicity map is covered too.)
    pub fn reserve(&mut self, additional: usize) {
        self.values.reserve(additional);
        self.weights.reserve(additional);
        self.scores.reserve(additional);
        self.frontier.reserve(additional);
        self.score_counts.reserve(additional);
        self.scratch.reserve(additional);
    }

    /// Number of elements ingested so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True before the first element arrives.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The universe this session was created over.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Name of the dominant-max store selector serving the parallel path
    /// (`"auto"` for [`DominantMaxKind::Auto`], which picks a concrete
    /// store per ingest — see [`WeightedIngestReport::dommax_used`]).
    pub fn backend_name(&self) -> &'static str {
        self.kind.name()
    }

    /// The configured dominant-max store selector (possibly
    /// [`DominantMaxKind::Auto`]).
    pub fn dommax_kind(&self) -> DominantMaxKind {
        self.kind
    }

    /// Every ingested value, in arrival order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Every ingested weight, in arrival order.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Per-element dp scores (Equation 2).  `scores()[i]` is exact and
    /// final from the moment element `i` is ingested — the weighted
    /// analogue of [`crate::StreamingLis::ranks`].
    pub fn scores(&self) -> &[u64] {
        &self.scores
    }

    /// The dp score of the `i`-th ingested element, if it exists.
    pub fn score_of(&self, i: usize) -> Option<u64> {
        self.scores.get(i).copied()
    }

    /// The maximum-weight increasing subsequence total — the best dp score
    /// so far (0 for an empty stream).
    pub fn best_score(&self) -> u64 {
        self.frontier.last().map_or(0, |&(_, s)| s)
    }

    /// The current Pareto frontier of `(value, score)` pairs (strictly
    /// increasing in both coordinates).
    pub fn frontier(&self) -> &[(u64, u64)] {
        &self.frontier
    }

    /// Best dp score among elements with value strictly below `x` — the
    /// score a hypothetical next element `(x, 0)` would receive.
    pub fn best_score_below(&self, x: u64) -> u64 {
        let pos = self.frontier.partition_point(|&(v, _)| v < x);
        pos.checked_sub(1).map_or(0, |i| self.frontier[i].1)
    }

    /// Number of ingested elements whose dp score is exactly `score`.
    /// `O(1)`: a score-multiplicity map is maintained on ingest.  (Unlike
    /// unweighted ranks, scores are sparse, so most probes count zero.)
    pub fn count_at_score(&self, score: u64) -> usize {
        self.score_counts.get(&score).copied().unwrap_or(0)
    }

    /// The `k` best elements by dp score: `(index, score)` pairs ordered
    /// by descending score, ties by ascending index.  `O(n log k)` — a
    /// single scan with a size-`k` heap (weighted scores are unbounded, so
    /// there is no frontier list to walk as in the unweighted session).
    /// Returns fewer than `k` pairs when the stream is shorter than `k`.
    pub fn top_k(&self, k: usize) -> Vec<(usize, u64)> {
        use std::cmp::Reverse;
        if k == 0 {
            return Vec::new();
        }
        // Min-heap of the current best k: the key orders "better" as
        // (higher score, then smaller index), so the heap top — the
        // minimum key under Reverse — is the weakest kept candidate.  The
        // heap never holds more than min(k, n) + 1 entries, so cap the
        // allocation by the stream length (a huge k must not OOM/panic).
        let mut heap: std::collections::BinaryHeap<Reverse<(u64, Reverse<usize>)>> =
            std::collections::BinaryHeap::with_capacity(k.min(self.scores.len()) + 1);
        for (i, &s) in self.scores.iter().enumerate() {
            heap.push(Reverse((s, Reverse(i))));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut out: Vec<(usize, u64)> =
            heap.into_iter().map(|Reverse((s, Reverse(i)))| (i, s)).collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Indices (in arrival order) of one **maximum-weight** increasing
    /// subsequence of the whole stream, recovered from the maintained dp
    /// scores with one backward scan
    /// ([`plis_lis::wlis_indices_from_scores`]).  The total weight along
    /// the returned indices equals [`WeightedStreamingLis::best_score`];
    /// empty when the stream is empty or all weights are zero.
    pub fn reconstruct_wlis(&self) -> Vec<usize> {
        plis_lis::wlis_indices_from_scores(&self.values, &self.weights, &self.scores)
    }

    /// Append a batch of `(value, weight)` pairs and update all state.
    ///
    /// # Panics
    /// Panics if any value is outside the session universe.
    pub fn ingest(&mut self, batch: &[(u64, u64)]) -> WeightedIngestReport {
        for &(v, _) in batch {
            assert!(v < self.universe, "value {v} outside session universe {}", self.universe);
        }
        if batch.is_empty() {
            return WeightedIngestReport::empty(self.best_score(), self.frontier.len());
        }
        match self.policy.choose_weighted(batch.len(), self.frontier.len()) {
            IngestPath::ParallelMerge => self.ingest_parallel(batch),
            IngestPath::Sequential => self.ingest_sequential(batch),
        }
    }

    /// Append unweighted values as unit-weight pairs (every element weighs
    /// 1), so plain traffic can feed a weighted session.
    pub fn ingest_plain(&mut self, batch: &[u64]) -> WeightedIngestReport {
        // Stage through the arena's pair buffer (taken out for the
        // duration of the ingest call, which borrows `self` mutably).
        let mut pairs = std::mem::take(&mut self.scratch.plain_pairs);
        pairs.clear();
        pairs.extend(batch.iter().map(|&v| (v, 1)));
        let report = self.ingest(&pairs);
        self.scratch.plain_pairs = pairs;
        report
    }

    /// The sequential path: per-element frontier probe + in-place repair.
    fn ingest_sequential(&mut self, batch: &[(u64, u64)]) -> WeightedIngestReport {
        let score_before = self.best_score();
        for &(x, w) in batch {
            let score = self.best_score_below(x) + w;
            self.values.push(x);
            self.weights.push(w);
            self.scores.push(score);
            *self.score_counts.entry(score).or_default() += 1;
            self.frontier_insert(x, score);
        }
        WeightedIngestReport {
            ingested: batch.len(),
            score_before,
            score_after: self.best_score(),
            path: IngestPath::Sequential,
            frontier_len: self.frontier.len(),
            dommax_used: None,
            dommax_queries: 0,
            dommax_writeback_elems: 0,
        }
    }

    /// Insert `(x, score)` into the frontier, dropping whatever it
    /// dominates (entries with value `≥ x` and score `≤ score`).
    fn frontier_insert(&mut self, x: u64, score: u64) {
        if score == 0 {
            return;
        }
        let pos = self.frontier.partition_point(|&(v, _)| v < x);
        // Dominated by a predecessor (value ≤ x, score ≥ score)?
        if pos > 0 && self.frontier[pos - 1].1 >= score {
            return;
        }
        if let Some(&(v, s)) = self.frontier.get(pos) {
            if v == x && s >= score {
                return;
            }
        }
        // Entries from `pos` on have value ≥ x; drop the run that the new
        // entry dominates (score ≤ score), then place the new entry.
        let mut end = pos;
        while end < self.frontier.len() && self.frontier[end].1 <= score {
            end += 1;
        }
        if end == pos {
            self.frontier.insert(pos, (x, score));
        } else {
            self.frontier[pos] = (x, score);
            self.frontier.drain(pos + 1..end);
        }
    }

    /// The parallel merge path: the one generic Algorithm-2 driver over
    /// `frontier ++ batch`, then a Pareto rebuild of the frontier.  All
    /// staging goes through the session's [`WScratchArena`] — steady state
    /// performs no heap allocation here beyond what the dominant-max
    /// driver needs internally.
    fn ingest_parallel(&mut self, batch: &[(u64, u64)]) -> WeightedIngestReport {
        let score_before = self.best_score();
        let k = self.frontier.len();

        // Encode the frontier as a weighted prefix: increasing values, each
        // weighted by its score increment, so the driver reproduces every
        // entry's own score (see the module docs for why this is exact).
        let scratch = &mut self.scratch;
        scratch.merged_values.clear();
        scratch.merged_weights.clear();
        scratch.merged_values.reserve(k + batch.len());
        scratch.merged_weights.reserve(k + batch.len());
        let mut prev_score = 0u64;
        for &(v, s) in &self.frontier {
            scratch.merged_values.push(v);
            scratch.merged_weights.push(s - prev_score);
            prev_score = s;
        }
        for &(v, w) in batch {
            scratch.merged_values.push(v);
            scratch.merged_weights.push(w);
        }
        // Resolve `Auto` per call: the store is built fresh over the
        // merged run, so the routing can follow the merged size.
        let used = self.kind.resolve_for(scratch.merged_values.len());
        let (dp, dommax_stats) =
            wlis_kind_stats(used, &scratch.merged_values, &scratch.merged_weights);
        debug_assert!(
            dp[..k].iter().zip(&self.frontier).all(|(&d, &(_, s))| d == s),
            "the encoded frontier must reproduce its own scores"
        );

        let batch_scores = &dp[k..];
        for &s in batch_scores {
            *self.score_counts.entry(s).or_default() += 1;
        }
        self.scores.extend_from_slice(batch_scores);
        self.values.extend(batch.iter().map(|&(v, _)| v));
        self.weights.extend(batch.iter().map(|&(_, w)| w));

        // New frontier: Pareto staircase of the old entries and the batch,
        // compacted in place and swapped with the live frontier (the two
        // buffers ping-pong, both staying at high-water capacity).
        scratch.candidates.clear();
        scratch.candidates.extend_from_slice(&self.frontier);
        scratch.candidates.extend(batch.iter().zip(batch_scores).map(|(&(v, _), &s)| (v, s)));
        pareto_staircase_inplace(&mut scratch.candidates);
        std::mem::swap(&mut self.frontier, &mut scratch.candidates);

        WeightedIngestReport {
            ingested: batch.len(),
            score_before,
            score_after: self.best_score(),
            path: IngestPath::ParallelMerge,
            frontier_len: self.frontier.len(),
            dommax_used: Some(used),
            dommax_queries: dommax_stats.queries,
            dommax_writeback_elems: dommax_stats.writeback_elems,
        }
    }

    /// Rough heap footprint of the session in bytes: the value, weight
    /// and score arrays, the Pareto frontier, the scratch arena, and an
    /// estimate of the score-multiplicity map.  Intended for occasional
    /// telemetry snapshots, not the hot path.
    pub fn approx_bytes(&self) -> usize {
        // HashMap: one (key, value) slot plus a control byte per bucket.
        let map_bytes = self.score_counts.capacity() * (std::mem::size_of::<(u64, usize)>() + 1);
        std::mem::size_of::<Self>()
            + self.values.capacity() * std::mem::size_of::<u64>()
            + self.weights.capacity() * std::mem::size_of::<u64>()
            + self.scores.capacity() * std::mem::size_of::<u64>()
            + self.frontier.capacity() * std::mem::size_of::<(u64, u64)>()
            + self.scratch.approx_bytes()
            + map_bytes
    }

    /// Heap bytes held by the reusable staging buffers — the telemetry
    /// plane's "arena high-water" accounting (weighted side).
    pub fn arena_bytes(&self) -> usize {
        self.scratch.approx_bytes()
    }

    /// Cross-check every invariant; used by the test suites.
    pub fn check_invariants(&self) {
        assert_eq!(self.values.len(), self.weights.len());
        assert_eq!(self.values.len(), self.scores.len());
        assert!(
            self.frontier.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1),
            "frontier must be strictly increasing in value and score"
        );
        assert!(self.frontier.iter().all(|&(_, s)| s > 0), "zero-score frontier entries");
        assert_eq!(
            self.best_score(),
            self.scores.iter().copied().max().unwrap_or(0),
            "best_score must equal the max dp score"
        );
        let mut want_counts: HashMap<u64, usize> = HashMap::new();
        for &s in &self.scores {
            *want_counts.entry(s).or_default() += 1;
        }
        assert_eq!(self.score_counts, want_counts, "score multiplicities out of sync");
        let expect =
            pareto_staircase(self.values.iter().zip(&self.scores).map(|(&v, &s)| (v, s)).collect());
        assert_eq!(self.frontier, expect, "frontier must be the Pareto staircase of the stream");
    }
}

/// The Pareto staircase of a bag of `(value, score)` pairs: for every
/// value keep the best score, then keep only entries whose score strictly
/// exceeds every entry at a smaller value.  Zero scores are dropped (the
/// `max(0, ·)` in the recurrence makes them vacuous).
fn pareto_staircase(mut pairs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    pareto_staircase_inplace(&mut pairs);
    pairs
}

/// In-place form of [`pareto_staircase`]: sorts `pairs` and compacts the
/// staircase into its prefix (no allocation; the hot path reuses one
/// staging buffer across ingests).
fn pareto_staircase_inplace(pairs: &mut Vec<(u64, u64)>) {
    pairs.sort_unstable();
    let mut kept = 0usize;
    for i in 0..pairs.len() {
        let (v, s) = pairs[i];
        if s == 0 {
            continue;
        }
        if kept > 0 && pairs[kept - 1].0 == v {
            if s > pairs[kept - 1].1 {
                pairs[kept - 1].1 = s;
            }
        } else if kept > 0 && s <= pairs[kept - 1].1 {
            // Dominated by a smaller value with an equal-or-better score.
        } else {
            pairs[kept] = (v, s);
            kept += 1;
        }
    }
    pairs.truncate(kept);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_pairs;
    use plis_lis::wlis_rangetree;

    /// Stream `pairs` through a session in chunks, checking scores against
    /// the offline oracle after every batch.
    fn check_against_offline(
        pairs: &[(u64, u64)],
        universe: u64,
        kind: DominantMaxKind,
        chunk: usize,
        par_threshold: usize,
    ) {
        let mut session =
            WeightedStreamingLis::new(universe, kind).with_par_threshold(par_threshold);
        let mut prefix: Vec<(u64, u64)> = Vec::new();
        for batch in pairs.chunks(chunk) {
            session.ingest(batch);
            prefix.extend_from_slice(batch);
            let values: Vec<u64> = prefix.iter().map(|&(v, _)| v).collect();
            let weights: Vec<u64> = prefix.iter().map(|&(_, w)| w).collect();
            let want = wlis_rangetree(&values, &weights);
            assert_eq!(session.scores(), want.as_slice(), "scores diverged from offline oracle");
            session.check_invariants();
        }
    }

    #[test]
    fn unit_weights_track_the_unweighted_session() {
        let input = [52u64, 31, 45, 26, 61, 10, 39, 44];
        let mut s = WeightedStreamingLis::new(64, DominantMaxKind::Auto);
        let report = s.ingest_plain(&input);
        assert_eq!(report.ingested, 8);
        assert_eq!(report.score_after, 3);
        assert_eq!(s.scores(), &[1, 1, 2, 1, 3, 1, 2, 3]);
        // Unit weights: the frontier degenerates to the patience tails.
        assert_eq!(s.frontier(), &[(10, 1), (39, 2), (44, 3)]);
        s.check_invariants();
    }

    #[test]
    fn heavy_object_dominates() {
        let mut s = WeightedStreamingLis::new(100, DominantMaxKind::RangeTree);
        s.ingest(&[(1, 1), (2, 100), (3, 1), (4, 1)]);
        assert_eq!(s.scores(), &[1, 101, 102, 103]);
        assert_eq!(s.best_score(), 103);
        s.check_invariants();
    }

    #[test]
    fn duplicates_do_not_chain() {
        let mut s = WeightedStreamingLis::new(10, DominantMaxKind::Auto);
        s.ingest(&[(5, 2), (5, 3), (5, 4)]);
        assert_eq!(s.scores(), &[2, 3, 4]);
        assert_eq!(s.frontier(), &[(5, 4)]);
        s.check_invariants();
    }

    #[test]
    fn zero_weights_are_handled() {
        let mut s = WeightedStreamingLis::new(10, DominantMaxKind::Auto);
        s.ingest(&[(3, 0), (1, 0), (4, 5), (5, 0)]);
        assert_eq!(s.scores(), &[0, 0, 5, 5]);
        assert_eq!(s.frontier(), &[(4, 5)]);
        s.check_invariants();
    }

    #[test]
    fn sequential_and_parallel_paths_agree() {
        let pairs = random_pairs(1_200, 700, 40, 0xFEED5EED);
        let mut seq =
            WeightedStreamingLis::new(700, DominantMaxKind::Auto).with_par_threshold(usize::MAX);
        let mut par = WeightedStreamingLis::new(700, DominantMaxKind::Auto).with_par_threshold(1);
        for chunk in pairs.chunks(83) {
            let rs = seq.ingest(chunk);
            let rp = par.ingest(chunk);
            assert_eq!(rs.path, IngestPath::Sequential);
            assert_eq!(rp.path, IngestPath::ParallelMerge);
            assert_eq!(rs.score_after, rp.score_after);
            assert_eq!(rs.frontier_len, rp.frontier_len);
        }
        assert_eq!(seq.scores(), par.scores());
        assert_eq!(seq.frontier(), par.frontier());
        seq.check_invariants();
        par.check_invariants();
    }

    /// Property: the final state is bit-identical across *any* forced
    /// threshold on the weighted path too.
    #[test]
    fn any_forced_threshold_yields_identical_state() {
        let pairs = random_pairs(1_500, 900, 35, 0x0DDBA11);
        let reference = {
            let mut s = WeightedStreamingLis::new(900, DominantMaxKind::Auto)
                .with_par_threshold(usize::MAX);
            for chunk in pairs.chunks(91) {
                s.ingest(chunk);
            }
            s
        };
        for threshold in [1usize, 3, 16, 64, 90, 91, 92, 512] {
            let mut s =
                WeightedStreamingLis::new(900, DominantMaxKind::Auto).with_par_threshold(threshold);
            for chunk in pairs.chunks(91) {
                s.ingest(chunk);
            }
            assert_eq!(s.scores(), reference.scores(), "threshold {threshold}");
            assert_eq!(s.frontier(), reference.frontier(), "threshold {threshold}");
            s.check_invariants();
        }
    }

    /// The cost policy produces the same state as any fixed policy —
    /// calibration changes timing only, never scores.
    #[test]
    fn cost_policy_state_matches_fixed_policies() {
        let pairs = random_pairs(1_000, 700, 20, 0xBEEFCAFE);
        let mut cost = WeightedStreamingLis::new(700, DominantMaxKind::Auto)
            .with_path_policy(PathPolicy::Cost);
        let mut fixed =
            WeightedStreamingLis::new(700, DominantMaxKind::Auto).with_par_threshold(128);
        assert_eq!(cost.path_policy(), PathPolicy::Cost);
        for chunk in pairs.chunks(77) {
            let rc = cost.ingest(chunk);
            let rf = fixed.ingest(chunk);
            assert_eq!(rc.ingested, rf.ingested);
            assert_eq!(rc.score_before, rf.score_before);
            assert_eq!(rc.score_after, rf.score_after);
            assert_eq!(rc.frontier_len, rf.frontier_len);
        }
        assert_eq!(cost.scores(), fixed.scores());
        assert_eq!(cost.frontier(), fixed.frontier());
        cost.check_invariants();
    }

    /// Auto sessions record which concrete store each parallel ingest ran
    /// with; sequential ingests record none.  The record is observational:
    /// reports differing only in it still compare equal.
    #[test]
    fn auto_records_the_store_each_parallel_ingest_used() {
        let pairs = random_pairs(400, 300, 15, 0x5EED);
        let mut auto =
            WeightedStreamingLis::new(300, DominantMaxKind::Auto).with_par_threshold(100);
        let mut veb =
            WeightedStreamingLis::new(300, DominantMaxKind::RangeVeb).with_par_threshold(100);
        for chunk in pairs.chunks(200) {
            let ra = auto.ingest(chunk);
            let rv = veb.ingest(chunk);
            assert_eq!(ra.path, IngestPath::ParallelMerge);
            // Below the points threshold Auto must route around the
            // Range-vEB write-back and pick the range tree.
            assert_eq!(ra.dommax_used, Some(DominantMaxKind::RangeTree));
            assert_eq!(rv.dommax_used, Some(DominantMaxKind::RangeVeb));
            // dommax_used is excluded from structural equality.
            assert_eq!(ra, rv);
        }
        let seq_report = auto.ingest(&[(5, 1)]);
        veb.ingest(&[(5, 1)]);
        assert_eq!(seq_report.path, IngestPath::Sequential);
        assert_eq!(seq_report.dommax_used, None);
        assert_eq!(auto.backend_name(), "auto");
        assert_eq!(auto.dommax_kind(), DominantMaxKind::Auto);
        assert_eq!(auto.scores(), veb.scores());
    }

    #[test]
    fn streaming_matches_offline_oracle_on_both_backends() {
        let pairs = random_pairs(900, 400, 30, 0xABCD);
        for kind in [DominantMaxKind::RangeTree, DominantMaxKind::RangeVeb] {
            // Mixed paths: threshold between the chunk sizes used.
            check_against_offline(&pairs, 400, kind, 111, 64);
            check_against_offline(&pairs, 400, kind, 37, 64);
        }
    }

    #[test]
    fn increasing_stream_keeps_full_frontier() {
        let pairs: Vec<(u64, u64)> = (0..300u64).map(|v| (v, 2)).collect();
        let mut s = WeightedStreamingLis::new(300, DominantMaxKind::Auto).with_par_threshold(50);
        for chunk in pairs.chunks(70) {
            s.ingest(chunk);
        }
        assert_eq!(s.best_score(), 600);
        assert_eq!(s.frontier().len(), 300);
        s.check_invariants();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut s = WeightedStreamingLis::new(50, DominantMaxKind::Auto);
        s.ingest(&[(3, 2), (1, 7)]);
        let frontier = s.frontier().to_vec();
        let r = s.ingest(&[]);
        assert_eq!(r.ingested, 0);
        assert_eq!(r.score_before, r.score_after);
        assert_eq!(s.frontier(), frontier.as_slice());
    }

    #[test]
    #[should_panic(expected = "outside session universe")]
    fn out_of_universe_value_panics() {
        let mut s = WeightedStreamingLis::new(16, DominantMaxKind::Auto);
        s.ingest(&[(16, 1)]);
    }

    #[test]
    fn score_queries_match_the_score_array() {
        let pairs = random_pairs(1_000, 600, 25, 0xC0DE);
        let mut s = WeightedStreamingLis::new(600, DominantMaxKind::Auto).with_par_threshold(90);
        for chunk in pairs.chunks(75) {
            s.ingest(chunk);
        }
        // count_at_score against a scan of the score array.
        for probe in s.scores().iter().copied().chain([0, 1, u64::MAX]) {
            let want = s.scores().iter().filter(|&&x| x == probe).count();
            assert_eq!(s.count_at_score(probe), want, "score {probe}");
        }
        // top_k: descending score, ties by ascending index, prefix-closed.
        let full = s.top_k(s.len() + 10);
        assert_eq!(full.len(), s.len());
        assert!(full.windows(2).all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
        for &(idx, dp) in &full {
            assert_eq!(s.scores()[idx], dp);
        }
        assert_eq!(s.top_k(9), full[..9]);
        assert_eq!(full[0].1, s.best_score());
        assert!(s.top_k(0).is_empty());
        // Huge k must not overflow the heap allocation.
        assert_eq!(s.top_k(usize::MAX), full);
        // The certificate carries the claimed total weight.
        let cert = s.reconstruct_wlis();
        assert!(cert.windows(2).all(|w| w[0] < w[1]));
        assert!(cert.windows(2).all(|w| s.values()[w[0]] < s.values()[w[1]]));
        assert_eq!(cert.iter().map(|&i| s.weights()[i]).sum::<u64>(), s.best_score());
        s.check_invariants();
    }

    #[test]
    fn queries_on_an_empty_weighted_session_are_well_defined() {
        let s = WeightedStreamingLis::new(64, DominantMaxKind::Auto);
        assert_eq!(s.count_at_score(0), 0);
        assert_eq!(s.count_at_score(1), 0);
        assert!(s.top_k(5).is_empty());
        assert!(s.reconstruct_wlis().is_empty());
        s.check_invariants();
    }

    #[test]
    fn pareto_staircase_basics() {
        assert_eq!(pareto_staircase(vec![]), vec![]);
        assert_eq!(pareto_staircase(vec![(3, 0)]), vec![]);
        assert_eq!(
            pareto_staircase(vec![(5, 2), (3, 4), (7, 4), (6, 9), (5, 3)]),
            vec![(3, 4), (6, 9)]
        );
        // Equal values keep the best score; equal scores keep the smallest
        // value.
        assert_eq!(pareto_staircase(vec![(2, 1), (2, 6), (4, 6), (9, 6)]), vec![(2, 6)]);
    }
}
