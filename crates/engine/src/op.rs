//! The engine's **command plane**: one typed submission API for every
//! kind of traffic the engine serves.
//!
//! Historically the engine grew one entry point per feature —
//! `ingest_tick`, `ingest_weighted_tick`, `ingest_tick_mixed`,
//! `ingest_query_tick`, `query_tick`, each with its own report shape —
//! and faults were handled inconsistently (a weighted batch aimed at an
//! unweighted session panicked; an unknown session was silently
//! skipped).  This module replaces all of that with a single vocabulary:
//!
//! * [`Op`] — one command: append a batch (plain or weighted), answer a
//!   query batch, or an **explicit lifecycle step**
//!   ([`Op::CreateSession`] / [`Op::RemoveSession`]), so session
//!   creation stops being an implicit side effect of ingest.
//! * [`Tick`] — a builder that groups ops per [`SessionId`] in
//!   submission order.  Ops addressed to the same session apply in
//!   exactly that order (a session lives in one shard, and each shard
//!   replays its slice of the tick sequentially), so reads observe every
//!   earlier write of the same tick.
//! * [`Engine::execute`](crate::Engine::execute) — the one write/mixed
//!   executor, returning a [`TickOutcome`]; and
//!   [`Engine::execute_read`](crate::Engine::execute_read) — the
//!   read-only executor over a [`ReadTick`], returning a
//!   [`ReadOutcome`].  Both run the same shard-parallel spine with a
//!   one-shard grain.
//! * Every op resolves to a typed [`Result<OpOutput, OpError>`]: a
//!   malformed slot ([`OpError::KindMismatch`],
//!   [`OpError::UniverseOverflow`], [`OpError::UnknownSession`],
//!   [`OpError::SessionExists`]) degrades *per op* instead of killing
//!   the process or vanishing from the report.
//!
//! The legacy entry points survive as one-line deprecated wrappers over
//! the executor (see [`crate::legacy`]); all in-repo traffic goes
//! through [`Tick`] / [`ReadTick`].

use crate::engine::{BatchReport, SessionId, SessionKind, TickBatch};
use crate::query::{Query, QueryBatch, QueryReport};
use crate::snapshot::{SessionSnapshot, SnapshotError};

/// One command addressed to a session — the unit of every [`Tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Append a batch of plain values to an unweighted session (or to a
    /// weighted one, which ingests them with unit weights).
    Append(Vec<u64>),
    /// Append a batch of `(value, weight)` pairs to a weighted session.
    /// Aimed at an unweighted session this fails with
    /// [`OpError::KindMismatch`] — it does not panic and does not touch
    /// the session.
    AppendWeighted(Vec<(u64, u64)>),
    /// Answer a batch of queries against the session state so far —
    /// including every earlier op of the *same tick* addressed to it.
    Query(QueryBatch),
    /// Create an empty session of the given kind.  Fails with
    /// [`OpError::SessionExists`] if the id is already live (whatever
    /// its kind).
    CreateSession {
        /// The kind the new session serves.
        kind: SessionKind,
    },
    /// Drop the session and all its state.  Fails with
    /// [`OpError::UnknownSession`] if the id is not live.
    RemoveSession,
    /// Capture a point-in-time [`SessionSnapshot`] of the session; the
    /// snapshot rides back on [`OpOutput::Snapshotted`].  Running the
    /// capture as an op makes checkpointing **tick-ordered** like every
    /// other command: the snapshot observes every earlier op of the same
    /// tick addressed to this session and none after it.  Fails with
    /// [`OpError::UnknownSession`] if the id is not live.
    Snapshot,
    /// Rebuild a session from a snapshot under this id (boxed: a snapshot
    /// carries whole stream arrays and would otherwise dominate the size
    /// of every `Op`).  Fails with [`OpError::SessionExists`] if the id is
    /// already live, [`OpError::UniverseMismatch`] if the snapshot was
    /// taken over a different universe, and
    /// [`OpError::InvalidSnapshot`] if the snapshot state is internally
    /// inconsistent; on any failure nothing is created.
    Restore(Box<SessionSnapshot>),
}

impl Op {
    /// Elements this op would append (0 for non-appends).
    pub fn appends(&self) -> usize {
        match self {
            Op::Append(b) => b.len(),
            Op::AppendWeighted(b) => b.len(),
            _ => 0,
        }
    }

    /// Queries this op would answer (0 for non-queries).
    pub fn queries(&self) -> usize {
        match self {
            Op::Query(q) => q.len(),
            _ => 0,
        }
    }
}

impl From<Vec<u64>> for Op {
    fn from(batch: Vec<u64>) -> Self {
        Op::Append(batch)
    }
}

impl From<Vec<(u64, u64)>> for Op {
    fn from(batch: Vec<(u64, u64)>) -> Self {
        Op::AppendWeighted(batch)
    }
}

impl From<TickBatch> for Op {
    fn from(batch: TickBatch) -> Self {
        match batch {
            TickBatch::Plain(b) => Op::Append(b),
            TickBatch::Weighted(b) => Op::AppendWeighted(b),
        }
    }
}

impl From<QueryBatch> for Op {
    fn from(batch: QueryBatch) -> Self {
        Op::Query(batch)
    }
}

impl From<Query> for Op {
    fn from(query: Query) -> Self {
        Op::Query(query.into())
    }
}

impl From<plis_workloads::streaming::ReadWriteOp<u64>> for Op {
    /// The canonical 1:1 map from the workload generator's
    /// engine-agnostic read/write ops onto live commands: `Write`
    /// batches become [`Op::Append`], `Read` specs become [`Op::Query`]
    /// via the shared [`QuerySpec`](plis_workloads::streaming::QuerySpec)
    /// → [`Query`] conversion.
    fn from(op: plis_workloads::streaming::ReadWriteOp<u64>) -> Self {
        use plis_workloads::streaming::ReadWriteOp;
        match op {
            ReadWriteOp::Write(batch) => Op::Append(batch),
            ReadWriteOp::Read(specs) => {
                Op::Query(QueryBatch::new(specs.into_iter().map(Query::from).collect()))
            }
        }
    }
}

impl From<plis_workloads::streaming::ReadWriteOp<(u64, u64)>> for Op {
    /// The weighted leg of the 1:1 map: `Write` batches of
    /// `(value, weight)` pairs become [`Op::AppendWeighted`].
    fn from(op: plis_workloads::streaming::ReadWriteOp<(u64, u64)>) -> Self {
        use plis_workloads::streaming::ReadWriteOp;
        match op {
            ReadWriteOp::Write(batch) => Op::AppendWeighted(batch),
            ReadWriteOp::Read(specs) => {
                Op::Query(QueryBatch::new(specs.into_iter().map(Query::from).collect()))
            }
        }
    }
}

/// One tick of commands: `(session, op)` slots in submission order, the
/// single input shape of [`Engine::execute`](crate::Engine::execute).
///
/// Build one with the chainable methods ([`Tick::append`],
/// [`Tick::query`], [`Tick::create`], …), with [`Tick::push`], or collect
/// one from any iterator of `(id, op)` pairs whose parts convert into
/// [`SessionId`] / [`Op`].
///
/// By default the tick is **strict**: every op addressed to a session
/// that does not exist fails with [`OpError::UnknownSession`], and
/// sessions come into being only through [`Op::CreateSession`].
/// [`Tick::auto_create`] restores the legacy convenience of appends
/// creating their target on first contact (plain batches create the
/// configured default kind, weighted batches create a weighted session);
/// queries never create sessions under either policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tick {
    slots: Vec<(SessionId, Op)>,
    create_missing: bool,
}

impl Tick {
    /// An empty strict tick.
    pub fn new() -> Self {
        Tick::default()
    }

    /// Let append ops create their target session on first contact
    /// instead of failing with [`OpError::UnknownSession`].
    pub fn auto_create(mut self) -> Self {
        self.create_missing = true;
        self
    }

    /// Whether appends create missing sessions (see [`Tick::auto_create`]).
    pub fn creates_missing(&self) -> bool {
        self.create_missing
    }

    /// Add one op for `id` (chainable).
    pub fn op(mut self, id: impl Into<SessionId>, op: impl Into<Op>) -> Self {
        self.push(id, op);
        self
    }

    /// Append a plain batch to `id` (chainable).
    pub fn append(self, id: impl Into<SessionId>, batch: Vec<u64>) -> Self {
        self.op(id, Op::Append(batch))
    }

    /// Append a weighted batch to `id` (chainable).
    pub fn append_weighted(self, id: impl Into<SessionId>, batch: Vec<(u64, u64)>) -> Self {
        self.op(id, Op::AppendWeighted(batch))
    }

    /// Answer a query batch against `id` (chainable).
    pub fn query(self, id: impl Into<SessionId>, batch: impl Into<QueryBatch>) -> Self {
        self.op(id, Op::Query(batch.into()))
    }

    /// Create an empty session of `kind` under `id` (chainable).
    pub fn create(self, id: impl Into<SessionId>, kind: SessionKind) -> Self {
        self.op(id, Op::CreateSession { kind })
    }

    /// Remove the session under `id` (chainable).
    pub fn remove(self, id: impl Into<SessionId>) -> Self {
        self.op(id, Op::RemoveSession)
    }

    /// Capture a tick-ordered snapshot of the session under `id`
    /// (chainable).
    pub fn snapshot(self, id: impl Into<SessionId>) -> Self {
        self.op(id, Op::Snapshot)
    }

    /// Restore a session from `snapshot` under `id` (chainable).
    pub fn restore(self, id: impl Into<SessionId>, snapshot: SessionSnapshot) -> Self {
        self.op(id, Op::Restore(Box::new(snapshot)))
    }

    /// Add one op for `id` without consuming the builder.
    pub fn push(&mut self, id: impl Into<SessionId>, op: impl Into<Op>) {
        self.slots.push((id.into(), op.into()));
    }

    /// The slots, in submission order.
    pub fn slots(&self) -> &[(SessionId, Op)] {
        &self.slots
    }

    /// Number of ops in the tick.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the tick holds no ops.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl<I: Into<SessionId>, O: Into<Op>> FromIterator<(I, O)> for Tick {
    fn from_iter<T: IntoIterator<Item = (I, O)>>(iter: T) -> Self {
        Tick {
            slots: iter.into_iter().map(|(id, op)| (id.into(), op.into())).collect(),
            create_missing: false,
        }
    }
}

impl<I: Into<SessionId>, O: Into<Op>> Extend<(I, O)> for Tick {
    fn extend<T: IntoIterator<Item = (I, O)>>(&mut self, iter: T) {
        self.slots.extend(iter.into_iter().map(|(id, op)| (id.into(), op.into())));
    }
}

/// One read-only tick: `(session, queries)` slots in submission order,
/// the input shape of [`Engine::execute_read`](crate::Engine::execute_read).
///
/// Reads take `&Engine`, mutate nothing, and never create sessions; a
/// slot addressed to an absent session fails with
/// [`OpError::UnknownSession`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadTick {
    slots: Vec<(SessionId, QueryBatch)>,
}

impl ReadTick {
    /// An empty read tick.
    pub fn new() -> Self {
        ReadTick::default()
    }

    /// Add one query batch for `id` (chainable).
    pub fn query(mut self, id: impl Into<SessionId>, batch: impl Into<QueryBatch>) -> Self {
        self.push(id, batch);
        self
    }

    /// Add one query batch for `id` without consuming the builder.
    pub fn push(&mut self, id: impl Into<SessionId>, batch: impl Into<QueryBatch>) {
        self.slots.push((id.into(), batch.into()));
    }

    /// The slots, in submission order.
    pub fn slots(&self) -> &[(SessionId, QueryBatch)] {
        &self.slots
    }

    /// Number of query batches in the tick.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the tick holds no query batches.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl<I: Into<SessionId>, Q: Into<QueryBatch>> FromIterator<(I, Q)> for ReadTick {
    fn from_iter<T: IntoIterator<Item = (I, Q)>>(iter: T) -> Self {
        ReadTick { slots: iter.into_iter().map(|(id, q)| (id.into(), q.into())).collect() }
    }
}

/// What one successfully executed [`Op`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutput {
    /// An append landed; the per-kind ingest report.
    Appended(BatchReport),
    /// A query batch was answered, in batch order.
    Answered(QueryReport),
    /// [`Op::CreateSession`] created the session.
    Created,
    /// [`Op::RemoveSession`] dropped the session.
    Removed,
    /// [`Op::Snapshot`] captured the session; the snapshot rides the
    /// outcome (boxed for the same size reason as [`Op::Restore`]).
    Snapshotted(Box<SessionSnapshot>),
    /// [`Op::Restore`] rebuilt the session from its snapshot.
    Restored,
}

impl OpOutput {
    /// Elements ingested by this op (0 for non-appends).
    pub fn ingested(&self) -> usize {
        match self {
            OpOutput::Appended(r) => r.ingested(),
            _ => 0,
        }
    }

    /// Queries answered by this op (0 for non-queries).
    pub fn queries(&self) -> usize {
        match self {
            OpOutput::Answered(r) => r.answers.len(),
            _ => 0,
        }
    }

    /// The ingest report, if this op was an append.
    pub fn as_appended(&self) -> Option<&BatchReport> {
        match self {
            OpOutput::Appended(r) => Some(r),
            _ => None,
        }
    }

    /// The query report, if this op was a query.
    pub fn as_answered(&self) -> Option<&QueryReport> {
        match self {
            OpOutput::Answered(r) => Some(r),
            _ => None,
        }
    }

    /// The captured snapshot, if this op was a [`Op::Snapshot`].
    pub fn as_snapshot(&self) -> Option<&SessionSnapshot> {
        match self {
            OpOutput::Snapshotted(s) => Some(s),
            _ => None,
        }
    }
}

/// Why one [`Op`] was rejected.  A rejected op never touches the session
/// (appends are validated before any element is ingested), and never
/// affects its tick neighbours — the rest of the tick executes normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// The op addressed a session that does not exist (and, for appends,
    /// the tick did not opt into [`Tick::auto_create`]).
    UnknownSession,
    /// The batch kind does not fit the session kind: today this is
    /// exactly a weighted batch aimed at an unweighted session.  (Plain
    /// batches into weighted sessions are fine — they ingest with unit
    /// weights.)
    KindMismatch {
        /// Kind of the live session the op addressed.
        session: SessionKind,
        /// Kind the batch payload implied.
        batch: SessionKind,
    },
    /// An appended value falls outside the engine's value universe
    /// `[0, universe)`.  The whole batch is rejected atomically.
    UniverseOverflow {
        /// The offending value (the first one found).
        value: u64,
        /// The configured universe bound.
        universe: u64,
    },
    /// [`Op::CreateSession`] addressed an id that is already live.
    SessionExists {
        /// Kind of the session already holding the id.
        kind: SessionKind,
    },
    /// [`Op::Restore`] offered a snapshot taken over a different value
    /// universe than the engine is configured with.
    UniverseMismatch {
        /// Universe the snapshot was captured over.
        snapshot: u64,
        /// Universe the engine is configured with.
        universe: u64,
    },
    /// [`Op::Restore`] offered a snapshot whose state is internally
    /// inconsistent (hand-crafted or decoded from a damaged stream); the
    /// embedded [`SnapshotError`] says how validation failed.  Nothing was
    /// restored.
    InvalidSnapshot(SnapshotError),
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::UnknownSession => write!(f, "session does not exist"),
            OpError::KindMismatch { session, batch } => {
                write!(f, "{batch:?} batch sent to {session:?} session")
            }
            OpError::UniverseOverflow { value, universe } => {
                write!(f, "value {value} outside the universe [0, {universe})")
            }
            OpError::SessionExists { kind } => {
                write!(f, "session already exists (kind {kind:?})")
            }
            OpError::UniverseMismatch { snapshot, universe } => {
                write!(f, "snapshot universe {snapshot} does not match engine universe {universe}")
            }
            OpError::InvalidSnapshot(e) => {
                write!(f, "snapshot rejected: {e}")
            }
        }
    }
}

impl std::error::Error for OpError {}

/// The typed result of one op: what it did, or why it was rejected.
pub type OpResult = Result<OpOutput, OpError>;

/// What one [`Engine::execute`](crate::Engine::execute) call did: one
/// [`OpResult`] per submitted op, in submission order, plus the
/// aggregate counters every legacy report carried.
///
/// # Equality is structural
///
/// This is the canonical statement of the outcome-equality invariant
/// (both outcome types follow it): `==` compares only the *algorithmic*
/// content of an outcome — per-op results and their aggregates — and
/// excludes every observational field, i.e. anything that varies run to
/// run under an identical schedule: [`TickOutcome::worker_threads`]
/// (scheduling-dependent) and [`TickOutcome::elapsed_ns`] (wall-clock,
/// and zero when telemetry is disabled).  So whole outcomes from a
/// 1-thread run, a full-pool run, and a telemetry-off run of the same
/// schedule all compare equal — the determinism guarantee the test
/// suites assert.  Any new timing or telemetry field on an outcome type
/// must join this exclusion list.
#[derive(Debug, Clone)]
pub struct TickOutcome {
    /// One result per input op, in the original tick order.
    pub outcomes: Vec<(SessionId, OpResult)>,
    /// Total elements ingested by the append ops that landed.
    pub total_ingested: usize,
    /// Total queries answered by the query ops that landed.
    pub total_queries: usize,
    /// Number of distinct sessions that received data.
    pub sessions_touched: usize,
    /// Of [`TickOutcome::sessions_touched`], how many were weighted
    /// sessions — the session-kind axis of the tick.
    pub weighted_sessions_touched: usize,
    /// Number of distinct sessions that answered queries.
    pub sessions_queried: usize,
    /// Sessions created by explicit [`Op::CreateSession`] ops.
    pub sessions_created: usize,
    /// Sessions dropped by [`Op::RemoveSession`] ops.
    pub sessions_removed: usize,
    /// Sessions captured by [`Op::Snapshot`] ops.
    pub sessions_snapshotted: usize,
    /// Sessions rebuilt by [`Op::Restore`] ops.
    pub sessions_restored: usize,
    /// Number of ops rejected with an [`OpError`].
    pub failed_ops: usize,
    /// Number of distinct worker threads that processed shards in this
    /// tick.  Purely observational (scheduling-dependent): it is 1 under
    /// a 1-thread pool and may exceed 1 when the pool and the
    /// helper-thread budget allow real parallelism.  Excluded from
    /// `==` so determinism comparisons can use whole outcomes.
    pub worker_threads: usize,
    /// Wall-clock time the tick took, in nanoseconds.  Observational:
    /// 0 when telemetry is disabled (or compiled out), and excluded from
    /// `==` like [`TickOutcome::worker_threads`] (see the type docs).
    pub elapsed_ns: u64,
}

impl PartialEq for TickOutcome {
    /// Field-wise equality, excluding the observational
    /// [`TickOutcome::worker_threads`] and [`TickOutcome::elapsed_ns`]
    /// (see the type docs for the invariant).
    fn eq(&self, other: &Self) -> bool {
        self.outcomes == other.outcomes
            && self.total_ingested == other.total_ingested
            && self.total_queries == other.total_queries
            && self.sessions_touched == other.sessions_touched
            && self.weighted_sessions_touched == other.weighted_sessions_touched
            && self.sessions_queried == other.sessions_queried
            && self.sessions_created == other.sessions_created
            && self.sessions_removed == other.sessions_removed
            && self.sessions_snapshotted == other.sessions_snapshotted
            && self.sessions_restored == other.sessions_restored
            && self.failed_ops == other.failed_ops
    }
}

impl Eq for TickOutcome {}

impl TickOutcome {
    /// Build the outcome (aggregates included) from reassembled per-op
    /// results.
    pub(crate) fn collect(outcomes: Vec<(SessionId, OpResult)>, worker_threads: usize) -> Self {
        let total_ingested =
            outcomes.iter().map(|(_, r)| r.as_ref().map_or(0, |o| o.ingested())).sum();
        let total_queries =
            outcomes.iter().map(|(_, r)| r.as_ref().map_or(0, |o| o.queries())).sum();
        let (sessions_touched, weighted_sessions_touched) =
            distinct_sessions(outcomes.iter().filter_map(|(id, r)| {
                r.as_ref()
                    .ok()
                    .and_then(OpOutput::as_appended)
                    .map(|report| (id.as_str(), matches!(report, BatchReport::Weighted(_))))
            }));
        let (sessions_queried, _) = distinct_sessions(outcomes.iter().filter_map(|(id, r)| {
            r.as_ref().ok().and_then(OpOutput::as_answered).map(|_| (id.as_str(), false))
        }));
        let count = |want: &OpOutput| {
            outcomes.iter().filter(|(_, r)| r.as_ref().ok() == Some(want)).count()
        };
        TickOutcome {
            total_ingested,
            total_queries,
            sessions_touched,
            weighted_sessions_touched,
            sessions_queried,
            sessions_created: count(&OpOutput::Created),
            sessions_removed: count(&OpOutput::Removed),
            sessions_snapshotted: outcomes
                .iter()
                .filter(|(_, r)| matches!(r, Ok(OpOutput::Snapshotted(_))))
                .count(),
            sessions_restored: count(&OpOutput::Restored),
            failed_ops: outcomes.iter().filter(|(_, r)| r.is_err()).count(),
            worker_threads,
            elapsed_ns: 0,
            outcomes,
        }
    }

    /// Rebuild a whole outcome from per-op results plus the observational
    /// gauges — the aggregates are re-derived from the results, so they
    /// can never disagree with them.  This is how the service plane
    /// reconstitutes outcomes on the far side of a wire (and how the
    /// server slices one combined batch outcome back into per-request
    /// outcomes).
    pub fn from_parts(
        outcomes: Vec<(SessionId, OpResult)>,
        worker_threads: usize,
        elapsed_ns: u64,
    ) -> Self {
        let mut outcome = TickOutcome::collect(outcomes, worker_threads);
        outcome.elapsed_ns = elapsed_ns;
        outcome
    }

    /// The ops that landed, in tick order.
    pub fn outputs(&self) -> impl Iterator<Item = (&SessionId, &OpOutput)> {
        self.outcomes.iter().filter_map(|(id, r)| r.as_ref().ok().map(|o| (id, o)))
    }

    /// The ops that were rejected, in tick order.
    pub fn errors(&self) -> impl Iterator<Item = (&SessionId, &OpError)> {
        self.outcomes.iter().filter_map(|(id, r)| r.as_ref().err().map(|e| (id, e)))
    }

    /// True when every op of the tick landed.
    pub fn fully_applied(&self) -> bool {
        self.failed_ops == 0
    }
}

/// What one [`Engine::execute_read`](crate::Engine::execute_read) call
/// did: one typed result per query batch, in submission order.
///
/// Equality is structural, exactly like [`TickOutcome`] (see its type
/// docs for the invariant): [`ReadOutcome::worker_threads`] and
/// [`ReadOutcome::elapsed_ns`] are observational and excluded from `==`.
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    /// One result per input query batch, in the original tick order.
    pub outcomes: Vec<(SessionId, Result<QueryReport, OpError>)>,
    /// Total queries answered across the batches that landed.
    pub total_queries: usize,
    /// Number of distinct existing sessions that answered queries.
    pub sessions_queried: usize,
    /// Number of distinct session ids addressed that do not exist.
    pub sessions_missing: usize,
    /// Number of distinct worker threads that served shards (see
    /// [`TickOutcome::worker_threads`]; excluded from `==` like there).
    pub worker_threads: usize,
    /// Wall-clock time the read tick took, in nanoseconds.  0 when
    /// telemetry is disabled; excluded from `==` (see [`TickOutcome`]).
    pub elapsed_ns: u64,
}

impl PartialEq for ReadOutcome {
    /// Field-wise equality, excluding the observational
    /// [`ReadOutcome::worker_threads`] and [`ReadOutcome::elapsed_ns`].
    fn eq(&self, other: &Self) -> bool {
        self.outcomes == other.outcomes
            && self.total_queries == other.total_queries
            && self.sessions_queried == other.sessions_queried
            && self.sessions_missing == other.sessions_missing
    }
}

impl Eq for ReadOutcome {}

impl ReadOutcome {
    /// Build the outcome (aggregates included) from reassembled per-slot
    /// results.
    pub(crate) fn collect(
        outcomes: Vec<(SessionId, Result<QueryReport, OpError>)>,
        worker_threads: usize,
    ) -> Self {
        let total_queries =
            outcomes.iter().map(|(_, r)| r.as_ref().map_or(0, |q| q.answers.len())).sum();
        let (sessions_queried, _) = distinct_sessions(
            outcomes.iter().filter(|(_, r)| r.is_ok()).map(|(id, _)| (id.as_str(), false)),
        );
        let (sessions_missing, _) = distinct_sessions(
            outcomes.iter().filter(|(_, r)| r.is_err()).map(|(id, _)| (id.as_str(), false)),
        );
        ReadOutcome {
            total_queries,
            sessions_queried,
            sessions_missing,
            worker_threads,
            elapsed_ns: 0,
            outcomes,
        }
    }

    /// Rebuild a whole outcome from per-slot results plus the
    /// observational gauges (see [`TickOutcome::from_parts`]).
    pub fn from_parts(
        outcomes: Vec<(SessionId, Result<QueryReport, OpError>)>,
        worker_threads: usize,
        elapsed_ns: u64,
    ) -> Self {
        let mut outcome = ReadOutcome::collect(outcomes, worker_threads);
        outcome.elapsed_ns = elapsed_ns;
        outcome
    }

    /// The query batches that landed, in tick order.
    pub fn answers(&self) -> impl Iterator<Item = (&SessionId, &QueryReport)> {
        self.outcomes.iter().filter_map(|(id, r)| r.as_ref().ok().map(|q| (id, q)))
    }

    /// True when every addressed session existed and answered.
    pub fn fully_answered(&self) -> bool {
        self.sessions_missing == 0
    }
}

/// Distinct sessions among `(name, flag)` pairs: `(total, flagged)`
/// counts — the session-axis summaries of the tick outcomes.  `total`
/// dedups on the *name* alone and `flagged` counts names carrying the
/// flag on any of their pairs: a session whose kind flips within one
/// tick (remove + re-create, now expressible with explicit lifecycle
/// ops) is still one touched session.
fn distinct_sessions<'a>(pairs: impl Iterator<Item = (&'a str, bool)>) -> (usize, usize) {
    let mut names: Vec<(&str, bool)> = pairs.collect();
    names.sort_unstable();
    names.dedup_by(|next, kept| {
        if next.0 == kept.0 {
            kept.1 |= next.1;
            true
        } else {
            false
        }
    });
    let flagged = names.iter().filter(|&&(_, flag)| flag).count();
    (names.len(), flagged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_builder_preserves_submission_order() {
        let tick = Tick::new()
            .create("a", SessionKind::Unweighted)
            .append("a", vec![1, 2])
            .query("a", Query::RankOf(0))
            .append_weighted("w", vec![(1, 5)])
            .remove("a");
        assert_eq!(tick.len(), 5);
        assert!(!tick.is_empty());
        assert!(!tick.creates_missing());
        let kinds: Vec<&Op> = tick.slots().iter().map(|(_, op)| op).collect();
        assert!(matches!(kinds[0], Op::CreateSession { kind: SessionKind::Unweighted }));
        assert!(matches!(kinds[1], Op::Append(_)));
        assert!(matches!(kinds[2], Op::Query(_)));
        assert!(matches!(kinds[3], Op::AppendWeighted(_)));
        assert!(matches!(kinds[4], Op::RemoveSession));
        assert_eq!(tick.slots()[1].0.as_str(), "a");
        assert_eq!(tick.slots()[3].0.as_str(), "w");
    }

    #[test]
    fn ticks_collect_from_op_convertible_pairs() {
        let tick: Tick = vec![("a", vec![1u64, 2]), ("b", vec![3u64])].into_iter().collect();
        assert_eq!(tick.len(), 2);
        assert_eq!(tick.slots()[0].1, Op::Append(vec![1, 2]));
        assert!(!tick.creates_missing());
        let tick = tick.auto_create();
        assert!(tick.creates_missing());

        let mut tick = Tick::new();
        tick.extend(vec![("w", vec![(1u64, 2u64)])]);
        assert_eq!(tick.slots()[0].1, Op::AppendWeighted(vec![(1, 2)]));
    }

    #[test]
    fn read_write_ops_map_one_to_one() {
        use plis_workloads::streaming::{QuerySpec, ReadWriteOp};
        assert_eq!(Op::from(ReadWriteOp::Write(vec![7u64])), Op::Append(vec![7]));
        assert_eq!(
            Op::from(ReadWriteOp::Write(vec![(7u64, 3u64)])),
            Op::AppendWeighted(vec![(7, 3)])
        );
        let read: ReadWriteOp<u64> = ReadWriteOp::Read(vec![QuerySpec::TopK(2)]);
        assert_eq!(Op::from(read), Op::Query(Query::TopK(2).into()));
        assert_eq!(Op::from(TickBatch::Plain(vec![1])), Op::Append(vec![1]));
        assert_eq!(Op::from(QueryBatch::from(Query::Certificate)).queries(), 1);
    }

    #[test]
    fn op_counters_match_payloads() {
        assert_eq!(Op::Append(vec![1, 2, 3]).appends(), 3);
        assert_eq!(Op::AppendWeighted(vec![(1, 1)]).appends(), 1);
        assert_eq!(Op::Append(vec![1]).queries(), 0);
        assert_eq!(Op::from(Query::Certificate).queries(), 1);
        assert_eq!(Op::RemoveSession.appends(), 0);
        assert_eq!(Op::CreateSession { kind: SessionKind::Weighted }.queries(), 0);
    }

    #[test]
    fn op_errors_render_and_compare() {
        let mismatch = OpError::KindMismatch {
            session: SessionKind::Unweighted,
            batch: SessionKind::Weighted,
        };
        assert_eq!(mismatch.to_string(), "Weighted batch sent to Unweighted session");
        assert_eq!(OpError::UnknownSession.to_string(), "session does not exist");
        assert_eq!(
            OpError::UniverseOverflow { value: 9, universe: 8 }.to_string(),
            "value 9 outside the universe [0, 8)"
        );
        assert!(OpError::SessionExists { kind: SessionKind::Weighted }
            .to_string()
            .contains("already exists"));
        let err: &dyn std::error::Error = &mismatch;
        assert!(err.source().is_none());
    }

    #[test]
    fn read_ticks_collect_query_batches() {
        let tick: ReadTick =
            vec![("a", QueryBatch::from(Query::Certificate))].into_iter().collect();
        assert_eq!(tick.len(), 1);
        let tick = tick.query("b", vec![Query::RankOf(0), Query::CountAt(1)]);
        assert_eq!(tick.len(), 2);
        assert_eq!(tick.slots()[1].1.len(), 2);
        assert!(!tick.is_empty());
        assert!(ReadTick::new().is_empty());
    }
}
