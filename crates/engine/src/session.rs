//! A single streaming-LIS session: incremental LIS state over an
//! append-only stream of `u64` values, ingested batch by batch.
//!
//! # State
//!
//! The session keeps the *patience* invariant of Seq-BS: after ingesting a
//! prefix, `tails[r]` is the smallest value that ends an increasing
//! subsequence of length `r + 1` within the prefix.  `tails` is strictly
//! increasing, its length is the current LIS length, and it is the complete
//! summary of the prefix as far as future dp values are concerned.  The
//! session also records every element's *rank* (the length of the LIS ending
//! at it — its dp value).  A rank only depends on the elements before it, so
//! ranks never change once computed: streaming queries are exact, not
//! approximate.
//!
//! # Batch ingestion
//!
//! Small batches take the sequential path: each element binary-searches
//! `tails` (`O(log k)`) and overwrites one slot.
//!
//! Large batches take the **parallel merge path**, which is where the
//! paper's machinery earns its keep.  Observe that for dp purposes the
//! entire old prefix is interchangeable with the array `tails` itself: an
//! increasing subsequence of length `r` with all values `< x` exists in the
//! prefix iff `tails[r - 1] < x`, and `tails` is strictly increasing, so
//! within `tails` alone every `tails[j]` has dp exactly `j + 1`.  Hence
//! running Algorithm 1 — the parallel tournament-tree LIS ([`lis_ranks_u64`])
//! — over the concatenation `tails ++ batch` yields, at the batch positions,
//! exactly the dp values of the batch elements in the full stream.  The new
//! tails array is then `new_tails[r] = min(old_tails[r], min {b : b in batch,
//! dp(b) = r + 1})`, computed by a direct per-rank min fold over the batch
//! ranks.
//!
//! # Memory discipline
//!
//! Steady-state ingestion is **allocation-free**: every buffer the hot
//! paths need lives either on the session itself (`values`, `ranks`,
//! `tails`, the flat rank index replacing per-rank `Vec`s) or in a
//! per-session scratch arena of reusable staging buffers, all of which
//! grow to a high-water mark and are then only ever cleared, never freed.
//! [`StreamingLisOn::reserve`] pre-sizes everything for a known workload;
//! the `alloc_discipline` integration test pins the zero-allocation claim
//! with a counting global allocator.  See `DESIGN.md` ("Memory & allocation
//! discipline").
//!
//! # Queries
//!
//! Ranks are final on ingest, so the session can serve a live *query
//! plane* next to ingestion.  Alongside `values`/`ranks`/`tails` it
//! maintains the per-rank **frontiers** — the indices of the rank-`r`
//! elements, in arrival order (which is increasing-index order, because
//! ranks never change) — packed into one flat block pool:
//! `O(batch)` upkeep per ingest, and every read is output-sensitive —
//! [`StreamingLisOn::count_at_rank`] is `O(1)`,
//! [`StreamingLisOn::top_k`] is `O(k)`, and
//! [`StreamingLisOn::reconstruct_lis`] walks the frontiers directly
//! (`O(k log n)`, Appendix A) instead of re-grouping the rank array per
//! query.
//!
//! # Backends
//!
//! The session type [`StreamingLisOn`] is **generic over the
//! [`TailSet`] trait** of `plis-lis`: the value-domain mirror of the tails
//! array is pluggable, and the ingest paths speak only the trait surface —
//! there is no per-backend branching in the hot path.  [`Backend`] is the
//! runtime-facing factory over the built-in mirrors (enum dispatch through
//! [`AnyTailSet`], so the non-generic [`StreamingLis`] alias keeps the
//! original public API):
//!
//! * [`Backend::Veb`] — a [`plis_lis::VebTailSet`] over the session
//!   universe, kept in sync with the paper's parallel `batch_insert` /
//!   `batch_delete` (Theorems 5.1/5.2).  Value-domain queries
//!   ([`StreamingLisOn::tail_pred`], [`StreamingLisOn::tail_succ`]) cost
//!   `O(log log U)`.
//! * [`Backend::SortedVec`] — the stateless
//!   [`plis_lis::SortedVecTailSet`]: no mirror, probes binary-search
//!   `tails` — the right choice for small universes where the vEB constant
//!   factors dominate.
//! * [`Backend::Auto`] — tiny universes get the sorted-vec probe outright;
//!   larger ones get [`plis_lis::AutoTailSet`], which keeps or drops its
//!   vEB mirror **per parallel ingest** under the engine's cost model
//!   ([`crate::CostModel::tail_route`]): the mirror only accelerates
//!   value-domain probes, so it is maintained exactly while its predicted
//!   delta cost is small next to the merge work the batch already pays.
//!   The pick is recorded on [`IngestReport::tail_store`] and counted by
//!   telemetry.  Probes answer identically on both routes, so outcomes
//!   stay bit-identical with the fixed backends.

use crate::cost::{calibration, PathPolicy};
use crate::rankindex::RankIndex;
use plis_lis::lis_ranks_u64;
use plis_lis::tailset::{AnyTailSet, TailRoute, TailSet};
use plis_primitives::sorted_diff_into;

/// Universe size at or below which [`Backend::Auto`] resolves to
/// [`Backend::SortedVec`] outright: tiny universes mean short tail arrays,
/// and a binary search beats the vEB constant factors at any batch size,
/// so there is nothing left for the per-ingest cost model to route.
pub const AUTO_VEB_UNIVERSE_THRESHOLD: u64 = 1 << 12;

/// The historical fixed batch-size threshold at which ingestion switched
/// to the parallel merge path.  Sessions now default to cost-based
/// selection ([`PathPolicy::Cost`]); this constant remains as the
/// reference point for [`PathPolicy::Fixed`] configurations and for the
/// bench sweeps that reproduce the old behaviour.
pub const DEFAULT_PAR_THRESHOLD: usize = 512;

/// Which value-domain structure mirrors the tail set of a session — the
/// enum-dispatch factory over the open [`TailSet`] trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Decide from the universe size and then per ingest: sorted vector at
    /// or below [`AUTO_VEB_UNIVERSE_THRESHOLD`], the cost-routed
    /// [`plis_lis::AutoTailSet`] above it.
    Auto,
    /// Tails mirrored in a vEB tree, maintained with the paper's batch
    /// insert / delete.
    Veb,
    /// No mirror; value-domain queries binary-search the tails array.
    SortedVec,
}

impl Backend {
    /// Construct the tail-set store this backend selects for `universe` —
    /// the factory step; everything after it is generic over [`TailSet`].
    pub fn store(self, universe: u64) -> AnyTailSet {
        match self {
            Backend::Auto => {
                if universe > AUTO_VEB_UNIVERSE_THRESHOLD {
                    AnyTailSet::auto(universe)
                } else {
                    AnyTailSet::sorted_vec()
                }
            }
            Backend::Veb => AnyTailSet::veb(universe),
            Backend::SortedVec => AnyTailSet::sorted_vec(),
        }
    }
}

/// Which code path an ingest took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestPath {
    /// Per-element binary search + point updates.
    Sequential,
    /// Algorithm 1 over `tails ++ batch`, delta applied with vEB batch ops.
    ParallelMerge,
}

/// What one [`StreamingLisOn::ingest`] call did.
///
/// Equality ignores [`IngestReport::tail_store`]: the tail-set route is an
/// execution detail (fixed backends always report their own kind, and
/// [`Backend::Auto`] may legitimately route differently from a forced
/// backend), so comparing reports across backends — as the cross-backend
/// determinism tests do — must not see it.
#[derive(Debug, Clone, Copy)]
pub struct IngestReport {
    /// Number of elements appended by this call.
    pub ingested: usize,
    /// LIS length of the stream before the batch.
    pub lis_before: u32,
    /// LIS length of the stream after the batch.
    pub lis_after: u32,
    /// Code path taken.
    pub path: IngestPath,
    /// Values inserted into the tail set (new or replacement tails).
    pub tail_inserts: usize,
    /// Values removed from the tail set (tails displaced by better ones).
    pub tail_removals: usize,
    /// Which store served the tail-set delta of a parallel-merge ingest
    /// (`None` on the sequential path, which applies point updates).
    /// Excluded from equality; counted by the engine's telemetry plane.
    pub tail_store: Option<TailRoute>,
}

impl PartialEq for IngestReport {
    fn eq(&self, other: &Self) -> bool {
        self.ingested == other.ingested
            && self.lis_before == other.lis_before
            && self.lis_after == other.lis_after
            && self.path == other.path
            && self.tail_inserts == other.tail_inserts
            && self.tail_removals == other.tail_removals
    }
}

impl Eq for IngestReport {}

impl IngestReport {
    fn empty(k: u32, path: IngestPath) -> Self {
        IngestReport {
            ingested: 0,
            lis_before: k,
            lis_after: k,
            path,
            tail_inserts: 0,
            tail_removals: 0,
            tail_store: None,
        }
    }
}

/// Reusable staging buffers for the parallel merge path, owned per
/// session.  Every field is cleared (keeping capacity) at the start of the
/// ingest that uses it, so after a warm-up phase the hot path never
/// touches the allocator: buffers grow to the workload's high-water mark
/// and stay there.
#[derive(Debug, Clone, Default)]
struct ScratchArena {
    /// `tails ++ batch`, the Algorithm-1 input.
    merged: Vec<u64>,
    /// The rebuilt tails array, swapped with the session's on completion.
    new_tails: Vec<u64>,
    /// Per-rank minimum of the batch values (`u64::MAX` where the batch
    /// has no element of that rank).
    rank_min: Vec<u64>,
    /// Tails removed by this ingest (`sorted_diff_into` output).
    removed: Vec<u64>,
    /// Tails added by this ingest (`sorted_diff_into` output).
    added: Vec<u64>,
}

impl ScratchArena {
    fn reserve(&mut self, additional: usize) {
        self.merged.reserve(additional);
        self.new_tails.reserve(additional);
        self.rank_min.reserve(additional);
        self.removed.reserve(additional);
        self.added.reserve(additional);
    }

    /// Heap bytes currently held across all staging buffers (capacity).
    fn approx_bytes(&self) -> usize {
        (self.merged.capacity()
            + self.new_tails.capacity()
            + self.rank_min.capacity()
            + self.removed.capacity()
            + self.added.capacity())
            * std::mem::size_of::<u64>()
    }
}

/// Incremental LIS over an append-only stream, generic over the tail-set
/// mirror.  See the module docs for the algorithm; see [`crate::Engine`]
/// for multiplexing many sessions.  Most callers use the [`StreamingLis`]
/// alias, which dispatches over the built-in backends via [`Backend`].
#[derive(Debug, Clone)]
pub struct StreamingLisOn<S: TailSet> {
    /// Every ingested value, in arrival order.
    values: Vec<u64>,
    /// `ranks[i]` = dp value of `values[i]` (length of the LIS ending there).
    ranks: Vec<u32>,
    /// The patience tails: `tails[r]` = smallest value ending an increasing
    /// subsequence of length `r + 1`.  Strictly increasing.
    tails: Vec<u64>,
    /// Per-rank frontiers (rank `r + 1` ↦ indices in increasing order),
    /// packed into one flat block pool.  Ranks are final, so frontiers only
    /// grow at the end; this is exactly the grouping Appendix A walks.
    by_rank: RankIndex,
    /// Reusable staging buffers for the parallel merge path.
    scratch: ScratchArena,
    /// Value-domain mirror of `tails`.
    store: S,
    universe: u64,
    /// How ingest picks between the sequential and parallel merge path.
    policy: PathPolicy,
}

/// The engine-facing session type: [`StreamingLisOn`] over the built-in
/// enum-dispatch store, keeping the original non-generic public API.
pub type StreamingLis = StreamingLisOn<AnyTailSet>;

impl StreamingLis {
    /// Create a session over the value universe `[0, universe)` with the
    /// mirror selected by `backend`.
    ///
    /// # Panics
    /// Panics if `universe == 0`.
    pub fn new(universe: u64, backend: Backend) -> Self {
        StreamingLisOn::with_store(universe, backend.store(universe))
    }
}

impl<S: TailSet> StreamingLisOn<S> {
    /// Create a session over `[0, universe)` with an explicit tail-set
    /// store — the generic entry point new backends plug into.
    ///
    /// # Panics
    /// Panics if `universe == 0`.
    pub fn with_store(universe: u64, store: S) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        StreamingLisOn {
            values: Vec::new(),
            ranks: Vec::new(),
            tails: Vec::new(),
            by_rank: RankIndex::new(),
            scratch: ScratchArena::default(),
            store,
            universe,
            policy: PathPolicy::default(),
        }
    }

    /// Rebuild a session from snapshot state: the captured stream, ranks
    /// and tails, plus a freshly constructed store.  The rank index is
    /// replayed from the rank array (pushing in arrival order reproduces
    /// the exact frontier layout both ingest paths build), and the store
    /// mirrors the tails via its bulk [`TailSet::import`].  The caller
    /// (the snapshot codec) has already validated that `ranks`/`tails` are
    /// exactly what ingesting `values` produces; this constructor assumes
    /// it and does no checking of its own.
    pub(crate) fn from_restored(
        universe: u64,
        values: Vec<u64>,
        ranks: Vec<u32>,
        tails: Vec<u64>,
        mut store: S,
        policy: PathPolicy,
    ) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        let mut by_rank = RankIndex::new();
        by_rank.reserve(values.len(), tails.len());
        for (i, &r) in ranks.iter().enumerate() {
            by_rank.push((r - 1) as usize, i as u32);
        }
        store.import(&tails);
        StreamingLisOn {
            values,
            ranks,
            tails,
            by_rank,
            scratch: ScratchArena::default(),
            store,
            universe,
            policy,
        }
    }

    /// Append the current tails in increasing order to a caller-owned
    /// buffer, extracted through the tail-set mirror's bulk export
    /// ([`TailSet::export_into`]) — the vEB backend walks its structure
    /// directly instead of materialising a fresh vector per key.
    pub fn export_tails_into(&self, out: &mut Vec<u64>) {
        self.store.export_into(&self.tails, out);
    }

    /// Force a fixed batch-size threshold for the parallel merge path —
    /// shorthand for [`PathPolicy::Fixed`] (mainly for tests, benchmarks,
    /// and reproducing the historical behaviour).
    pub fn with_par_threshold(self, threshold: usize) -> Self {
        self.with_path_policy(PathPolicy::Fixed(threshold.max(1)))
    }

    /// Set how ingest decides between the sequential and the parallel
    /// merge path.  Both paths are exact, so the policy affects timing
    /// only — never ranks, tails, or LIS lengths.
    pub fn with_path_policy(mut self, policy: PathPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active ingest path policy.
    pub fn path_policy(&self) -> PathPolicy {
        self.policy
    }

    /// Pre-size every internal buffer for `additional` more elements, so a
    /// workload of known size never grows them mid-ingest.  Purely a
    /// capacity hint: state and outcomes are unaffected.
    pub fn reserve(&mut self, additional: usize) {
        self.values.reserve(additional);
        self.ranks.reserve(additional);
        self.tails.reserve(additional);
        self.by_rank.reserve(additional, additional);
        self.scratch.reserve(additional);
        self.store.reserve(additional);
    }

    /// Number of elements ingested so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True before the first element arrives.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current LIS length of the whole stream.
    pub fn lis_length(&self) -> u32 {
        self.tails.len() as u32
    }

    /// The universe this session was created over.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Which backend the session resolved to.
    pub fn backend_name(&self) -> &'static str {
        self.store.name()
    }

    /// Every ingested value, in arrival order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Per-element ranks (dp values).  `ranks()[i]` is the length of the
    /// longest increasing subsequence ending at element `i`; it is exact and
    /// final from the moment element `i` is ingested.
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// The rank of the `i`-th ingested element, if it exists.
    pub fn rank_of(&self, i: usize) -> Option<u32> {
        self.ranks.get(i).copied()
    }

    /// The current patience tails (strictly increasing; one entry per LIS
    /// length `1..=k`).
    pub fn tails(&self) -> &[u64] {
        &self.tails
    }

    /// Length of the longest increasing subsequence all of whose values are
    /// strictly below `x` — the rank a hypothetical next element `x` would
    /// receive, minus one.
    pub fn lis_length_below(&self, x: u64) -> u32 {
        self.tails.partition_point(|&t| t < x) as u32
    }

    /// Largest tail value strictly below `x`, if any.  `O(log log U)` on the
    /// vEB backend, `O(log k)` on the sorted-vec backend.
    pub fn tail_pred(&self, x: u64) -> Option<u64> {
        self.store.pred(&self.tails, x)
    }

    /// Smallest tail value at or above `x`, if any.  Probes at or beyond the
    /// universe return `None` (all tails are inside the universe).
    pub fn tail_succ(&self, x: u64) -> Option<u64> {
        self.store.succ(&self.tails, x)
    }

    /// Number of ingested elements whose rank (dp value) is exactly
    /// `rank`.  `O(1)`: the per-rank frontiers are maintained on ingest.
    /// Rank 0 and ranks above the current LIS length count zero elements.
    pub fn count_at_rank(&self, rank: u32) -> usize {
        match rank.checked_sub(1) {
            Some(r) => self.by_rank.count(r as usize),
            None => 0,
        }
    }

    /// The indices of every rank-`rank` element, in increasing order —
    /// one frontier of the streaming grouping Appendix A reconstructs
    /// from.  Output-sensitive; allocates only the returned vector.
    pub fn frontier(&self, rank: u32) -> Vec<usize> {
        match rank.checked_sub(1) {
            Some(r) => self.by_rank.iter_rank(r as usize).map(|i| i as usize).collect(),
            None => Vec::new(),
        }
    }

    /// The `k` best elements by dp value: `(index, rank)` pairs ordered by
    /// descending rank, ties by ascending index.  Output-sensitive
    /// (`O(k)`): walks the maintained frontiers from the top rank down.
    /// Returns fewer than `k` pairs when the stream is shorter than `k`.
    pub fn top_k(&self, k: usize) -> Vec<(usize, u64)> {
        let mut out = Vec::with_capacity(k.min(self.values.len()));
        for r in (0..self.by_rank.ranks()).rev() {
            for idx in self.by_rank.iter_rank(r) {
                if out.len() == k {
                    return out;
                }
                out.push((idx as usize, r as u64 + 1));
            }
        }
        out
    }

    /// Indices (in arrival order) of one longest increasing subsequence of
    /// the whole stream, recovered by walking the maintained per-rank
    /// frontiers as in Appendix A (`O(k log n)` per call; no per-query
    /// grouping pass).  Deterministic, and bit-identical to the offline
    /// [`plis_lis::lis_indices_from_ranks`] on the same prefix.
    pub fn reconstruct_lis(&self) -> Vec<usize> {
        let k = self.by_rank.ranks();
        if k == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(k);
        // Start from the first (leftmost) object of the top frontier and
        // walk down one rank at a time, taking the last valid predecessor
        // (Lemmas A.1/A.2: the last rank-(r-1) index before the current
        // one carries the smallest such value).
        let mut current = self.by_rank.first(k - 1).expect("top rank must be populated");
        out.push(current as usize);
        for r in (1..k).rev() {
            let chosen = self
                .by_rank
                .last_below(r - 1, current)
                .unwrap_or_else(|| panic!("a rank-{r} predecessor must exist before {current}"));
            debug_assert!(
                self.values[chosen as usize] < self.values[current as usize],
                "best decision must be smaller"
            );
            out.push(chosen as usize);
            current = chosen;
        }
        out.reverse();
        out
    }

    /// Append `batch` to the stream and update all LIS state.
    ///
    /// # Panics
    /// Panics if any value is outside the session universe, or if the
    /// stream would exceed `u32::MAX` elements (the rank index addresses
    /// elements with 32 bits).
    pub fn ingest(&mut self, batch: &[u64]) -> IngestReport {
        for &v in batch {
            assert!(v < self.universe, "value {v} outside session universe {}", self.universe);
        }
        assert!(
            self.values.len() + batch.len() <= u32::MAX as usize,
            "stream exceeds u32 element addressing"
        );
        if batch.is_empty() {
            return IngestReport::empty(self.lis_length(), IngestPath::Sequential);
        }
        match self.policy.choose(batch.len(), self.tails.len()) {
            IngestPath::ParallelMerge => self.ingest_parallel(batch),
            IngestPath::Sequential => self.ingest_sequential(batch),
        }
    }

    /// The sequential path: seeded patience, one element at a time.
    fn ingest_sequential(&mut self, batch: &[u64]) -> IngestReport {
        let lis_before = self.lis_length();
        let mut inserts = 0usize;
        let mut removals = 0usize;
        let base = self.values.len();
        for (offset, &x) in batch.iter().enumerate() {
            let pos = self.tails.partition_point(|&t| t < x);
            self.ranks.push(pos as u32 + 1);
            self.by_rank.push(pos, (base + offset) as u32);
            if pos == self.tails.len() {
                self.tails.push(x);
                self.store.insert(x);
                inserts += 1;
            } else if x < self.tails[pos] {
                let displaced = std::mem::replace(&mut self.tails[pos], x);
                self.store.delete(displaced);
                self.store.insert(x);
                inserts += 1;
                removals += 1;
            }
        }
        self.values.extend_from_slice(batch);
        IngestReport {
            ingested: batch.len(),
            lis_before,
            lis_after: self.lis_length(),
            path: IngestPath::Sequential,
            tail_inserts: inserts,
            tail_removals: removals,
            tail_store: None,
        }
    }

    /// The parallel merge path: Algorithm 1 over `tails ++ batch`, then a
    /// per-rank min rebuild of the tails and a batch delta on the
    /// cost-routed mirror.  All staging goes through the session's
    /// [`ScratchArena`] — steady state performs no heap allocation here
    /// beyond what [`lis_ranks_u64`] needs internally.
    fn ingest_parallel(&mut self, batch: &[u64]) -> IngestReport {
        let lis_before = self.lis_length();
        let k = self.tails.len();

        // Route the tail-set delta before touching the store: Auto keeps
        // or drops its vEB mirror per the cost model; fixed backends
        // never look at the hint, and must not trigger its computation —
        // cost calibration drives fixed-backend sessions from inside the
        // model's own one-time initialisation, where asking for the model
        // again would deadlock.
        let hint = self
            .store
            .wants_route_hint()
            .then(|| calibration::unweighted().tail_route(self.universe, k, batch.len()));
        let route = self.store.route_parallel(hint, &self.tails);

        self.scratch.merged.clear();
        self.scratch.merged.reserve(k + batch.len());
        self.scratch.merged.extend_from_slice(&self.tails);
        self.scratch.merged.extend_from_slice(batch);
        let (merged_ranks, new_k) = lis_ranks_u64(&self.scratch.merged);
        debug_assert!(
            merged_ranks[..k].iter().enumerate().all(|(j, &r)| r == j as u32 + 1),
            "strictly increasing tails must have dp == position + 1"
        );

        let batch_ranks = &merged_ranks[k..];
        let base = self.values.len();
        for (offset, &r) in batch_ranks.iter().enumerate() {
            self.by_rank.push((r - 1) as usize, (base + offset) as u32);
        }
        self.ranks.extend_from_slice(batch_ranks);
        self.values.extend_from_slice(batch);

        // Per-rank minimum of the batch: a direct min fold — no
        // counting-sort staging, no per-rank lists.
        let scratch = &mut self.scratch;
        scratch.rank_min.clear();
        scratch.rank_min.resize(new_k as usize, u64::MAX);
        for (offset, &r) in batch_ranks.iter().enumerate() {
            let slot = &mut scratch.rank_min[(r - 1) as usize];
            *slot = (*slot).min(batch[offset]);
        }
        scratch.new_tails.clear();
        {
            let tails = &self.tails;
            let rank_min = &scratch.rank_min;
            scratch.new_tails.extend((0..new_k as usize).map(|r| {
                let from_old = tails.get(r).copied().unwrap_or(u64::MAX);
                from_old.min(rank_min[r])
            }));
        }
        debug_assert!(
            scratch.new_tails.windows(2).all(|w| w[0] < w[1]),
            "tails must stay strictly increasing"
        );

        // Apply the tail-set delta through the paper's batch operations.
        // After the swap `scratch.new_tails` holds the *old* tails (and its
        // buffer is reused next ingest).
        std::mem::swap(&mut self.tails, &mut scratch.new_tails);
        sorted_diff_into(&scratch.new_tails, &self.tails, &mut scratch.removed, &mut scratch.added);
        self.store.batch_delete(&scratch.removed);
        self.store.batch_insert(&scratch.added);

        IngestReport {
            ingested: batch.len(),
            lis_before,
            lis_after: self.lis_length(),
            path: IngestPath::ParallelMerge,
            tail_inserts: self.scratch.added.len(),
            tail_removals: self.scratch.removed.len(),
            tail_store: Some(route),
        }
    }

    /// Rough heap footprint of the session in bytes: the value/rank/tail
    /// arrays, the flat rank index, the scratch arena, and the tail-set
    /// mirror ([`TailSet::approx_bytes`]).  `O(1)` plus the mirror walk —
    /// intended for occasional telemetry snapshots, not the hot path.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.values.capacity() * std::mem::size_of::<u64>()
            + self.ranks.capacity() * std::mem::size_of::<u32>()
            + self.tails.capacity() * std::mem::size_of::<u64>()
            + self.by_rank.approx_bytes()
            + self.scratch.approx_bytes()
            + self.store.approx_bytes()
    }

    /// Heap bytes held by the reusable staging buffers (the scratch arena
    /// plus the flat rank-index pool) — the telemetry plane's
    /// "arena high-water" accounting.
    pub fn arena_bytes(&self) -> usize {
        self.scratch.approx_bytes() + self.by_rank.approx_bytes()
    }

    /// Cross-check every invariant; used by the test suites.
    pub fn check_invariants(&self) {
        assert_eq!(self.values.len(), self.ranks.len());
        assert!(self.tails.windows(2).all(|w| w[0] < w[1]), "tails not strictly increasing");
        let k = self.ranks.iter().copied().max().unwrap_or(0);
        assert_eq!(k, self.lis_length(), "max rank must equal the tail count");
        assert_eq!(self.by_rank.ranks(), self.tails.len(), "one frontier per rank");
        let grouped: usize = (0..self.by_rank.ranks()).map(|r| self.by_rank.count(r)).sum();
        assert_eq!(grouped, self.ranks.len(), "frontiers must cover every element");
        for r in 0..self.by_rank.ranks() {
            let frontier: Vec<u32> = self.by_rank.iter_rank(r).collect();
            assert_eq!(frontier.len(), self.by_rank.count(r), "frontier {r} count drift");
            assert!(frontier.windows(2).all(|w| w[0] < w[1]), "frontier {r} not increasing");
            assert!(
                frontier.iter().all(|&i| self.ranks[i as usize] as usize == r + 1),
                "frontier {r} holds a wrong-rank element"
            );
        }
        self.store.check_invariants(&self.tails);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::xorshift;
    use plis_lis::tailset::VebTailSet;

    #[test]
    fn paper_example_one_batch() {
        let input = [52u64, 31, 45, 26, 61, 10, 39, 44];
        for backend in [Backend::Veb, Backend::SortedVec] {
            let mut s = StreamingLis::new(64, backend);
            let report = s.ingest(&input);
            assert_eq!(report.ingested, 8);
            assert_eq!(report.lis_after, 3);
            assert_eq!(s.ranks(), &[1, 1, 2, 1, 3, 1, 2, 3]);
            assert_eq!(s.lis_length(), 3);
            s.check_invariants();
        }
    }

    #[test]
    fn generic_session_over_a_concrete_store_matches_enum_dispatch() {
        // The trait layer is open: a session instantiated directly over
        // VebTailSet (no enum) behaves identically to the Backend factory.
        let mut state = 0xD15EA5Eu64;
        let input: Vec<u64> = (0..2_000).map(|_| xorshift(&mut state) % 8_192).collect();
        let mut direct =
            StreamingLisOn::with_store(8_192, VebTailSet::new(8_192)).with_par_threshold(100);
        let mut fronted = StreamingLis::new(8_192, Backend::Veb).with_par_threshold(100);
        for chunk in input.chunks(77) {
            direct.ingest(chunk);
            fronted.ingest(chunk);
        }
        assert_eq!(direct.ranks(), fronted.ranks());
        assert_eq!(direct.tails(), fronted.tails());
        assert_eq!(direct.backend_name(), fronted.backend_name());
        direct.check_invariants();
    }

    #[test]
    fn sequential_and_parallel_paths_agree() {
        let mut state = 0x5DEECE66Du64;
        let input: Vec<u64> = (0..3_000).map(|_| xorshift(&mut state) % 10_000).collect();
        let mut seq = StreamingLis::new(10_000, Backend::Veb).with_par_threshold(usize::MAX);
        let mut par = StreamingLis::new(10_000, Backend::Veb).with_par_threshold(1);
        for chunk in input.chunks(97) {
            let rs = seq.ingest(chunk);
            let rp = par.ingest(chunk);
            assert_eq!(rs.path, IngestPath::Sequential);
            assert_eq!(rp.path, IngestPath::ParallelMerge);
            assert_eq!(rs.lis_after, rp.lis_after);
            assert_eq!(rs.tail_store, None);
            assert_eq!(rp.tail_store, Some(TailRoute::Veb), "fixed veb reports itself");
        }
        assert_eq!(seq.ranks(), par.ranks());
        assert_eq!(seq.tails(), par.tails());
        seq.check_invariants();
        par.check_invariants();
    }

    /// Property: the final state is bit-identical across *any* forced
    /// threshold — every crossover a cost model could pick routes some
    /// batches differently, and none of it may show in ranks or tails.
    #[test]
    fn any_forced_threshold_yields_identical_state() {
        let mut state = 0xA5A5_1234u64;
        let input: Vec<u64> = (0..4_000).map(|_| xorshift(&mut state) % 20_000).collect();
        let reference = {
            let mut s = StreamingLis::new(20_000, Backend::Veb).with_par_threshold(usize::MAX);
            for chunk in input.chunks(113) {
                s.ingest(chunk);
            }
            s
        };
        for threshold in [1usize, 2, 7, 32, 64, 100, 113, 114, 512, 4_096] {
            let mut s = StreamingLis::new(20_000, Backend::Veb).with_par_threshold(threshold);
            for chunk in input.chunks(113) {
                s.ingest(chunk);
            }
            assert_eq!(s.ranks(), reference.ranks(), "threshold {threshold}");
            assert_eq!(s.tails(), reference.tails(), "threshold {threshold}");
            assert_eq!(s.lis_length(), reference.lis_length(), "threshold {threshold}");
            s.check_invariants();
        }
    }

    /// The cost policy (whatever calibration measured on this machine)
    /// must produce the same state as any fixed policy — calibration can
    /// change timing only, never outcomes.
    #[test]
    fn cost_policy_state_matches_fixed_policies() {
        let mut state = 0xDEAD_10CCu64;
        let input: Vec<u64> = (0..3_500).map(|_| xorshift(&mut state) % 9_000).collect();
        let mut cost = StreamingLis::new(9_000, Backend::Veb).with_path_policy(PathPolicy::Cost);
        let mut fixed = StreamingLis::new(9_000, Backend::Veb).with_par_threshold(256);
        assert_eq!(cost.path_policy(), PathPolicy::Cost);
        for chunk in input.chunks(301) {
            let rc = cost.ingest(chunk);
            let rf = fixed.ingest(chunk);
            // Reports agree on everything except possibly the path taken
            // and the resulting tail-churn accounting.
            assert_eq!(rc.ingested, rf.ingested);
            assert_eq!(rc.lis_before, rf.lis_before);
            assert_eq!(rc.lis_after, rf.lis_after);
        }
        assert_eq!(cost.ranks(), fixed.ranks());
        assert_eq!(cost.tails(), fixed.tails());
        cost.check_invariants();

        // And the cost decision is deterministic: replaying the same
        // stream takes the same path at every batch.
        let mut replay = StreamingLis::new(9_000, Backend::Veb).with_path_policy(PathPolicy::Cost);
        let mut paths = Vec::new();
        for chunk in input.chunks(301) {
            paths.push(replay.ingest(chunk).path);
        }
        let mut replay2 = StreamingLis::new(9_000, Backend::Veb).with_path_policy(PathPolicy::Cost);
        for (i, chunk) in input.chunks(301).enumerate() {
            assert_eq!(replay2.ingest(chunk).path, paths[i], "batch {i}");
        }
    }

    #[test]
    fn backends_agree_and_answer_value_queries() {
        let mut state = 0xBADC0FFEu64;
        let input: Vec<u64> = (0..2_000).map(|_| xorshift(&mut state) % 4_096).collect();
        let mut veb = StreamingLis::new(4_096, Backend::Veb);
        let mut vec = StreamingLis::new(4_096, Backend::SortedVec);
        for chunk in input.chunks(333) {
            veb.ingest(chunk);
            vec.ingest(chunk);
        }
        assert_eq!(veb.ranks(), vec.ranks());
        assert_eq!(veb.tails(), vec.tails());
        // Probes include the universe boundary and beyond: both backends
        // must agree there too, not just on in-universe keys.
        for probe in [0u64, 1, 17, 1_000, 4_095, 4_096, 10_000, u64::MAX] {
            assert_eq!(veb.tail_pred(probe), vec.tail_pred(probe), "pred {probe}");
            assert_eq!(veb.tail_succ(probe), vec.tail_succ(probe), "succ {probe}");
            assert_eq!(veb.lis_length_below(probe), vec.lis_length_below(probe));
        }
        veb.check_invariants();
        vec.check_invariants();
    }

    /// The cost-routed auto store must be invisible in outcomes: state and
    /// probe answers match both fixed backends on the same stream, whatever
    /// mix of routes the model picked along the way.
    #[test]
    fn auto_store_matches_fixed_backends_bit_for_bit() {
        let mut state = 0xFEED_F00Du64;
        let universe = 1u64 << 20;
        let input: Vec<u64> = (0..3_000).map(|_| xorshift(&mut state) % universe).collect();
        // Mixed batch sizes push the router both ways.
        let sizes = [40usize, 700, 64, 1_200, 96, 900];
        let mut auto = StreamingLis::new(universe, Backend::Auto).with_par_threshold(256);
        let mut veb = StreamingLis::new(universe, Backend::Veb).with_par_threshold(256);
        let mut vec = StreamingLis::new(universe, Backend::SortedVec).with_par_threshold(256);
        let mut rest = input.as_slice();
        let mut i = 0usize;
        while !rest.is_empty() {
            let take = sizes[i % sizes.len()].min(rest.len());
            let (chunk, tail) = rest.split_at(take);
            let ra = auto.ingest(chunk);
            let rv = veb.ingest(chunk);
            let rs = vec.ingest(chunk);
            // Reports compare equal across backends (equality ignores the
            // tail_store route by design).
            assert_eq!(ra, rv);
            assert_eq!(ra, rs);
            rest = tail;
            i += 1;
        }
        assert_eq!(auto.ranks(), veb.ranks());
        assert_eq!(auto.tails(), veb.tails());
        for probe in [0u64, 13, 4_096, universe - 1, universe, u64::MAX] {
            assert_eq!(auto.tail_pred(probe), veb.tail_pred(probe), "pred {probe}");
            assert_eq!(auto.tail_succ(probe), veb.tail_succ(probe), "succ {probe}");
        }
        auto.check_invariants();
    }

    #[test]
    fn auto_backend_resolves_by_universe() {
        let small = StreamingLis::new(256, Backend::Auto);
        assert_eq!(small.backend_name(), "sorted-vec");
        let large = StreamingLis::new(1 << 20, Backend::Auto);
        assert_eq!(large.backend_name(), "auto");
    }

    #[test]
    fn parallel_ingests_record_their_tail_route() {
        // Force the parallel path; the cost model decides the route from
        // (universe, tails, batch) — whatever it picks must be recorded.
        let mut s = StreamingLis::new(1 << 20, Backend::Auto).with_par_threshold(1);
        let batch: Vec<u64> = (0..512u64).map(|i| (i * 37) % (1 << 20)).collect();
        let r = s.ingest(&batch);
        assert_eq!(r.path, IngestPath::ParallelMerge);
        let route = r.tail_store.expect("parallel ingest must record a route");
        assert!(matches!(route, TailRoute::Veb | TailRoute::SortedVec));
        s.check_invariants();
    }

    #[test]
    fn reports_track_tail_churn() {
        let mut s = StreamingLis::new(1 << 10, Backend::Veb);
        let r = s.ingest(&[10, 20, 30]);
        assert_eq!(r.tail_inserts, 3);
        assert_eq!(r.tail_removals, 0);
        assert_eq!(r.lis_after, 3);
        // 5 displaces 10; 15 displaces 20.
        let r = s.ingest(&[5, 15]);
        assert_eq!(r.tail_inserts, 2);
        assert_eq!(r.tail_removals, 2);
        assert_eq!(r.lis_after, 3);
        assert_eq!(s.tails(), &[5, 15, 30]);
        s.check_invariants();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut s = StreamingLis::new(100, Backend::Auto);
        s.ingest(&[3, 1, 4]);
        let before = s.tails().to_vec();
        let r = s.ingest(&[]);
        assert_eq!(r.ingested, 0);
        assert_eq!(r.lis_before, r.lis_after);
        assert_eq!(s.tails(), before.as_slice());
    }

    #[test]
    fn reconstruction_is_valid_and_optimal() {
        let mut state = 0x1234_5678u64;
        let input: Vec<u64> = (0..1_500).map(|_| xorshift(&mut state) % 2_000).collect();
        let mut s = StreamingLis::new(2_000, Backend::Auto).with_par_threshold(200);
        for chunk in input.chunks(170) {
            s.ingest(chunk);
        }
        let lis = s.reconstruct_lis();
        assert_eq!(lis.len() as u32, s.lis_length());
        assert!(lis.windows(2).all(|w| w[0] < w[1]));
        assert!(lis.windows(2).all(|w| input[w[0]] < input[w[1]]));
        // The flat-index walk matches the shared offline reconstruction on
        // the same prefix (bit-identical, not merely both-valid).
        assert_eq!(lis, plis_lis::lis_indices_from_ranks(s.values(), s.ranks(), s.lis_length()));
    }

    #[test]
    fn reserve_changes_capacity_not_outcomes() {
        let mut state = 0xCAFE_D00Du64;
        let input: Vec<u64> = (0..2_000).map(|_| xorshift(&mut state) % 5_000).collect();
        let mut plain = StreamingLis::new(5_000, Backend::Veb).with_par_threshold(150);
        let mut sized = StreamingLis::new(5_000, Backend::Veb).with_par_threshold(150);
        sized.reserve(input.len());
        for chunk in input.chunks(123) {
            assert_eq!(plain.ingest(chunk), sized.ingest(chunk));
        }
        assert_eq!(plain.ranks(), sized.ranks());
        assert_eq!(plain.tails(), sized.tails());
        assert_eq!(plain.reconstruct_lis(), sized.reconstruct_lis());
        sized.check_invariants();
        assert!(sized.arena_bytes() > 0, "arena accounting must see the staging buffers");
    }

    #[test]
    #[should_panic(expected = "outside session universe")]
    fn out_of_universe_value_panics() {
        let mut s = StreamingLis::new(16, Backend::SortedVec);
        s.ingest(&[16]);
    }

    #[test]
    fn rank_queries_match_the_rank_array() {
        let mut state = 0xFACEB00Cu64;
        let input: Vec<u64> = (0..2_500).map(|_| xorshift(&mut state) % 3_000).collect();
        let mut s = StreamingLis::new(3_000, Backend::Auto).with_par_threshold(150);
        for chunk in input.chunks(130) {
            s.ingest(chunk);
        }
        // count_at_rank against a scan of the rank array.
        for rank in 0..=s.lis_length() + 2 {
            let want = s.ranks().iter().filter(|&&r| r == rank).count();
            assert_eq!(s.count_at_rank(rank), want, "rank {rank}");
        }
        // frontier() lists exactly the rank-r indices, in order.
        for rank in 1..=s.lis_length() {
            let want: Vec<usize> = (0..s.len()).filter(|&i| s.ranks()[i] == rank).collect();
            assert_eq!(s.frontier(rank), want, "frontier {rank}");
        }
        assert!(s.frontier(0).is_empty());
        // top_k: descending rank, ties by ascending index, prefix-closed.
        let full = s.top_k(s.len() + 10);
        assert_eq!(full.len(), s.len());
        assert!(full.windows(2).all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
        for &(idx, dp) in &full {
            assert_eq!(s.ranks()[idx] as u64, dp);
        }
        assert_eq!(s.top_k(7), full[..7]);
        assert_eq!(full[0].1, s.lis_length() as u64);
        s.check_invariants();
    }

    #[test]
    fn queries_on_an_empty_session_are_well_defined() {
        let s = StreamingLis::new(64, Backend::Auto);
        assert_eq!(s.count_at_rank(0), 0);
        assert_eq!(s.count_at_rank(1), 0);
        assert!(s.top_k(5).is_empty());
        assert!(s.reconstruct_lis().is_empty());
        assert!(s.frontier(1).is_empty());
        s.check_invariants();
    }
}
