//! A single streaming-LIS session: incremental LIS state over an
//! append-only stream of `u64` values, ingested batch by batch.
//!
//! # State
//!
//! The session keeps the *patience* invariant of Seq-BS: after ingesting a
//! prefix, `tails[r]` is the smallest value that ends an increasing
//! subsequence of length `r + 1` within the prefix.  `tails` is strictly
//! increasing, its length is the current LIS length, and it is the complete
//! summary of the prefix as far as future dp values are concerned.  The
//! session also records every element's *rank* (the length of the LIS ending
//! at it — its dp value).  A rank only depends on the elements before it, so
//! ranks never change once computed: streaming queries are exact, not
//! approximate.
//!
//! # Batch ingestion
//!
//! Small batches take the sequential path: each element binary-searches
//! `tails` (`O(log k)`) and overwrites one slot.
//!
//! Large batches take the **parallel merge path**, which is where the
//! paper's machinery earns its keep.  Observe that for dp purposes the
//! entire old prefix is interchangeable with the array `tails` itself: an
//! increasing subsequence of length `r` with all values `< x` exists in the
//! prefix iff `tails[r - 1] < x`, and `tails` is strictly increasing, so
//! within `tails` alone every `tails[j]` has dp exactly `j + 1`.  Hence
//! running Algorithm 1 — the parallel tournament-tree LIS ([`lis_ranks_u64`])
//! — over the concatenation `tails ++ batch` yields, at the batch positions,
//! exactly the dp values of the batch elements in the full stream.  The new
//! tails array is then `new_tails[r] = min(old_tails[r], min {b : b in batch,
//! dp(b) = r + 1})`, computed by grouping the batch by rank with the
//! counting-sort primitive ([`group_by_rank`]).
//!
//! # Queries
//!
//! Ranks are final on ingest, so the session can serve a live *query
//! plane* next to ingestion.  Alongside `values`/`ranks`/`tails` it
//! maintains the per-rank **frontiers** (`by_rank[r - 1]` = indices of the
//! rank-`r` elements, in arrival order — which is increasing-index order,
//! because ranks never change): `O(batch)` upkeep per ingest, and every
//! read is output-sensitive — [`StreamingLisOn::count_at_rank`] is `O(1)`,
//! [`StreamingLisOn::top_k`] is `O(k)`, and
//! [`StreamingLisOn::reconstruct_lis`] walks the frontiers directly
//! (`O(k log n)`, Appendix A) instead of re-grouping the rank array per
//! query.
//!
//! # Backends
//!
//! The session type [`StreamingLisOn`] is **generic over the
//! [`TailSet`] trait** of `plis-lis`: the value-domain mirror of the tails
//! array is pluggable, and the ingest paths speak only the trait surface —
//! there is no per-backend branching in the hot path.  [`Backend`] is the
//! runtime-facing factory over the built-in mirrors (enum dispatch through
//! [`AnyTailSet`], so the non-generic [`StreamingLis`] alias keeps the
//! original public API):
//!
//! * [`Backend::Veb`] — a [`plis_lis::VebTailSet`] over the session
//!   universe, kept in sync with the paper's parallel `batch_insert` /
//!   `batch_delete` (Theorems 5.1/5.2).  Value-domain queries
//!   ([`StreamingLisOn::tail_pred`], [`StreamingLisOn::tail_succ`]) cost
//!   `O(log log U)`.
//! * [`Backend::SortedVec`] — the stateless
//!   [`plis_lis::SortedVecTailSet`]: no mirror, probes binary-search
//!   `tails` — the right choice for small universes where the vEB constant
//!   factors dominate.
//! * [`Backend::Auto`] picks between them from the universe size.

use crate::cost::PathPolicy;
use plis_lis::lis_ranks_u64;
use plis_lis::tailset::{AnyTailSet, TailSet};
use plis_primitives::group_by_rank;

/// Universe size at or below which [`Backend::Auto`] resolves to
/// [`Backend::SortedVec`]: tiny universes mean short tail arrays, and a
/// binary search beats the vEB constant factors.
pub const AUTO_VEB_UNIVERSE_THRESHOLD: u64 = 1 << 12;

/// The historical fixed batch-size threshold at which ingestion switched
/// to the parallel merge path.  Sessions now default to cost-based
/// selection ([`PathPolicy::Cost`]); this constant remains as the
/// reference point for [`PathPolicy::Fixed`] configurations and for the
/// bench sweeps that reproduce the old behaviour.
pub const DEFAULT_PAR_THRESHOLD: usize = 512;

/// Which value-domain structure mirrors the tail set of a session — the
/// enum-dispatch factory over the open [`TailSet`] trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Decide from the universe size (vEB above
    /// [`AUTO_VEB_UNIVERSE_THRESHOLD`], sorted vector at or below it).
    Auto,
    /// Tails mirrored in a vEB tree, maintained with the paper's batch
    /// insert / delete.
    Veb,
    /// No mirror; value-domain queries binary-search the tails array.
    SortedVec,
}

impl Backend {
    fn resolve(self, universe: u64) -> Backend {
        match self {
            Backend::Auto => {
                if universe > AUTO_VEB_UNIVERSE_THRESHOLD {
                    Backend::Veb
                } else {
                    Backend::SortedVec
                }
            }
            other => other,
        }
    }

    /// Construct the tail-set store this backend selects for `universe` —
    /// the factory step; everything after it is generic over [`TailSet`].
    pub fn store(self, universe: u64) -> AnyTailSet {
        match self.resolve(universe) {
            Backend::Veb => AnyTailSet::veb(universe),
            Backend::SortedVec => AnyTailSet::sorted_vec(),
            Backend::Auto => unreachable!("resolve() never returns Auto"),
        }
    }
}

/// Which code path an ingest took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestPath {
    /// Per-element binary search + point updates.
    Sequential,
    /// Algorithm 1 over `tails ++ batch`, delta applied with vEB batch ops.
    ParallelMerge,
}

/// What one [`StreamingLisOn::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Number of elements appended by this call.
    pub ingested: usize,
    /// LIS length of the stream before the batch.
    pub lis_before: u32,
    /// LIS length of the stream after the batch.
    pub lis_after: u32,
    /// Code path taken.
    pub path: IngestPath,
    /// Values inserted into the tail set (new or replacement tails).
    pub tail_inserts: usize,
    /// Values removed from the tail set (tails displaced by better ones).
    pub tail_removals: usize,
}

impl IngestReport {
    fn empty(k: u32, path: IngestPath) -> Self {
        IngestReport {
            ingested: 0,
            lis_before: k,
            lis_after: k,
            path,
            tail_inserts: 0,
            tail_removals: 0,
        }
    }
}

/// Incremental LIS over an append-only stream, generic over the tail-set
/// mirror.  See the module docs for the algorithm; see [`crate::Engine`]
/// for multiplexing many sessions.  Most callers use the [`StreamingLis`]
/// alias, which dispatches over the built-in backends via [`Backend`].
#[derive(Debug, Clone)]
pub struct StreamingLisOn<S: TailSet> {
    /// Every ingested value, in arrival order.
    values: Vec<u64>,
    /// `ranks[i]` = dp value of `values[i]` (length of the LIS ending there).
    ranks: Vec<u32>,
    /// The patience tails: `tails[r]` = smallest value ending an increasing
    /// subsequence of length `r + 1`.  Strictly increasing.
    tails: Vec<u64>,
    /// Per-rank frontiers: `by_rank[r - 1]` = indices of the rank-`r`
    /// elements in increasing order.  Ranks are final, so lists only grow
    /// at the end; this is exactly the grouping Appendix A walks.
    by_rank: Vec<Vec<usize>>,
    /// Value-domain mirror of `tails`.
    store: S,
    universe: u64,
    /// How ingest picks between the sequential and parallel merge path.
    policy: PathPolicy,
}

/// The engine-facing session type: [`StreamingLisOn`] over the built-in
/// enum-dispatch store, keeping the original non-generic public API.
pub type StreamingLis = StreamingLisOn<AnyTailSet>;

impl StreamingLis {
    /// Create a session over the value universe `[0, universe)` with the
    /// mirror selected by `backend`.
    ///
    /// # Panics
    /// Panics if `universe == 0`.
    pub fn new(universe: u64, backend: Backend) -> Self {
        StreamingLisOn::with_store(universe, backend.store(universe))
    }
}

impl<S: TailSet> StreamingLisOn<S> {
    /// Create a session over `[0, universe)` with an explicit tail-set
    /// store — the generic entry point new backends plug into.
    ///
    /// # Panics
    /// Panics if `universe == 0`.
    pub fn with_store(universe: u64, store: S) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        StreamingLisOn {
            values: Vec::new(),
            ranks: Vec::new(),
            tails: Vec::new(),
            by_rank: Vec::new(),
            store,
            universe,
            policy: PathPolicy::default(),
        }
    }

    /// Force a fixed batch-size threshold for the parallel merge path —
    /// shorthand for [`PathPolicy::Fixed`] (mainly for tests, benchmarks,
    /// and reproducing the historical behaviour).
    pub fn with_par_threshold(self, threshold: usize) -> Self {
        self.with_path_policy(PathPolicy::Fixed(threshold.max(1)))
    }

    /// Set how ingest decides between the sequential and the parallel
    /// merge path.  Both paths are exact, so the policy affects timing
    /// only — never ranks, tails, or LIS lengths.
    pub fn with_path_policy(mut self, policy: PathPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active ingest path policy.
    pub fn path_policy(&self) -> PathPolicy {
        self.policy
    }

    /// Number of elements ingested so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True before the first element arrives.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current LIS length of the whole stream.
    pub fn lis_length(&self) -> u32 {
        self.tails.len() as u32
    }

    /// The universe this session was created over.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Which backend the session resolved to.
    pub fn backend_name(&self) -> &'static str {
        self.store.name()
    }

    /// Every ingested value, in arrival order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Per-element ranks (dp values).  `ranks()[i]` is the length of the
    /// longest increasing subsequence ending at element `i`; it is exact and
    /// final from the moment element `i` is ingested.
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// The rank of the `i`-th ingested element, if it exists.
    pub fn rank_of(&self, i: usize) -> Option<u32> {
        self.ranks.get(i).copied()
    }

    /// The current patience tails (strictly increasing; one entry per LIS
    /// length `1..=k`).
    pub fn tails(&self) -> &[u64] {
        &self.tails
    }

    /// Length of the longest increasing subsequence all of whose values are
    /// strictly below `x` — the rank a hypothetical next element `x` would
    /// receive, minus one.
    pub fn lis_length_below(&self, x: u64) -> u32 {
        self.tails.partition_point(|&t| t < x) as u32
    }

    /// Largest tail value strictly below `x`, if any.  `O(log log U)` on the
    /// vEB backend, `O(log k)` on the sorted-vec backend.
    pub fn tail_pred(&self, x: u64) -> Option<u64> {
        self.store.pred(&self.tails, x)
    }

    /// Smallest tail value at or above `x`, if any.  Probes at or beyond the
    /// universe return `None` (all tails are inside the universe).
    pub fn tail_succ(&self, x: u64) -> Option<u64> {
        self.store.succ(&self.tails, x)
    }

    /// Number of ingested elements whose rank (dp value) is exactly
    /// `rank`.  `O(1)`: the per-rank frontiers are maintained on ingest.
    /// Rank 0 and ranks above the current LIS length count zero elements.
    pub fn count_at_rank(&self, rank: u32) -> usize {
        match rank.checked_sub(1) {
            Some(r) => self.by_rank.get(r as usize).map_or(0, Vec::len),
            None => 0,
        }
    }

    /// The per-rank frontiers themselves: `frontiers()[r - 1]` lists the
    /// indices of every rank-`r` element, in increasing order — the
    /// streaming form of the grouping Appendix A reconstructs from.
    pub fn frontiers(&self) -> &[Vec<usize>] {
        &self.by_rank
    }

    /// The `k` best elements by dp value: `(index, rank)` pairs ordered by
    /// descending rank, ties by ascending index.  Output-sensitive
    /// (`O(k)`): walks the maintained frontiers from the top rank down.
    /// Returns fewer than `k` pairs when the stream is shorter than `k`.
    pub fn top_k(&self, k: usize) -> Vec<(usize, u64)> {
        let mut out = Vec::with_capacity(k.min(self.values.len()));
        for (r, frontier) in self.by_rank.iter().enumerate().rev() {
            for &idx in frontier {
                if out.len() == k {
                    return out;
                }
                out.push((idx, r as u64 + 1));
            }
        }
        out
    }

    /// Indices (in arrival order) of one longest increasing subsequence of
    /// the whole stream, recovered by walking the maintained per-rank
    /// frontiers as in Appendix A (`O(k log n)` per call; no per-query
    /// grouping pass).  Deterministic, and bit-identical to the offline
    /// [`plis_lis::lis_indices_from_ranks`] on the same prefix.
    pub fn reconstruct_lis(&self) -> Vec<usize> {
        plis_lis::lis_indices_from_frontiers(&self.values, &self.by_rank)
    }

    /// Append `batch` to the stream and update all LIS state.
    ///
    /// # Panics
    /// Panics if any value is outside the session universe.
    pub fn ingest(&mut self, batch: &[u64]) -> IngestReport {
        for &v in batch {
            assert!(v < self.universe, "value {v} outside session universe {}", self.universe);
        }
        if batch.is_empty() {
            return IngestReport::empty(self.lis_length(), IngestPath::Sequential);
        }
        match self.policy.choose(batch.len(), self.tails.len()) {
            IngestPath::ParallelMerge => self.ingest_parallel(batch),
            IngestPath::Sequential => self.ingest_sequential(batch),
        }
    }

    /// The sequential path: seeded patience, one element at a time.
    fn ingest_sequential(&mut self, batch: &[u64]) -> IngestReport {
        let lis_before = self.lis_length();
        let mut inserts = 0usize;
        let mut removals = 0usize;
        let base = self.values.len();
        for (offset, &x) in batch.iter().enumerate() {
            let pos = self.tails.partition_point(|&t| t < x);
            self.ranks.push(pos as u32 + 1);
            if pos == self.by_rank.len() {
                self.by_rank.push(Vec::new());
            }
            self.by_rank[pos].push(base + offset);
            if pos == self.tails.len() {
                self.tails.push(x);
                self.store.insert(x);
                inserts += 1;
            } else if x < self.tails[pos] {
                let displaced = std::mem::replace(&mut self.tails[pos], x);
                self.store.delete(displaced);
                self.store.insert(x);
                inserts += 1;
                removals += 1;
            }
        }
        self.values.extend_from_slice(batch);
        IngestReport {
            ingested: batch.len(),
            lis_before,
            lis_after: self.lis_length(),
            path: IngestPath::Sequential,
            tail_inserts: inserts,
            tail_removals: removals,
        }
    }

    /// The parallel merge path: Algorithm 1 over `tails ++ batch`, then a
    /// grouped rebuild of the tails and a batch delta on the mirror.
    fn ingest_parallel(&mut self, batch: &[u64]) -> IngestReport {
        let lis_before = self.lis_length();
        let k = self.tails.len();

        let mut merged = Vec::with_capacity(k + batch.len());
        merged.extend_from_slice(&self.tails);
        merged.extend_from_slice(batch);
        let (merged_ranks, new_k) = lis_ranks_u64(&merged);
        debug_assert!(
            merged_ranks[..k].iter().enumerate().all(|(j, &r)| r == j as u32 + 1),
            "strictly increasing tails must have dp == position + 1"
        );

        let batch_ranks = &merged_ranks[k..];
        let base = self.values.len();
        self.by_rank.resize_with(new_k as usize, Vec::new);
        for (offset, &r) in batch_ranks.iter().enumerate() {
            self.by_rank[(r - 1) as usize].push(base + offset);
        }
        self.ranks.extend_from_slice(batch_ranks);
        self.values.extend_from_slice(batch);

        // Group the batch by rank (counting sort) and take the per-rank min.
        let rank_keys: Vec<usize> = batch_ranks.iter().map(|&r| (r - 1) as usize).collect();
        let groups = group_by_rank(&rank_keys, new_k as usize);
        let old_tails = std::mem::take(&mut self.tails);
        let new_tails: Vec<u64> = (0..new_k as usize)
            .map(|r| {
                let from_old = old_tails.get(r).copied().unwrap_or(u64::MAX);
                let from_batch = groups[r].iter().map(|&i| batch[i]).min().unwrap_or(u64::MAX);
                from_old.min(from_batch)
            })
            .collect();
        debug_assert!(
            new_tails.windows(2).all(|w| w[0] < w[1]),
            "tails must stay strictly increasing"
        );

        // Apply the tail-set delta through the paper's batch operations.
        let (removed, added) = sorted_diff(&old_tails, &new_tails);
        self.store.batch_delete(&removed);
        self.store.batch_insert(&added);
        self.tails = new_tails;

        IngestReport {
            ingested: batch.len(),
            lis_before,
            lis_after: self.lis_length(),
            path: IngestPath::ParallelMerge,
            tail_inserts: added.len(),
            tail_removals: removed.len(),
        }
    }

    /// Rough heap footprint of the session in bytes: the value/rank/tail
    /// arrays, the per-rank frontiers, and the tail-set mirror
    /// ([`TailSet::approx_bytes`]).  `O(k)` plus the mirror walk —
    /// intended for occasional telemetry snapshots, not the hot path.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.values.capacity() * std::mem::size_of::<u64>()
            + self.ranks.capacity() * std::mem::size_of::<u32>()
            + self.tails.capacity() * std::mem::size_of::<u64>()
            + self.by_rank.capacity() * std::mem::size_of::<Vec<usize>>()
            + self
                .by_rank
                .iter()
                .map(|f| f.capacity() * std::mem::size_of::<usize>())
                .sum::<usize>()
            + self.store.approx_bytes()
    }

    /// Cross-check every invariant; used by the test suites.
    pub fn check_invariants(&self) {
        assert_eq!(self.values.len(), self.ranks.len());
        assert!(self.tails.windows(2).all(|w| w[0] < w[1]), "tails not strictly increasing");
        let k = self.ranks.iter().copied().max().unwrap_or(0);
        assert_eq!(k, self.lis_length(), "max rank must equal the tail count");
        assert_eq!(self.by_rank.len(), self.tails.len(), "one frontier per rank");
        let grouped: usize = self.by_rank.iter().map(Vec::len).sum();
        assert_eq!(grouped, self.ranks.len(), "frontiers must cover every element");
        for (r, frontier) in self.by_rank.iter().enumerate() {
            assert!(frontier.windows(2).all(|w| w[0] < w[1]), "frontier {r} not increasing");
            assert!(
                frontier.iter().all(|&i| self.ranks[i] as usize == r + 1),
                "frontier {r} holds a wrong-rank element"
            );
        }
        self.store.check_invariants(&self.tails);
    }
}

/// Symmetric difference of two strictly increasing slices:
/// `(only_in_a, only_in_b)`, both sorted.
fn sorted_diff(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut only_a = Vec::new();
    let mut only_b = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                only_a.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                only_b.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    only_a.extend_from_slice(&a[i..]);
    only_b.extend_from_slice(&b[j..]);
    (only_a, only_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plis_lis::tailset::VebTailSet;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn paper_example_one_batch() {
        let input = [52u64, 31, 45, 26, 61, 10, 39, 44];
        for backend in [Backend::Veb, Backend::SortedVec] {
            let mut s = StreamingLis::new(64, backend);
            let report = s.ingest(&input);
            assert_eq!(report.ingested, 8);
            assert_eq!(report.lis_after, 3);
            assert_eq!(s.ranks(), &[1, 1, 2, 1, 3, 1, 2, 3]);
            assert_eq!(s.lis_length(), 3);
            s.check_invariants();
        }
    }

    #[test]
    fn generic_session_over_a_concrete_store_matches_enum_dispatch() {
        // The trait layer is open: a session instantiated directly over
        // VebTailSet (no enum) behaves identically to the Backend factory.
        let mut state = 0xD15EA5Eu64;
        let input: Vec<u64> = (0..2_000).map(|_| xorshift(&mut state) % 8_192).collect();
        let mut direct =
            StreamingLisOn::with_store(8_192, VebTailSet::new(8_192)).with_par_threshold(100);
        let mut fronted = StreamingLis::new(8_192, Backend::Veb).with_par_threshold(100);
        for chunk in input.chunks(77) {
            direct.ingest(chunk);
            fronted.ingest(chunk);
        }
        assert_eq!(direct.ranks(), fronted.ranks());
        assert_eq!(direct.tails(), fronted.tails());
        assert_eq!(direct.backend_name(), fronted.backend_name());
        direct.check_invariants();
    }

    #[test]
    fn sequential_and_parallel_paths_agree() {
        let mut state = 0x5DEECE66Du64;
        let input: Vec<u64> = (0..3_000).map(|_| xorshift(&mut state) % 10_000).collect();
        let mut seq = StreamingLis::new(10_000, Backend::Veb).with_par_threshold(usize::MAX);
        let mut par = StreamingLis::new(10_000, Backend::Veb).with_par_threshold(1);
        for chunk in input.chunks(97) {
            let rs = seq.ingest(chunk);
            let rp = par.ingest(chunk);
            assert_eq!(rs.path, IngestPath::Sequential);
            assert_eq!(rp.path, IngestPath::ParallelMerge);
            assert_eq!(rs.lis_after, rp.lis_after);
        }
        assert_eq!(seq.ranks(), par.ranks());
        assert_eq!(seq.tails(), par.tails());
        seq.check_invariants();
        par.check_invariants();
    }

    /// Property: the final state is bit-identical across *any* forced
    /// threshold — every crossover a cost model could pick routes some
    /// batches differently, and none of it may show in ranks or tails.
    #[test]
    fn any_forced_threshold_yields_identical_state() {
        let mut state = 0xA5A5_1234u64;
        let input: Vec<u64> = (0..4_000).map(|_| xorshift(&mut state) % 20_000).collect();
        let reference = {
            let mut s = StreamingLis::new(20_000, Backend::Veb).with_par_threshold(usize::MAX);
            for chunk in input.chunks(113) {
                s.ingest(chunk);
            }
            s
        };
        for threshold in [1usize, 2, 7, 32, 64, 100, 113, 114, 512, 4_096] {
            let mut s = StreamingLis::new(20_000, Backend::Veb).with_par_threshold(threshold);
            for chunk in input.chunks(113) {
                s.ingest(chunk);
            }
            assert_eq!(s.ranks(), reference.ranks(), "threshold {threshold}");
            assert_eq!(s.tails(), reference.tails(), "threshold {threshold}");
            assert_eq!(s.lis_length(), reference.lis_length(), "threshold {threshold}");
            s.check_invariants();
        }
    }

    /// The cost policy (whatever calibration measured on this machine)
    /// must produce the same state as any fixed policy — calibration can
    /// change timing only, never outcomes.
    #[test]
    fn cost_policy_state_matches_fixed_policies() {
        let mut state = 0xDEAD_10CCu64;
        let input: Vec<u64> = (0..3_500).map(|_| xorshift(&mut state) % 9_000).collect();
        let mut cost = StreamingLis::new(9_000, Backend::Veb).with_path_policy(PathPolicy::Cost);
        let mut fixed = StreamingLis::new(9_000, Backend::Veb).with_par_threshold(256);
        assert_eq!(cost.path_policy(), PathPolicy::Cost);
        for chunk in input.chunks(301) {
            let rc = cost.ingest(chunk);
            let rf = fixed.ingest(chunk);
            // Reports agree on everything except possibly the path taken
            // and the resulting tail-churn accounting.
            assert_eq!(rc.ingested, rf.ingested);
            assert_eq!(rc.lis_before, rf.lis_before);
            assert_eq!(rc.lis_after, rf.lis_after);
        }
        assert_eq!(cost.ranks(), fixed.ranks());
        assert_eq!(cost.tails(), fixed.tails());
        cost.check_invariants();

        // And the cost decision is deterministic: replaying the same
        // stream takes the same path at every batch.
        let mut replay = StreamingLis::new(9_000, Backend::Veb).with_path_policy(PathPolicy::Cost);
        let mut paths = Vec::new();
        for chunk in input.chunks(301) {
            paths.push(replay.ingest(chunk).path);
        }
        let mut replay2 = StreamingLis::new(9_000, Backend::Veb).with_path_policy(PathPolicy::Cost);
        for (i, chunk) in input.chunks(301).enumerate() {
            assert_eq!(replay2.ingest(chunk).path, paths[i], "batch {i}");
        }
    }

    #[test]
    fn backends_agree_and_answer_value_queries() {
        let mut state = 0xBADC0FFEu64;
        let input: Vec<u64> = (0..2_000).map(|_| xorshift(&mut state) % 4_096).collect();
        let mut veb = StreamingLis::new(4_096, Backend::Veb);
        let mut vec = StreamingLis::new(4_096, Backend::SortedVec);
        for chunk in input.chunks(333) {
            veb.ingest(chunk);
            vec.ingest(chunk);
        }
        assert_eq!(veb.ranks(), vec.ranks());
        assert_eq!(veb.tails(), vec.tails());
        // Probes include the universe boundary and beyond: both backends
        // must agree there too, not just on in-universe keys.
        for probe in [0u64, 1, 17, 1_000, 4_095, 4_096, 10_000, u64::MAX] {
            assert_eq!(veb.tail_pred(probe), vec.tail_pred(probe), "pred {probe}");
            assert_eq!(veb.tail_succ(probe), vec.tail_succ(probe), "succ {probe}");
            assert_eq!(veb.lis_length_below(probe), vec.lis_length_below(probe));
        }
        veb.check_invariants();
        vec.check_invariants();
    }

    #[test]
    fn auto_backend_resolves_by_universe() {
        let small = StreamingLis::new(256, Backend::Auto);
        assert_eq!(small.backend_name(), "sorted-vec");
        let large = StreamingLis::new(1 << 20, Backend::Auto);
        assert_eq!(large.backend_name(), "veb");
    }

    #[test]
    fn reports_track_tail_churn() {
        let mut s = StreamingLis::new(1 << 10, Backend::Veb);
        let r = s.ingest(&[10, 20, 30]);
        assert_eq!(r.tail_inserts, 3);
        assert_eq!(r.tail_removals, 0);
        assert_eq!(r.lis_after, 3);
        // 5 displaces 10; 15 displaces 20.
        let r = s.ingest(&[5, 15]);
        assert_eq!(r.tail_inserts, 2);
        assert_eq!(r.tail_removals, 2);
        assert_eq!(r.lis_after, 3);
        assert_eq!(s.tails(), &[5, 15, 30]);
        s.check_invariants();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut s = StreamingLis::new(100, Backend::Auto);
        s.ingest(&[3, 1, 4]);
        let before = s.tails().to_vec();
        let r = s.ingest(&[]);
        assert_eq!(r.ingested, 0);
        assert_eq!(r.lis_before, r.lis_after);
        assert_eq!(s.tails(), before.as_slice());
    }

    #[test]
    fn reconstruction_is_valid_and_optimal() {
        let mut state = 0x1234_5678u64;
        let input: Vec<u64> = (0..1_500).map(|_| xorshift(&mut state) % 2_000).collect();
        let mut s = StreamingLis::new(2_000, Backend::Auto).with_par_threshold(200);
        for chunk in input.chunks(170) {
            s.ingest(chunk);
        }
        let lis = s.reconstruct_lis();
        assert_eq!(lis.len() as u32, s.lis_length());
        assert!(lis.windows(2).all(|w| w[0] < w[1]));
        assert!(lis.windows(2).all(|w| input[w[0]] < input[w[1]]));
    }

    #[test]
    #[should_panic(expected = "outside session universe")]
    fn out_of_universe_value_panics() {
        let mut s = StreamingLis::new(16, Backend::SortedVec);
        s.ingest(&[16]);
    }

    #[test]
    fn rank_queries_match_the_rank_array() {
        let mut state = 0xFACEB00Cu64;
        let input: Vec<u64> = (0..2_500).map(|_| xorshift(&mut state) % 3_000).collect();
        let mut s = StreamingLis::new(3_000, Backend::Auto).with_par_threshold(150);
        for chunk in input.chunks(130) {
            s.ingest(chunk);
        }
        // count_at_rank against a scan of the rank array.
        for rank in 0..=s.lis_length() + 2 {
            let want = s.ranks().iter().filter(|&&r| r == rank).count();
            assert_eq!(s.count_at_rank(rank), want, "rank {rank}");
        }
        // top_k: descending rank, ties by ascending index, prefix-closed.
        let full = s.top_k(s.len() + 10);
        assert_eq!(full.len(), s.len());
        assert!(full.windows(2).all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
        for &(idx, dp) in &full {
            assert_eq!(s.ranks()[idx] as u64, dp);
        }
        assert_eq!(s.top_k(7), full[..7]);
        assert_eq!(full[0].1, s.lis_length() as u64);
        s.check_invariants();
    }

    #[test]
    fn queries_on_an_empty_session_are_well_defined() {
        let s = StreamingLis::new(64, Backend::Auto);
        assert_eq!(s.count_at_rank(0), 0);
        assert_eq!(s.count_at_rank(1), 0);
        assert!(s.top_k(5).is_empty());
        assert!(s.reconstruct_lis().is_empty());
        assert!(s.frontiers().is_empty());
        s.check_invariants();
    }

    #[test]
    fn sorted_diff_basics() {
        assert_eq!(sorted_diff(&[1, 3, 5, 7], &[3, 4, 7, 9]), (vec![1, 5], vec![4, 9]));
        assert_eq!(sorted_diff(&[], &[1]), (vec![], vec![1]));
        assert_eq!(sorted_diff(&[2], &[]), (vec![2], vec![]));
        assert_eq!(sorted_diff(&[1, 2], &[1, 2]), (vec![], vec![]));
    }
}
