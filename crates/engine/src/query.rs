//! The engine's **query plane**: typed reads against live sessions,
//! batched and executed shard-parallel exactly like ingest ticks.
//!
//! The write plane (PR 1–3) ships data *into* sessions as
//! `(SessionId, TickBatch)` pairs; this module is its read mirror.  A
//! [`Query`] is one read, a [`QueryBatch`] is the reads addressed to one
//! session (the analogue of [`TickBatch`]), and
//! [`Engine::query_tick`](crate::Engine::query_tick) partitions a whole
//! tick of query batches by shard and answers them through the same
//! join-splitting `par_iter` surface — one piece per shard — that ingest
//! uses.  Reads take `&Engine`, mutate nothing, and never create sessions.
//!
//! Mixed read/write traffic goes through
//! [`Engine::ingest_query_tick`](crate::Engine::ingest_query_tick): a tick
//! of [`TickOp`]s, where each slot either ingests a batch or answers a
//! query batch.  Because a session lives in exactly one shard and each
//! shard replays its slice of the tick sequentially, a query slot observes
//! every write slot that precedes it in the tick — the natural
//! read-your-writes ordering.
//!
//! Every query has one semantics over the session-kind axis: the *dp
//! value* of an element is its rank in an unweighted session and its
//! Algorithm-2 score in a weighted one, so the same [`Query`] values work
//! against both kinds and answers carry dp values as `u64` either way.
//! Certificate answers are full reconstructions
//! ([`StreamingLisOn::reconstruct_lis`] /
//! [`WeightedStreamingLis::reconstruct_wlis`]) and are deterministic:
//! bit-identical to the offline Appendix-A walk on the same prefix, which
//! is what `crates/engine/tests/query_oracle.rs` asserts.
//!
//! [`StreamingLisOn::reconstruct_lis`]: crate::StreamingLisOn::reconstruct_lis
//! [`WeightedStreamingLis::reconstruct_wlis`]: crate::WeightedStreamingLis::reconstruct_wlis

use crate::engine::{SessionKind, SessionState, TickBatch};

/// One read against a live session.  The *dp value* a query speaks of is
/// the element's rank (unweighted sessions) or its Algorithm-2 score
/// (weighted sessions), always carried as `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// The dp value of the `i`-th ingested element (`None` when fewer
    /// than `i + 1` elements have arrived).
    RankOf(usize),
    /// How many ingested elements have dp value exactly this.
    CountAt(u64),
    /// The `k` best elements by dp value: `(index, dp)` pairs ordered by
    /// descending dp, ties by ascending index.
    TopK(usize),
    /// A full certificate: one optimal increasing subsequence (LIS or
    /// maximum-weight), reconstructed from the maintained ranks/scores.
    Certificate,
}

/// The reads addressed to one session within a query tick — the read
/// analogue of [`TickBatch`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryBatch(Vec<Query>);

impl QueryBatch {
    /// A batch over the given queries.
    pub fn new(queries: Vec<Query>) -> Self {
        QueryBatch(queries)
    }

    /// The queries, in batch order.
    pub fn queries(&self) -> &[Query] {
        &self.0
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<Query>> for QueryBatch {
    fn from(queries: Vec<Query>) -> Self {
        QueryBatch(queries)
    }
}

impl From<Query> for QueryBatch {
    fn from(query: Query) -> Self {
        QueryBatch(vec![query])
    }
}

impl From<plis_workloads::streaming::QuerySpec> for Query {
    /// The canonical mapping from the workload generator's engine-agnostic
    /// query specs ([`plis_workloads::streaming::read_write_mix`]) onto
    /// live queries — shared by the benchmark harness, the oracle test
    /// layer, and the examples so the translation exists exactly once.
    fn from(spec: plis_workloads::streaming::QuerySpec) -> Self {
        use plis_workloads::streaming::QuerySpec;
        match spec {
            QuerySpec::RankOf(i) => Query::RankOf(i),
            QuerySpec::CountAt(v) => Query::CountAt(v),
            QuerySpec::TopK(k) => Query::TopK(k),
            QuerySpec::Certificate => Query::Certificate,
        }
    }
}

/// A reconstructed optimal increasing subsequence, as returned by
/// [`Query::Certificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Indices of the subsequence in arrival order (strictly increasing;
    /// the session values along them strictly increase too).
    pub indices: Vec<usize>,
    /// The claimed optimum the indices certify: the LIS length for an
    /// unweighted session, the best total weight for a weighted one.
    pub claimed: u64,
}

/// The answer to one [`Query`], in the same order as the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// Answer to [`Query::RankOf`]: the element's dp value, or `None` if
    /// the index is beyond the stream.
    Rank(Option<u64>),
    /// Answer to [`Query::CountAt`].
    Count(usize),
    /// Answer to [`Query::TopK`]: `(index, dp)` pairs, dp descending,
    /// ties by ascending index.
    TopK(Vec<(usize, u64)>),
    /// Answer to [`Query::Certificate`].
    Certificate(Certificate),
}

/// What one [`QueryBatch`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport {
    /// Kind of the session that answered, or `None` when the session does
    /// not exist (queries never create sessions; `answers` is then empty).
    pub kind: Option<SessionKind>,
    /// One answer per query, in batch order.
    pub answers: Vec<QueryAnswer>,
}

impl QueryReport {
    /// The report for a query batch addressed to a session that does not
    /// exist.
    pub fn missing() -> Self {
        QueryReport { kind: None, answers: Vec::new() }
    }

    /// True when the addressed session existed and answered.
    pub fn answered(&self) -> bool {
        self.kind.is_some()
    }
}

/// One slot of a mixed read/write tick
/// ([`Engine::ingest_query_tick`](crate::Engine::ingest_query_tick)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickOp {
    /// Write: ingest one batch (plain or weighted).
    Ingest(TickBatch),
    /// Read: answer one query batch against the state so far — including
    /// every earlier slot of the *same tick* addressed to the session.
    Query(QueryBatch),
}

impl From<TickBatch> for TickOp {
    fn from(batch: TickBatch) -> Self {
        TickOp::Ingest(batch)
    }
}

impl From<QueryBatch> for TickOp {
    fn from(batch: QueryBatch) -> Self {
        TickOp::Query(batch)
    }
}

/// What one slot of a mixed tick did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpReport {
    /// The slot was a write.
    Ingest(crate::BatchReport),
    /// The slot was a read.
    Query(QueryReport),
}

impl OpReport {
    /// Elements ingested by this slot (0 for reads).
    pub fn ingested(&self) -> usize {
        match self {
            OpReport::Ingest(r) => r.ingested(),
            OpReport::Query(_) => 0,
        }
    }

    /// Queries answered by this slot (0 for writes).
    pub fn queries(&self) -> usize {
        match self {
            OpReport::Ingest(_) => 0,
            OpReport::Query(r) => r.answers.len(),
        }
    }

    /// The ingest report, if this slot was a write.
    pub fn as_ingest(&self) -> Option<&crate::BatchReport> {
        match self {
            OpReport::Ingest(r) => Some(r),
            OpReport::Query(_) => None,
        }
    }

    /// The query report, if this slot was a read.
    pub fn as_query(&self) -> Option<&QueryReport> {
        match self {
            OpReport::Query(r) => Some(r),
            OpReport::Ingest(_) => None,
        }
    }
}

/// What one [`Engine::query_tick`](crate::Engine::query_tick) call did.
#[derive(Debug, Clone)]
pub struct QueryTickReport {
    /// One report per input query batch, in the original tick order.
    pub reports: Vec<(crate::SessionId, QueryReport)>,
    /// Total queries answered across all batches (missing sessions answer
    /// nothing).
    pub total_queries: usize,
    /// Number of distinct existing sessions that answered queries.
    pub sessions_queried: usize,
    /// Number of distinct session ids addressed that do not exist.
    pub sessions_missing: usize,
    /// Number of distinct worker threads that served shards — the same
    /// observational field as
    /// [`TickReport::worker_threads`](crate::TickReport::worker_threads).
    pub worker_threads: usize,
}

/// What one [`Engine::ingest_query_tick`](crate::Engine::ingest_query_tick)
/// call did — the mixed analogue of [`TickReport`](crate::TickReport) and
/// [`QueryTickReport`].
#[derive(Debug, Clone)]
pub struct MixedTickReport {
    /// One report per input slot, in the original tick order.
    pub reports: Vec<(crate::SessionId, OpReport)>,
    /// Total elements ingested by the write slots.
    pub total_ingested: usize,
    /// Total queries answered by the read slots.
    pub total_queries: usize,
    /// Number of distinct sessions that received data.
    pub sessions_touched: usize,
    /// Of [`MixedTickReport::sessions_touched`], how many were weighted.
    pub weighted_sessions_touched: usize,
    /// Number of distinct existing sessions that answered queries.
    pub sessions_queried: usize,
    /// Number of distinct worker threads that served shards (see
    /// [`TickReport::worker_threads`](crate::TickReport::worker_threads)).
    pub worker_threads: usize,
}

impl SessionState {
    /// Answer one query against this session, whatever its kind.
    pub fn answer(&self, query: Query) -> QueryAnswer {
        match self {
            SessionState::Unweighted(s) => match query {
                Query::RankOf(i) => QueryAnswer::Rank(s.rank_of(i).map(u64::from)),
                Query::CountAt(v) => {
                    // Ranks are u32; larger probes cannot match anything.
                    QueryAnswer::Count(u32::try_from(v).map_or(0, |r| s.count_at_rank(r)))
                }
                Query::TopK(k) => QueryAnswer::TopK(s.top_k(k)),
                Query::Certificate => QueryAnswer::Certificate(Certificate {
                    indices: s.reconstruct_lis(),
                    claimed: s.lis_length() as u64,
                }),
            },
            SessionState::Weighted(s) => match query {
                Query::RankOf(i) => QueryAnswer::Rank(s.score_of(i)),
                Query::CountAt(v) => QueryAnswer::Count(s.count_at_score(v)),
                Query::TopK(k) => QueryAnswer::TopK(s.top_k(k)),
                Query::Certificate => QueryAnswer::Certificate(Certificate {
                    indices: s.reconstruct_wlis(),
                    claimed: s.best_score(),
                }),
            },
        }
    }

    /// Answer a whole query batch, in batch order.
    pub fn answer_batch(&self, batch: &QueryBatch) -> QueryReport {
        QueryReport {
            kind: Some(self.kind()),
            answers: batch.queries().iter().map(|&q| self.answer(q)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Backend, StreamingLis};
    use crate::wsession::WeightedStreamingLis;
    use plis_lis::DominantMaxKind;

    #[test]
    fn answers_agree_with_the_session_accessors() {
        let mut plain = StreamingLis::new(100, Backend::Auto);
        plain.ingest(&[10, 20, 5, 30]);
        let state = SessionState::Unweighted(plain.clone());
        assert_eq!(state.answer(Query::RankOf(3)), QueryAnswer::Rank(Some(3)));
        assert_eq!(state.answer(Query::RankOf(99)), QueryAnswer::Rank(None));
        assert_eq!(state.answer(Query::CountAt(1)), QueryAnswer::Count(2));
        assert_eq!(state.answer(Query::CountAt(u64::MAX)), QueryAnswer::Count(0));
        assert_eq!(state.answer(Query::TopK(1)), QueryAnswer::TopK(vec![(3, 3)]));
        let QueryAnswer::Certificate(cert) = state.answer(Query::Certificate) else {
            panic!("expected a certificate");
        };
        assert_eq!(cert.claimed, 3);
        assert_eq!(cert.indices, plain.reconstruct_lis());

        let mut weighted = WeightedStreamingLis::new(100, DominantMaxKind::Auto);
        weighted.ingest(&[(10, 4), (20, 6)]);
        let state = SessionState::Weighted(weighted);
        assert_eq!(state.answer(Query::RankOf(1)), QueryAnswer::Rank(Some(10)));
        assert_eq!(state.answer(Query::CountAt(10)), QueryAnswer::Count(1));
        let QueryAnswer::Certificate(cert) = state.answer(Query::Certificate) else {
            panic!("expected a certificate");
        };
        assert_eq!(cert.claimed, 10);
        assert_eq!(cert.indices, vec![0, 1]);
    }

    #[test]
    fn batch_reports_carry_kind_and_order() {
        let mut plain = StreamingLis::new(100, Backend::Auto);
        plain.ingest(&[1, 2, 3]);
        let state = SessionState::Unweighted(plain);
        let batch = QueryBatch::from(vec![Query::CountAt(1), Query::RankOf(0)]);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let report = state.answer_batch(&batch);
        assert_eq!(report.kind, Some(SessionKind::Unweighted));
        assert!(report.answered());
        assert_eq!(report.answers[0], QueryAnswer::Count(1));
        assert_eq!(report.answers[1], QueryAnswer::Rank(Some(1)));
        assert!(!QueryReport::missing().answered());
    }
}
