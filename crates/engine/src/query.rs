//! The engine's **query vocabulary**: typed reads against live sessions,
//! batched per session and served by the command plane.
//!
//! A [`Query`] is one read, a [`QueryBatch`] is the reads addressed to
//! one session.  Query batches travel two ways: as [`Op::Query`] slots
//! of a write/mixed [`Tick`](crate::Tick) (executed by
//! [`Engine::execute`](crate::Engine::execute), where a read observes
//! every earlier write of the same tick addressed to its session), or as
//! slots of a read-only [`ReadTick`](crate::ReadTick) (executed by
//! [`Engine::execute_read`](crate::Engine::execute_read) over `&Engine`
//! — reads mutate nothing and never create sessions).  Either way whole
//! ticks are partitioned by shard and answered through the same
//! join-splitting `par_iter` surface as ingest, one piece per shard.
//!
//! Every query has one semantics over the session-kind axis: the *dp
//! value* of an element is its rank in an unweighted session and its
//! Algorithm-2 score in a weighted one, so the same [`Query`] values work
//! against both kinds and answers carry dp values as `u64` either way.
//! Certificate answers are full reconstructions
//! ([`StreamingLisOn::reconstruct_lis`] /
//! [`WeightedStreamingLis::reconstruct_wlis`]) and are deterministic:
//! bit-identical to the offline Appendix-A walk on the same prefix, which
//! is what `crates/engine/tests/query_oracle.rs` asserts.
//!
//! [`Op::Query`]: crate::Op::Query
//! [`StreamingLisOn::reconstruct_lis`]: crate::StreamingLisOn::reconstruct_lis
//! [`WeightedStreamingLis::reconstruct_wlis`]: crate::WeightedStreamingLis::reconstruct_wlis

use crate::engine::{SessionKind, SessionState};

/// One read against a live session.  The *dp value* a query speaks of is
/// the element's rank (unweighted sessions) or its Algorithm-2 score
/// (weighted sessions), always carried as `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// The dp value of the `i`-th ingested element (`None` when fewer
    /// than `i + 1` elements have arrived).
    RankOf(usize),
    /// How many ingested elements have dp value exactly this.
    CountAt(u64),
    /// The `k` best elements by dp value: `(index, dp)` pairs ordered by
    /// descending dp, ties by ascending index.
    TopK(usize),
    /// A full certificate: one optimal increasing subsequence (LIS or
    /// maximum-weight), reconstructed from the maintained ranks/scores.
    Certificate,
}

/// The reads addressed to one session within a tick.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryBatch(Vec<Query>);

impl QueryBatch {
    /// A batch over the given queries.
    pub fn new(queries: Vec<Query>) -> Self {
        QueryBatch(queries)
    }

    /// The queries, in batch order.
    pub fn queries(&self) -> &[Query] {
        &self.0
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<Query>> for QueryBatch {
    fn from(queries: Vec<Query>) -> Self {
        QueryBatch(queries)
    }
}

impl From<Query> for QueryBatch {
    fn from(query: Query) -> Self {
        QueryBatch(vec![query])
    }
}

impl From<plis_workloads::streaming::QuerySpec> for Query {
    /// The canonical mapping from the workload generator's engine-agnostic
    /// query specs ([`plis_workloads::streaming::read_write_mix`]) onto
    /// live queries — shared by the benchmark harness, the oracle test
    /// layer, and the examples so the translation exists exactly once.
    fn from(spec: plis_workloads::streaming::QuerySpec) -> Self {
        use plis_workloads::streaming::QuerySpec;
        match spec {
            QuerySpec::RankOf(i) => Query::RankOf(i),
            QuerySpec::CountAt(v) => Query::CountAt(v),
            QuerySpec::TopK(k) => Query::TopK(k),
            QuerySpec::Certificate => Query::Certificate,
        }
    }
}

/// A reconstructed optimal increasing subsequence, as returned by
/// [`Query::Certificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Indices of the subsequence in arrival order (strictly increasing;
    /// the session values along them strictly increase too).
    pub indices: Vec<usize>,
    /// The claimed optimum the indices certify: the LIS length for an
    /// unweighted session, the best total weight for a weighted one.
    pub claimed: u64,
}

/// The answer to one [`Query`], in the same order as the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAnswer {
    /// Answer to [`Query::RankOf`]: the element's dp value, or `None` if
    /// the index is beyond the stream.
    Rank(Option<u64>),
    /// Answer to [`Query::CountAt`].
    Count(usize),
    /// Answer to [`Query::TopK`]: `(index, dp)` pairs, dp descending,
    /// ties by ascending index.
    TopK(Vec<(usize, u64)>),
    /// Answer to [`Query::Certificate`].
    Certificate(Certificate),
}

/// What one [`QueryBatch`] returned, carried by
/// [`OpOutput::Answered`](crate::OpOutput::Answered) and the read plane.
///
/// In the typed API a batch addressed to an absent session is an
/// [`OpError::UnknownSession`](crate::OpError::UnknownSession), so `kind`
/// is always present; [`QueryReport::missing`] survives for the legacy
/// wrappers, which cannot express errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport {
    /// Kind of the session that answered, or `None` in the legacy
    /// missing-session shape (`answers` is then empty).
    pub kind: Option<SessionKind>,
    /// One answer per query, in batch order.
    pub answers: Vec<QueryAnswer>,
}

impl QueryReport {
    /// The legacy report for a query batch addressed to a session that
    /// does not exist.
    pub fn missing() -> Self {
        QueryReport { kind: None, answers: Vec::new() }
    }

    /// True when the addressed session existed and answered.
    pub fn answered(&self) -> bool {
        self.kind.is_some()
    }
}

impl SessionState {
    /// Answer one query against this session, whatever its kind.
    pub fn answer(&self, query: Query) -> QueryAnswer {
        match self {
            SessionState::Unweighted(s) => match query {
                Query::RankOf(i) => QueryAnswer::Rank(s.rank_of(i).map(u64::from)),
                Query::CountAt(v) => {
                    // Ranks are u32; larger probes cannot match anything.
                    QueryAnswer::Count(u32::try_from(v).map_or(0, |r| s.count_at_rank(r)))
                }
                Query::TopK(k) => QueryAnswer::TopK(s.top_k(k)),
                Query::Certificate => QueryAnswer::Certificate(Certificate {
                    indices: s.reconstruct_lis(),
                    claimed: s.lis_length() as u64,
                }),
            },
            SessionState::Weighted(s) => match query {
                Query::RankOf(i) => QueryAnswer::Rank(s.score_of(i)),
                Query::CountAt(v) => QueryAnswer::Count(s.count_at_score(v)),
                Query::TopK(k) => QueryAnswer::TopK(s.top_k(k)),
                Query::Certificate => QueryAnswer::Certificate(Certificate {
                    indices: s.reconstruct_wlis(),
                    claimed: s.best_score(),
                }),
            },
        }
    }

    /// Answer a whole query batch, in batch order.
    pub fn answer_batch(&self, batch: &QueryBatch) -> QueryReport {
        QueryReport {
            kind: Some(self.kind()),
            answers: batch.queries().iter().map(|&q| self.answer(q)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Backend, StreamingLis};
    use crate::wsession::WeightedStreamingLis;
    use plis_lis::DominantMaxKind;

    #[test]
    fn answers_agree_with_the_session_accessors() {
        let mut plain = StreamingLis::new(100, Backend::Auto);
        plain.ingest(&[10, 20, 5, 30]);
        let state = SessionState::Unweighted(plain.clone());
        assert_eq!(state.answer(Query::RankOf(3)), QueryAnswer::Rank(Some(3)));
        assert_eq!(state.answer(Query::RankOf(99)), QueryAnswer::Rank(None));
        assert_eq!(state.answer(Query::CountAt(1)), QueryAnswer::Count(2));
        assert_eq!(state.answer(Query::CountAt(u64::MAX)), QueryAnswer::Count(0));
        assert_eq!(state.answer(Query::TopK(1)), QueryAnswer::TopK(vec![(3, 3)]));
        let QueryAnswer::Certificate(cert) = state.answer(Query::Certificate) else {
            panic!("expected a certificate");
        };
        assert_eq!(cert.claimed, 3);
        assert_eq!(cert.indices, plain.reconstruct_lis());

        let mut weighted = WeightedStreamingLis::new(100, DominantMaxKind::Auto);
        weighted.ingest(&[(10, 4), (20, 6)]);
        let state = SessionState::Weighted(weighted);
        assert_eq!(state.answer(Query::RankOf(1)), QueryAnswer::Rank(Some(10)));
        assert_eq!(state.answer(Query::CountAt(10)), QueryAnswer::Count(1));
        let QueryAnswer::Certificate(cert) = state.answer(Query::Certificate) else {
            panic!("expected a certificate");
        };
        assert_eq!(cert.claimed, 10);
        assert_eq!(cert.indices, vec![0, 1]);
    }

    #[test]
    fn batch_reports_carry_kind_and_order() {
        let mut plain = StreamingLis::new(100, Backend::Auto);
        plain.ingest(&[1, 2, 3]);
        let state = SessionState::Unweighted(plain);
        let batch = QueryBatch::from(vec![Query::CountAt(1), Query::RankOf(0)]);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let report = state.answer_batch(&batch);
        assert_eq!(report.kind, Some(SessionKind::Unweighted));
        assert!(report.answered());
        assert_eq!(report.answers[0], QueryAnswer::Count(1));
        assert_eq!(report.answers[1], QueryAnswer::Rank(Some(1)));
        assert!(!QueryReport::missing().answered());
    }
}
